//! Asymptotic standard errors from the observed Fisher information.
//!
//! Frequentist companion to [`crate::bayes`]: at the MLE `θ̂`, the observed
//! information `I(θ̂) = −∇² ℓ(θ̂)` gives the classical
//! `θ̂ ± z · sqrt(diag I(θ̂)^{-1})` intervals. The Hessian is formed by
//! central differences in the *transformed* (unconstrained) coordinates —
//! each entry costs a handful of tile-Cholesky evaluations through the same
//! adaptive solver — and the covariance is mapped back to natural space by
//! the delta method.

use crate::likelihood::log_likelihood;
use crate::model::ModelFamily;
use crate::optimizer::transform::{forward_all, inverse_all};
use xgs_covariance::Location;
use xgs_linalg::Matrix;
use xgs_tile::{KernelTimeModel, TlrConfig};

/// Fisher-information summary at the MLE.
#[derive(Clone, Debug)]
pub struct FisherReport {
    /// Asymptotic standard errors of the natural-space parameters.
    pub std_errors: Vec<f64>,
    /// 95% Wald confidence intervals in natural space.
    pub ci95: Vec<(f64, f64)>,
    /// Transformed-space covariance matrix `I^{-1}`.
    pub covariance: Matrix,
}

/// Compute observed-information standard errors at `theta_hat`.
///
/// `h` is the central-difference step in transformed coordinates (1e-3 to
/// 1e-2 is reasonable: the llh is smooth but each evaluation carries
/// solver-level noise under aggressive approximation settings).
/// Returns an error when the Hessian is not positive definite at the point
/// (i.e. `theta_hat` is not a local maximum).
#[allow(clippy::too_many_arguments)]
pub fn fisher_information(
    family: ModelFamily,
    locs: &[Location],
    z: &[f64],
    cfg: &TlrConfig,
    model: &dyn KernelTimeModel,
    theta_hat: &[f64],
    h: f64,
    workers: usize,
) -> Result<FisherReport, String> {
    let transforms = family.transforms();
    let dim = theta_hat.len();
    assert_eq!(dim, family.n_params());
    let y0 = forward_all(&transforms, theta_hat);

    let nll = |y: &[f64]| -> Result<f64, String> {
        let theta = inverse_all(&transforms, y);
        let kernel = family.kernel(&theta);
        log_likelihood(kernel.as_ref(), locs, z, cfg, model, workers)
            .map(|r| -r.llh)
            .map_err(|e| format!("likelihood failed during differencing: {e}"))
    };

    // Central-difference Hessian (symmetric; evaluate the upper triangle).
    let f0 = nll(&y0)?;
    let mut hess = Matrix::zeros(dim, dim);
    let shifted = |steps: &[(usize, f64)]| -> Result<f64, String> {
        let mut y = y0.clone();
        for &(i, s) in steps {
            y[i] += s;
        }
        nll(&y)
    };
    for i in 0..dim {
        // Diagonal: (f(+h) - 2 f0 + f(-h)) / h^2.
        let fp = shifted(&[(i, h)])?;
        let fm = shifted(&[(i, -h)])?;
        hess[(i, i)] = (fp - 2.0 * f0 + fm) / (h * h);
        for j in i + 1..dim {
            let fpp = shifted(&[(i, h), (j, h)])?;
            let fpm = shifted(&[(i, h), (j, -h)])?;
            let fmp = shifted(&[(i, -h), (j, h)])?;
            let fmm = shifted(&[(i, -h), (j, -h)])?;
            let v = (fpp - fpm - fmp + fmm) / (4.0 * h * h);
            hess[(i, j)] = v;
            hess[(j, i)] = v;
        }
    }

    // Invert via Cholesky: I^{-1} columns from solves with e_k.
    let mut l = hess.clone();
    xgs_linalg::cholesky_in_place(&mut l)
        .map_err(|_| "observed information is not positive definite at theta_hat".to_string())?;
    let mut cov = Matrix::zeros(dim, dim);
    for k in 0..dim {
        let mut e = vec![0.0; dim];
        e[k] = 1.0;
        xgs_linalg::cholesky_solve(&l, &mut e);
        for i in 0..dim {
            cov[(i, k)] = e[i];
        }
    }

    // Delta method back to natural space: Var(g(y)) = g'(y)^2 Var(y) for
    // each coordinate-wise bijection g.
    let mut std_errors = Vec::with_capacity(dim);
    let mut ci95 = Vec::with_capacity(dim);
    for (k, t) in transforms.iter().enumerate() {
        let var_y = cov[(k, k)].max(0.0);
        let sd_y = var_y.sqrt();
        // Numerical derivative of the inverse transform at y0[k].
        let eps = 1e-6;
        let dgu = (t.inverse(y0[k] + eps) - t.inverse(y0[k] - eps)) / (2.0 * eps);
        std_errors.push(sd_y * dgu.abs());
        // Transform-respecting interval: map the y-space Wald interval.
        let lo = t.inverse(y0[k] - 1.959963984540054 * sd_y);
        let hi = t.inverse(y0[k] + 1.959963984540054 * sd_y);
        ci95.push((lo.min(hi), lo.max(hi)));
    }

    Ok(FisherReport {
        std_errors,
        ci95,
        covariance: cov,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mle::{fit, FitOptions};
    use crate::synthetic::simulate_field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, Variant};

    fn data(n: usize) -> (Vec<Location>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(13);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        let z = simulate_field(&Matern::new(MaternParams::new(1.0, 0.1, 0.5)), &locs, 31);
        (locs, z)
    }

    #[test]
    fn standard_errors_at_the_mle_are_positive_and_sane() {
        let (locs, z) = data(300);
        let cfg = TlrConfig::new(Variant::DenseF64, 75);
        let model = FlopKernelModel::default();
        let mle = fit(
            ModelFamily::MaternSpace,
            &locs,
            &z,
            &cfg,
            &model,
            &FitOptions {
                start: Some(vec![1.0, 0.1, 0.5]),
                ..Default::default()
            },
        );
        let rep = fisher_information(
            ModelFamily::MaternSpace,
            &locs,
            &z,
            &cfg,
            &model,
            &mle.theta,
            5e-3,
            1,
        )
        .unwrap();
        assert_eq!(rep.std_errors.len(), 3);
        for (k, &se) in rep.std_errors.iter().enumerate() {
            assert!(se > 0.0 && se.is_finite(), "param {k}: se {se}");
            // SEs should be a modest fraction of the estimate at n=300.
            assert!(
                se < 3.0 * mle.theta[k] + 1.0,
                "param {k}: se {se} vs {}",
                mle.theta[k]
            );
        }
        // CIs bracket the estimate and stay in the valid domain.
        for (k, &(lo, hi)) in rep.ci95.iter().enumerate() {
            assert!(lo < mle.theta[k] && mle.theta[k] < hi, "param {k}");
            assert!(lo > 0.0, "positivity must survive the transform");
        }
    }

    #[test]
    fn away_from_the_mode_information_can_fail_cleanly() {
        let (locs, z) = data(150);
        let cfg = TlrConfig::new(Variant::DenseF64, 75);
        // A point far from any maximum: the Hessian of -llh need not be PD.
        let res = fisher_information(
            ModelFamily::MaternSpace,
            &locs,
            &z,
            &cfg,
            &FlopKernelModel::default(),
            &[30.0, 5.0, 3.0],
            1e-2,
            1,
        );
        // Either it fails with the PD message or produces finite output —
        // but never panics. (Both outcomes are legitimate numerically.)
        if let Err(msg) = res {
            assert!(msg.contains("positive definite") || msg.contains("likelihood"));
        }
    }

    #[test]
    fn more_data_shrinks_standard_errors() {
        let cfg = TlrConfig::new(Variant::DenseF64, 75);
        let model = FlopKernelModel::default();
        let se_at = |n: usize| {
            let (locs, z) = data(n);
            fisher_information(
                ModelFamily::MaternSpace,
                &locs,
                &z,
                &cfg,
                &model,
                &[1.0, 0.1, 0.5],
                5e-3,
                1,
            )
            .map(|r| r.std_errors[0])
        };
        let (small, large) = (se_at(150), se_at(450));
        if let (Ok(s), Ok(l)) = (small, large) {
            assert!(l < s, "SE must shrink with n: {l} !< {s}");
        }
    }
}

//! End-to-end modeling → prediction pipelines: the experiment shape of the
//! paper's Tables I and II.
//!
//! Simulate (or accept) a dataset, split train/test, fit each solver
//! variant, predict the held-out measurements, and report per-variant
//! `θ̂`, log-likelihood, MSPE, and memory footprint — the columns the paper
//! tabulates to show the adaptive approximations match dense FP64.

use crate::likelihood::log_likelihood;
use crate::mle::{fit, FitOptions, FitResult};
use crate::model::ModelFamily;
use crate::predict::{krige, mspe};
use crate::synthetic::simulate_field;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xgs_covariance::{jittered_grid, morton_order, spacetime_grid, Location};
use xgs_tile::{KernelTimeModel, TlrConfig, Variant};

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    pub family: ModelFamily,
    /// Ground-truth parameters used to simulate the dataset.
    pub true_params: Vec<f64>,
    pub n_train: usize,
    pub n_test: usize,
    /// Time slots (space–time family only; spatial sites are
    /// `n_train / slots`).
    pub time_slots: usize,
    /// Spatial domain edge length. The paper's datasets have hundreds of
    /// correlation ranges across the domain (1M sites); small reproductions
    /// keep the same domain-to-range ratio per tile by widening the domain
    /// instead of shrinking the range, so the adaptive precision/structure
    /// decisions activate at demo scale with the paper's parameter values.
    pub domain_size: f64,
    pub tile_size: usize,
    pub variants: Vec<Variant>,
    pub fit: FitOptions,
    pub seed: u64,
}

/// One variant's row of the report.
#[derive(Clone, Debug)]
pub struct VariantRow {
    pub variant: Variant,
    pub fit: FitResult,
    pub mspe: f64,
    pub footprint_bytes: usize,
    /// Wall seconds spent in the fit.
    pub fit_seconds: f64,
}

/// Full pipeline output.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    pub rows: Vec<VariantRow>,
    pub n_train: usize,
    pub n_test: usize,
}

impl PipelineReport {
    /// Render a Table I / Table II style text table.
    pub fn render(&self, family: ModelFamily) -> String {
        let names = family.param_names();
        let mut out = String::new();
        out.push_str("approach");
        for n in names {
            out.push_str(&format!(",{n}"));
        }
        out.push_str(",log-likelihood,MSPE,footprint-MB,fit-seconds\n");
        for row in &self.rows {
            out.push_str(row.variant.name());
            for v in &row.fit.theta {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push_str(&format!(
                ",{:.4},{:.4},{:.1},{:.2}\n",
                row.fit.llh,
                row.mspe,
                row.footprint_bytes as f64 / 1e6,
                row.fit_seconds
            ));
        }
        out
    }
}

/// Generate the dataset and run every variant through fit + predict.
pub fn run_pipeline(cfg: &PipelineConfig, model: &dyn KernelTimeModel) -> PipelineReport {
    // Locations: spatial jittered grid, replicated over time slots for the
    // space-time family, Morton-ordered either way.
    let total = cfg.n_train + cfg.n_test;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut all: Vec<Location> = match cfg.family {
        ModelFamily::MaternSpace => jittered_grid(total, &mut rng),
        ModelFamily::GneitingSpaceTime => {
            let slots = cfg.time_slots.max(1);
            let spatial = jittered_grid(total.div_ceil(slots), &mut rng);
            let mut st = spacetime_grid(&spatial, slots);
            st.truncate(total);
            st
        }
    };
    if cfg.domain_size != 1.0 {
        for l in &mut all {
            l.x *= cfg.domain_size;
            l.y *= cfg.domain_size;
        }
    }
    morton_order(&mut all);

    let true_kernel = cfg.family.kernel(&cfg.true_params);
    let zall = simulate_field(true_kernel.as_ref(), &all, cfg.seed + 1);

    // Interleaved split (test points stay inside the sampled domain, like
    // the paper's random train/test split of the basin data).
    let stride = (total / cfg.n_test.max(1)).max(2);
    let mut train_locs = Vec::with_capacity(cfg.n_train);
    let mut test_locs = Vec::with_capacity(cfg.n_test);
    let mut z_train = Vec::with_capacity(cfg.n_train);
    let mut z_test = Vec::with_capacity(cfg.n_test);
    for (i, (l, z)) in all.iter().zip(&zall).enumerate() {
        if test_locs.len() < cfg.n_test && i % stride == stride - 1 {
            test_locs.push(*l);
            z_test.push(*z);
        } else {
            train_locs.push(*l);
            z_train.push(*z);
        }
    }

    let mut rows = Vec::new();
    for &variant in &cfg.variants {
        let tile_cfg = TlrConfig::new(variant, cfg.tile_size);
        let t0 = std::time::Instant::now();
        let fit_res = fit(
            cfg.family,
            &train_locs,
            &z_train,
            &tile_cfg,
            model,
            &cfg.fit,
        );
        let fit_seconds = t0.elapsed().as_secs_f64();

        // Refactorize at the estimate for prediction + footprint report.
        let kernel = cfg.family.kernel(&fit_res.theta);
        let llh_rep = log_likelihood(
            kernel.as_ref(),
            &train_locs,
            &z_train,
            &tile_cfg,
            model,
            cfg.fit.workers,
        )
        .expect("estimate must be inside the SPD region");
        let pred = krige(
            kernel.as_ref(),
            &train_locs,
            &z_train,
            &llh_rep.factor,
            &test_locs,
            false,
        );
        rows.push(VariantRow {
            variant,
            fit: fit_res,
            mspe: mspe(&pred.mean, &z_test),
            footprint_bytes: llh_rep.footprint_bytes,
            fit_seconds,
        });
    }

    PipelineReport {
        rows,
        n_train: train_locs.len(),
        n_test: test_locs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mle::FitOptimizer;
    use crate::optimizer::neldermead::NelderMeadOptions;
    use xgs_tile::FlopKernelModel;

    fn quick_fit() -> FitOptions {
        FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                max_evals: 60,
                f_tol: 1e-4,
                initial_step: 0.3,
            }),
            start: None,
            workers: 1,
            shard: None,
        }
    }

    #[test]
    fn space_pipeline_all_variants_agree() {
        let cfg = PipelineConfig {
            family: ModelFamily::MaternSpace,
            true_params: vec![1.0, 0.1, 0.5],
            n_train: 300,
            n_test: 40,
            time_slots: 1,
            domain_size: 1.0,
            tile_size: 75,
            variants: vec![Variant::DenseF64, Variant::MpDense, Variant::MpDenseTlr],
            fit: FitOptions {
                start: Some(vec![1.0, 0.1, 0.5]),
                ..quick_fit()
            },
            seed: 5,
        };
        let report = run_pipeline(&cfg, &FlopKernelModel::default());
        assert_eq!(report.rows.len(), 3);
        let base = &report.rows[0];
        for row in &report.rows[1..] {
            // Estimates and MSPE close across variants (Table I's story).
            for (a, b) in base.fit.theta.iter().zip(&row.fit.theta) {
                assert!(
                    (a - b).abs() / a.abs().max(0.1) < 0.35,
                    "{:?}: {a} vs {b}",
                    row.variant
                );
            }
            assert!(
                (base.mspe - row.mspe).abs() / base.mspe < 0.2,
                "MSPE drift {:?}: {} vs {}",
                row.variant,
                base.mspe,
                row.mspe
            );
        }
        let table = report.render(ModelFamily::MaternSpace);
        assert!(table.contains("dense-fp64"));
        assert!(table.contains("mp-dense-tlr"));
    }

    #[test]
    fn spacetime_pipeline_runs() {
        let cfg = PipelineConfig {
            family: ModelFamily::GneitingSpaceTime,
            true_params: vec![1.0, 0.3, 0.5, 0.5, 0.9, 0.2],
            n_train: 240,
            n_test: 24,
            time_slots: 4,
            domain_size: 1.0,
            tile_size: 66,
            variants: vec![Variant::DenseF64],
            fit: FitOptions {
                start: Some(vec![1.0, 0.3, 0.5, 0.5, 0.9, 0.2]),
                optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                    max_evals: 30,
                    f_tol: 1e-3,
                    initial_step: 0.2,
                }),
                workers: 1,
                shard: None,
            },
            seed: 6,
        };
        let report = run_pipeline(&cfg, &FlopKernelModel::default());
        assert_eq!(report.rows.len(), 1);
        assert!(report.rows[0].fit.llh.is_finite());
        assert!(report.rows[0].mspe > 0.0);
        assert_eq!(report.rows[0].fit.theta.len(), 6);
    }
}

//! The Gaussian log-likelihood (paper Eq. 1) through the tile solver.
//!
//! `ℓ(θ) = -(n/2) log 2π - (1/2) log|Σ(θ)| - (1/2) Z^T Σ(θ)^{-1} Z`
//!
//! One evaluation = generate Σ(θ) tile-wise (with the adaptive format
//! decisions), tile-Cholesky it in the chosen variant, take the
//! log-determinant off the factored diagonal, and a forward solve for the
//! quadratic form `‖L^{-1}Z‖²`.

use std::sync::Arc;
use xgs_cholesky::{logdet, solve_lower, FactorError, ShardBackend, ShardError, TiledFactor};
use xgs_covariance::{CovarianceKernel, Location};
use xgs_runtime::ExecReport;
use xgs_tile::{KernelTimeModel, SymTileMatrix, TlrConfig};

/// Which execution backend factorizes Σ(θ).
#[derive(Clone, Debug)]
pub enum FactorEngine {
    /// In-process, single-threaded reference loop.
    Sequential,
    /// In-process task runtime on this many threads (0 = all cores).
    Threads(usize),
    /// Multi-process 2D block-cyclic sharding. The backend decides the
    /// fleet strategy: `ShardRunner` spawns a fresh fleet per
    /// factorization, the `xgs-fleet` supervisor keeps a persistent warm
    /// fleet with standby promotion and panel-replay recovery.
    Sharded(Arc<dyn ShardBackend>),
}

impl FactorEngine {
    /// The historical `workers` convention: 1 = sequential, anything else
    /// is the threaded runtime.
    pub fn from_workers(workers: usize) -> FactorEngine {
        if workers == 1 {
            FactorEngine::Sequential
        } else {
            FactorEngine::Threads(workers)
        }
    }
}

/// Result of one likelihood evaluation. Keeps the factor so callers
/// (prediction, uncertainty) can reuse it without refactorizing.
pub struct LikelihoodReport {
    /// `ℓ(θ)`.
    pub llh: f64,
    /// `log|Σ|`.
    pub logdet: f64,
    /// `Z^T Σ^{-1} Z`.
    pub quad: f64,
    /// The Cholesky factor of Σ(θ).
    pub factor: Arc<TiledFactor>,
    /// Runtime report when the parallel engine ran.
    pub exec: Option<ExecReport>,
    /// Matrix storage footprint under the variant's formats, bytes.
    pub footprint_bytes: usize,
    /// Footprint the same tiled matrix would need fully dense in FP64.
    pub dense_footprint_bytes: usize,
}

/// Evaluate the log-likelihood.
///
/// `workers = 1` uses the sequential engine; `workers > 1` (or 0 = all
/// cores) schedules the factorization on the dynamic runtime. For the
/// multi-process backend use [`log_likelihood_engine`].
pub fn log_likelihood(
    kernel: &dyn CovarianceKernel,
    locs: &[Location],
    z: &[f64],
    cfg: &TlrConfig,
    model: &dyn KernelTimeModel,
    workers: usize,
) -> Result<LikelihoodReport, FactorError> {
    log_likelihood_engine(
        kernel,
        locs,
        z,
        cfg,
        model,
        &FactorEngine::from_workers(workers),
    )
    .map_err(|e| match e {
        ShardError::Factor(f) => f,
        // In-process engines only fail numerically.
        other => panic!("in-process engine returned a shard error: {other}"),
    })
}

/// [`log_likelihood`] on an explicit [`FactorEngine`]. Every engine
/// produces bitwise-identical factors; they differ only in where the tile
/// kernels run and in what the [`ExecReport`] observes.
pub fn log_likelihood_engine(
    kernel: &dyn CovarianceKernel,
    locs: &[Location],
    z: &[f64],
    cfg: &TlrConfig,
    model: &dyn KernelTimeModel,
    engine: &FactorEngine,
) -> Result<LikelihoodReport, ShardError> {
    let n = locs.len();
    assert_eq!(z.len(), n, "observation vector must match locations");

    let matrix = SymTileMatrix::generate(kernel, locs, *cfg, model);
    let footprint = matrix.footprint_bytes();
    let dense_footprint = matrix.dense_f64_footprint_bytes();
    let (factor, exec) = match engine {
        FactorEngine::Sequential => {
            let mut f = TiledFactor::from_matrix(matrix);
            f.factorize_seq()?;
            (Arc::new(f), None)
        }
        FactorEngine::Threads(workers) => {
            let f = Arc::new(TiledFactor::from_matrix(matrix));
            let (res, report) = f.factorize_parallel(*workers);
            res?;
            (f, Some(report))
        }
        FactorEngine::Sharded(runner) => {
            let mut f = TiledFactor::from_matrix(matrix);
            let rep = runner.factorize(&mut f)?;
            // Same report shape as the threaded engine, so metrics-hungry
            // callers (fit --metrics, the server) work unchanged. Busy
            // time is worker-process compute time as reported in DONEs.
            let exec = ExecReport {
                wall_seconds: rep.metrics.wall_seconds,
                tasks: rep.metrics.tasks,
                workers: rep.metrics.workers,
                busy_seconds: rep
                    .metrics
                    .worker_stats
                    .iter()
                    .map(|w| w.busy_seconds)
                    .collect(),
                trace: Vec::new(),
                metrics: Some(rep.metrics),
            };
            (Arc::new(f), Some(exec))
        }
    };

    let ld = logdet(&factor);
    let mut w = z.to_vec();
    solve_lower(&factor, &mut w, 1);
    let quad: f64 = w.iter().map(|x| x * x).sum();

    let llh = -0.5 * (n as f64) * (2.0 * std::f64::consts::PI).ln() - 0.5 * ld - 0.5 * quad;
    Ok(LikelihoodReport {
        llh,
        logdet: ld,
        quad,
        factor,
        exec,
        footprint_bytes: footprint,
        dense_footprint_bytes: dense_footprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, Variant};

    fn setup(n: usize) -> (Matern, Vec<Location>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let kernel = Matern::new(params);
        let z = crate::synthetic::simulate_field(&kernel, &locs, 99);
        (kernel, locs, z)
    }

    /// Dense FP64 oracle computed without tiles.
    fn llh_oracle(kernel: &Matern, locs: &[Location], z: &[f64]) -> f64 {
        let mut c = xgs_covariance::covariance_matrix(kernel, locs);
        xgs_linalg::cholesky_in_place(&mut c).unwrap();
        let ld = xgs_linalg::cholesky_logdet(&c);
        let mut w = z.to_vec();
        // Only forward substitution: quad = || L^{-1} z ||^2.
        xgs_kernels::trsm_left_lower_notrans(
            z.len(),
            1,
            1.0,
            c.as_slice(),
            z.len(),
            &mut w,
            z.len(),
        );
        let quad: f64 = w.iter().map(|x| x * x).sum();
        -0.5 * z.len() as f64 * (2.0 * std::f64::consts::PI).ln() - 0.5 * ld - 0.5 * quad
    }

    #[test]
    fn dense_f64_matches_oracle() {
        let (kernel, locs, z) = setup(200);
        let cfg = TlrConfig::new(Variant::DenseF64, 64);
        let r = log_likelihood(&kernel, &locs, &z, &cfg, &FlopKernelModel::default(), 1).unwrap();
        let oracle = llh_oracle(&kernel, &locs, &z);
        assert!(
            (r.llh - oracle).abs() < 1e-6 * oracle.abs().max(1.0),
            "{} vs {}",
            r.llh,
            oracle
        );
    }

    #[test]
    fn parallel_equals_sequential() {
        let (kernel, locs, z) = setup(240);
        let cfg = TlrConfig::new(Variant::MpDense, 60);
        let model = FlopKernelModel::default();
        let seq = log_likelihood(&kernel, &locs, &z, &cfg, &model, 1).unwrap();
        let par = log_likelihood(&kernel, &locs, &z, &cfg, &model, 4).unwrap();
        assert_eq!(seq.llh, par.llh, "engines must agree bitwise");
        let exec = par.exec.expect("parallel engine reports");
        // The runtime's observability layer rides along: metrics always,
        // schedule validation by default under debug_assertions only.
        let m = exec.metrics.expect("metrics on by default");
        assert_eq!(m.tasks, exec.tasks);
        if cfg!(debug_assertions) {
            assert!(m.validation.expect("validated in debug").edges_checked > 0);
        } else {
            assert!(m.validation.is_none(), "validator is opt-in in release");
        }
    }

    #[test]
    fn approximate_variants_stay_close() {
        let (kernel, locs, z) = setup(300);
        let model = FlopKernelModel {
            dense_rate: 45.0e9,
            mem_factor: 1.0,
        };
        let exact = log_likelihood(
            &kernel,
            &locs,
            &z,
            &TlrConfig::new(Variant::DenseF64, 50),
            &model,
            1,
        )
        .unwrap();
        for variant in [Variant::MpDense, Variant::MpDenseTlr] {
            let r = log_likelihood(&kernel, &locs, &z, &TlrConfig::new(variant, 50), &model, 1)
                .unwrap();
            let drift = (r.llh - exact.llh).abs() / exact.llh.abs();
            assert!(drift < 1e-4, "{variant:?} drifted {drift}");
        }
    }

    #[test]
    fn quad_and_logdet_decompose_llh() {
        let (kernel, locs, z) = setup(150);
        let cfg = TlrConfig::new(Variant::DenseF64, 50);
        let r = log_likelihood(&kernel, &locs, &z, &cfg, &FlopKernelModel::default(), 1).unwrap();
        let n = locs.len() as f64;
        let recomposed =
            -0.5 * n * (2.0 * std::f64::consts::PI).ln() - 0.5 * r.logdet - 0.5 * r.quad;
        assert!((recomposed - r.llh).abs() < 1e-12);
        assert!(r.quad > 0.0);
        assert!(r.footprint_bytes > 0);
    }
}

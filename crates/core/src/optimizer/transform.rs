//! Bound-handling parameter transforms.
//!
//! Optimizers work in unconstrained coordinates; each model parameter maps
//! through one of these bijections so positivity (`σ², a, ν`) and
//! unit-interval (`α, β`) constraints hold by construction.

/// A scalar bijection between a constrained natural space and ℝ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamTransform {
    /// `(0, ∞) ↔ ℝ` via `log` / `exp`.
    LogPositive,
    /// `(0, 1) ↔ ℝ` via logit / logistic (used for `(0,1]`-bounded
    /// parameters; the open upper end is numerically immaterial).
    LogitUnit,
    /// Identity (unbounded parameters).
    Identity,
}

impl ParamTransform {
    /// Natural → unconstrained.
    pub fn forward(self, x: f64) -> f64 {
        match self {
            ParamTransform::LogPositive => x.max(1e-300).ln(),
            ParamTransform::LogitUnit => {
                let c = x.clamp(1e-12, 1.0 - 1e-12);
                (c / (1.0 - c)).ln()
            }
            ParamTransform::Identity => x,
        }
    }

    /// Unconstrained → natural.
    pub fn inverse(self, y: f64) -> f64 {
        match self {
            ParamTransform::LogPositive => y.exp(),
            ParamTransform::LogitUnit => 1.0 / (1.0 + (-y).exp()),
            ParamTransform::Identity => y,
        }
    }
}

/// Apply `forward` element-wise.
pub fn forward_all(ts: &[ParamTransform], x: &[f64]) -> Vec<f64> {
    ts.iter().zip(x).map(|(t, &v)| t.forward(v)).collect()
}

/// Apply `inverse` element-wise.
pub fn inverse_all(ts: &[ParamTransform], y: &[f64]) -> Vec<f64> {
    ts.iter().zip(y).map(|(t, &v)| t.inverse(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for &t in &[
            ParamTransform::LogPositive,
            ParamTransform::LogitUnit,
            ParamTransform::Identity,
        ] {
            for &x in &[0.01, 0.3, 0.77, 0.99] {
                let y = t.forward(x);
                assert!((t.inverse(y) - x).abs() < 1e-12, "{t:?} at {x}");
            }
        }
        // LogPositive handles large values too.
        let t = ParamTransform::LogPositive;
        assert!((t.inverse(t.forward(123.0)) - 123.0).abs() < 1e-9);
    }

    #[test]
    fn constraints_hold_for_any_unconstrained_value() {
        for &y in &[-50.0, -1.0, 0.0, 1.0, 50.0] {
            assert!(ParamTransform::LogPositive.inverse(y) > 0.0);
            let u = ParamTransform::LogitUnit.inverse(y);
            // Saturates to exactly 1.0 in f64 for large y, which the (0,1]
            // model parameters accept.
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn vector_helpers() {
        let ts = [ParamTransform::LogPositive, ParamTransform::LogitUnit];
        let x = [2.0, 0.25];
        let y = forward_all(&ts, &x);
        let back = inverse_all(&ts, &y);
        assert!((back[0] - 2.0).abs() < 1e-12);
        assert!((back[1] - 0.25).abs() < 1e-12);
    }
}

//! Particle swarm optimization (minimization).
//!
//! The paper's weak-scaling strategy (§VI-D): PSO "requires launching a set
//! of independent executions for the log-likelihood function that allows
//! parallel execution of the MLE operation" — particles evaluate their
//! positions concurrently (fanned across the in-tree work-stealing pool
//! here; independent node groups on Fugaku), synchronize loosely each
//! iteration, and iterate to convergence. Evaluation order never affects
//! results: positions are updated from a sequential RNG after a full
//! synchronization, so 1-thread and N-thread runs are bitwise identical.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// PSO options (standard global-best topology).
#[derive(Clone, Copy, Debug)]
pub struct PsoOptions {
    pub particles: usize,
    pub iterations: usize,
    /// Inertia weight.
    pub inertia: f64,
    /// Cognitive (personal-best) acceleration.
    pub c1: f64,
    /// Social (global-best) acceleration.
    pub c2: f64,
    /// RNG seed (deterministic runs).
    pub seed: u64,
    /// Evaluate particles in parallel (each evaluation may itself be a full
    /// tile Cholesky, so this is the paper's "embarrassingly parallel"
    /// outer level).
    pub parallel: bool,
}

impl Default for PsoOptions {
    fn default() -> Self {
        PsoOptions {
            particles: 16,
            iterations: 40,
            inertia: 0.72,
            c1: 1.49,
            c2: 1.49,
            seed: 0xC0FFEE,
            parallel: true,
        }
    }
}

/// Search outcome.
#[derive(Clone, Debug)]
pub struct PsoResult {
    pub x: Vec<f64>,
    pub f: f64,
    pub evals: usize,
    /// Global-best objective value per iteration (monotone non-increasing).
    pub history: Vec<f64>,
}

/// Minimize `f` over the box `bounds` (per-dimension `(lo, hi)` in the
/// *unconstrained/transformed* space).
pub fn particle_swarm(
    f: impl Fn(&[f64]) -> f64 + Sync,
    bounds: &[(f64, f64)],
    opts: &PsoOptions,
) -> PsoResult {
    let dim = bounds.len();
    assert!(dim >= 1 && opts.particles >= 2);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let eval = |x: &[f64]| -> f64 {
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initialize positions/velocities uniformly in the box.
    let mut pos: Vec<Vec<f64>> = (0..opts.particles)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| rng.random_range(lo..hi))
                .collect()
        })
        .collect();
    let mut vel: Vec<Vec<f64>> = (0..opts.particles)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| rng.random_range(-(hi - lo)..(hi - lo)) * 0.25)
                .collect()
        })
        .collect();

    let mut evals = 0usize;
    let mut fvals: Vec<f64> = if opts.parallel {
        pos.par_iter().map(|x| eval(x)).collect()
    } else {
        pos.iter().map(|x| eval(x)).collect()
    };
    evals += opts.particles;

    let mut pbest = pos.clone();
    let mut pbest_f = fvals.clone();
    let (mut gbest_idx, _) = pbest_f
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    let mut gbest = pbest[gbest_idx].clone();
    let mut gbest_f = pbest_f[gbest_idx];
    let mut history = vec![gbest_f];

    for _iter in 0..opts.iterations {
        // Update velocities and positions (sequential RNG for determinism).
        for p in 0..opts.particles {
            for d in 0..dim {
                let r1: f64 = rng.random_range(0.0..1.0);
                let r2: f64 = rng.random_range(0.0..1.0);
                vel[p][d] = opts.inertia * vel[p][d]
                    + opts.c1 * r1 * (pbest[p][d] - pos[p][d])
                    + opts.c2 * r2 * (gbest[d] - pos[p][d]);
                pos[p][d] = (pos[p][d] + vel[p][d]).clamp(bounds[d].0, bounds[d].1);
            }
        }
        // The "single tightly-connected MLEs ... synchronized in a loose
        // manner at each iteration": all particle evaluations run
        // independently, then the global best is reduced.
        fvals = if opts.parallel {
            pos.par_iter().map(|x| eval(x)).collect()
        } else {
            pos.iter().map(|x| eval(x)).collect()
        };
        evals += opts.particles;
        for p in 0..opts.particles {
            if fvals[p] < pbest_f[p] {
                pbest_f[p] = fvals[p];
                pbest[p] = pos[p].clone();
            }
        }
        let (idx, &best) = pbest_f
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        if best < gbest_f {
            gbest_f = best;
            gbest_idx = idx;
            gbest = pbest[gbest_idx].clone();
        }
        history.push(gbest_f);
    }

    PsoResult {
        x: gbest,
        f: gbest_f,
        evals,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere() {
        let bounds = vec![(-5.0, 5.0); 3];
        let r = particle_swarm(
            |x| x.iter().map(|v| v * v).sum(),
            &bounds,
            &PsoOptions {
                iterations: 120,
                ..Default::default()
            },
        );
        assert!(r.f < 1e-3, "f = {}", r.f);
        for xi in &r.x {
            assert!(xi.abs() < 0.1);
        }
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let bounds = vec![(-2.0, 2.0); 2];
        let r = particle_swarm(
            |x| (x[0] - 1.0).powi(2) + 10.0 * (x[1] + 0.5).powi(2),
            &bounds,
            &PsoOptions::default(),
        );
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let bounds = vec![(-1.0, 1.0); 2];
        let obj = |x: &[f64]| (x[0] * x[0] + x[1] * x[1] - 0.3f64).abs();
        let a = particle_swarm(
            obj,
            &bounds,
            &PsoOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let b = particle_swarm(
            obj,
            &bounds,
            &PsoOptions {
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(a.x, b.x);
        assert_eq!(a.f, b.f);
    }

    #[test]
    fn parallel_matches_sequential_given_same_seed() {
        // Objective is pure, so parallel evaluation must not change the
        // trajectory (RNG draws happen sequentially either way).
        let bounds = vec![(-3.0, 3.0); 2];
        let obj = |x: &[f64]| (x[0] - 0.7).powi(2) + (x[1] - 0.2).powi(2);
        let seq = particle_swarm(
            obj,
            &bounds,
            &PsoOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let par = particle_swarm(
            obj,
            &bounds,
            &PsoOptions {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(seq.x, par.x);
    }

    #[test]
    fn stays_within_bounds() {
        let bounds = vec![(0.5, 1.5), (-0.1, 0.1)];
        let r = particle_swarm(|x| -x[0] - x[1], &bounds, &PsoOptions::default());
        assert!(r.x[0] <= 1.5 + 1e-12 && r.x[0] >= 0.5 - 1e-12);
        assert!(r.x[1] <= 0.1 + 1e-12 && r.x[1] >= -0.1 - 1e-12);
        // Optimum is the upper corner.
        assert!((r.x[0] - 1.5).abs() < 1e-6 && (r.x[1] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn infinite_regions_are_escaped() {
        let bounds = vec![(-4.0, 4.0); 2];
        let r = particle_swarm(
            |x| {
                if x[0] < -1.0 {
                    f64::INFINITY
                } else {
                    (x[0] - 2.0).powi(2) + x[1] * x[1]
                }
            },
            &bounds,
            &PsoOptions {
                iterations: 80,
                ..Default::default()
            },
        );
        assert!(r.f < 1e-2, "f = {}", r.f);
    }
}

//! Nelder–Mead downhill simplex (minimization).
//!
//! Standard reflection/expansion/contraction/shrink with the adaptive
//! coefficients of Gao & Han for higher dimensions. Used on the *negative*
//! log-likelihood in unconstrained (transformed) coordinates.

/// Options for the simplex search.
#[derive(Clone, Copy, Debug)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Stop when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 500,
            f_tol: 1e-7,
            initial_step: 0.5,
        }
    }
}

/// Search outcome.
#[derive(Clone, Debug)]
pub struct NelderMeadResult {
    pub x: Vec<f64>,
    pub f: f64,
    pub evals: usize,
    pub converged: bool,
}

/// Minimize `f` starting from `x0`.
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> NelderMeadResult {
    let n = x0.len();
    assert!(n >= 1);
    // Adaptive coefficients (Gao & Han 2012).
    let nf = n as f64;
    let alpha = 1.0;
    let beta = 1.0 + 2.0 / nf;
    let gamma = 0.75 - 1.0 / (2.0 * nf);
    let delta = 1.0 - 1.0 / nf;

    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initial simplex: x0 plus per-coordinate steps.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut xi = x0.to_vec();
        xi[i] += opts.initial_step;
        let fi = eval(&xi, &mut evals);
        simplex.push((xi, fi));
    }

    let mut converged = false;
    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < opts.f_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in simplex.iter().take(n) {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / nf;
            }
        }
        let worst = simplex[n].clone();
        let point = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + t * (c - w))
                .collect()
        };

        // Reflect.
        let xr = point(alpha);
        let fr = eval(&xr, &mut evals);
        if fr < simplex[0].1 {
            // Expand.
            let xe = point(beta);
            let fe = eval(&xe, &mut evals);
            simplex[n] = if fe < fr { (xe, fe) } else { (xr, fr) };
            continue;
        }
        if fr < simplex[n - 1].1 {
            simplex[n] = (xr, fr);
            continue;
        }
        // Contract (outside if the reflection improved on the worst).
        let (xc, fc) = if fr < worst.1 {
            let xc = point(gamma);
            let fc = eval(&xc, &mut evals);
            (xc, fc)
        } else {
            let xc = point(-gamma);
            let fc = eval(&xc, &mut evals);
            (xc, fc)
        };
        if fc < worst.1.min(fr) {
            simplex[n] = (xc, fc);
            continue;
        }
        // Shrink toward the best.
        let best = simplex[0].0.clone();
        for item in simplex.iter_mut().skip(1) {
            let xnew: Vec<f64> = best
                .iter()
                .zip(&item.0)
                .map(|(b, x)| b + delta * (x - b))
                .collect();
            let fnew = eval(&xnew, &mut evals);
            *item = (xnew, fnew);
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    NelderMeadResult {
        x: simplex[0].0.clone(),
        f: simplex[0].1,
        evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &NelderMeadOptions::default(),
        );
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let opts = NelderMeadOptions {
            max_evals: 4000,
            f_tol: 1e-12,
            initial_step: 0.5,
        };
        let r = nelder_mead(
            |x| {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                a * a + 100.0 * b * b
            },
            &[-1.2, 1.0],
            &opts,
        );
        assert!((r.x[0] - 1.0).abs() < 1e-2, "{:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn handles_nan_objective_as_infinite() {
        // A hole in the domain must not poison the search.
        let r = nelder_mead(
            |x| {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    (x[0] - 2.0).powi(2)
                }
            },
            &[1.0],
            &NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0usize;
        let opts = NelderMeadOptions {
            max_evals: 50,
            f_tol: 0.0,
            initial_step: 1.0,
        };
        let _ = nelder_mead(
            |x| {
                count += 1;
                x.iter().map(|v| v * v).sum::<f64>()
            },
            &[5.0, 5.0, 5.0],
            &opts,
        );
        assert!(count <= 50 + 4, "count {count}"); // small overshoot from shrink loop
    }

    #[test]
    fn one_dimensional_case() {
        let r = nelder_mead(
            |x| (x[0] - 0.5).abs(),
            &[10.0],
            &NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 0.5).abs() < 1e-3);
    }
}

//! Derivative-free optimizers for the MLE.
//!
//! The log-likelihood surface is smooth but every evaluation costs a full
//! Cholesky, so the paper's toolchain uses derivative-free methods:
//! Nelder–Mead for single-fit pipelines and particle-swarm optimization
//! (PSO) when weak-scaling the training across independent likelihood
//! evaluations (§VI-D).

pub mod neldermead;
pub mod pso;
pub mod transform;

//! Model families: the parameter-vector ↔ covariance-kernel mapping.

use crate::optimizer::transform::ParamTransform;
use xgs_covariance::{CovarianceKernel, GneitingSpaceTime, Matern, MaternParams, SpaceTimeParams};

/// Which covariance model is being fitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelFamily {
    /// 2D space, Matérn: `θ = (σ², a, ν)` (paper Table I / Fig. 6).
    MaternSpace,
    /// 2D space × time, Gneiting: `θ = (σ², a_s, ν, a_t, α, β)`
    /// (paper Table II / Fig. 11).
    GneitingSpaceTime,
}

impl ModelFamily {
    pub fn n_params(self) -> usize {
        match self {
            ModelFamily::MaternSpace => 3,
            ModelFamily::GneitingSpaceTime => 6,
        }
    }

    /// Human-readable parameter names, in vector order (matching the
    /// paper's table headers).
    pub fn param_names(self) -> &'static [&'static str] {
        match self {
            ModelFamily::MaternSpace => &["variance", "range", "smoothness"],
            ModelFamily::GneitingSpaceTime => &[
                "variance",
                "range-space",
                "smoothness-space",
                "range-time",
                "smoothness-time",
                "nonsep-param",
            ],
        }
    }

    /// Per-parameter transforms to unconstrained optimizer space.
    pub fn transforms(self) -> Vec<ParamTransform> {
        match self {
            ModelFamily::MaternSpace => vec![
                ParamTransform::LogPositive,
                ParamTransform::LogPositive,
                ParamTransform::LogPositive,
            ],
            ModelFamily::GneitingSpaceTime => vec![
                ParamTransform::LogPositive,
                ParamTransform::LogPositive,
                ParamTransform::LogPositive,
                ParamTransform::LogPositive,
                // α ∈ (0,1] and β ∈ [0,1] live on the unit interval.
                ParamTransform::LogitUnit,
                ParamTransform::LogitUnit,
            ],
        }
    }

    /// Build the kernel for a (natural-space) parameter vector.
    pub fn kernel(self, theta: &[f64]) -> Box<dyn CovarianceKernel> {
        assert_eq!(theta.len(), self.n_params());
        match self {
            ModelFamily::MaternSpace => {
                Box::new(Matern::new(MaternParams::new(theta[0], theta[1], theta[2])))
            }
            ModelFamily::GneitingSpaceTime => Box::new(GneitingSpaceTime::new(
                SpaceTimeParams::new(theta[0], theta[1], theta[2], theta[3], theta[4], theta[5]),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgs_covariance::Location;

    #[test]
    fn matern_kernel_roundtrip() {
        let k = ModelFamily::MaternSpace.kernel(&[1.5, 0.2, 0.7]);
        assert_eq!(k.n_params(), 3);
        assert!((k.variance() - 1.5).abs() < 1e-15);
        let a = Location::new(0.1, 0.1);
        let b = Location::new(0.3, 0.4);
        assert!(k.cov(&a, &b) > 0.0 && k.cov(&a, &b) < 1.5);
    }

    #[test]
    fn spacetime_kernel_roundtrip() {
        let k = ModelFamily::GneitingSpaceTime.kernel(&[1.0, 0.5, 1.0, 0.3, 0.9, 0.2]);
        assert_eq!(k.n_params(), 6);
        let a = Location::new_st(0.1, 0.1, 1.0);
        let b = Location::new_st(0.2, 0.2, 3.0);
        assert!(k.cov(&a, &b) > 0.0);
    }

    #[test]
    fn names_align_with_dimensions() {
        for fam in [ModelFamily::MaternSpace, ModelFamily::GneitingSpaceTime] {
            assert_eq!(fam.param_names().len(), fam.n_params());
            assert_eq!(fam.transforms().len(), fam.n_params());
        }
    }
}

//! Conditional simulation: Gaussian-field ensembles consistent with the
//! observed data.
//!
//! Kriging (Eq. 4) gives the conditional *mean*; many downstream
//! environmental analyses (flood risk, exceedance probabilities) need
//! *samples* from `Z_m | Z_n`. The classical residual-kriging construction
//! reuses exactly the machinery already built:
//!
//! 1. draw an unconditional field `(W_n, W_m)` jointly at the training and
//!    target sites (exact Cholesky sampler);
//! 2. krige `W_m` from `W_n` and form the residual `W_m − Ŵ_m`;
//! 3. the conditional draw is `Ẑ_m + (W_m − Ŵ_m)` — correct because the
//!    kriging residual is independent of the data and carries the
//!    conditional covariance `Σ_mm − Σ_mn Σ_nn^{-1} Σ_nm`.
//!
//! All solves run through the adaptive MP+TLR factor, so the ensembles
//! inherit the paper's approximation guarantees.

use crate::predict::{query_batch, solve_weights};
use crate::synthetic::simulate_field;
use xgs_cholesky::TiledFactor;
use xgs_covariance::{CovarianceKernel, Location};

/// Draw `n_draws` conditional realizations at `test_locs`.
///
/// `factor` must be the Cholesky factor of the training covariance under
/// `kernel` (the object [`crate::likelihood::log_likelihood`] returns).
/// Each draw costs one unconditional joint simulation plus one kriging
/// pass. Returns one `Vec<f64>` per draw.
///
/// # Panics
///
/// The joint `[train, test]` covariance must be SPD: a target site that
/// exactly coincides with a training site (or another target) makes it
/// singular and the sampler panics. Perturb duplicated sites or drop them
/// (their conditional value is the observation itself).
pub fn conditional_simulation(
    kernel: &dyn CovarianceKernel,
    train_locs: &[Location],
    z: &[f64],
    factor: &TiledFactor,
    test_locs: &[Location],
    n_draws: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    let n = train_locs.len();
    assert_eq!(z.len(), n);
    assert_eq!(factor.n(), n);

    // Conditional mean once, through the plan/query split (weights solve +
    // batch query) — the same code path the prediction service batches.
    let wz = solve_weights(factor, z);
    let mean = query_batch(kernel, train_locs, &wz, factor, test_locs, false).mean;

    // Joint site list for the unconditional draws.
    let mut joint: Vec<Location> = Vec::with_capacity(n + test_locs.len());
    joint.extend_from_slice(train_locs);
    joint.extend_from_slice(test_locs);

    (0..n_draws)
        .map(|d| {
            let w = simulate_field(kernel, &joint, seed.wrapping_add(d as u64));
            let (w_train, w_test) = w.split_at(n);
            let wd = solve_weights(factor, w_train);
            let w_hat = query_batch(kernel, train_locs, &wd, factor, test_locs, false).mean;
            mean.iter()
                .zip(w_test)
                .zip(&w_hat)
                .map(|((m, wt), wh)| m + (wt - wh))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::log_likelihood;
    use crate::predict::krige;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, TlrConfig, Variant};

    fn setup() -> (
        Matern,
        Vec<Location>,
        Vec<f64>,
        Vec<Location>,
        std::sync::Arc<TiledFactor>,
    ) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut locs = jittered_grid(280, &mut rng);
        morton_order(&mut locs);
        let kernel = Matern::new(MaternParams::new(1.0, 0.2, 1.5));
        let z = simulate_field(&kernel, &locs, 10);
        let (train, test) = locs.split_at(240);
        let cfg = TlrConfig::new(Variant::DenseF64, 60);
        let rep = log_likelihood(
            &kernel,
            train,
            &z[..240],
            &cfg,
            &FlopKernelModel::default(),
            1,
        )
        .unwrap();
        (
            kernel,
            train.to_vec(),
            z[..240].to_vec(),
            test.to_vec(),
            rep.factor,
        )
    }

    #[test]
    fn draws_pin_down_near_training_sites() {
        let (kernel, train, z, _test, factor) = setup();
        // Conditioning immediately next to observed sites: conditional
        // variance is tiny there, so every draw must track the data.
        // (Exactly coincident probes would make the joint sampling
        // covariance singular — the smooth-field limit is tested via
        // proximity instead.)
        let probes: Vec<Location> = train[..12]
            .iter()
            .map(|l| Location::new(l.x + 2e-3, l.y))
            .collect();
        let draws = conditional_simulation(&kernel, &train, &z, &factor, &probes, 3, 1000);
        for draw in &draws {
            for (d, t) in draw.iter().zip(&z[..12]) {
                assert!((d - t).abs() < 0.05, "{d} vs {t}");
            }
        }
    }

    #[test]
    fn ensemble_mean_approaches_kriging_mean() {
        let (kernel, train, z, test, factor) = setup();
        let n_draws = 60;
        let draws = conditional_simulation(&kernel, &train, &z, &factor, &test, n_draws, 7);
        let kr = krige(&kernel, &train, &z, &factor, &test, true);
        let u = kr.uncertainty.unwrap();
        for j in 0..test.len() {
            let m: f64 = draws.iter().map(|d| d[j]).sum::<f64>() / n_draws as f64;
            // Monte Carlo error ~ sqrt(var/n).
            let mc = (u[j] / n_draws as f64).sqrt();
            assert!(
                (m - kr.mean[j]).abs() < 5.0 * mc + 1e-9,
                "site {j}: ensemble {m} vs kriging {}",
                kr.mean[j]
            );
        }
    }

    #[test]
    fn ensemble_variance_matches_prediction_uncertainty() {
        let (kernel, train, z, test, factor) = setup();
        let n_draws = 120;
        let draws = conditional_simulation(&kernel, &train, &z, &factor, &test, n_draws, 21);
        let kr = krige(&kernel, &train, &z, &factor, &test, true);
        let u = kr.uncertainty.unwrap();
        let mut checked = 0;
        for j in 0..test.len() {
            if u[j] < 1e-4 {
                continue; // too well-determined to test variance ratio
            }
            let m: f64 = draws.iter().map(|d| d[j]).sum::<f64>() / n_draws as f64;
            let v: f64 =
                draws.iter().map(|d| (d[j] - m) * (d[j] - m)).sum::<f64>() / (n_draws - 1) as f64;
            let ratio = v / u[j];
            assert!(
                (0.4..2.5).contains(&ratio),
                "site {j}: sample var {v} vs predicted {}",
                u[j]
            );
            checked += 1;
        }
        assert!(checked > 5, "not enough testable sites");
    }

    #[test]
    fn draws_differ_across_seeds_but_reproduce_per_seed() {
        let (kernel, train, z, test, factor) = setup();
        let a = conditional_simulation(&kernel, &train, &z, &factor, &test, 2, 5);
        let b = conditional_simulation(&kernel, &train, &z, &factor, &test, 2, 5);
        let c = conditional_simulation(&kernel, &train, &z, &factor, &test, 2, 6);
        assert_eq!(a, b);
        assert_ne!(a[0], c[0]);
        assert_ne!(a[0], a[1]);
    }
}

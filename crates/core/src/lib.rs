//! The paper's primary contribution, as a library: ExaGeoStat-style
//! geostatistical **modeling** (maximum likelihood estimation of Matérn /
//! Gneiting space–time parameters through the adaptive mixed-precision +
//! tile-low-rank Cholesky) and **prediction** (kriging with uncertainty)
//! for large spatial and spatio-temporal datasets.
//!
//! The pipeline mirrors the paper end to end:
//!
//! 1. [`synthetic`] simulates Gaussian random fields (`Z = L ε`) at
//!    irregular locations — the data generator behind Fig. 6's boxplots and
//!    our stand-ins for the soil-moisture / evapotranspiration datasets;
//! 2. [`likelihood`] evaluates Eq. (1) via one tile Cholesky + solve per
//!    objective call, in any of the three solver variants;
//! 3. [`optimizer`] maximizes it (Nelder–Mead, or the particle-swarm
//!    scheme the paper uses for embarrassingly-parallel weak scaling);
//! 4. [`predict`] computes Eq. (4)/(5): kriging means, prediction
//!    uncertainty, and MSPE against held-out truth;
//! 5. [`pipeline`] wires those into the Table I / Table II experiment
//!    shape: train on one partition, predict the held-out one, compare
//!    variants;
//! 6. [`bayes`] implements the paper's §VIII extension: Bayesian UQ over
//!    the covariance parameters by MCMC through the same adaptive solver.

pub mod bayes;
pub mod conditional;
pub mod fisher;
pub mod likelihood;
pub mod mle;
pub mod model;
pub mod optimizer;
pub mod pipeline;
pub mod predict;
pub mod synthetic;

pub use bayes::{posterior_sample, McmcOptions, McmcResult};
pub use conditional::conditional_simulation;
pub use fisher::{fisher_information, FisherReport};
pub use likelihood::{log_likelihood, log_likelihood_engine, FactorEngine, LikelihoodReport};
pub use mle::{fit, FitOptions, FitResult};
pub use model::ModelFamily;
pub use optimizer::neldermead::{nelder_mead, NelderMeadOptions, NelderMeadResult};
pub use optimizer::pso::{particle_swarm, PsoOptions, PsoResult};
pub use optimizer::transform::ParamTransform;
pub use pipeline::{run_pipeline, PipelineConfig, PipelineReport};
pub use predict::{krige, mspe, solve_weights, PredictionPlan, PredictionResult};
pub use synthetic::{simulate_field, simulate_fields};

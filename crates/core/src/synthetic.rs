//! Synthetic Gaussian random field simulation.
//!
//! `Z = L ε` with `Σ = L Lᵀ` and `ε ~ N(0, I)` — the exact sampler
//! ExaGeoStat uses for its synthetic datasets (paper §VII-A: "These sets of
//! parameters combinations have been used to generate synthetic datasets
//! using the ExaGeoStat software"). Exact dense Cholesky is fine at the
//! scales we materialize (the sampler is not the bottleneck under study).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xgs_covariance::{covariance_matrix, CovarianceKernel, Location};
use xgs_linalg::cholesky_in_place;

/// Draw one field realization at `locs` under `kernel`, deterministic in
/// `seed`.
#[allow(clippy::needless_range_loop)]
pub fn simulate_field(kernel: &dyn CovarianceKernel, locs: &[Location], seed: u64) -> Vec<f64> {
    let n = locs.len();
    let mut c = covariance_matrix(kernel, locs);
    cholesky_in_place(&mut c).expect("covariance must be SPD for simulation");
    let mut rng = StdRng::seed_from_u64(seed);
    let eps: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
    // z = L * eps (lower triangular product).
    let mut z = vec![0.0; n];
    for j in 0..n {
        let ej = eps[j];
        if ej == 0.0 {
            continue;
        }
        let col = c.col(j);
        for (i, zi) in z.iter_mut().enumerate().skip(j) {
            *zi += col[i] * ej;
        }
    }
    z
}

/// `reps` independent realizations (seeds `seed..seed+reps`).
#[allow(clippy::needless_range_loop)]
pub fn simulate_fields(
    kernel: &dyn CovarianceKernel,
    locs: &[Location],
    seed: u64,
    reps: usize,
) -> Vec<Vec<f64>> {
    // Factor once, sample many.
    let n = locs.len();
    let mut c = covariance_matrix(kernel, locs);
    cholesky_in_place(&mut c).expect("covariance must be SPD for simulation");
    (0..reps)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(seed + r as u64);
            let eps: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
            let mut z = vec![0.0; n];
            for j in 0..n {
                let ej = eps[j];
                if ej == 0.0 {
                    continue;
                }
                let col = c.col(j);
                for (i, zi) in z.iter_mut().enumerate().skip(j) {
                    *zi += col[i] * ej;
                }
            }
            z
        })
        .collect()
}

/// Box–Muller standard normal.
pub fn standard_normal<R: rand::Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random_range(0.0..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        if u1 > 1e-300 {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};

    fn locs(n: usize) -> Vec<Location> {
        let mut rng = StdRng::seed_from_u64(31);
        let mut l = jittered_grid(n, &mut rng);
        morton_order(&mut l);
        l
    }

    #[test]
    fn deterministic_in_seed() {
        let kernel = Matern::new(MaternParams::new(1.0, 0.1, 0.5));
        let ls = locs(100);
        let a = simulate_field(&kernel, &ls, 7);
        let b = simulate_field(&kernel, &ls, 7);
        let c = simulate_field(&kernel, &ls, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn marginal_variance_is_sigma2() {
        // Average sample variance across many reps approaches sigma^2.
        let sigma2 = 2.0;
        let kernel = Matern::new(MaternParams::new(sigma2, 0.05, 0.5));
        let ls = locs(150);
        let fields = simulate_fields(&kernel, &ls, 1, 60);
        let mut total = 0.0;
        let mut count = 0usize;
        for f in &fields {
            for &v in f {
                total += v * v;
                count += 1;
            }
        }
        let var = total / count as f64;
        assert!(
            (var - sigma2).abs() < 0.25 * sigma2,
            "sample variance {var} vs {sigma2}"
        );
    }

    #[test]
    fn nearby_points_are_correlated() {
        // With a long range the field must be smooth: neighbour differences
        // much smaller than the marginal spread.
        let kernel = Matern::new(MaternParams::new(1.0, 0.5, 1.5));
        let ls = locs(200);
        let fields = simulate_fields(&kernel, &ls, 3, 20);
        let mut diff = 0.0;
        let mut marg = 0.0;
        for f in &fields {
            for w in f.windows(2) {
                diff += (w[1] - w[0]).powi(2);
            }
            for &v in f {
                marg += v * v;
            }
        }
        // Morton-adjacent points are spatially adjacent.
        assert!(diff / marg < 0.2, "field not smooth: ratio {}", diff / marg);
    }

    #[test]
    fn fields_are_independent_across_reps() {
        let kernel = Matern::new(MaternParams::new(1.0, 0.1, 0.5));
        let ls = locs(120);
        let fields = simulate_fields(&kernel, &ls, 11, 2);
        // Cross-correlation of two independent reps should be small.
        let n = ls.len() as f64;
        let dot: f64 = fields[0].iter().zip(&fields[1]).map(|(a, b)| a * b).sum();
        let n0: f64 = fields[0].iter().map(|x| x * x).sum::<f64>().sqrt();
        let n1: f64 = fields[1].iter().map(|x| x * x).sum::<f64>().sqrt();
        let corr = dot / (n0 * n1);
        assert!(corr.abs() < 3.5 / n.sqrt() * 3.0, "cross-corr {corr}");
    }
}

//! Bayesian uncertainty quantification over the covariance parameters —
//! the paper's §VIII extension ("In uncertainty quantified optimization ...
//! the inverse of the covariance again plays a central role. The Bayesian
//! UQ application and its solution can follow naturally upon our work").
//!
//! Adaptive random-walk Metropolis over the transformed parameter space:
//! every posterior evaluation is one tile Cholesky through the same
//! adaptive MP+TLR solver the MLE uses, so the approximation machinery
//! carries over unchanged. Priors are flat in the transformed coordinates
//! (log / logit), i.e. the standard weakly-informative reference choice
//! for positive / unit-interval parameters.

use crate::likelihood::log_likelihood;
use crate::model::ModelFamily;
use crate::optimizer::transform::{forward_all, inverse_all};
use crate::synthetic::standard_normal;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xgs_covariance::Location;
use xgs_tile::{KernelTimeModel, TlrConfig};

/// MCMC configuration.
#[derive(Clone, Debug)]
pub struct McmcOptions {
    /// Total iterations (including burn-in).
    pub iterations: usize,
    /// Burn-in samples discarded from the summaries.
    pub burn_in: usize,
    /// Initial random-walk step (transformed coordinates).
    pub step: f64,
    /// Adapt the step every this many iterations toward ~35% acceptance
    /// (0 disables adaptation).
    pub adapt_every: usize,
    pub seed: u64,
    /// Worker threads per likelihood evaluation.
    pub workers: usize,
}

impl Default for McmcOptions {
    fn default() -> Self {
        McmcOptions {
            iterations: 500,
            burn_in: 100,
            step: 0.12,
            adapt_every: 50,
            seed: 0xBA7E5,
            workers: 1,
        }
    }
}

/// Posterior sampling output.
#[derive(Clone, Debug)]
pub struct McmcResult {
    /// Post-burn-in samples in natural parameter space (row per draw).
    pub samples: Vec<Vec<f64>>,
    /// Acceptance rate over the whole run.
    pub acceptance: f64,
    /// Per-parameter posterior means.
    pub mean: Vec<f64>,
    /// Per-parameter central 90% credible intervals `(q05, q95)`.
    pub ci90: Vec<(f64, f64)>,
    /// Log-likelihood trace (all iterations).
    pub llh_trace: Vec<f64>,
}

/// Run adaptive random-walk Metropolis for the model's parameters.
///
/// `start` is a natural-space initialization (the MLE is the classical
/// choice). Returns an error message when the chain cannot initialize
/// (non-SPD covariance at `start`).
pub fn posterior_sample(
    family: ModelFamily,
    locs: &[Location],
    z: &[f64],
    cfg: &TlrConfig,
    model: &dyn KernelTimeModel,
    start: &[f64],
    opts: &McmcOptions,
) -> Result<McmcResult, String> {
    assert_eq!(start.len(), family.n_params());
    let transforms = family.transforms();
    let dim = start.len();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let loglik = |y: &[f64]| -> f64 {
        let theta = inverse_all(&transforms, y);
        let kernel = family.kernel(&theta);
        match log_likelihood(kernel.as_ref(), locs, z, cfg, model, opts.workers) {
            Ok(r) => r.llh,
            Err(_) => f64::NEG_INFINITY,
        }
    };

    let mut current = forward_all(&transforms, start);
    let mut current_ll = loglik(&current);
    if !current_ll.is_finite() {
        return Err("initial parameters give a non-positive-definite covariance".to_string());
    }

    let mut step = opts.step;
    let mut accepted = 0usize;
    let mut window_accepted = 0usize;
    let mut samples = Vec::with_capacity(opts.iterations.saturating_sub(opts.burn_in));
    let mut llh_trace = Vec::with_capacity(opts.iterations);

    for it in 0..opts.iterations {
        let proposal: Vec<f64> = current
            .iter()
            .map(|&c| c + step * standard_normal(&mut rng))
            .collect();
        let prop_ll = loglik(&proposal);
        let accept = prop_ll - current_ll >= rng.random_range(0.0f64..1.0).ln();
        if accept {
            current = proposal;
            current_ll = prop_ll;
            accepted += 1;
            window_accepted += 1;
        }
        llh_trace.push(current_ll);
        if it >= opts.burn_in {
            samples.push(inverse_all(&transforms, &current));
        }
        // Robbins–Monro-ish step adaptation toward ~0.35 acceptance,
        // burn-in only (keeps the post-burn-in chain a valid MH kernel).
        if opts.adapt_every > 0 && it < opts.burn_in && (it + 1) % opts.adapt_every == 0 {
            let rate = window_accepted as f64 / opts.adapt_every as f64;
            step *= (0.6 + rate).clamp(0.3, 1.6);
            window_accepted = 0;
        }
    }

    // Summaries.
    let n = samples.len().max(1);
    let mut mean = vec![0.0; dim];
    for s in &samples {
        for (m, v) in mean.iter_mut().zip(s) {
            *m += v / n as f64;
        }
    }
    let mut ci90 = Vec::with_capacity(dim);
    for d in 0..dim {
        let mut col: Vec<f64> = samples.iter().map(|s| s[d]).collect();
        col.sort_by(|a, b| a.total_cmp(b));
        let q = |f: f64| col[((f * (col.len() - 1) as f64) as usize).min(col.len() - 1)];
        ci90.push((q(0.05), q(0.95)));
    }

    Ok(McmcResult {
        samples,
        acceptance: accepted as f64 / opts.iterations as f64,
        mean,
        ci90,
        llh_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::simulate_field;
    use rand::rngs::StdRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, Variant};

    fn data(n: usize) -> (Vec<Location>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        let z = simulate_field(&Matern::new(MaternParams::new(1.0, 0.1, 0.5)), &locs, 77);
        (locs, z)
    }

    #[test]
    fn chain_runs_and_brackets_truth() {
        let (locs, z) = data(250);
        let cfg = TlrConfig::new(Variant::MpDense, 50);
        let opts = McmcOptions {
            iterations: 240,
            burn_in: 60,
            ..Default::default()
        };
        let r = posterior_sample(
            ModelFamily::MaternSpace,
            &locs,
            &z,
            &cfg,
            &FlopKernelModel::default(),
            &[1.0, 0.1, 0.5],
            &opts,
        )
        .unwrap();
        assert_eq!(r.samples.len(), 180);
        assert!(
            r.acceptance > 0.05 && r.acceptance < 0.95,
            "acc {}",
            r.acceptance
        );
        // The variance posterior should bracket a plausible neighbourhood
        // of the truth.
        let (lo, hi) = r.ci90[0];
        assert!(lo < 1.6 && hi > 0.5, "variance CI ({lo}, {hi})");
        assert!(lo < r.mean[0] && r.mean[0] < hi);
        // All draws respect positivity by construction.
        assert!(r.samples.iter().all(|s| s.iter().all(|&v| v > 0.0)));
    }

    #[test]
    fn deterministic_under_seed() {
        let (locs, z) = data(150);
        let cfg = TlrConfig::new(Variant::DenseF64, 50);
        let opts = McmcOptions {
            iterations: 60,
            burn_in: 20,
            ..Default::default()
        };
        let run = || {
            posterior_sample(
                ModelFamily::MaternSpace,
                &locs,
                &z,
                &cfg,
                &FlopKernelModel::default(),
                &[1.0, 0.1, 0.5],
                &opts,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.acceptance, b.acceptance);
    }

    #[test]
    fn bad_start_is_an_error_not_a_panic() {
        // Coincident locations make the covariance exactly singular.
        let (mut locs, mut z) = data(80);
        let dup = locs.clone();
        locs.extend(dup);
        let zz = z.clone();
        z.extend(zz);
        let cfg = TlrConfig::new(Variant::DenseF64, 60);
        let res = posterior_sample(
            ModelFamily::MaternSpace,
            &locs,
            &z,
            &cfg,
            &FlopKernelModel::default(),
            &[1.0, 0.1, 0.5],
            &McmcOptions {
                iterations: 10,
                burn_in: 2,
                ..Default::default()
            },
        );
        assert!(res.is_err());
    }

    #[test]
    fn llh_trace_is_recorded_per_iteration() {
        let (locs, z) = data(120);
        let cfg = TlrConfig::new(Variant::DenseF64, 60);
        let opts = McmcOptions {
            iterations: 30,
            burn_in: 10,
            ..Default::default()
        };
        let r = posterior_sample(
            ModelFamily::MaternSpace,
            &locs,
            &z,
            &cfg,
            &FlopKernelModel::default(),
            &[1.0, 0.1, 0.5],
            &opts,
        )
        .unwrap();
        assert_eq!(r.llh_trace.len(), 30);
        assert!(r.llh_trace.iter().all(|l| l.is_finite()));
    }
}

//! Kriging prediction with uncertainty (paper Eqs. 4 and 5).
//!
//! `Ẑ_m = Σ_mn Σ_nn^{-1} Z_n` and
//! `U_m = diag(Σ_mm − Σ_mn Σ_nn^{-1} Σ_nm)`,
//! reusing the tile Cholesky factor from the modeling phase. Cross
//! covariances `Σ_nm` are generated block-wise (never materializing the
//! full `n x m` matrix) and uncertainty uses one forward solve per block:
//! `U_j = σ² − ‖L^{-1} c_j‖²`.

use std::sync::Arc;
use xgs_cholesky::{solve_lower, solve_lower_transpose, TiledFactor};
use xgs_covariance::{cov_block, CovarianceKernel, Location};

/// Kriging output.
#[derive(Clone, Debug)]
pub struct PredictionResult {
    /// Predicted means at the test locations (Eq. 4).
    pub mean: Vec<f64>,
    /// Prediction variances (Eq. 5) when requested.
    pub uncertainty: Option<Vec<f64>>,
}

/// Kriging weights `w = Σ_nn^{-1} z` via the two triangular substitutions —
/// the data-dependent half of the prediction "plan".
pub fn solve_weights(factor: &TiledFactor, z: &[f64]) -> Vec<f64> {
    assert_eq!(factor.n(), z.len());
    let mut w = z.to_vec();
    solve_lower(factor, &mut w, 1);
    solve_lower_transpose(factor, &mut w, 1);
    w
}

/// The "query" half: cross-covariance assembly plus the multi-RHS solve for
/// one batch of prediction points against precomputed weights. Every point
/// is an independent column, so the output for a point does not depend on
/// which other points share its batch.
pub(crate) fn query_batch(
    kernel: &dyn CovarianceKernel,
    train_locs: &[Location],
    w: &[f64],
    factor: &TiledFactor,
    test_locs: &[Location],
    with_uncertainty: bool,
) -> PredictionResult {
    let n = train_locs.len();
    debug_assert_eq!(w.len(), n);
    let m = test_locs.len();
    let mut mean = vec![0.0; m];
    let mut unc = if with_uncertainty {
        Some(vec![0.0; m])
    } else {
        None
    };
    let sigma2 = kernel.variance();

    const BLOCK: usize = 64;
    let mut start = 0;
    while start < m {
        let end = (start + BLOCK).min(m);
        let block_locs = &test_locs[start..end];
        // C = Σ_n,block (n x b).
        let c = cov_block(kernel, train_locs, block_locs);
        // Means: C^T w.
        for (bj, mj) in mean[start..end].iter_mut().enumerate() {
            let col = c.col(bj);
            *mj = col.iter().zip(w).map(|(a, b)| a * b).sum();
        }
        if let Some(u) = &mut unc {
            // X = L^{-1} C; U_j = sigma^2 - ||X[:, j]||^2.
            let b = end - start;
            let mut x = c.into_vec();
            solve_lower(factor, &mut x, b);
            for (bj, uj) in u[start..end].iter_mut().enumerate() {
                let col = &x[bj * n..(bj + 1) * n];
                let reduction: f64 = col.iter().map(|v| v * v).sum();
                *uj = (sigma2 - reduction).max(0.0);
            }
        }
        start = end;
    }

    PredictionResult {
        mean,
        uncertainty: unc,
    }
}

/// A cached prediction plan: the factorized training covariance plus the
/// solved kriging weights, ready to answer point-batch queries without
/// re-touching the O(n²) modeling state ("fit once, serve forever").
///
/// Everything is held through [`Arc`] so the plan can be shared across the
/// serving threads of `xgs-server`; [`PredictionPlan::query`] takes `&self`
/// and is safe to call concurrently.
pub struct PredictionPlan {
    kernel: Arc<dyn CovarianceKernel>,
    train_locs: Arc<[Location]>,
    factor: Arc<TiledFactor>,
    w: Vec<f64>,
}

impl PredictionPlan {
    /// Build the plan: one pair of triangular solves for the weights; the
    /// factor itself must already be computed (e.g. by
    /// [`crate::likelihood::log_likelihood`]).
    pub fn new(
        kernel: Arc<dyn CovarianceKernel>,
        train_locs: Arc<[Location]>,
        z: &[f64],
        factor: Arc<TiledFactor>,
    ) -> PredictionPlan {
        let n = train_locs.len();
        assert_eq!(z.len(), n);
        assert_eq!(factor.n(), n);
        let w = solve_weights(&factor, z);
        PredictionPlan {
            kernel,
            train_locs,
            factor,
            w,
        }
    }

    /// Answer one batch of prediction points (Eq. 4, plus Eq. 5 when
    /// `with_uncertainty`). Identical floats to [`krige`] at the same
    /// points, regardless of how queries are grouped into batches.
    pub fn query(&self, test_locs: &[Location], with_uncertainty: bool) -> PredictionResult {
        query_batch(
            self.kernel.as_ref(),
            &self.train_locs,
            &self.w,
            &self.factor,
            test_locs,
            with_uncertainty,
        )
    }

    /// Query with externally supplied weights (same factor/locations) —
    /// the reuse hook for conditional simulation's per-draw residuals.
    pub fn query_with_weights(
        &self,
        w: &[f64],
        test_locs: &[Location],
        with_uncertainty: bool,
    ) -> PredictionResult {
        assert_eq!(w.len(), self.train_locs.len());
        query_batch(
            self.kernel.as_ref(),
            &self.train_locs,
            w,
            &self.factor,
            test_locs,
            with_uncertainty,
        )
    }

    pub fn n_train(&self) -> usize {
        self.train_locs.len()
    }

    pub fn kernel(&self) -> &Arc<dyn CovarianceKernel> {
        &self.kernel
    }

    pub fn train_locs(&self) -> &[Location] {
        &self.train_locs
    }

    pub fn factor(&self) -> &Arc<TiledFactor> {
        &self.factor
    }

    /// The cached kriging weights `Σ_nn^{-1} z`.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }
}

/// Predict at `test_locs` given training data `(train_locs, z)` and the
/// factorized training covariance. One-shot wrapper over the plan/query
/// split: [`solve_weights`] then the batch query.
pub fn krige(
    kernel: &dyn CovarianceKernel,
    train_locs: &[Location],
    z: &[f64],
    factor: &TiledFactor,
    test_locs: &[Location],
    with_uncertainty: bool,
) -> PredictionResult {
    let n = train_locs.len();
    assert_eq!(z.len(), n);
    assert_eq!(factor.n(), n);
    let w = solve_weights(factor, z);
    query_batch(kernel, train_locs, &w, factor, test_locs, with_uncertainty)
}

/// Mean squared prediction error against held-out truth (the paper's MSPE
/// column in Tables I and II).
pub fn mspe(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::simulate_field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, SymTileMatrix, TlrConfig, Variant};

    /// Simulate a joint field, split train/test, factor the training block.
    fn setup(
        n_train: usize,
        n_test: usize,
        params: MaternParams,
    ) -> (
        Matern,
        Vec<Location>,
        Vec<f64>,
        Vec<Location>,
        Vec<f64>,
        TiledFactor,
    ) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut all = jittered_grid(n_train + n_test, &mut rng);
        morton_order(&mut all);
        let kernel = Matern::new(params);
        let zall = simulate_field(&kernel, &all, 123);
        // Interleaved split keeps test points inside the training hull.
        let mut train_locs = Vec::new();
        let mut test_locs = Vec::new();
        let mut z_train = Vec::new();
        let mut z_test = Vec::new();
        let stride = (n_train + n_test) / n_test.max(1);
        for (i, (l, z)) in all.iter().zip(&zall).enumerate() {
            if test_locs.len() < n_test && i % stride == stride - 1 {
                test_locs.push(*l);
                z_test.push(*z);
            } else {
                train_locs.push(*l);
                z_train.push(*z);
            }
        }
        let cfg = TlrConfig::new(Variant::DenseF64, 64);
        let m = SymTileMatrix::generate(&kernel, &train_locs, cfg, &FlopKernelModel::default());
        let mut f = TiledFactor::from_matrix(m);
        f.factorize_seq().unwrap();
        (kernel, train_locs, z_train, test_locs, z_test, f)
    }

    #[test]
    fn prediction_beats_trivial_mean_predictor() {
        let (kernel, tr, ztr, te, zte, f) = setup(400, 50, MaternParams::new(1.0, 0.2, 1.5));
        let pred = krige(&kernel, &tr, &ztr, &f, &te, false);
        let err = mspe(&pred.mean, &zte);
        let trivial = mspe(&vec![0.0; zte.len()], &zte);
        assert!(
            err < 0.35 * trivial,
            "kriging MSPE {err} vs trivial {trivial}"
        );
    }

    #[test]
    fn exact_interpolation_at_training_points() {
        // Kriging reproduces the data at observed sites (no nugget).
        let (kernel, tr, ztr, _te, _zte, f) = setup(300, 30, MaternParams::new(1.0, 0.2, 1.5));
        let at_train = krige(&kernel, &tr, &ztr, &f, &tr[..20], false);
        for (p, t) in at_train.mean.iter().zip(&ztr[..20]) {
            assert!((p - t).abs() < 1e-6, "{p} vs {t}");
        }
    }

    #[test]
    fn uncertainty_positive_and_bounded_by_variance() {
        let (kernel, tr, ztr, te, _zte, f) = setup(350, 40, MaternParams::new(1.3, 0.15, 0.5));
        let pred = krige(&kernel, &tr, &ztr, &f, &te, true);
        let u = pred.uncertainty.unwrap();
        for &ui in &u {
            assert!((0.0..=1.3 + 1e-9).contains(&ui), "uncertainty {ui}");
        }
        // At a training point the uncertainty collapses to ~0.
        let at_train = krige(&kernel, &tr, &ztr, &f, &tr[..5], true);
        for &ui in at_train.uncertainty.as_ref().unwrap() {
            assert!(ui < 1e-6, "training-point uncertainty {ui}");
        }
    }

    #[test]
    fn uncertainty_grows_with_distance_from_data() {
        let (kernel, tr, ztr, _te, _zte, f) = setup(300, 30, MaternParams::new(1.0, 0.1, 0.5));
        // A point far outside the unit square vs one in the middle.
        let near = Location::new(0.5, 0.5);
        let far = Location::new(5.0, 5.0);
        let pred = krige(&kernel, &tr, &ztr, &f, &[near, far], true);
        let u = pred.uncertainty.unwrap();
        assert!(u[1] > u[0], "far {} should exceed near {}", u[1], u[0]);
        // Far point: essentially no information -> variance ~ sigma^2, mean ~ 0.
        assert!((u[1] - 1.0).abs() < 1e-3);
        assert!(pred.mean[1].abs() < 1e-3);
    }

    #[test]
    fn plan_query_matches_one_shot_krige_bitwise() {
        let (kernel, tr, ztr, te, _zte, f) = setup(300, 40, MaternParams::new(1.1, 0.15, 1.0));
        let one_shot = krige(&kernel, &tr, &ztr, &f, &te, true);
        let plan = PredictionPlan::new(Arc::new(kernel), Arc::from(tr.clone()), &ztr, Arc::new(f));
        assert_eq!(plan.n_train(), tr.len());
        let q = plan.query(&te, true);
        for (a, b) in q.mean.iter().zip(&one_shot.mean) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in q
            .uncertainty
            .as_ref()
            .unwrap()
            .iter()
            .zip(one_shot.uncertainty.as_ref().unwrap())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batched_query_independent_of_batch_composition() {
        // A point's prediction must not depend on which other points share
        // its batch — the correctness bedrock of the server's dynamic
        // request coalescing. Compare one big batch against point-by-point
        // queries, bitwise.
        let (kernel, tr, ztr, te, _zte, f) = setup(280, 36, MaternParams::new(0.9, 0.12, 0.5));
        let plan = PredictionPlan::new(Arc::new(kernel), Arc::from(tr), &ztr, Arc::new(f));
        let batched = plan.query(&te, true);
        for (j, loc) in te.iter().enumerate() {
            let single = plan.query(std::slice::from_ref(loc), true);
            assert_eq!(single.mean[0].to_bits(), batched.mean[j].to_bits());
            assert_eq!(
                single.uncertainty.as_ref().unwrap()[0].to_bits(),
                batched.uncertainty.as_ref().unwrap()[j].to_bits()
            );
        }
    }

    #[test]
    fn query_with_weights_reuses_the_factor() {
        let (kernel, tr, ztr, te, _zte, f) = setup(260, 30, MaternParams::new(1.0, 0.2, 1.5));
        let factor = Arc::new(f);
        let expect = krige(&kernel, &tr, &ztr, &factor, &te, false);
        let plan = PredictionPlan::new(
            Arc::new(kernel),
            Arc::from(tr),
            &vec![0.0; ztr.len()],
            factor.clone(),
        );
        let w = solve_weights(&factor, &ztr);
        let got = plan.query_with_weights(&w, &te, false);
        assert_eq!(got.mean, expect.mean);
    }

    #[test]
    fn mspe_basics() {
        assert_eq!(mspe(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mspe(&[1.0, 3.0], &[0.0, 1.0]), (1.0 + 4.0) / 2.0);
        assert_eq!(mspe(&[], &[]), 0.0);
    }
}

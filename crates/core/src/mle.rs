//! Maximum likelihood fitting: the modeling phase of the paper.

use crate::likelihood::{log_likelihood_engine, FactorEngine};
use crate::model::ModelFamily;
use crate::optimizer::neldermead::{nelder_mead, NelderMeadOptions};
use crate::optimizer::pso::{particle_swarm, PsoOptions};
use crate::optimizer::transform::{forward_all, inverse_all};
use parking_lot::Mutex;
use std::sync::Arc;
use xgs_cholesky::{ShardBackend, ShardError};
use xgs_covariance::Location;
use xgs_runtime::MetricsReport;
use xgs_tile::{KernelTimeModel, TlrConfig};

/// Optimizer selection for [`fit`].
#[derive(Clone, Debug)]
pub enum FitOptimizer {
    NelderMead(NelderMeadOptions),
    /// The paper's weak-scaling optimizer; bounds are in transformed space
    /// around the starting point.
    ParticleSwarm(PsoOptions),
}

/// Fit configuration.
#[derive(Clone, Debug)]
pub struct FitOptions {
    pub optimizer: FitOptimizer,
    /// Starting parameter vector (natural space); family default if `None`.
    pub start: Option<Vec<f64>>,
    /// Worker threads per likelihood evaluation (1 = sequential engine).
    pub workers: usize,
    /// When set, every factorization fans out to worker *processes* via
    /// this backend (overrides `workers`) — a spawn-per-run `ShardRunner`
    /// or the persistent `xgs-fleet` supervisor.
    pub shard: Option<Arc<dyn ShardBackend>>,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions::default()),
            start: None,
            workers: 1,
            shard: None,
        }
    }
}

/// Fit outcome.
#[derive(Clone, Debug)]
pub struct FitResult {
    /// Estimated parameters (natural space).
    pub theta: Vec<f64>,
    /// Log-likelihood at the optimum.
    pub llh: f64,
    /// Objective evaluations spent.
    pub evals: usize,
    pub converged: bool,
    /// Successful runtime factorizations behind the evaluations (0 with
    /// the sequential engine).
    pub factorizations: usize,
    /// Runtime metrics merged over every factorization of the
    /// optimization; `None` when every evaluation used the sequential
    /// engine (`workers == 1`).
    pub metrics: Option<MetricsReport>,
}

/// Family-specific default starting point.
fn default_start(family: ModelFamily, z: &[f64]) -> Vec<f64> {
    let var = z.iter().map(|v| v * v).sum::<f64>() / z.len().max(1) as f64;
    let var = var.max(1e-3);
    match family {
        ModelFamily::MaternSpace => vec![var, 0.1, 1.0],
        ModelFamily::GneitingSpaceTime => vec![var, 0.5, 1.0, 0.5, 0.5, 0.3],
    }
}

/// Maximize the Gaussian log-likelihood over the family's parameters.
pub fn fit(
    family: ModelFamily,
    locs: &[Location],
    z: &[f64],
    cfg: &TlrConfig,
    model: &dyn KernelTimeModel,
    opts: &FitOptions,
) -> FitResult {
    let transforms = family.transforms();
    let start_nat = opts
        .start
        .clone()
        .unwrap_or_else(|| default_start(family, z));
    assert_eq!(start_nat.len(), family.n_params());
    let start = forward_all(&transforms, &start_nat);

    let engine = match &opts.shard {
        Some(backend) => FactorEngine::Sharded(Arc::clone(backend)),
        None => FactorEngine::from_workers(opts.workers),
    };

    // Per-factorization runtime metrics, merged across every evaluation
    // the optimizer makes (PSO may evaluate from several threads).
    let accum: Mutex<(usize, Option<MetricsReport>)> = Mutex::new((0, None));
    let objective = |y: &[f64]| -> f64 {
        let theta = inverse_all(&transforms, y);
        let kernel = family.kernel(&theta);
        match log_likelihood_engine(kernel.as_ref(), locs, z, cfg, model, &engine) {
            Ok(r) => {
                if let Some(m) = r.exec.as_ref().and_then(|e| e.metrics.as_ref()) {
                    let mut acc = accum.lock();
                    acc.0 += 1;
                    match acc.1.as_mut() {
                        Some(total) => total.merge(m),
                        None => acc.1 = Some(m.clone()),
                    }
                }
                -r.llh
            }
            // Loss of positive definiteness = out-of-model region.
            Err(ShardError::Factor(_)) => f64::INFINITY,
            // Infrastructure failure (worker lost, timeout): also an
            // unusable evaluation, but loudly distinguishable in logs.
            Err(e) => {
                eprintln!("sharded evaluation failed: {e}");
                f64::INFINITY
            }
        }
    };

    let pool_before = rayon::global_pool_stats();
    let (theta, llh, evals, converged) = match &opts.optimizer {
        FitOptimizer::NelderMead(nm) => {
            let r = nelder_mead(objective, &start, nm);
            (inverse_all(&transforms, &r.x), -r.f, r.evals, r.converged)
        }
        FitOptimizer::ParticleSwarm(pso) => {
            // Box: +-2.5 in transformed space around the start (roughly one
            // order of magnitude each way for log-transformed parameters).
            let bounds: Vec<(f64, f64)> = start.iter().map(|&s| (s - 2.5, s + 2.5)).collect();
            let r = particle_swarm(objective, &bounds, pso);
            (inverse_all(&transforms, &r.x), -r.f, r.evals, true)
        }
    };
    let (factorizations, mut metrics) = accum.into_inner();
    // Attribute the fit's share of the shared work-stealing pool (covariance
    // assembly, PSO fan-out, blocked kernels) to the merged report.
    let pool = rayon::global_pool_stats().since(&pool_before);
    if pool.jobs + pool.inline_jobs > 0 {
        if let Some(m) = metrics.as_mut() {
            m.pool = Some(xgs_runtime::PoolCounters {
                workers: pool.threads,
                jobs: pool.jobs,
                inline_jobs: pool.inline_jobs,
                steals: pool.steals,
                parks: pool.parks,
            });
        }
    }
    FitResult {
        theta,
        llh,
        evals,
        converged,
        factorizations,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::simulate_field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, Variant};

    fn data(n: usize, params: MaternParams, seed: u64) -> (Vec<Location>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        let z = simulate_field(&Matern::new(params), &locs, seed + 1000);
        (locs, z)
    }

    #[test]
    fn recovers_matern_parameters_dense() {
        // Moderate n and a fixed smoothness-friendly setting: MLE should
        // land near the truth (sampling noise allows generous bands).
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let (locs, z) = data(400, truth, 42);
        let cfg = TlrConfig::new(Variant::DenseF64, 100);
        let opts = FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                max_evals: 200,
                f_tol: 1e-5,
                initial_step: 0.4,
            }),
            start: Some(vec![0.8, 0.15, 0.7]),
            workers: 1,
            shard: None,
        };
        let r = fit(
            ModelFamily::MaternSpace,
            &locs,
            &z,
            &cfg,
            &FlopKernelModel::default(),
            &opts,
        );
        assert!(r.llh.is_finite());
        assert!(
            (0.4..2.5).contains(&r.theta[0]),
            "variance {} far from 1.0",
            r.theta[0]
        );
        assert!(
            (0.03..0.3).contains(&r.theta[1]),
            "range {} far from 0.1",
            r.theta[1]
        );
        assert!(
            (0.25..1.1).contains(&r.theta[2]),
            "smoothness {} far from 0.5",
            r.theta[2]
        );
    }

    #[test]
    fn llh_at_estimate_beats_llh_at_start() {
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let (locs, z) = data(300, truth, 7);
        let cfg = TlrConfig::new(Variant::MpDense, 75);
        let model = FlopKernelModel::default();
        let start = vec![2.0, 0.05, 1.5];
        let start_llh = {
            let k = ModelFamily::MaternSpace.kernel(&start);
            crate::likelihood::log_likelihood(k.as_ref(), &locs, &z, &cfg, &model, 1)
                .unwrap()
                .llh
        };
        let opts = FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                max_evals: 120,
                f_tol: 1e-5,
                initial_step: 0.4,
            }),
            start: Some(start),
            workers: 1,
            shard: None,
        };
        let r = fit(ModelFamily::MaternSpace, &locs, &z, &cfg, &model, &opts);
        assert!(r.llh > start_llh, "{} should beat {}", r.llh, start_llh);
    }

    #[test]
    fn parallel_fit_surfaces_merged_runtime_metrics() {
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let (locs, z) = data(200, truth, 3);
        let cfg = TlrConfig::new(Variant::MpDense, 50);
        let opts = FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                max_evals: 20,
                f_tol: 1e-4,
                initial_step: 0.3,
            }),
            start: Some(vec![1.0, 0.1, 0.5]),
            workers: 2,
            shard: None,
        };
        let r = fit(
            ModelFamily::MaternSpace,
            &locs,
            &z,
            &cfg,
            &FlopKernelModel::default(),
            &opts,
        );
        assert!(r.factorizations > 0);
        assert!(r.factorizations <= r.evals);
        let m = r.metrics.expect("parallel engine collects metrics");
        // 4x4 tiles, 20 tasks per factorization, one factorization per
        // successful evaluation.
        assert_eq!(m.tasks, 20 * r.factorizations);
        assert!(m.kernels.iter().any(|k| k.kind == "potrf"));
        // The validator defaults on under debug_assertions only, so this
        // test means different things in `cargo test` vs `--release`.
        if cfg!(debug_assertions) {
            let v = m.validation.expect("validation on by default in debug");
            assert!(v.edges_checked > 0);
            assert!(m.to_json().contains("\"validation\":{"));
        } else {
            assert!(m.validation.is_none(), "validator is opt-in in release");
            assert!(m.to_json().contains("\"validation\":null"));
        }
    }

    #[test]
    fn sequential_fit_has_no_runtime_metrics() {
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let (locs, z) = data(150, truth, 4);
        let cfg = TlrConfig::new(Variant::DenseF64, 75);
        let opts = FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                max_evals: 10,
                f_tol: 1e-4,
                initial_step: 0.3,
            }),
            start: Some(vec![1.0, 0.1, 0.5]),
            workers: 1,
            shard: None,
        };
        let r = fit(
            ModelFamily::MaternSpace,
            &locs,
            &z,
            &cfg,
            &FlopKernelModel::default(),
            &opts,
        );
        assert_eq!(r.factorizations, 0);
        assert!(r.metrics.is_none());
    }

    #[test]
    fn pso_fit_runs_and_is_deterministic() {
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let (locs, z) = data(200, truth, 9);
        let cfg = TlrConfig::new(Variant::DenseF64, 100);
        let model = FlopKernelModel::default();
        let pso = PsoOptions {
            particles: 6,
            iterations: 6,
            parallel: true,
            ..Default::default()
        };
        let opts = FitOptions {
            optimizer: FitOptimizer::ParticleSwarm(pso),
            start: Some(vec![1.0, 0.1, 0.5]),
            workers: 1,
            shard: None,
        };
        let a = fit(ModelFamily::MaternSpace, &locs, &z, &cfg, &model, &opts);
        let b = fit(ModelFamily::MaternSpace, &locs, &z, &cfg, &model, &opts);
        assert_eq!(a.theta, b.theta);
        assert!(a.llh.is_finite());
    }
}

//! The symmetric tiled covariance matrix and its generation pipeline.
//!
//! Generation follows the paper's order of operations: tiles are generated
//! (in parallel) from the covariance kernel, the global Frobenius norm is
//! accumulated tile-by-tile *during* generation ("a copy of the global
//! matrix need not be stored"), then the precision-aware and
//! structure-aware decisions assign each tile its format, "right after the
//! generation/compression of the matrix and just before the Cholesky
//! factorization starts".

use crate::band::auto_tune_band_size;
use crate::decisions::{
    precision_for_tile_with_rule, tile_prefers_dense, KernelTimeModel, PrecisionRule,
};
use crate::layout::TileLayout;
use crate::tile::{Tile, TileStorage};
use rayon::prelude::*;
use xgs_covariance::{cov_block, CovarianceKernel, Location};
use xgs_kernels::Precision;
use xgs_linalg::{LowRank, Matrix};

/// The three Cholesky variants benchmarked throughout the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Reference: every tile dense FP64.
    DenseF64,
    /// Mixed-precision dense: FP64/FP32/FP16 tiles, all dense.
    MpDense,
    /// The paper's contribution: mixed precision + dense/TLR structure.
    MpDenseTlr,
}

impl Variant {
    pub fn name(self) -> &'static str {
        match self {
            Variant::DenseF64 => "dense-fp64",
            Variant::MpDense => "mp-dense",
            Variant::MpDenseTlr => "mp-dense-tlr",
        }
    }
}

/// Low-rank compressor selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compressor {
    /// Truncated one-sided-Jacobi SVD: the accuracy oracle.
    Svd,
    /// Adaptive cross approximation + rounding: the production path.
    Aca,
    /// Adaptive randomized SVD (Halko et al.) — HiCMA's RSVD option.
    Rsvd,
}

/// Configuration of the tiled representation.
#[derive(Clone, Copy, Debug)]
pub struct TlrConfig {
    pub tile_size: usize,
    pub variant: Variant,
    /// TLR accuracy threshold, relative to each tile's Frobenius norm
    /// (the paper runs 1e-8).
    pub tlr_tolerance: f64,
    /// Dense band half-width in tiles: tiles with `|i-j| < band` stay dense
    /// FP64. `None` = auto-tune via Algorithm 2 at generation time.
    pub band_size_dense: Option<usize>,
    /// Allow FP16 storage for far-field tiles.
    pub allow_fp16: bool,
    pub compressor: Compressor,
    /// Precision assignment scheme (adaptive norm rule by default; the
    /// band scheme of the paper's Fig. 2(c) is available for ablations).
    pub precision_rule: PrecisionRule,
}

impl TlrConfig {
    /// Paper-like defaults for a given variant.
    pub fn new(variant: Variant, tile_size: usize) -> TlrConfig {
        TlrConfig {
            tile_size,
            variant,
            tlr_tolerance: 1e-8,
            band_size_dense: None,
            allow_fp16: true,
            compressor: Compressor::Aca,
            precision_rule: PrecisionRule::AdaptiveNorm,
        }
    }
}

/// Symmetric positive definite tiled matrix (lower triangle stored).
pub struct SymTileMatrix {
    layout: TileLayout,
    /// Packed lower-triangle tiles, column-major over tile indices
    /// (see [`TileLayout::stored_index`]).
    pub tiles: Vec<Tile>,
    /// Global Frobenius norm accumulated during generation.
    pub global_norm: f64,
    /// Effective dense band (after auto-tuning).
    pub band_size_dense: usize,
    pub config: TlrConfig,
}

impl SymTileMatrix {
    /// Generate the tiled covariance matrix for `locs` under `kernel`.
    ///
    /// `model` drives the structure-aware decision (ignored for the dense
    /// variants).
    pub fn generate(
        kernel: &dyn CovarianceKernel,
        locs: &[Location],
        config: TlrConfig,
        model: &dyn KernelTimeModel,
    ) -> SymTileMatrix {
        let n = locs.len();
        let layout = TileLayout::new(n, config.tile_size);
        let nt = layout.nt();

        // Pass 1: generate dense blocks (parallel) + their norms.
        let indices: Vec<(usize, usize)> =
            (0..nt).flat_map(|j| (j..nt).map(move |i| (i, j))).collect();
        let mut blocks: Vec<((usize, usize), Matrix, f64)> = indices
            .par_iter()
            .map(|&(i, j)| {
                let ri = layout.tile_range(i);
                let rj = layout.tile_range(j);
                let block = cov_block(kernel, &locs[ri], &locs[rj]);
                let norm = block.norm_fro();
                ((i, j), block, norm)
            })
            .collect();
        // Tile-by-tile global norm accumulation (off-diagonal counted twice:
        // the matrix is symmetric and we store only the lower half).
        let mut sq = 0.0f64;
        for ((i, j), _, norm) in &blocks {
            let w = if i == j { 1.0 } else { 2.0 };
            sq += w * norm * norm;
        }
        let global_norm = sq.sqrt();

        // Structure decision needs the rank distribution; compute ranks for
        // candidate TLR tiles first (only the TLR variant compresses).
        let tol_of = |tile_norm: f64| config.tlr_tolerance * tile_norm.max(f64::MIN_POSITIVE);

        let compressed: Vec<Option<LowRank>> = match config.variant {
            Variant::MpDenseTlr => blocks
                .par_iter()
                .map(|&((i, j), ref block, norm)| {
                    if i == j {
                        return None; // diagonal always dense
                    }
                    let tol = tol_of(norm);
                    let lr = match config.compressor {
                        Compressor::Svd => LowRank::compress_svd(block, tol),
                        Compressor::Aca => LowRank::compress_aca(block, tol),
                        Compressor::Rsvd => {
                            // Seed per tile for reproducibility across runs.
                            let seed = (i as u64) << 32 | j as u64;
                            let (u, v, _r) = xgs_linalg::rsvd_adaptive(block, tol, seed);
                            LowRank { u, v }
                        }
                    };
                    Some(lr)
                })
                .collect(),
            _ => vec![None; blocks.len()],
        };

        // Auto-tune the dense band from the rank distribution (Algorithm 2)
        // unless pinned by the config.
        let band = match (config.variant, config.band_size_dense) {
            (Variant::MpDenseTlr, None) => {
                let ranks: Vec<(usize, usize, usize)> = indices
                    .iter()
                    .zip(&compressed)
                    .filter_map(|(&(i, j), lr)| lr.as_ref().map(|l| (i, j, l.rank())))
                    .collect();
                auto_tune_band_size(&ranks, nt, config.tile_size, model)
            }
            (_, explicit) => explicit.unwrap_or(1),
        };

        // Assemble tiles with both decisions applied.
        let tiles: Vec<Tile> = indices
            .iter()
            .enumerate()
            .map(|(idx, &(i, j))| {
                let (_, ref block, norm) = blocks[idx];
                // Precision pin covers the diagonal only: structure-band
                // tiles are dense but may still be FP32/FP16 (paper Fig. 9
                // shows mixed precisions inside the dense band).
                let precision = match config.variant {
                    Variant::DenseF64 => Precision::F64,
                    _ => precision_for_tile_with_rule(
                        config.precision_rule,
                        i,
                        j,
                        1,
                        norm,
                        global_norm,
                        nt,
                        config.allow_fp16,
                    ),
                };
                match (&compressed[idx], config.variant) {
                    (Some(lr), Variant::MpDenseTlr) if i.abs_diff(j) >= band => {
                        // Structure rule: revert to dense when the rank is
                        // past the crossover for this tile's precision.
                        let nb = layout.tile_dim(i).min(layout.tile_dim(j));
                        if tile_prefers_dense(model, nb, lr.rank(), precision) {
                            Tile::dense(block.clone(), precision)
                        } else {
                            // TLR path: FP64/FP32 only (no FP16 low-rank).
                            let p = if precision == Precision::F16 {
                                Precision::F32
                            } else {
                                precision
                            };
                            Tile::low_rank(lr.clone(), p)
                        }
                    }
                    _ => Tile::dense(block.clone(), precision),
                }
            })
            .collect();
        // Free the generation blocks before returning (they can be huge).
        blocks.clear();

        SymTileMatrix {
            layout,
            tiles,
            global_norm,
            band_size_dense: band,
            config,
        }
    }

    #[inline]
    pub fn layout(&self) -> TileLayout {
        self.layout
    }

    #[inline]
    pub fn nt(&self) -> usize {
        self.layout.nt()
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.layout.n()
    }

    /// Borrow stored tile `(i, j)`, `i >= j`.
    pub fn tile(&self, i: usize, j: usize) -> &Tile {
        &self.tiles[self.layout.stored_index(i, j)]
    }

    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut Tile {
        let idx = self.layout.stored_index(i, j);
        &mut self.tiles[idx]
    }

    /// Total storage footprint in bytes under the assigned formats.
    pub fn footprint_bytes(&self) -> usize {
        // Off-diagonal tiles represent both halves of the symmetric matrix,
        // but like the paper we account the stored (lower) half once and
        // compare against a dense lower-half FP64 footprint.
        self.tiles.iter().map(Tile::footprint_bytes).sum()
    }

    /// Footprint of the same matrix stored fully dense in FP64 (lower half).
    pub fn dense_f64_footprint_bytes(&self) -> usize {
        let nt = self.nt();
        let mut total = 0usize;
        for j in 0..nt {
            for i in j..nt {
                total += self.layout.tile_dim(i) * self.layout.tile_dim(j) * 8;
            }
        }
        total
    }

    /// Reconstruct the full dense matrix (tests / small problems only).
    pub fn to_dense(&self) -> Matrix {
        let n = self.n();
        let nt = self.nt();
        let mut full = Matrix::zeros(n, n);
        for j in 0..nt {
            for i in j..nt {
                let block = self.tile(i, j).to_dense();
                let ri = self.layout.tile_range(i);
                let rj = self.layout.tile_range(j);
                for (bj, gj) in rj.clone().enumerate() {
                    for (bi, gi) in ri.clone().enumerate() {
                        full[(gi, gj)] = block[(bi, bj)];
                        full[(gj, gi)] = block[(bi, bj)];
                    }
                }
            }
        }
        full
    }

    /// Count tiles by (structure, precision) — the data behind Fig. 9.
    pub fn census(&self) -> TileCensus {
        let mut c = TileCensus::default();
        for t in &self.tiles {
            match (&t.storage, t.precision) {
                (TileStorage::Dense(_), Precision::F64) => c.dense_f64 += 1,
                (TileStorage::Dense(_), Precision::F32) => c.dense_f32 += 1,
                (TileStorage::Dense(_), Precision::F16) => c.dense_f16 += 1,
                (TileStorage::LowRank(_), Precision::F64) => c.lr_f64 += 1,
                (TileStorage::LowRank(_), _) => c.lr_f32 += 1,
            }
        }
        c
    }
}

/// Tile counts by format.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TileCensus {
    pub dense_f64: usize,
    pub dense_f32: usize,
    pub dense_f16: usize,
    pub lr_f64: usize,
    pub lr_f32: usize,
}

impl TileCensus {
    pub fn total(&self) -> usize {
        self.dense_f64 + self.dense_f32 + self.dense_f16 + self.lr_f64 + self.lr_f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::FlopKernelModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};

    fn setup(n: usize, range: f64) -> (Matern, Vec<Location>) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        (Matern::new(MaternParams::new(1.0, range, 0.5)), locs)
    }

    #[test]
    fn dense_f64_variant_reconstructs_exactly() {
        let (kernel, locs) = setup(200, 0.1);
        let cfg = TlrConfig::new(Variant::DenseF64, 64);
        let m = SymTileMatrix::generate(&kernel, &locs, cfg, &FlopKernelModel::default());
        let dense = m.to_dense();
        let exact = xgs_covariance::covariance_matrix(&kernel, &locs);
        let err = dense.add_scaled(-1.0, &exact).norm_fro();
        assert_eq!(err, 0.0);
        let c = m.census();
        assert_eq!(c.dense_f64, c.total());
    }

    #[test]
    fn global_norm_matches_dense_norm() {
        let (kernel, locs) = setup(150, 0.1);
        let cfg = TlrConfig::new(Variant::DenseF64, 50);
        let m = SymTileMatrix::generate(&kernel, &locs, cfg, &FlopKernelModel::default());
        let exact = xgs_covariance::covariance_matrix(&kernel, &locs).norm_fro();
        assert!((m.global_norm - exact).abs() / exact < 1e-12);
    }

    #[test]
    fn mp_dense_error_within_paper_bound() {
        let (kernel, locs) = setup(256, 0.03); // weak correlation: many low tiles
        let cfg = TlrConfig::new(Variant::MpDense, 32);
        let m = SymTileMatrix::generate(&kernel, &locs, cfg, &FlopKernelModel::default());
        let approx = m.to_dense();
        let exact = xgs_covariance::covariance_matrix(&kernel, &locs);
        let err = approx.add_scaled(-1.0, &exact).norm_fro();
        // §VI-C bound: ||Â - A||_F <= u_high ||A||_F, with u_high = FP64
        // roundoff. Our rounding applies per entry so allow small slack.
        let bound = Precision::F64.unit_roundoff() * exact.norm_fro();
        assert!(err <= bound * 4.0, "err {err} vs bound {bound}");
    }

    /// Model that makes TLR attractive at small test-size tiles (the
    /// default A64FX calibration's crossover ~nb/13 would keep 32-64 wide
    /// test tiles dense, which is correct behaviour but not what these
    /// plumbing tests exercise).
    fn tlr_friendly_model() -> FlopKernelModel {
        FlopKernelModel {
            dense_rate: 45.0e9,
            mem_factor: 1.0,
        }
    }

    #[test]
    fn mp_tlr_error_within_tlr_tolerance() {
        let (kernel, locs) = setup(1024, 0.01);
        let mut cfg = TlrConfig::new(Variant::MpDenseTlr, 32);
        cfg.tlr_tolerance = 1e-8;
        let m = SymTileMatrix::generate(&kernel, &locs, cfg, &tlr_friendly_model());
        let approx = m.to_dense();
        let exact = xgs_covariance::covariance_matrix(&kernel, &locs);
        let err = approx.add_scaled(-1.0, &exact).norm_fro();
        // Every off-band tile compressed to 1e-8 * tile norm; the total is
        // well under 1e-6 relative.
        assert!(err <= 1e-6 * exact.norm_fro(), "err {err}");
        // And the TLR variant must actually contain low-rank tiles here.
        let c = m.census();
        assert!(c.lr_f32 + c.lr_f64 > 0, "census {c:?}");
    }

    #[test]
    fn weak_correlation_gives_more_low_precision_than_strong() {
        // The paper's Fig. 9 observation.
        let (weak_kernel, locs) = setup(400, 0.03);
        let strong_kernel = Matern::new(MaternParams::new(1.0, 0.3, 0.5));
        let cfg = TlrConfig::new(Variant::MpDense, 40);
        let model = FlopKernelModel::default();
        let mw = SymTileMatrix::generate(&weak_kernel, &locs, cfg, &model);
        let ms = SymTileMatrix::generate(&strong_kernel, &locs, cfg, &model);
        let cw = mw.census();
        let cs = ms.census();
        let low_w = cw.dense_f32 + cw.dense_f16;
        let low_s = cs.dense_f32 + cs.dense_f16;
        assert!(
            low_w >= low_s,
            "weak {low_w} low-precision tiles vs strong {low_s}"
        );
    }

    #[test]
    fn footprint_shrinks_with_approximation() {
        let (kernel, locs) = setup(1024, 0.01);
        let model = tlr_friendly_model();
        let dense = SymTileMatrix::generate(
            &kernel,
            &locs,
            TlrConfig::new(Variant::DenseF64, 32),
            &model,
        );
        let mp =
            SymTileMatrix::generate(&kernel, &locs, TlrConfig::new(Variant::MpDense, 32), &model);
        let tlr = SymTileMatrix::generate(
            &kernel,
            &locs,
            TlrConfig::new(Variant::MpDenseTlr, 32),
            &model,
        );
        let fd = dense.footprint_bytes();
        assert_eq!(fd, dense.dense_f64_footprint_bytes());
        let fm = mp.footprint_bytes();
        let ft = tlr.footprint_bytes();
        assert!(fm < fd, "MP {fm} !< dense {fd}");
        assert!(ft < fm, "TLR {ft} !< MP {fm}");
    }

    #[test]
    fn all_compressors_agree_on_reconstruction() {
        let (kernel, locs) = setup(1024, 0.01);
        let exact = xgs_covariance::covariance_matrix(&kernel, &locs);
        let model = tlr_friendly_model();
        let mut errs = Vec::new();
        for compressor in [Compressor::Svd, Compressor::Aca, Compressor::Rsvd] {
            let mut cfg = TlrConfig::new(Variant::MpDenseTlr, 32);
            cfg.compressor = compressor;
            let m = SymTileMatrix::generate(&kernel, &locs, cfg, &model);
            let err = m.to_dense().add_scaled(-1.0, &exact).norm_fro() / exact.norm_fro();
            errs.push((compressor, err));
            assert!(err < 1e-6, "{compressor:?} err {err}");
        }
        // And they all actually produced low-rank tiles.
        let mut cfg = TlrConfig::new(Variant::MpDenseTlr, 32);
        cfg.compressor = Compressor::Rsvd;
        let m = SymTileMatrix::generate(&kernel, &locs, cfg, &model);
        let c = m.census();
        assert!(c.lr_f32 + c.lr_f64 > 0, "RSVD produced no LR tiles: {c:?}");
        let _ = errs;
    }

    #[test]
    fn tile_accessor_shapes() {
        let (kernel, locs) = setup(130, 0.1);
        let cfg = TlrConfig::new(Variant::DenseF64, 50);
        let m = SymTileMatrix::generate(&kernel, &locs, cfg, &FlopKernelModel::default());
        assert_eq!(m.nt(), 3);
        assert_eq!(m.tile(0, 0).rows(), 50);
        assert_eq!(m.tile(2, 0).rows(), 30);
        assert_eq!(m.tile(2, 0).cols(), 50);
        assert_eq!(m.tile(2, 2).rows(), 30);
    }
}

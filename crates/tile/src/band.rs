//! Algorithm 2 of the paper: auto-tuning `band_size_dense`.
//!
//! After generation/compression, the rank distribution is globalized and the
//! dense band grows sub-diagonal by sub-diagonal while executing that
//! sub-diagonal's TRSM+GEMM work in dense format is still cheaper than in
//! low-rank format (with a `fluctuation` safety factor). Ranks are highest
//! near the diagonal, so the loop terminates at the point where TLR starts
//! paying off — establishing the band structure of Fig. 3(b).

use crate::decisions::KernelTimeModel;
use xgs_kernels::Precision;

/// Tolerated fluctuation in the dense-vs-TLR comparison (Algorithm 2's
/// `fluctuation`): dense keeps winning while
/// `time_dense < FLUCTUATION * time_tlr`.
pub const FLUCTUATION: f64 = 1.0;

/// Auto-tune the dense band width.
///
/// * `ranks` — `(i, j, rank)` of every compressed candidate tile (the
///   "globalized rank distribution" of Algorithm 2 step 2),
/// * `nt` — tiles per dimension,
/// * `nb` — tile size,
/// * `model` — kernel time model.
///
/// Returns the number of sub-diagonals (including the main diagonal) to
/// keep dense; at least 1 (the diagonal itself always is).
pub fn auto_tune_band_size(
    ranks: &[(usize, usize, usize)],
    nt: usize,
    nb: usize,
    model: &dyn KernelTimeModel,
) -> usize {
    // Index ranks by sub-diagonal offset d = i - j.
    let mut by_offset: Vec<Vec<usize>> = vec![Vec::new(); nt];
    for &(i, j, r) in ranks {
        if i > j {
            by_offset[i - j].push(r);
        }
    }

    let mut id = 1usize;
    loop {
        id += 1;
        if id > nt.saturating_sub(1) + 1 {
            // Whole matrix would be dense.
            return nt.max(1);
        }
        let sub = &by_offset[id - 1];
        if sub.is_empty() {
            // No compressed candidates on this sub-diagonal (edge case for
            // tiny matrices): stop growing.
            return id - 1;
        }
        // Each tile on sub-diagonal d participates in O(nt - d) TRSM+GEMM
        // kernels over the factorization; the count is common to both
        // formats so comparing per-tile sums is equivalent (Algorithm 2
        // compares totals).
        let mut t_dense = 0.0;
        let mut t_tlr = 0.0;
        for &r in sub {
            // Dense side may run in FP64/FP32/FP16; the band candidates sit
            // near the diagonal where norms are large, so FP64 is the
            // representative dense precision (the paper lists all three).
            t_dense += model.dense_gemm_time(nb, Precision::F64)
                + model.dense_trsm_time(nb, Precision::F64);
            // TLR side runs FP64/FP32; use FP64 for symmetry.
            t_tlr += model.tlr_gemm_time(nb, r, Precision::F64)
                + model.tlr_trsm_time(nb, r, Precision::F64);
        }
        if t_dense < FLUCTUATION * t_tlr {
            continue;
        }
        return id - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::FlopKernelModel;

    /// Synthetic rank profile: rank decays geometrically with sub-diagonal
    /// distance, the shape Morton-ordered covariance matrices produce.
    fn decaying_ranks(nt: usize, nb: usize, near_rank: usize) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for j in 0..nt {
            for i in j + 1..nt {
                let d = i - j;
                let r = ((near_rank as f64) * 0.5f64.powi(d as i32 - 1)).max(2.0) as usize;
                out.push((i, j, r.min(nb)));
            }
        }
        out
    }

    #[test]
    fn high_near_diagonal_ranks_grow_the_band() {
        let model = FlopKernelModel::default();
        let nb = 512;
        let nt = 16;
        // First sub-diagonal at essentially full rank: dense wins there.
        let ranks = decaying_ranks(nt, nb, 400);
        let band = auto_tune_band_size(&ranks, nt, nb, &model);
        assert!(
            band >= 2,
            "band {band} should include the first sub-diagonal"
        );
        assert!(band < nt, "band {band} must not swallow the whole matrix");
    }

    #[test]
    fn low_ranks_everywhere_keep_band_minimal() {
        let model = FlopKernelModel::default();
        let nb = 512;
        let nt = 16;
        let ranks: Vec<_> = (0..nt)
            .flat_map(|j| (j + 1..nt).map(move |i| (i, j, 8usize)))
            .collect();
        let band = auto_tune_band_size(&ranks, nt, nb, &model);
        assert_eq!(band, 1, "rank-8 tiles should all stay TLR");
    }

    #[test]
    fn full_rank_everywhere_makes_everything_dense() {
        let model = FlopKernelModel::default();
        let nb = 256;
        let nt = 8;
        let ranks: Vec<_> = (0..nt)
            .flat_map(|j| (j + 1..nt).map(move |i| (i, j, nb)))
            .collect();
        let band = auto_tune_band_size(&ranks, nt, nb, &model);
        assert_eq!(band, nt);
    }

    #[test]
    fn band_monotone_in_near_rank() {
        let model = FlopKernelModel::default();
        let nb = 512;
        let nt = 12;
        let mut prev = 1;
        for near in [8, 64, 200, 400, 512] {
            let band = auto_tune_band_size(&decaying_ranks(nt, nb, near), nt, nb, &model);
            assert!(band >= prev, "band must grow with near-diagonal rank");
            prev = band;
        }
    }

    #[test]
    fn empty_rank_list_returns_diagonal_only() {
        let model = FlopKernelModel::default();
        assert_eq!(auto_tune_band_size(&[], 10, 256, &model), 1);
    }
}

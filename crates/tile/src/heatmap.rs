//! Decision heat-maps: the per-tile precision/structure pictures of Fig. 9.

use crate::matrix::SymTileMatrix;
use crate::tile::TileStorage;
use xgs_kernels::Precision;

/// Per-tile decision code for rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cell {
    DenseF64,
    DenseF32,
    DenseF16,
    LowRankF64,
    LowRankF32,
}

impl Cell {
    /// Single-character glyph used in the text rendering.
    pub fn glyph(self) -> char {
        match self {
            Cell::DenseF64 => 'D',
            Cell::DenseF32 => 's',
            Cell::DenseF16 => 'h',
            Cell::LowRankF64 => 'L',
            Cell::LowRankF32 => 'l',
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Cell::DenseF64 => "dense fp64",
            Cell::DenseF32 => "dense fp32",
            Cell::DenseF16 => "dense fp16",
            Cell::LowRankF64 => "low-rank fp64",
            Cell::LowRankF32 => "low-rank fp32",
        }
    }
}

/// The full `NT x NT` decision map of a tiled matrix (lower triangle
/// mirrored for display, like the paper's square heat-maps).
pub struct DecisionMap {
    pub nt: usize,
    /// Row-major `nt * nt` cells.
    pub cells: Vec<Cell>,
    /// Ranks of low-rank tiles (usize::MAX where dense), same layout.
    pub ranks: Vec<usize>,
    pub footprint_bytes: usize,
    pub dense_f64_footprint_bytes: usize,
}

/// Extract the decision map from a generated matrix.
pub fn decision_heatmap(m: &SymTileMatrix) -> DecisionMap {
    let nt = m.nt();
    let mut cells = vec![Cell::DenseF64; nt * nt];
    let mut ranks = vec![usize::MAX; nt * nt];
    for j in 0..nt {
        for i in j..nt {
            let t = m.tile(i, j);
            let cell = match (&t.storage, t.precision) {
                (TileStorage::Dense(_), Precision::F64) => Cell::DenseF64,
                (TileStorage::Dense(_), Precision::F32) => Cell::DenseF32,
                (TileStorage::Dense(_), Precision::F16) => Cell::DenseF16,
                (TileStorage::LowRank(_), Precision::F64) => Cell::LowRankF64,
                (TileStorage::LowRank(_), _) => Cell::LowRankF32,
            };
            let r = t.rank().unwrap_or(usize::MAX);
            cells[i * nt + j] = cell;
            cells[j * nt + i] = cell;
            ranks[i * nt + j] = r;
            ranks[j * nt + i] = r;
        }
    }
    DecisionMap {
        nt,
        cells,
        ranks,
        footprint_bytes: m.footprint_bytes(),
        dense_f64_footprint_bytes: m.dense_f64_footprint_bytes(),
    }
}

impl DecisionMap {
    /// Text rendering: one glyph per tile plus a legend and the memory
    /// footprint summary the paper annotates each heat-map with.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.nt + 1) * (self.nt + 1) + 256);
        for i in 0..self.nt {
            for j in 0..self.nt {
                out.push(self.cells[i * self.nt + j].glyph());
            }
            out.push('\n');
        }
        let mf = self.footprint_bytes as f64 / (1 << 30) as f64;
        let mf_dense = self.dense_f64_footprint_bytes as f64 / (1 << 30) as f64;
        out.push_str(&format!(
            "legend: D=dense fp64  s=dense fp32  h=dense fp16  L=lr fp64  l=lr fp32\n\
             memory footprint: {:.3} GiB vs dense fp64 {:.3} GiB ({:.1}% reduction)\n",
            mf,
            mf_dense,
            100.0 * (1.0 - self.footprint_bytes as f64 / self.dense_f64_footprint_bytes as f64)
        ));
        out
    }

    /// CSV rendering (`i,j,structure,precision,rank`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("i,j,kind,rank\n");
        for i in 0..self.nt {
            for j in 0..self.nt {
                let c = self.cells[i * self.nt + j];
                let r = self.ranks[i * self.nt + j];
                let rank = if r == usize::MAX {
                    String::from("dense")
                } else {
                    r.to_string()
                };
                out.push_str(&format!("{i},{j},{},{rank}\n", c.label().replace(' ', "-")));
            }
        }
        out
    }

    /// Fraction of tiles in each format, ordered as
    /// `(dense64, dense32, dense16, lr64, lr32)`.
    pub fn fractions(&self) -> (f64, f64, f64, f64, f64) {
        let total = self.cells.len() as f64;
        let count = |c: Cell| self.cells.iter().filter(|&&x| x == c).count() as f64 / total;
        (
            count(Cell::DenseF64),
            count(Cell::DenseF32),
            count(Cell::DenseF16),
            count(Cell::LowRankF64),
            count(Cell::LowRankF32),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::FlopKernelModel;
    use crate::matrix::{TlrConfig, Variant};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};

    fn build(variant: Variant) -> SymTileMatrix {
        let mut rng = StdRng::seed_from_u64(3);
        let mut locs = jittered_grid(300, &mut rng);
        morton_order(&mut locs);
        let kernel = Matern::new(MaternParams::new(1.0, 0.03, 0.5));
        SymTileMatrix::generate(
            &kernel,
            &locs,
            TlrConfig::new(variant, 30),
            &FlopKernelModel::default(),
        )
    }

    #[test]
    fn map_is_symmetric_with_dense_diagonal() {
        let m = build(Variant::MpDenseTlr);
        let map = decision_heatmap(&m);
        for i in 0..map.nt {
            assert_eq!(map.cells[i * map.nt + i], Cell::DenseF64);
            for j in 0..map.nt {
                assert_eq!(map.cells[i * map.nt + j], map.cells[j * map.nt + i]);
            }
        }
    }

    #[test]
    fn render_contains_legend_and_reduction() {
        let m = build(Variant::MpDense);
        let map = decision_heatmap(&m);
        let s = map.render();
        assert!(s.contains("legend:"));
        assert!(s.contains("memory footprint"));
        // One line of nt glyphs per row.
        assert_eq!(s.lines().next().unwrap().len(), map.nt);
    }

    #[test]
    fn csv_has_header_and_all_cells() {
        let m = build(Variant::MpDenseTlr);
        let map = decision_heatmap(&m);
        let csv = map.to_csv();
        assert_eq!(csv.lines().count(), 1 + map.nt * map.nt);
        assert!(csv.starts_with("i,j,kind,rank"));
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = build(Variant::MpDenseTlr);
        let map = decision_heatmap(&m);
        let (a, b, c, d, e) = map.fractions();
        assert!((a + b + c + d + e - 1.0).abs() < 1e-12);
        assert!(a > 0.0, "diagonal at least is dense fp64");
    }
}

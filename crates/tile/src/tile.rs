//! A single covariance tile: dense or low-rank, in one of three precisions.

use xgs_kernels::{convert::round_through, Precision};
use xgs_linalg::{LowRank, Matrix};

/// Structure of a tile's payload.
#[derive(Clone, Debug)]
pub enum TileStorage {
    /// Full `m x n` block.
    Dense(Matrix),
    /// `U V^T` approximation compressed to the TLR tolerance.
    LowRank(LowRank),
}

/// One tile of the symmetric covariance matrix.
#[derive(Clone, Debug)]
pub struct Tile {
    /// Payload.
    pub storage: TileStorage,
    /// Storage precision assigned by the precision-aware rule. Invariant:
    /// the payload's values have been rounded through this format.
    pub precision: Precision,
    rows: usize,
    cols: usize,
}

impl Tile {
    /// Dense tile; rounds the buffer through `precision` on construction.
    pub fn dense(mut data: Matrix, precision: Precision) -> Tile {
        let (rows, cols) = data.shape();
        round_through(data.as_mut_slice(), precision);
        Tile {
            storage: TileStorage::Dense(data),
            precision,
            rows,
            cols,
        }
    }

    /// Low-rank tile; rounds both factors through `precision`.
    pub fn low_rank(mut lr: LowRank, precision: Precision) -> Tile {
        let (rows, cols) = (lr.rows(), lr.cols());
        round_through(lr.u.as_mut_slice(), precision);
        round_through(lr.v.as_mut_slice(), precision);
        Tile {
            storage: TileStorage::LowRank(lr),
            precision,
            rows,
            cols,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Is this tile stored densely?
    #[inline]
    pub fn is_dense(&self) -> bool {
        matches!(self.storage, TileStorage::Dense(_))
    }

    /// Rank if low-rank, `None` if dense.
    pub fn rank(&self) -> Option<usize> {
        match &self.storage {
            TileStorage::Dense(_) => None,
            TileStorage::LowRank(lr) => Some(lr.rank()),
        }
    }

    /// Dense reconstruction (copies).
    pub fn to_dense(&self) -> Matrix {
        match &self.storage {
            TileStorage::Dense(m) => m.clone(),
            TileStorage::LowRank(lr) => lr.reconstruct(),
        }
    }

    /// Frobenius norm of the (stored) payload.
    pub fn norm_fro(&self) -> f64 {
        match &self.storage {
            TileStorage::Dense(m) => m.norm_fro(),
            TileStorage::LowRank(lr) => lr.norm_fro(),
        }
    }

    /// Storage footprint in bytes under the assigned precision:
    /// `m*n*bytes` dense, `k*(m+n)*bytes` low-rank — the accounting behind
    /// the paper's Fig. 9 memory-footprint reductions.
    pub fn footprint_bytes(&self) -> usize {
        let elems = match &self.storage {
            TileStorage::Dense(_) => self.rows * self.cols,
            TileStorage::LowRank(lr) => lr.storage_len(),
        };
        elems * self.precision.bytes()
    }

    /// Re-round the payload through the tile's precision (call after a
    /// kernel writes the tile so the stored values stay representable in
    /// the assigned format).
    pub fn enforce_precision(&mut self) {
        let p = self.precision;
        match &mut self.storage {
            TileStorage::Dense(m) => round_through(m.as_mut_slice(), p),
            TileStorage::LowRank(lr) => {
                round_through(lr.u.as_mut_slice(), p);
                round_through(lr.v.as_mut_slice(), p);
            }
        }
    }

    /// Exact error the precision assignment introduced on construction
    /// would incur on `original` (testing/diagnostics).
    pub fn storage_error_vs(&self, original: &Matrix) -> f64 {
        original.add_scaled(-1.0, &self.to_dense()).norm_fro()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn dense_f64_tile_is_lossless() {
        let a = rnd(10, 10, 1);
        let t = Tile::dense(a.clone(), Precision::F64);
        assert_eq!(t.storage_error_vs(&a), 0.0);
        assert_eq!(t.footprint_bytes(), 10 * 10 * 8);
    }

    #[test]
    fn dense_f16_tile_loses_within_unit_roundoff() {
        let a = rnd(16, 16, 2);
        let t = Tile::dense(a.clone(), Precision::F16);
        let err = t.storage_error_vs(&a);
        assert!(err > 0.0);
        // Elementwise |err| <= u16 * |a| implies Frobenius bound.
        assert!(err <= Precision::F16.unit_roundoff() * a.norm_fro() * 1.01);
        assert_eq!(t.footprint_bytes(), 16 * 16 * 2);
    }

    #[test]
    fn low_rank_tile_footprint() {
        let lr = LowRank {
            u: rnd(32, 5, 3),
            v: rnd(24, 5, 4),
        };
        let t = Tile::low_rank(lr, Precision::F32);
        assert_eq!(t.rank(), Some(5));
        assert_eq!(t.footprint_bytes(), 5 * (32 + 24) * 4);
        assert!(!t.is_dense());
    }

    #[test]
    fn enforce_precision_is_idempotent() {
        let a = rnd(8, 8, 5);
        let mut t = Tile::dense(a, Precision::F16);
        let before = t.to_dense();
        t.enforce_precision();
        assert_eq!(t.to_dense().as_slice(), before.as_slice());
    }
}

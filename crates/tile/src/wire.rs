//! Bitwise tile (de)serialization for the sharded execution backend.
//!
//! When a tile crosses a process boundary (coordinator ↔ worker) it travels
//! as a self-describing binary payload. The encoding must be *bitwise*
//! lossless: the cross-process equivalence suite asserts sharded factors
//! equal the single-process ones bit for bit, so values go over the wire as
//! their raw IEEE-754 bit patterns, never through a decimal round trip.
//!
//! Payload layout (all integers little-endian, floats as LE `to_bits`):
//!
//! ```text
//! [u8 tag: 0=dense 1=low-rank][u8 precision: 0=F64 1=F32 2=F16]
//! [u32 rows][u32 cols]
//! dense:    rows*cols f64 bit patterns (storage order)
//! low-rank: [u32 rank], rows*rank U bits, cols*rank V bits
//! ```
//!
//! Decoding goes through [`Tile::dense`]/[`Tile::low_rank`], which re-round
//! the buffer through the declared precision. That is a no-op here — the
//! sender's payload was already rounded (a `Tile` invariant), and
//! `round_through` is idempotent — so decode(encode(t)) is bitwise `t`.

use crate::tile::{Tile, TileStorage};
use xgs_kernels::Precision;
use xgs_linalg::{LowRank, Matrix};

const TAG_DENSE: u8 = 0;
const TAG_LOWRANK: u8 = 1;

/// Structurally invalid tile payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTileError(pub &'static str);

impl std::fmt::Display for WireTileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed tile payload: {}", self.0)
    }
}

impl std::error::Error for WireTileError {}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    buf.reserve(vs.len() * 8);
    for &v in vs {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn precision_code(p: Precision) -> u8 {
    match p {
        Precision::F64 => 0,
        Precision::F32 => 1,
        Precision::F16 => 2,
    }
}

fn precision_from_code(c: u8) -> Result<Precision, WireTileError> {
    match c {
        0 => Ok(Precision::F64),
        1 => Ok(Precision::F32),
        2 => Ok(Precision::F16),
        _ => Err(WireTileError("unknown precision code")),
    }
}

/// Serialize a tile into `out` (appends; does not clear).
pub fn encode_tile(tile: &Tile, out: &mut Vec<u8>) {
    match &tile.storage {
        TileStorage::Dense(m) => {
            out.push(TAG_DENSE);
            out.push(precision_code(tile.precision));
            put_u32(out, tile.rows() as u32);
            put_u32(out, tile.cols() as u32);
            put_f64s(out, m.as_slice());
        }
        TileStorage::LowRank(lr) => {
            out.push(TAG_LOWRANK);
            out.push(precision_code(tile.precision));
            put_u32(out, tile.rows() as u32);
            put_u32(out, tile.cols() as u32);
            put_u32(out, lr.rank() as u32);
            put_f64s(out, lr.u.as_slice());
            put_f64s(out, lr.v.as_slice());
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireTileError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireTileError("tile payload shorter than declared"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireTileError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireTileError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, WireTileError> {
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or(WireTileError("tile element count overflows"))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                f64::from_bits(u64::from_le_bytes([
                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                ]))
            })
            .collect())
    }
}

/// Deserialize one tile from the full payload. Rejects trailing bytes —
/// a frame carries exactly one tile, extra bytes mean a framing bug.
pub fn decode_tile(buf: &[u8]) -> Result<Tile, WireTileError> {
    let mut c = Cursor { buf, pos: 0 };
    let tag = c.u8()?;
    let precision = precision_from_code(c.u8()?)?;
    let rows = c.u32()? as usize;
    let cols = c.u32()? as usize;
    let tile = match tag {
        TAG_DENSE => {
            let data = c.f64s(
                rows.checked_mul(cols)
                    .ok_or(WireTileError("tile dims overflow"))?,
            )?;
            Tile::dense(Matrix::from_vec(rows, cols, data), precision)
        }
        TAG_LOWRANK => {
            let rank = c.u32()? as usize;
            let u = c.f64s(
                rows.checked_mul(rank)
                    .ok_or(WireTileError("tile dims overflow"))?,
            )?;
            let v = c.f64s(
                cols.checked_mul(rank)
                    .ok_or(WireTileError("tile dims overflow"))?,
            )?;
            Tile::low_rank(
                LowRank {
                    u: Matrix::from_vec(rows, rank, u),
                    v: Matrix::from_vec(cols, rank, v),
                },
                precision,
            )
        }
        _ => return Err(WireTileError("unknown tile tag")),
    };
    if c.pos != buf.len() {
        return Err(WireTileError("trailing bytes after tile payload"));
    }
    Ok(tile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgs_linalg::Matrix;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn bits(t: &Tile) -> Vec<u64> {
        t.to_dense()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    }

    #[test]
    fn dense_tiles_round_trip_bitwise_in_every_precision() {
        for p in [Precision::F64, Precision::F32, Precision::F16] {
            let t = Tile::dense(rnd(13, 7, 42), p);
            let mut buf = Vec::new();
            encode_tile(&t, &mut buf);
            let back = decode_tile(&buf).unwrap();
            assert_eq!(back.precision, p);
            assert_eq!((back.rows(), back.cols()), (13, 7));
            assert!(back.is_dense());
            assert_eq!(bits(&back), bits(&t), "precision {p:?}");
        }
    }

    #[test]
    fn low_rank_tiles_round_trip_bitwise() {
        let lr = LowRank {
            u: rnd(20, 4, 7),
            v: rnd(15, 4, 8),
        };
        let t = Tile::low_rank(lr, Precision::F32);
        let mut buf = Vec::new();
        encode_tile(&t, &mut buf);
        let back = decode_tile(&buf).unwrap();
        assert_eq!(back.rank(), Some(4));
        assert_eq!(back.precision, Precision::F32);
        // Factor buffers themselves must match bitwise, not just the product.
        match (&back.storage, &t.storage) {
            (TileStorage::LowRank(a), TileStorage::LowRank(b)) => {
                assert_eq!(a.u.as_slice(), b.u.as_slice());
                assert_eq!(a.v.as_slice(), b.v.as_slice());
            }
            _ => panic!("storage kind changed over the wire"),
        }
    }

    #[test]
    fn special_values_survive_the_wire() {
        let m = Matrix::from_vec(2, 2, vec![-0.0, f64::MIN_POSITIVE, 1e-308, -1.5e300]);
        let t = Tile::dense(m, Precision::F64);
        let mut buf = Vec::new();
        encode_tile(&t, &mut buf);
        assert_eq!(bits(&decode_tile(&buf).unwrap()), bits(&t));
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        let t = Tile::dense(rnd(4, 4, 9), Precision::F64);
        let mut buf = Vec::new();
        encode_tile(&t, &mut buf);

        assert!(decode_tile(&[]).is_err());
        assert!(decode_tile(&buf[..buf.len() - 1]).is_err());
        let mut long = buf.clone();
        long.push(0);
        assert!(decode_tile(&long).is_err());
        let mut bad_tag = buf.clone();
        bad_tag[0] = 9;
        assert!(decode_tile(&bad_tag).is_err());
        let mut bad_prec = buf;
        bad_prec[1] = 7;
        assert!(decode_tile(&bad_prec).is_err());
    }
}

//! Bitwise tile (de)serialization for the sharded execution backend.
//!
//! When a tile crosses a process boundary (coordinator ↔ worker) it travels
//! as a self-describing binary payload. The encoding must be *bitwise*
//! lossless: the cross-process equivalence suite asserts sharded factors
//! equal the single-process ones bit for bit, so values go over the wire as
//! their raw IEEE-754 bit patterns, never through a decimal round trip.
//!
//! Elements are packed at the tile's **declared precision** — 8 B/elt for
//! F64, 4 B/elt for F32, 2 B/elt for F16 — so the paper's communication-
//! volume reductions (§VI) survive the wire, not just the in-memory
//! footprint. A `Tile`'s values are already rounded through its precision
//! (a constructor invariant, re-established by `enforce_precision` after
//! every kernel write), so the narrow formats represent them *exactly*:
//! packing is `f32::to_bits` / `Half::from_f64` on values that are already
//! f32- / binary16-representable, and unpacking promotes back without
//! error. decode(encode(t)) is therefore bitwise `t` at every width.
//!
//! Payload layout (all integers little-endian, elements as LE bit patterns
//! of the declared width `w = 8/4/2` for F64/F32/F16):
//!
//! ```text
//! [u8 tag: 0=dense 1=low-rank][u8 precision: 0=F64 1=F32 2=F16]
//! [u32 rows][u32 cols]
//! dense:    rows*cols elements, w bytes each (storage order)
//! low-rank: [u32 rank], rows*rank U elements, cols*rank V elements
//! ```
//!
//! so a dense payload is exactly `10 + w*rows*cols` bytes and a low-rank
//! payload `14 + w*rank*(rows+cols)` bytes ([`encoded_len`] is the closed
//! form; the sharded coordinator, the shard-plan checker and the distsim
//! projection all budget wire traffic through it).
//!
//! Decoding goes through [`Tile::dense`]/[`Tile::low_rank`], which re-round
//! the buffer through the declared precision. That is a no-op here — the
//! promoted values are already representable — so the round trip stays
//! bitwise.

use crate::tile::{Tile, TileStorage};
use xgs_kernels::{Half, Precision};
use xgs_linalg::{LowRank, Matrix};

const TAG_DENSE: u8 = 0;
const TAG_LOWRANK: u8 = 1;

/// Fixed header bytes of a dense payload (tag, precision, rows, cols).
pub const DENSE_HEADER_BYTES: usize = 10;
/// Fixed header bytes of a low-rank payload (dense header + rank).
pub const LOWRANK_HEADER_BYTES: usize = 14;

/// Structurally invalid tile payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTileError(pub &'static str);

impl std::fmt::Display for WireTileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed tile payload: {}", self.0)
    }
}

impl std::error::Error for WireTileError {}

/// Number of elements a tile ships: `rows*cols` dense, `rank*(rows+cols)`
/// low-rank. The wire conversion count for a non-F64 tile is exactly this
/// (one demotion per element at encode, one promotion at decode).
pub fn wire_elements(tile: &Tile) -> usize {
    match &tile.storage {
        TileStorage::Dense(_) => tile.rows() * tile.cols(),
        TileStorage::LowRank(lr) => lr.storage_len(),
    }
}

/// Exact encoded payload length of a dense tile: `10 + w*rows*cols`.
pub fn dense_payload_len(rows: usize, cols: usize, precision: Precision) -> usize {
    DENSE_HEADER_BYTES + precision.bytes() * rows * cols
}

/// Exact encoded payload length of a low-rank tile:
/// `14 + w*rank*(rows+cols)`.
pub fn low_rank_payload_len(rows: usize, cols: usize, rank: usize, precision: Precision) -> usize {
    LOWRANK_HEADER_BYTES + precision.bytes() * rank * (rows + cols)
}

/// Exact byte length [`encode_tile`] appends for `tile`.
pub fn encoded_len(tile: &Tile) -> usize {
    match &tile.storage {
        TileStorage::Dense(_) => dense_payload_len(tile.rows(), tile.cols(), tile.precision),
        TileStorage::LowRank(lr) => {
            low_rank_payload_len(tile.rows(), tile.cols(), lr.rank(), tile.precision)
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Pack `vs` at `precision`'s width. The values are already rounded through
/// `precision` (tile invariant), so the narrow casts are exact.
fn put_values(buf: &mut Vec<u8>, vs: &[f64], precision: Precision) {
    buf.reserve(vs.len() * precision.bytes());
    match precision {
        Precision::F64 => {
            for &v in vs {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Precision::F32 => {
            for &v in vs {
                buf.extend_from_slice(&(v as f32).to_bits().to_le_bytes());
            }
        }
        Precision::F16 => {
            for &v in vs {
                buf.extend_from_slice(&Half::from_f64(v).0.to_le_bytes());
            }
        }
    }
}

fn precision_code(p: Precision) -> u8 {
    match p {
        Precision::F64 => 0,
        Precision::F32 => 1,
        Precision::F16 => 2,
    }
}

fn precision_from_code(c: u8) -> Result<Precision, WireTileError> {
    match c {
        0 => Ok(Precision::F64),
        1 => Ok(Precision::F32),
        2 => Ok(Precision::F16),
        _ => Err(WireTileError("unknown precision code")),
    }
}

/// Serialize a tile into `out` (appends; does not clear). Appends exactly
/// [`encoded_len`]`(tile)` bytes.
pub fn encode_tile(tile: &Tile, out: &mut Vec<u8>) {
    match &tile.storage {
        TileStorage::Dense(m) => {
            out.push(TAG_DENSE);
            out.push(precision_code(tile.precision));
            put_u32(out, tile.rows() as u32);
            put_u32(out, tile.cols() as u32);
            put_values(out, m.as_slice(), tile.precision);
        }
        TileStorage::LowRank(lr) => {
            out.push(TAG_LOWRANK);
            out.push(precision_code(tile.precision));
            put_u32(out, tile.rows() as u32);
            put_u32(out, tile.cols() as u32);
            put_u32(out, lr.rank() as u32);
            put_values(out, lr.u.as_slice(), tile.precision);
            put_values(out, lr.v.as_slice(), tile.precision);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireTileError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireTileError("tile payload shorter than declared"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireTileError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireTileError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read `n` elements packed at `precision`'s width, promoted to f64.
    /// Promotion is exact at every width, so the values decode to the same
    /// f64 bit patterns the encoder started from.
    fn values(&mut self, n: usize, precision: Precision) -> Result<Vec<f64>, WireTileError> {
        let w = precision.bytes();
        let bytes = self.take(
            n.checked_mul(w)
                .ok_or(WireTileError("tile element count overflows"))?,
        )?;
        Ok(match precision {
            Precision::F64 => bytes
                .chunks_exact(8)
                .map(|c| {
                    f64::from_bits(u64::from_le_bytes([
                        c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                    ]))
                })
                .collect(),
            Precision::F32 => bytes
                .chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])) as f64)
                .collect(),
            Precision::F16 => bytes
                .chunks_exact(2)
                .map(|c| Half(u16::from_le_bytes([c[0], c[1]])).to_f64())
                .collect(),
        })
    }
}

/// Deserialize one tile from the full payload. Rejects trailing bytes —
/// a frame carries exactly one tile, extra bytes mean a framing bug.
pub fn decode_tile(buf: &[u8]) -> Result<Tile, WireTileError> {
    let mut c = Cursor { buf, pos: 0 };
    let tag = c.u8()?;
    let precision = precision_from_code(c.u8()?)?;
    let rows = c.u32()? as usize;
    let cols = c.u32()? as usize;
    let tile = match tag {
        TAG_DENSE => {
            let data = c.values(
                rows.checked_mul(cols)
                    .ok_or(WireTileError("tile dims overflow"))?,
                precision,
            )?;
            Tile::dense(Matrix::from_vec(rows, cols, data), precision)
        }
        TAG_LOWRANK => {
            let rank = c.u32()? as usize;
            // A factorization rank beyond min(rows, cols) is never produced
            // by any compressor; reject before allocating whatever the
            // frame claims.
            if rank > rows.min(cols) {
                return Err(WireTileError("low-rank rank exceeds tile dims"));
            }
            let u = c.values(
                rows.checked_mul(rank)
                    .ok_or(WireTileError("tile dims overflow"))?,
                precision,
            )?;
            let v = c.values(
                cols.checked_mul(rank)
                    .ok_or(WireTileError("tile dims overflow"))?,
                precision,
            )?;
            Tile::low_rank(
                LowRank {
                    u: Matrix::from_vec(rows, rank, u),
                    v: Matrix::from_vec(cols, rank, v),
                },
                precision,
            )
        }
        _ => return Err(WireTileError("unknown tile tag")),
    };
    if c.pos != buf.len() {
        return Err(WireTileError("trailing bytes after tile payload"));
    }
    Ok(tile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgs_linalg::Matrix;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn bits(t: &Tile) -> Vec<u64> {
        t.to_dense()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    }

    fn lr_tile(rows: usize, cols: usize, rank: usize, p: Precision, seed: u64) -> Tile {
        Tile::low_rank(
            LowRank {
                u: rnd(rows, rank, seed),
                v: rnd(cols, rank, seed + 1),
            },
            p,
        )
    }

    #[test]
    fn dense_tiles_round_trip_bitwise_in_every_precision() {
        for p in [Precision::F64, Precision::F32, Precision::F16] {
            let t = Tile::dense(rnd(13, 7, 42), p);
            let mut buf = Vec::new();
            encode_tile(&t, &mut buf);
            let back = decode_tile(&buf).unwrap();
            assert_eq!(back.precision, p);
            assert_eq!((back.rows(), back.cols()), (13, 7));
            assert!(back.is_dense());
            assert_eq!(bits(&back), bits(&t), "precision {p:?}");
        }
    }

    #[test]
    fn low_rank_tiles_round_trip_bitwise_in_every_precision() {
        for p in [Precision::F64, Precision::F32, Precision::F16] {
            let t = lr_tile(20, 15, 4, p, 7);
            let mut buf = Vec::new();
            encode_tile(&t, &mut buf);
            let back = decode_tile(&buf).unwrap();
            assert_eq!(back.rank(), Some(4));
            assert_eq!(back.precision, p);
            // Factor buffers themselves must match bitwise, not just the
            // product.
            match (&back.storage, &t.storage) {
                (TileStorage::LowRank(a), TileStorage::LowRank(b)) => {
                    assert_eq!(a.u.as_slice(), b.u.as_slice(), "precision {p:?}");
                    assert_eq!(a.v.as_slice(), b.v.as_slice(), "precision {p:?}");
                }
                _ => panic!("storage kind changed over the wire"),
            }
        }
    }

    #[test]
    fn payload_length_is_the_closed_form_at_every_width() {
        // Acceptance: an F16 dense payload is header + 2*rows*cols bytes
        // (F32: 4x, F64: 8x); low-rank: header + w*rank*(rows+cols).
        for (p, w) in [
            (Precision::F64, 8),
            (Precision::F32, 4),
            (Precision::F16, 2),
        ] {
            let t = Tile::dense(rnd(13, 7, 3), p);
            let mut buf = Vec::new();
            encode_tile(&t, &mut buf);
            assert_eq!(buf.len(), DENSE_HEADER_BYTES + w * 13 * 7, "dense {p:?}");
            assert_eq!(buf.len(), encoded_len(&t));
            assert_eq!(buf.len(), dense_payload_len(13, 7, p));

            let t = lr_tile(20, 15, 4, p, 9);
            let mut buf = Vec::new();
            encode_tile(&t, &mut buf);
            assert_eq!(
                buf.len(),
                LOWRANK_HEADER_BYTES + w * 4 * (20 + 15),
                "low-rank {p:?}"
            );
            assert_eq!(buf.len(), encoded_len(&t));
            assert_eq!(buf.len(), low_rank_payload_len(20, 15, 4, p));
        }
    }

    #[test]
    fn wire_elements_counts_shipped_values() {
        assert_eq!(
            wire_elements(&Tile::dense(rnd(13, 7, 3), Precision::F16)),
            91
        );
        assert_eq!(
            wire_elements(&lr_tile(20, 15, 4, Precision::F32, 5)),
            4 * 35
        );
    }

    #[test]
    fn special_values_survive_the_wire() {
        let m = Matrix::from_vec(2, 2, vec![-0.0, f64::MIN_POSITIVE, 1e-308, -1.5e300]);
        let t = Tile::dense(m, Precision::F64);
        let mut buf = Vec::new();
        encode_tile(&t, &mut buf);
        assert_eq!(bits(&decode_tile(&buf).unwrap()), bits(&t));
        // Narrow widths: subnormals and signed zero at that width.
        let m = Matrix::from_vec(
            2,
            2,
            vec![-0.0, 6.103515625e-5, -65504.0, 5.960464477539063e-8],
        );
        let t = Tile::dense(m, Precision::F16);
        let mut buf = Vec::new();
        encode_tile(&t, &mut buf);
        assert_eq!(bits(&decode_tile(&buf).unwrap()), bits(&t));
    }

    #[test]
    fn malformed_payloads_are_rejected_at_every_width() {
        for p in [Precision::F64, Precision::F32, Precision::F16] {
            for t in [Tile::dense(rnd(4, 4, 9), p), lr_tile(6, 5, 2, p, 11)] {
                let mut buf = Vec::new();
                encode_tile(&t, &mut buf);

                assert!(decode_tile(&[]).is_err());
                assert!(
                    decode_tile(&buf[..buf.len() - 1]).is_err(),
                    "{p:?} truncated"
                );
                let mut long = buf.clone();
                long.push(0);
                assert!(decode_tile(&long).is_err(), "{p:?} trailing");
                let mut bad_tag = buf.clone();
                bad_tag[0] = 9;
                assert!(decode_tile(&bad_tag).is_err(), "{p:?} tag");
                let mut bad_prec = buf;
                bad_prec[1] = 7;
                assert!(decode_tile(&bad_prec).is_err(), "{p:?} precision");
            }
        }
    }

    #[test]
    fn oversized_rank_is_rejected_before_allocation() {
        let t = lr_tile(6, 5, 2, Precision::F32, 13);
        let mut buf = Vec::new();
        encode_tile(&t, &mut buf);
        // Claim rank 6 > min(6, 5): must be rejected up front, not read as
        // a (huge) element count.
        buf[10..14].copy_from_slice(&6u32.to_le_bytes());
        let err = decode_tile(&buf).unwrap_err();
        assert_eq!(err.0, "low-rank rank exceeds tile dims");
        // A wildly large claimed rank must not trigger an allocation.
        buf[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_tile(&buf).is_err());
    }

    #[test]
    fn f16_payload_is_a_quarter_of_f64() {
        let mk = |p| {
            let t = Tile::dense(rnd(16, 16, 21), p);
            let mut buf = Vec::new();
            encode_tile(&t, &mut buf);
            buf.len() - DENSE_HEADER_BYTES
        };
        assert_eq!(mk(Precision::F16) * 4, mk(Precision::F64));
        assert_eq!(mk(Precision::F32) * 2, mk(Precision::F64));
    }
}

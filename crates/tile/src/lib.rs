//! Tile matrix framework with the paper's two runtime decisions.
//!
//! A covariance matrix is partitioned into `NT x NT` tiles; only the lower
//! triangle is stored (the matrix is symmetric). Each tile independently
//! carries:
//!
//! * a **structure**: dense, or tile-low-rank (`U V^T` compressed to the
//!   application accuracy, 1e-8 in the paper), decided by the
//!   *structure-aware* rule — a tile reverts to dense when its rank is high
//!   enough that TLR arithmetic would be slower (paper Fig. 5's crossover,
//!   automated by Algorithm 2's `band_size_dense` tuning);
//! * a **precision**: FP64 / FP32 / FP16, decided by the *precision-aware*
//!   rule — tile `A_ij` may be stored in a precision with unit roundoff
//!   `u_low` when `||A_ij||_F < u_high * ||A||_F / (NT * u_low)` (§VI-C),
//!   which guarantees `||Â - A||_F <= u_high ||A||_F`.
//!
//! Precision is *emulated*: buffers remain `f64` but are rounded through
//! the assigned format after generation and after every kernel that writes
//! them, reproducing the paper's storage error exactly; the reported memory
//! footprint is computed from the assigned formats (2/4/8 bytes per
//! element), matching how the paper's Fig. 9 footprints are accounted.

pub mod band;
pub mod decisions;
pub mod heatmap;
pub mod layout;
pub mod matrix;
pub mod tile;
pub mod wire;

pub use band::auto_tune_band_size;
pub use decisions::{
    precision_for_tile, precision_for_tile_with_rule, FlopKernelModel, KernelTimeModel,
    PrecisionRule,
};
pub use heatmap::{decision_heatmap, DecisionMap};
pub use layout::TileLayout;
pub use matrix::{Compressor, SymTileMatrix, TileCensus, TlrConfig, Variant};
pub use tile::{Tile, TileStorage};
pub use wire::{
    decode_tile, dense_payload_len, encode_tile, encoded_len, low_rank_payload_len, wire_elements,
    WireTileError,
};

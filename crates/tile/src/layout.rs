//! Tile partitioning of an `n x n` matrix.

/// Partition of dimension `n` into tiles of size `nb` (last tile may be
/// short).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileLayout {
    n: usize,
    nb: usize,
}

impl TileLayout {
    pub fn new(n: usize, tile_size: usize) -> TileLayout {
        assert!(n > 0 && tile_size > 0);
        TileLayout { n, nb: tile_size }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nominal tile size.
    #[inline]
    pub fn tile_size(&self) -> usize {
        self.nb
    }

    /// Number of tiles per dimension (`NT` in the paper).
    #[inline]
    pub fn nt(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// Rows (== cols) of tile index `k`.
    #[inline]
    pub fn tile_dim(&self, k: usize) -> usize {
        debug_assert!(k < self.nt());
        let start = k * self.nb;
        (self.n - start).min(self.nb)
    }

    /// Global index range covered by tile `k`.
    #[inline]
    pub fn tile_range(&self, k: usize) -> std::ops::Range<usize> {
        let start = k * self.nb;
        start..(start + self.tile_dim(k))
    }

    /// Number of stored (lower-triangle) tiles: `NT (NT + 1) / 2`.
    #[inline]
    pub fn stored_tiles(&self) -> usize {
        let nt = self.nt();
        nt * (nt + 1) / 2
    }

    /// Linear index of stored tile `(i, j)`, `i >= j`, packing the lower
    /// triangle column by column.
    #[inline]
    pub fn stored_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i >= j && i < self.nt());
        // Column j starts after columns 0..j, column c holding nt - c tiles:
        // offset = sum_{c<j} (nt - c) = j*nt - j(j-1)/2.
        let nt = self.nt();
        j * nt - j * j.saturating_sub(1) / 2 + (i - j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition() {
        let l = TileLayout::new(1000, 100);
        assert_eq!(l.nt(), 10);
        for k in 0..10 {
            assert_eq!(l.tile_dim(k), 100);
        }
        assert_eq!(l.tile_range(3), 300..400);
    }

    #[test]
    fn ragged_partition() {
        let l = TileLayout::new(1030, 100);
        assert_eq!(l.nt(), 11);
        assert_eq!(l.tile_dim(10), 30);
        assert_eq!(l.tile_range(10), 1000..1030);
    }

    #[test]
    fn single_tile() {
        let l = TileLayout::new(64, 100);
        assert_eq!(l.nt(), 1);
        assert_eq!(l.tile_dim(0), 64);
    }

    #[test]
    fn stored_index_is_a_bijection() {
        let l = TileLayout::new(700, 100);
        let nt = l.nt();
        let mut seen = vec![false; l.stored_tiles()];
        for j in 0..nt {
            for i in j..nt {
                let idx = l.stored_index(i, j);
                assert!(idx < seen.len(), "({i},{j}) -> {idx} out of range");
                assert!(!seen[idx], "({i},{j}) -> {idx} collides");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stored_index_column_zero_is_identity() {
        let l = TileLayout::new(500, 100);
        for i in 0..5 {
            assert_eq!(l.stored_index(i, 0), i);
        }
    }
}

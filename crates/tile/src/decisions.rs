//! The paper's two tile-centric runtime decisions.
//!
//! * **Precision-aware** (§VI-C): a tile may be stored in a lower precision
//!   with unit roundoff `u_low` when
//!   `||A_ij||_F < u_high * ||A||_F / (NT * u_low)`.
//!   The resulting perturbed matrix `Â` satisfies
//!   `||Â − A||_F ≤ u_high ||A||_F` — FP64-worthy accuracy from
//!   majority-low-precision storage.
//!
//! * **Structure-aware** (§V-B.2, §VI-B): right after generation/compression
//!   and before the factorization starts, estimate per tile whether dense or
//!   TLR execution of its TRSM+GEMM work is faster, given its rank and
//!   precision; high-rank tiles are translated back to dense. The time
//!   estimates come from a [`KernelTimeModel`], so the same logic runs with
//!   the analytic flop model here or the calibrated A64FX model in
//!   `xgs-perfmodel`.

use xgs_kernels::Precision;

/// How tile precisions are assigned.
///
/// The paper contrasts two schemes (Figs. 2(c) and 2(d)):
/// * the **brute-force band** structure used in its earlier work \[11,12\]:
///   FP64 inside a diagonal band, FP32 in a second band, FP16 beyond —
///   simple, but "may engender more operations than required in case
///   actual low precision tiles reside in a band region with high
///   precision";
/// * the **adaptive tile-centric** Frobenius-norm rule (§VI-C), this
///   paper's contribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecisionRule {
    /// §VI-C norm-based rule (the default).
    AdaptiveNorm,
    /// Fixed bands: `|i-j| < f64_band` → FP64, `< f32_band` → FP32,
    /// beyond → FP16 (if allowed, else FP32).
    Band { f64_band: usize, f32_band: usize },
}

/// Apply a [`PrecisionRule`] to tile `(i, j)`.
#[allow(clippy::too_many_arguments)]
pub fn precision_for_tile_with_rule(
    rule: PrecisionRule,
    i: usize,
    j: usize,
    band_pin: usize,
    tile_norm: f64,
    global_norm: f64,
    nt: usize,
    allow_fp16: bool,
) -> Precision {
    match rule {
        PrecisionRule::AdaptiveNorm => {
            precision_for_tile(i, j, band_pin, tile_norm, global_norm, nt, allow_fp16)
        }
        PrecisionRule::Band { f64_band, f32_band } => {
            let d = i.abs_diff(j);
            if d < f64_band.max(band_pin) {
                Precision::F64
            } else if d < f32_band || !allow_fp16 {
                Precision::F32
            } else {
                Precision::F16
            }
        }
    }
}

/// Decide storage precision for tile `(i, j)` with Frobenius norm
/// `tile_norm`, given the global matrix Frobenius norm and tile count `NT`.
///
/// Diagonal tiles and tiles inside the dense band (`|i - j| < band_pin`)
/// are pinned to FP64: they carry the Cholesky pivots.
/// `u_high` is FP64's unit roundoff; the candidate low precisions are tried
/// lowest-first so each tile gets the cheapest format that keeps the global
/// bound.
pub fn precision_for_tile(
    i: usize,
    j: usize,
    band_pin: usize,
    tile_norm: f64,
    global_norm: f64,
    nt: usize,
    allow_fp16: bool,
) -> Precision {
    if i.abs_diff(j) < band_pin {
        return Precision::F64;
    }
    let u_high = Precision::F64.unit_roundoff();
    let budget = |u_low: f64| u_high * global_norm / (nt as f64 * u_low);
    if allow_fp16 && tile_norm < budget(Precision::F16.unit_roundoff()) {
        return Precision::F16;
    }
    if tile_norm < budget(Precision::F32.unit_roundoff()) {
        return Precision::F32;
    }
    Precision::F64
}

/// Time model for the two kernel families the structure decision compares.
///
/// All times are per-kernel seconds on one core; only ratios matter for the
/// decision, so an analytic flop model works, and a measured model
/// (xgs-perfmodel's A64FX calibration) slots in for the paper-scale
/// simulations.
pub trait KernelTimeModel: Send + Sync {
    /// Dense `nb x nb x nb` GEMM in the given precision.
    fn dense_gemm_time(&self, nb: usize, precision: Precision) -> f64;

    /// TLR GEMM between rank-`k` tiles of size `nb` (includes the
    /// recompression of the product), FP64/FP32 only.
    fn tlr_gemm_time(&self, nb: usize, rank: usize, precision: Precision) -> f64;

    /// Dense TRSM on an `nb x nb` tile.
    fn dense_trsm_time(&self, nb: usize, precision: Precision) -> f64 {
        // TRSM is ~half a GEMM in flops.
        0.5 * self.dense_gemm_time(nb, precision)
    }

    /// TLR TRSM: triangular solve against the `V` factor only
    /// (`nb x k` panel -> nb k^2-ish work, folded into the GEMM model).
    fn tlr_trsm_time(&self, nb: usize, rank: usize, precision: Precision) -> f64 {
        self.tlr_gemm_time(nb, rank, precision) * 0.25
    }
}

/// Pure flop-count model with per-precision peak ratios; the default used
/// in tests and small runs.
///
/// Dense GEMM: `2 nb^3` flops at a compute-bound rate.
/// TLR GEMM (rank k): `~ 6 nb k^2 + 36 k^3` flops (LR product + QR/SVD
/// rounding of a 2k-wide stack) at a memory-bound rate `mem_factor` times
/// slower per flop — this produces the Fig. 5 crossover shape: TLR wins at
/// low rank, dense wins past the crossover rank.
#[derive(Clone, Copy, Debug)]
pub struct FlopKernelModel {
    /// FP64 flops/second achieved by the dense GEMM.
    pub dense_rate: f64,
    /// Effective slowdown of memory-bound TLR flops vs dense flops.
    pub mem_factor: f64,
}

impl Default for FlopKernelModel {
    fn default() -> Self {
        // Single A64FX core, SSL without sector cache (paper §VI): ~65% of
        // the ~70 Gflop/s FP64 core peak. TLR kernels observed an order of
        // magnitude lower per-flop efficiency (memory-bound).
        FlopKernelModel {
            dense_rate: 45.0e9,
            mem_factor: 9.0,
        }
    }
}

impl KernelTimeModel for FlopKernelModel {
    fn dense_gemm_time(&self, nb: usize, precision: Precision) -> f64 {
        let flops = 2.0 * (nb as f64).powi(3);
        flops / (self.dense_rate * precision.speedup_vs_f64())
    }

    fn tlr_gemm_time(&self, nb: usize, rank: usize, precision: Precision) -> f64 {
        let nb = nb as f64;
        let k = rank as f64;
        // Product of two rank-k tiles: V1^T V2 (2 nb k^2), fold (2 nb k^2),
        // rounded addition: QR on two (nb x 2k) stacks (~2 * 4 nb (2k)^2 =
        // 32 nb k^2 .. keep leading terms) + small SVD (O(k^3)).
        let flops = 6.0 * nb * k * k + 36.0 * k * k * k + 30.0 * nb * k * k;
        // TLR runs memory-bound: no FP16 and a mem_factor penalty.
        let p = match precision {
            Precision::F16 => Precision::F32,
            other => other,
        };
        flops * self.mem_factor / (self.dense_rate * p.speedup_vs_f64())
    }
}

/// The structure decision for one tile: `true` = keep/revert to dense.
///
/// Compares the modeled TRSM+GEMM time of the tile over the factorization
/// in both formats (the paper's Algorithm 2 aggregates exactly these two
/// kernels) at the tile's assigned precision.
pub fn tile_prefers_dense(
    model: &dyn KernelTimeModel,
    nb: usize,
    rank: usize,
    precision: Precision,
) -> bool {
    let dense = model.dense_gemm_time(nb, precision) + model.dense_trsm_time(nb, precision);
    // TLR never runs in FP16 (paper: low-rank path is FP64/FP32).
    let p = match precision {
        Precision::F16 => Precision::F32,
        other => other,
    };
    let tlr = model.tlr_gemm_time(nb, rank, p) + model.tlr_trsm_time(nb, rank, p);
    dense <= tlr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_pinned_to_f64() {
        let p = precision_for_tile(3, 3, 1, 1e-30, 1.0, 10, true);
        assert_eq!(p, Precision::F64);
    }

    #[test]
    fn band_pinned_to_f64() {
        assert_eq!(
            precision_for_tile(4, 2, 3, 1e-30, 1.0, 10, true),
            Precision::F64
        );
        assert_ne!(
            precision_for_tile(5, 1, 3, 1e-30, 1.0, 10, true),
            Precision::F64
        );
    }

    #[test]
    fn tiny_norm_gets_fp16_large_norm_stays_fp64() {
        let nt = 16;
        let global = 100.0;
        // Budget for FP16: u64 * 100 / (16 * u16) ~ 1.4e-12.
        assert_eq!(
            precision_for_tile(10, 0, 1, 1e-13, global, nt, true),
            Precision::F16
        );
        // Between the FP16 and FP32 budgets.
        assert_eq!(
            precision_for_tile(10, 0, 1, 1e-9, global, nt, true),
            Precision::F32
        );
        // Above the FP32 budget (~1.16e-8 * 100 / 16 ~ 1.16e-8... compute):
        assert_eq!(
            precision_for_tile(10, 0, 1, 1.0, global, nt, true),
            Precision::F64
        );
    }

    #[test]
    fn band_rule_ignores_norms() {
        let rule = PrecisionRule::Band {
            f64_band: 2,
            f32_band: 5,
        };
        // Huge-norm tile far from the diagonal still demoted by the band
        // rule (the failure mode the adaptive rule fixes).
        assert_eq!(
            precision_for_tile_with_rule(rule, 9, 0, 1, 1e9, 1.0, 10, true),
            Precision::F16
        );
        assert_eq!(
            precision_for_tile_with_rule(rule, 3, 0, 1, 1e-30, 1.0, 10, true),
            Precision::F32
        );
        assert_eq!(
            precision_for_tile_with_rule(rule, 1, 0, 1, 1e-30, 1.0, 10, true),
            Precision::F64
        );
        // Without FP16 the far band falls back to FP32.
        assert_eq!(
            precision_for_tile_with_rule(rule, 9, 0, 1, 1.0, 1.0, 10, false),
            Precision::F32
        );
    }

    #[test]
    fn adaptive_rule_via_dispatcher_matches_direct_call() {
        for norm in [1e-20, 1e-9, 1.0] {
            assert_eq!(
                precision_for_tile_with_rule(
                    PrecisionRule::AdaptiveNorm,
                    8,
                    0,
                    1,
                    norm,
                    100.0,
                    16,
                    true
                ),
                precision_for_tile(8, 0, 1, norm, 100.0, 16, true)
            );
        }
    }

    #[test]
    fn fp16_can_be_disabled() {
        assert_eq!(
            precision_for_tile(10, 0, 1, 1e-13, 100.0, 16, false),
            Precision::F32
        );
    }

    #[test]
    fn global_error_bound_holds() {
        // Synthetic: NT tiles all at their budget edge still satisfy the
        // global bound sum_ij ||E_ij||_F <= u_high ||A||_F.
        let nt = 8usize;
        let global = 1.0;
        let u_high = Precision::F64.unit_roundoff();
        let mut total_err = 0.0;
        for i in 0..nt {
            for j in 0..=i {
                // Worst-case tile: norm just below the fp16 budget, error
                // u16 * norm.
                let u_low = Precision::F16.unit_roundoff();
                let norm = u_high * global / (nt as f64 * u_low) * 0.999;
                let p = precision_for_tile(i, j, 1, norm, global, nt, true);
                let u = p.unit_roundoff();
                if i.abs_diff(j) >= 1 {
                    total_err += u * norm;
                }
            }
        }
        // NT(NT-1)/2 off-diagonal tiles, each contributing < u_high*global/NT:
        // the rule is conservative by ~2/(NT-1) here.
        assert!(total_err <= u_high * global * nt as f64);
    }

    #[test]
    fn flop_model_has_a_rank_crossover() {
        let m = FlopKernelModel::default();
        let nb = 512;
        // Low rank: TLR much faster.
        assert!(!tile_prefers_dense(&m, nb, 10, Precision::F64));
        // Full-ish rank: dense faster.
        assert!(tile_prefers_dense(&m, nb, nb / 2, Precision::F64));
        // Crossover is monotone: find it and check ordering.
        let mut crossover = None;
        for k in 1..nb {
            if tile_prefers_dense(&m, nb, k, Precision::F64) {
                crossover = Some(k);
                break;
            }
        }
        let k0 = crossover.expect("crossover must exist");
        assert!(k0 > 16 && k0 < nb, "crossover {k0} out of plausible range");
    }

    #[test]
    fn lower_precision_shrinks_the_crossover_window_for_dense() {
        // FP16 makes dense cheaper but TLR caps at FP32, so the dense
        // format wins from a smaller rank on.
        let m = FlopKernelModel::default();
        let nb = 512;
        let cross = |p: Precision| {
            (1..nb)
                .find(|&k| tile_prefers_dense(&m, nb, k, p))
                .unwrap_or(nb)
        };
        assert!(cross(Precision::F16) <= cross(Precision::F32));
        assert!(cross(Precision::F32) <= cross(Precision::F64));
    }
}

//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. **precision rule** — the paper's adaptive tile-centric norm rule
//!    (Fig. 2d) vs the earlier brute-force band scheme (Fig. 2c), at equal
//!    accuracy targets: the adaptive rule should find at least as many
//!    low-precision tiles *without* breaking the global error bound, while
//!    a band scheme either wastes precision or destroys accuracy;
//! 2. **TLR tolerance sweep** — accuracy/footprint trade-off at
//!    1e-4 … 1e-12 (the paper fixes 1e-8);
//! 3. **tile size sweep** — generation+factorization time and footprint vs
//!    `nb` (the paper uses 800–2700 depending on experiment).
//!
//! ```text
//! cargo run -p xgs-bench --release --bin ablation_decisions
//! ```

use xgs_bench::{env_usize, sites, timed};
use xgs_cholesky::TiledFactor;
use xgs_covariance::{covariance_matrix, Matern, MaternParams};
use xgs_tile::{PrecisionRule, SymTileMatrix, TlrConfig, Variant};

fn precision_rule_panel(n: usize) {
    println!("-- ablation 1: adaptive norm rule vs band rule (n = {n}, tile 64) --");
    let locs = sites(n, 14.0, 3);
    let kernel = Matern::new(MaternParams::new(0.67, 0.17, 0.44));
    let exact = covariance_matrix(&kernel, &locs);
    let model = xgs_bench::demo_model();
    println!(
        "{:>24} | {:>12} {:>14} {:>12}",
        "rule", "footprint", "storage err", "factor ok"
    );
    let mut cfgs: Vec<(String, TlrConfig)> = Vec::new();
    let base = TlrConfig::new(Variant::MpDense, 64);
    cfgs.push(("adaptive-norm".into(), base));
    for (f64_band, f32_band) in [(2usize, 6usize), (4, 10), (8, 16)] {
        let mut c = base;
        c.precision_rule = PrecisionRule::Band { f64_band, f32_band };
        cfgs.push((format!("band({f64_band},{f32_band})"), c));
    }
    for (label, cfg) in cfgs {
        let m = SymTileMatrix::generate(&kernel, &locs, cfg, &model);
        let fp = m.footprint_bytes();
        let err = m.to_dense().add_scaled(-1.0, &exact).norm_fro() / exact.norm_fro();
        let mut f = TiledFactor::from_matrix(m);
        let ok = f.factorize_seq().is_ok();
        println!(
            "{label:>24} | {:>10.1} MB {:>14.2e} {:>12}",
            fp as f64 / 1e6,
            err,
            if ok { "yes" } else { "NOT SPD" }
        );
    }
    println!(
        "\nthe adaptive rule keeps the relative storage error at the FP64 level\n\
         (~1e-16) by construction; band schemes trade accuracy for footprint\n\
         blindly — aggressive bands can lose positive definiteness outright.\n"
    );
}

fn tolerance_panel(n: usize) {
    println!("-- ablation 2: TLR tolerance sweep (n = {n}, tile 64, paper uses 1e-8) --");
    let locs = sites(n, 14.0, 5);
    let kernel = Matern::new(MaternParams::new(0.67, 0.17, 0.44));
    let exact = covariance_matrix(&kernel, &locs);
    let model = xgs_bench::demo_model();
    println!(
        "{:>10} | {:>12} {:>14} {:>10}",
        "tol", "footprint", "matrix err", "max rank"
    );
    for tol in [1e-4, 1e-6, 1e-8, 1e-10, 1e-12] {
        let mut cfg = TlrConfig::new(Variant::MpDenseTlr, 64);
        cfg.tlr_tolerance = tol;
        cfg.allow_fp16 = false; // isolate the TLR error from precision error
        let m = SymTileMatrix::generate(&kernel, &locs, cfg, &model);
        let err = m.to_dense().add_scaled(-1.0, &exact).norm_fro() / exact.norm_fro();
        let max_rank = m.tiles.iter().filter_map(|t| t.rank()).max().unwrap_or(0);
        println!(
            "{tol:>10.0e} | {:>10.1} MB {:>14.2e} {:>10}",
            m.footprint_bytes() as f64 / 1e6,
            err,
            max_rank
        );
    }
    println!();
}

fn tile_size_panel(n: usize) {
    println!("-- ablation 3: tile size sweep (n = {n}, MP+dense/TLR) --");
    let locs = sites(n, 14.0, 7);
    let kernel = Matern::new(MaternParams::new(0.67, 0.17, 0.44));
    let model = xgs_bench::demo_model();
    println!(
        "{:>6} {:>5} | {:>12} {:>12} {:>12}",
        "nb", "NT", "generate (s)", "factor (s)", "footprint"
    );
    for nb in [32usize, 48, 64, 96, 128] {
        let cfg = TlrConfig::new(Variant::MpDenseTlr, nb);
        let (m, gen_s) = timed(|| SymTileMatrix::generate(&kernel, &locs, cfg, &model));
        let fp = m.footprint_bytes();
        let nt = m.nt();
        let mut f = TiledFactor::from_matrix(m);
        let (res, fac_s) = timed(|| f.factorize_seq());
        res.unwrap();
        println!(
            "{nb:>6} {nt:>5} | {gen_s:>12.2} {fac_s:>12.2} {:>10.1} MB",
            fp as f64 / 1e6
        );
    }
    println!("\nsmall tiles expose more tasks (shorter critical path) but raise");
    println!("per-tile overheads; the paper picks 800 (Fig. 7) to 2700 (Fig. 9).");
}

fn main() {
    let n = env_usize("XGS_N", 1024);
    precision_rule_panel(n);
    tolerance_panel(n);
    tile_size_panel(n);
}

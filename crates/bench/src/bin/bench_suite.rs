//! The per-PR perf trajectory record: one binary, one JSON.
//!
//! Runs the four throughput surfaces every speed claim in ROADMAP.md
//! rests on — raw GEMM (naive vs cache-blocked at the same size), MLE
//! fit, batch kriging, and the live prediction service under loadgen —
//! and writes `results/BENCH_<pr>.json` so successive PRs leave a
//! comparable trail. Latencies are medians over `XGS_REPS` repetitions;
//! the serve sections report loadgen's p50/p99 for BOTH frontends
//! (thread-per-connection under `"serve"`, epoll reactor under
//! `"serve_reactor"`), and the two replays of the same seeded stream must
//! agree on the response checksum.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin bench_suite
//! XGS_BENCH_OUT=results/BENCH_9.json XGS_REPS=5 cargo run -p xgs-bench --release --bin bench_suite
//! ```

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use xgs_bench::{demo_model, env_usize, quartiles, random_buffer, timed};
use xgs_cholesky::TiledFactor;
use xgs_core::mle::FitOptimizer;
use xgs_core::{fit, krige, FitOptions, ModelFamily, PsoOptions};
use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
use xgs_kernels::{gemm, gemm_naive, Trans};
use xgs_server::{
    build_plan, loadgen, serve, Frontend, LoadgenConfig, ModelRegistry, ServerConfig,
};
use xgs_tile::{SymTileMatrix, TlrConfig, Variant};

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut secs: Vec<f64> = (0..reps).map(|_| timed(&mut f).1).collect();
    let (_, median, _) = quartiles(&mut secs);
    median
}

fn main() {
    let reps = env_usize("XGS_REPS", 3);
    let out = std::env::var("XGS_BENCH_OUT").unwrap_or_else(|_| "results/BENCH_9.json".into());
    let pool0 = rayon::global_pool_stats();
    println!(
        "-- bench suite: {} pool workers, {reps} reps, out = {out} --",
        pool0.threads
    );

    // 1. GEMM: the ISSUE's headline number. Same size, same inputs, the
    // naive triple loop vs the dispatching entry point (which takes the
    // blocked path at this size). FLOP count is 2*m*n*k.
    let nk = env_usize("XGS_GEMM_N", 256);
    let a = random_buffer(nk * nk, 11);
    let b = random_buffer(nk * nk, 13);
    let mut c = vec![0.0f64; nk * nk];
    let flops = 2.0 * (nk as f64).powi(3);
    let naive = median_secs(reps, || {
        gemm_naive(
            Trans::No,
            Trans::No,
            nk,
            nk,
            nk,
            1.0,
            &a,
            nk,
            &b,
            nk,
            0.0,
            &mut c,
            nk,
        )
    });
    let blocked = median_secs(reps, || {
        gemm(
            Trans::No,
            Trans::No,
            nk,
            nk,
            nk,
            1.0,
            &a,
            nk,
            &b,
            nk,
            0.0,
            &mut c,
            nk,
        )
    });
    println!(
        "gemm {nk}: naive {:.2} GF/s, blocked {:.2} GF/s ({:.2}x)",
        flops / naive / 1e9,
        flops / blocked / 1e9,
        naive / blocked
    );

    // 2. Fit: a small PSO MLE over the mixed-precision engine.
    let n_fit = env_usize("XGS_FIT_N", 400);
    let mut rng = StdRng::seed_from_u64(5);
    let mut locs = jittered_grid(n_fit, &mut rng);
    morton_order(&mut locs);
    let kernel = Matern::new(MaternParams::new(1.0, 0.1, 0.5));
    let z = xgs_core::simulate_field(&kernel, &locs, 6);
    let model = demo_model();
    let cfg = TlrConfig::new(Variant::MpDense, 64);
    let opts = FitOptions {
        optimizer: FitOptimizer::ParticleSwarm(PsoOptions {
            particles: 8,
            iterations: 5,
            ..PsoOptions::default()
        }),
        ..FitOptions::default()
    };
    let fit_s = median_secs(reps, || {
        let r = fit(ModelFamily::MaternSpace, &locs, &z, &cfg, &model, &opts);
        assert!(r.llh.is_finite());
    });
    println!("fit n={n_fit}: {fit_s:.3} s");

    // 3. Predict: batch kriging throughput against a prebuilt factor.
    let n_pred = env_usize("XGS_PRED_N", 1000);
    let factor = {
        let m = SymTileMatrix::generate(&kernel, &locs, cfg, &model);
        let mut f = TiledFactor::from_matrix(m);
        f.factorize_seq().expect("SPD");
        f
    };
    let mut prng = StdRng::seed_from_u64(17);
    let targets = jittered_grid(n_pred, &mut prng);
    let pred_s = median_secs(reps, || {
        let r = krige(&kernel, &locs, &z, &factor, &targets, true);
        assert_eq!(r.mean.len(), n_pred);
    });
    println!(
        "predict {n_pred} pts: {pred_s:.3} s ({:.0} pts/s)",
        n_pred as f64 / pred_s
    );

    // 4. Serve: in-process server + loadgen, the same loop the CI smoke
    // step drives across a process boundary — once per frontend, over one
    // shared registry, with the same seeded stream. Identical checksums
    // prove the frontends return bitwise-identical predictions.
    let (plan, _llh) = build_plan(
        ModelFamily::MaternSpace,
        &[1.0, 0.1, 0.5],
        Variant::MpDense,
        64,
        locs.clone(),
        &z,
        2,
    )
    .expect("plan builds");
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("default", plan);
    let serve_bench = |frontend: Frontend| {
        let handle = serve(
            &ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                solvers: 2,
                frontend,
                ..ServerConfig::default()
            },
            registry.clone(),
        )
        .expect("bind loopback");
        let report = loadgen::run(&LoadgenConfig {
            addr: handle.addr().to_string(),
            requests: env_usize("XGS_SERVE_REQS", 300),
            conns: 4,
            points: 4,
            uncertainty: true,
            seed: 42,
            connect_timeout: Duration::from_secs(5),
            shutdown: true,
            ..LoadgenConfig::default()
        })
        .expect("loadgen");
        assert_eq!(report.errors, 0, "{}", report.summary());
        handle.join();
        report
    };
    let report = serve_bench(Frontend::Threaded);
    println!("serve (threaded): {}", report.summary());
    let reactor_report = serve_bench(Frontend::Reactor);
    println!("serve (reactor):  {}", reactor_report.summary());
    assert_eq!(
        report.checksum, reactor_report.checksum,
        "frontends disagree on response payloads"
    );

    let pool = rayon::global_pool_stats().since(&pool0);
    let json = format!(
        concat!(
            "{{\"pr\":9,",
            "\"pool\":{{\"workers\":{},\"jobs\":{},\"inline_jobs\":{},\"steals\":{}}},",
            "\"gemm\":{{\"n\":{},\"naive_s\":{:.6},\"blocked_s\":{:.6},",
            "\"naive_gflops\":{:.3},\"blocked_gflops\":{:.3},\"speedup\":{:.3}}},",
            "\"fit\":{{\"n\":{},\"median_s\":{:.4}}},",
            "\"predict\":{{\"points\":{},\"median_s\":{:.4},\"points_per_s\":{:.1}}},",
            "\"serve\":{{\"frontend\":\"threaded\",\"requests\":{},\"throughput_rps\":{:.1},",
            "\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"checksum\":\"{:016x}\"}},",
            "\"serve_reactor\":{{\"frontend\":\"reactor\",\"requests\":{},\"throughput_rps\":{:.1},",
            "\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"checksum\":\"{:016x}\"}}}}"
        ),
        pool0.threads,
        pool.jobs,
        pool.inline_jobs,
        pool.steals,
        nk,
        naive,
        blocked,
        flops / naive / 1e9,
        flops / blocked / 1e9,
        naive / blocked,
        n_fit,
        fit_s,
        n_pred,
        pred_s,
        n_pred as f64 / pred_s,
        report.sent,
        report.throughput,
        report.p50_ms,
        report.p99_ms,
        report.checksum,
        reactor_report.sent,
        reactor_report.throughput,
        reactor_report.p50_ms,
        reactor_report.p99_ms,
        reactor_report.checksum,
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write bench json");
    println!("wrote {out}");
}

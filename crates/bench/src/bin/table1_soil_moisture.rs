//! Paper Table I: qualitative MLE assessment on the soil-moisture dataset.
//!
//! The Mississippi-basin soil-moisture data (1M training / 100K test
//! sites) is not redistributable; per DESIGN.md §2 we simulate a field with
//! the paper's *estimated* parameters — medium correlation, rough field:
//! `θ = (0.67, 0.17, 0.44)` — and fit the three variants. The pass
//! criterion is the paper's: near-identical estimates, log-likelihood, and
//! MSPE across variants.
//!
//! ```text
//! XGS_N=2000 cargo run -p xgs-bench --release --bin table1_soil_moisture
//! ```

use xgs_bench::env_usize;
use xgs_core::mle::FitOptimizer;
use xgs_core::{run_pipeline, FitOptions, ModelFamily, NelderMeadOptions, PipelineConfig};
use xgs_tile::Variant;

fn main() {
    let n = env_usize("XGS_N", 1000);
    let cfg = PipelineConfig {
        family: ModelFamily::MaternSpace,
        true_params: vec![0.67, 0.17, 0.44],
        n_train: n,
        n_test: n / 10,
        time_slots: 1,
        domain_size: 14.0,
        tile_size: (n / 10).max(50),
        variants: vec![Variant::DenseF64, Variant::MpDense, Variant::MpDenseTlr],
        fit: FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                max_evals: env_usize("XGS_EVALS", 80),
                f_tol: 1e-5,
                initial_step: 0.3,
            }),
            start: Some(vec![1.0, 0.5, 0.5]),
            workers: env_usize("XGS_WORKERS", 0),
            shard: None,
        },
        seed: 20040101,
    };

    println!(
        "Table I reproduction (synthetic stand-in, {} train / {} test; paper: 1M / 100K)",
        cfg.n_train, cfg.n_test
    );
    println!("truth θ = (0.67, 0.17, 0.44) — the paper's soil-moisture estimates\n");
    // Demo-size tiles: the calibrated A64FX model's TLR crossover (~nb/13.5)
    // would keep every small tile dense, which is correct for the hardware
    // but hides the TLR machinery at reduced scale; drop the memory-bound
    // penalty so the structure decision engages (paper-scale studies use the
    // calibrated model in xgs-perfmodel).
    let model = xgs_bench::demo_model();
    let report = run_pipeline(&cfg, &model);
    println!("{}", report.render(ModelFamily::MaternSpace));
    println!("paper Table I (for reference):");
    println!("  Dense FP64    0.6720 0.1730 0.4358  llh -52185.7336  MSPE 0.0330");
    println!("  MP+dense      0.6751 0.1740 0.4357  llh -52185.7643  MSPE 0.0330");
    println!("  MP+dense/TLR  0.6621 0.1882 0.3921  llh -52188.2341  MSPE 0.0332");

    // `--metrics <path>` (or XGS_METRICS): runtime metrics merged over
    // every factorization of every variant's fit.
    if let Some(path) = xgs_bench::metrics_path() {
        let mut merged: Option<xgs_runtime::MetricsReport> = None;
        for row in &report.rows {
            if let Some(m) = &row.fit.metrics {
                match merged.as_mut() {
                    Some(total) => total.merge(m),
                    None => merged = Some(m.clone()),
                }
            }
        }
        match merged {
            Some(m) => xgs_bench::write_metrics(&path, &m),
            None => eprintln!(
                "--metrics: no runtime metrics collected (sequential engine; \
                 set XGS_WORKERS > 1)"
            ),
        }
    }
}

//! Paper Fig. 10: time-to-solution of the three Cholesky variants for
//! Matérn 2D space on 2048 / 4096 / 8192 / 16384 modeled Fugaku nodes,
//! under weak / medium / strong correlation.
//!
//! The paper's headline: MP+dense/TLR reaches up to **12x** over dense
//! FP64 at 16K nodes with weak correlation (9M matrix, dense hosted
//! hypothetically — it exceeds node memory), with the gain shrinking as
//! correlation strengthens.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin fig10_variants_scale
//! ```

use xgs_perfmodel::{project, Correlation, Projection, ScaleConfig, SolverVariant};

struct Row {
    correlation: &'static str,
    n: usize,
    nodes: usize,
    variant: &'static str,
    projection: Projection,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "{{\"correlation\":\"{}\",\"n\":{},\"nodes\":{},\"variant\":\"{}\",\"projection\":{}}}",
            self.correlation,
            self.n,
            self.nodes,
            self.variant,
            self.projection.to_json()
        )
    }
}

fn main() {
    let mut json_rows: Vec<Row> = Vec::new();
    let nb = 800;
    let cases: [(usize, usize); 4] = [
        (1_000_000, 2048),
        (2_000_000, 4096),
        (4_000_000, 8192),
        (9_000_000, 16384),
    ];

    for corr in [Correlation::Weak, Correlation::Medium, Correlation::Strong] {
        println!(
            "== {} correlation (Matérn range {}) ==",
            corr.name(),
            corr.range()
        );
        println!(
            "{:>10} {:>7} | {:>11} {:>11} {:>11} | {:>8} {:>16}",
            "n", "nodes", "fp64 (s)", "mp (s)", "mp+tlr (s)", "speedup", "tlr footprint"
        );
        for (n, nodes) in cases {
            let d = project(&ScaleConfig::new(
                n,
                nb,
                nodes,
                corr,
                SolverVariant::DenseF64,
            ));
            let m = project(&ScaleConfig::new(
                n,
                nb,
                nodes,
                corr,
                SolverVariant::MpDense,
            ));
            let t = project(&ScaleConfig::new(
                n,
                nb,
                nodes,
                corr,
                SolverVariant::MpDenseTlr,
            ));
            for (variant, p) in [("dense-fp64", d), ("mp-dense", m), ("mp-dense-tlr", t)] {
                json_rows.push(Row {
                    correlation: corr.name(),
                    n,
                    nodes,
                    variant,
                    projection: p,
                });
            }
            println!(
                "{:>10} {:>7} | {:>11.1} {:>11.1} {:>11.1} | {:>7.1}x {:>13.0} GB{}",
                n,
                nodes,
                d.makespan,
                m.makespan,
                t.makespan,
                d.makespan / t.makespan,
                t.footprint_bytes / 1e9,
                if d.fits_in_memory {
                    ""
                } else {
                    "   [fp64 hypothetical: exceeds memory]"
                }
            );
        }
        println!();
    }
    println!("paper headline: up to 12x for MP+dense/TLR at 16K nodes, weak correlation;");
    println!("gain shrinks with stronger correlation (higher ranks, fewer low-precision tiles).");

    // Machine-readable dump for plotting.
    let json = format!(
        "[\n  {}\n]\n",
        json_rows
            .iter()
            .map(Row::to_json)
            .collect::<Vec<_>>()
            .join(",\n  ")
    );
    let path = "results/fig10.json";
    if std::fs::create_dir_all("results").is_ok() && std::fs::write(path, json).is_ok() {
        println!("\n(wrote {path})");
    }
}

//! Paper Fig. 8: SHGEMM (FP16 operands, FP32 accumulation) vs SGEMM vs
//! DGEMM throughput.
//!
//! The paper measures BLIS's SHGEMM against SSL SGEMM on A64FX and finds
//! SHGEMM *slower* than SGEMM (no hardware FP16-with-FP32-accumulation
//! path), so it falls back to SGEMM "for performance, without trading off
//! accuracy". Our emulated SHGEMM pays an explicit conversion pass and is
//! likewise expected to trail SGEMM — the same qualitative ordering.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin fig8_shgemm
//! ```

use xgs_bench::{random_buffer, timed};
use xgs_kernels::{demote_f64_to_f16, gemm, gemm_flops, shgemm, Half, Trans};

fn main() {
    println!("GEMM throughput on this machine (column: Gflop/s, best of 3)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>14}",
        "n", "dgemm", "sgemm", "shgemm", "shgemm/sgemm"
    );
    for n in [64usize, 128, 256, 384, 512] {
        let a64 = random_buffer(n * n, 1);
        let b64 = random_buffer(n * n, 2);
        let a32: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
        let mut a16 = vec![Half::ZERO; n * n];
        let mut b16 = vec![Half::ZERO; n * n];
        demote_f64_to_f16(&a64, &mut a16);
        demote_f64_to_f16(&b64, &mut b16);
        let flops = gemm_flops(n, n, n);

        let mut c64 = vec![0f64; n * n];
        let mut t_d = f64::INFINITY;
        for _ in 0..3 {
            let (_, s) = timed(|| {
                gemm(
                    Trans::No,
                    Trans::Yes,
                    n,
                    n,
                    n,
                    1.0,
                    &a64,
                    n,
                    &b64,
                    n,
                    0.0,
                    &mut c64,
                    n,
                )
            });
            t_d = t_d.min(s);
        }

        let mut c32 = vec![0f32; n * n];
        let mut t_s = f64::INFINITY;
        for _ in 0..3 {
            let (_, s) = timed(|| {
                gemm(
                    Trans::No,
                    Trans::Yes,
                    n,
                    n,
                    n,
                    1.0f32,
                    &a32,
                    n,
                    &b32,
                    n,
                    0.0,
                    &mut c32,
                    n,
                )
            });
            t_s = t_s.min(s);
        }

        let mut ch = vec![0f32; n * n];
        let mut t_h = f64::INFINITY;
        for _ in 0..3 {
            let (_, s) = timed(|| {
                shgemm(
                    Trans::No,
                    Trans::Yes,
                    n,
                    n,
                    n,
                    1.0,
                    &a16,
                    n,
                    &b16,
                    n,
                    0.0,
                    &mut ch,
                    n,
                )
            });
            t_h = t_h.min(s);
        }

        println!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2} {:>13.0}%",
            n,
            flops / t_d / 1e9,
            flops / t_s / 1e9,
            flops / t_h / 1e9,
            100.0 * t_s / t_h
        );
    }
    println!("\npaper finding: SHGEMM < SGEMM on A64FX (no native FP16+FP32-accum GEMM),");
    println!("so the application falls back to SGEMM while keeping FP16 storage.");
}

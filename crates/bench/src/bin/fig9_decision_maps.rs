//! Paper Fig. 9: adaptive decision maps for Matérn 2D space on a 1M
//! matrix with tile 2700, weak vs strong correlation, and the associated
//! memory footprints.
//!
//! Two panels:
//!
//! 1. **paper-scale (profile)** — the calibrated tile-format profiles at
//!    NT = 371 (1M / 2700), whose footprints are checked against the
//!    paper's annotations (dense 4356 GB; WC: MP 1607 GB / TLR 915 GB;
//!    SC: MP 3877 GB / TLR 1830 GB);
//! 2. **measured (small scale)** — real generated covariance matrices with
//!    both runtime decisions applied, rendered as glyph maps.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin fig9_decision_maps
//! ```

use xgs_bench::{env_usize, sites};
use xgs_covariance::{Matern, MaternParams};
use xgs_perfmodel::{footprint_bytes, Correlation, TileFormatProfile};
use xgs_tile::{decision_heatmap, SymTileMatrix, TlrConfig, Variant};

fn paper_scale_panel() {
    let nt = 1_000_000usize.div_ceil(2700);
    let nb = 2700;
    println!("-- paper-scale profiles: 1M matrix, tile {nb}, NT {nt} --");
    println!(
        "{:>12} {:>14} | {:>12} {:>12} {:>10}",
        "correlation", "variant", "GB (ours)", "GB (paper)", "cut"
    );
    let dense = {
        let mut p = TileFormatProfile::new(Correlation::Weak, nt, nb, false);
        p.u_f64 = 2.0;
        p.u_f32 = 3.0;
        footprint_bytes(&p)
    };
    let rows: [(&str, Correlation, bool, f64); 5] = [
        ("any", Correlation::Weak, false, 4356.0), // dense fp64 reference row
        ("weak", Correlation::Weak, false, 1607.0),
        ("weak", Correlation::Weak, true, 915.0),
        ("strong", Correlation::Strong, false, 3877.0),
        ("strong", Correlation::Strong, true, 1830.0),
    ];
    for (i, (label, corr, tlr, paper_gb)) in rows.into_iter().enumerate() {
        let gb = if i == 0 {
            dense / 1e9
        } else {
            footprint_bytes(&TileFormatProfile::new(corr, nt, nb, tlr)) / 1e9
        };
        let variant = match (i, tlr) {
            (0, _) => "dense-fp64",
            (_, false) => "mp-dense",
            (_, true) => "mp-dense-tlr",
        };
        println!(
            "{:>12} {:>14} | {:>12.0} {:>12.0} {:>9.0}%",
            label,
            variant,
            gb,
            paper_gb,
            100.0 * (1.0 - gb * 1e9 / dense)
        );
    }
    println!();
}

fn measured_panel() {
    let n = env_usize("XGS_N", 2048);
    let nb = 64;
    let locs = sites(n, 1.0, 9);
    // Demo-size tiles need the TLR-friendly kernel-time model; see the
    // decision_maps example for why (crossover scales with nb).
    let model = xgs_bench::demo_model();
    println!(
        "-- measured maps: n = {n}, tile {nb} (glyphs: D/s/h dense 64/32/16, L/l low-rank) --"
    );
    for (label, range) in [("weak", 0.01), ("strong", 0.3)] {
        let kernel = Matern::new(MaternParams::new(1.0, range, 0.5));
        for variant in [Variant::MpDense, Variant::MpDenseTlr] {
            let m = SymTileMatrix::generate(&kernel, &locs, TlrConfig::new(variant, nb), &model);
            let map = decision_heatmap(&m);
            let (d64, d32, d16, l64, l32) = map.fractions();
            println!(
                "{label:>8} {:<14} band={} tiles: D {:.0}% s {:.0}% h {:.0}% L {:.0}% l {:.0}% | footprint cut {:.1}%",
                variant.name(),
                m.band_size_dense,
                d64 * 100.0,
                d32 * 100.0,
                d16 * 100.0,
                l64 * 100.0,
                l32 * 100.0,
                100.0 * (1.0 - map.footprint_bytes as f64 / map.dense_f64_footprint_bytes as f64)
            );
        }
    }
    println!("\n(per-tile CSV maps: set XGS_CSV=1 to dump to stdout)");
    if env_usize("XGS_CSV", 0) == 1 {
        let kernel = Matern::new(MaternParams::new(1.0, 0.01, 0.5));
        let m = SymTileMatrix::generate(
            &kernel,
            &locs,
            TlrConfig::new(Variant::MpDenseTlr, nb),
            &model,
        );
        println!("{}", decision_heatmap(&m).to_csv());
    }
}

fn main() {
    paper_scale_panel();
    measured_panel();
}

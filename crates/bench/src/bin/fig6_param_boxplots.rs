//! Paper Fig. 6: boxplots of Matérn parameter estimates over replicated
//! synthetic space datasets, at weak/medium/strong correlation, for the
//! three solver variants.
//!
//! The paper uses 100 replicates of 50K locations; the defaults here are
//! sized for a single node (`XGS_REPS`, `XGS_N` override them). For each
//! (correlation, variant, parameter) we print the quartiles of the
//! estimates next to the true value — the textual equivalent of the
//! boxplots.
//!
//! ```text
//! XGS_REPS=100 cargo run -p xgs-bench --release --bin fig6_param_boxplots
//! ```

use xgs_bench::{env_usize, quartiles, sites};
use xgs_core::mle::FitOptimizer;
use xgs_core::{fit, FitOptions, ModelFamily, NelderMeadOptions};
use xgs_covariance::{Matern, MaternParams};
use xgs_tile::{TlrConfig, Variant};

fn main() {
    let reps = env_usize("XGS_REPS", 25);
    let n = env_usize("XGS_N", 400);
    let workers = env_usize("XGS_WORKERS", 0);
    // Domain widened so the adaptive decisions engage at reduced n (see
    // DESIGN.md §2 and the pipeline's domain_size note).
    let domain = 4.0;
    // TLR-friendly model at demo tile sizes (see table1 binary note).
    let model = xgs_bench::demo_model();
    let variants = [Variant::DenseF64, Variant::MpDense, Variant::MpDenseTlr];

    println!("Fig. 6 reproduction: {reps} synthetic datasets x {n} locations (paper: 100 x 50K)\n");

    for (label, range) in [("weak", 0.03), ("medium", 0.1), ("strong", 0.3)] {
        // The paper's per-panel truths: sigma^2 = 1, nu = 0.5, range varies.
        let truth = MaternParams::new(1.0, range * domain, 0.5);
        println!(
            "== {label} correlation: truth (variance, range, smoothness) = ({}, {}, {}) ==",
            truth.sigma2, truth.range, truth.smoothness
        );
        println!(
            "{:>14} {:>12} | {:>8} {:>8} {:>8}",
            "variant", "parameter", "q1", "median", "q3"
        );
        for variant in variants {
            let cfg = TlrConfig::new(variant, (n / 6).max(32));
            let mut est: Vec<Vec<f64>> = vec![Vec::new(); 3];
            for rep in 0..reps {
                let locs = sites(n, domain, 1000 + rep as u64);
                let z = xgs_core::simulate_field(&Matern::new(truth), &locs, 5000 + rep as u64);
                let opts = FitOptions {
                    optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                        max_evals: 70,
                        f_tol: 1e-4,
                        initial_step: 0.35,
                    }),
                    start: Some(vec![truth.sigma2, truth.range, truth.smoothness]),
                    workers,
                    shard: None,
                };
                let r = fit(ModelFamily::MaternSpace, &locs, &z, &cfg, &model, &opts);
                for (k, v) in r.theta.iter().enumerate() {
                    est[k].push(*v);
                }
            }
            for (k, name) in ["variance", "range", "smoothness"].iter().enumerate() {
                let (q1, q2, q3) = quartiles(&mut est[k]);
                println!(
                    "{:>14} {:>12} | {:>8.3} {:>8.3} {:>8.3}",
                    variant.name(),
                    name,
                    q1,
                    q2,
                    q3
                );
            }
        }
        println!();
    }
}

//! Paper Table II: qualitative MLE assessment on the evapotranspiration
//! space–time dataset.
//!
//! The NASA GES DISC ET residuals (~83K sites x 12 months) are replaced by
//! a synthetic Gneiting field with the paper's estimated parameters
//! (strong spatial correlation, medium space–time interaction β ≈ 0.186);
//! see DESIGN.md §2. The criterion again is cross-variant agreement of the
//! six estimates, llh, and MSPE.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin table2_et_spacetime
//! ```

use xgs_bench::env_usize;
use xgs_core::mle::FitOptimizer;
use xgs_core::{run_pipeline, FitOptions, ModelFamily, NelderMeadOptions, PipelineConfig};
use xgs_tile::Variant;

fn main() {
    let n = env_usize("XGS_N", 720);
    let truth = vec![1.0087, 0.38, 0.3164, 0.5, 0.9, 0.186];
    let cfg = PipelineConfig {
        family: ModelFamily::GneitingSpaceTime,
        true_params: truth.clone(),
        n_train: n,
        n_test: n / 10,
        time_slots: 12,
        domain_size: 4.0,
        tile_size: (n / 8).max(50),
        variants: vec![Variant::DenseF64, Variant::MpDense, Variant::MpDenseTlr],
        fit: FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                max_evals: env_usize("XGS_EVALS", 90),
                f_tol: 1e-5,
                initial_step: 0.25,
            }),
            start: Some(truth.clone()),
            workers: env_usize("XGS_WORKERS", 0),
            shard: None,
        },
        seed: 2021,
    };

    println!(
        "Table II reproduction (synthetic stand-in, {} train / {} test over {} slots; paper: ~1M / 100K over 12 months)",
        cfg.n_train, cfg.n_test, cfg.time_slots
    );
    println!("truth θ = {truth:?}\n");
    // Demo-size tiles: the calibrated A64FX model's TLR crossover (~nb/13.5)
    // would keep every small tile dense, which is correct for the hardware
    // but hides the TLR machinery at reduced scale; drop the memory-bound
    // penalty so the structure decision engages (paper-scale studies use the
    // calibrated model in xgs-perfmodel).
    let model = xgs_bench::demo_model();
    let report = run_pipeline(&cfg, &model);
    println!("{}", report.render(ModelFamily::GneitingSpaceTime));
    println!("paper Table II (for reference):");
    println!(
        "  Dense FP64    1.0087 3.7904 0.3164 0.0101 3.4941 0.1860  llh -136675.1  MSPE 0.9345"
    );
    println!(
        "  MP+dense      0.9428 3.8795 0.3072 0.0102 3.5858 0.1857  llh -136529.0  MSPE 0.9348"
    );
    println!(
        "  MP+dense/TLR  0.9247 3.7736 0.3068 0.0102 3.5858 0.1857  llh -136541.8  MSPE 0.9428"
    );
    println!("\nnote: the paper's strong spatial correlation regime means fewer");
    println!("low-precision/low-rank opportunities — visible here as a footprint");
    println!("closer to dense than in the Table I scenario.");
}

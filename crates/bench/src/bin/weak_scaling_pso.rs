//! Weak scaling of the training through particle-swarm optimization
//! (paper §VI-D).
//!
//! PSO "requires launching a set of independent executions for the
//! log-likelihood function", i.e. each particle is a full Cholesky that can
//! run on its own node group; iterations synchronize loosely. Two panels:
//!
//! 1. **measured** — wall time per PSO iteration as particles grow with
//!    worker budget on this machine (each objective evaluation is a real
//!    factorization);
//! 2. **modeled** — weak-scaling efficiency of `P` node groups each solving
//!    one log-likelihood of the paper-scale matrix: the groups are
//!    independent, so the only loss is the end-of-iteration reduction —
//!    effectively flat, which is why the paper reaches "effectively full
//!    Fugaku scale" this way.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin weak_scaling_pso
//! ```

use xgs_bench::{env_usize, sites, timed};
use xgs_core::mle::{FitOptimizer, FitOptions};
use xgs_core::{fit, ModelFamily, PsoOptions};
use xgs_covariance::{Matern, MaternParams};
use xgs_perfmodel::{project, Correlation, ScaleConfig, SolverVariant};
use xgs_tile::{TlrConfig, Variant};

fn main() {
    let n = env_usize("XGS_N", 400);
    let locs = sites(n, 4.0, 21);
    let truth = MaternParams::new(1.0, 0.4, 0.5);
    let z = xgs_core::simulate_field(&Matern::new(truth), &locs, 3);
    let model = xgs_bench::demo_model();
    let cfg = TlrConfig::new(Variant::MpDenseTlr, (n / 6).max(32));

    println!("-- measured: PSO training on this machine (n = {n}) --");
    println!(
        "{:>10} {:>12} {:>14}",
        "particles", "iterations", "wall (s)"
    );
    for particles in [4usize, 8, 16] {
        let opts = FitOptions {
            optimizer: FitOptimizer::ParticleSwarm(PsoOptions {
                particles,
                iterations: 4,
                parallel: true,
                ..Default::default()
            }),
            start: Some(vec![1.0, 0.4, 0.5]),
            workers: 1,
            shard: None,
        };
        let (r, secs) = timed(|| fit(ModelFamily::MaternSpace, &locs, &z, &cfg, &model, &opts));
        println!(
            "{particles:>10} {:>12} {:>14.2}   (llh {:.2})",
            4, secs, r.llh
        );
    }

    println!("\n-- modeled: independent node groups at paper scale --");
    println!(
        "one PSO iteration = one MLE Cholesky per group; groups of 2048 nodes, 1M matrix, weak corr."
    );
    println!(
        "{:>8} {:>12} {:>18} {:>12}",
        "groups", "nodes", "iter time (s)", "efficiency"
    );
    let per_group = project(&ScaleConfig::new(
        1_000_000,
        800,
        2048,
        Correlation::Weak,
        SolverVariant::MpDenseTlr,
    ));
    for groups in [1usize, 2, 4, 8, 16, 23] {
        // Weak scaling: each group works independently; the loose
        // synchronization is one small all-reduce of 3-6 scalars (lat +
        // log2(P) hops), negligible next to the factorization.
        let sync = 2e-6 * (groups as f64).log2().max(1.0);
        let iter_time = per_group.makespan + sync;
        println!(
            "{groups:>8} {:>12} {:>18.1} {:>11.1}%",
            groups * 2048,
            iter_time,
            100.0 * per_group.makespan / iter_time
        );
    }
    println!(
        "\n23 groups x 2048 nodes = 47104 nodes ~ the paper's full-Fugaku-scale\n\
         claim: weak scaling through PSO is embarrassingly parallel."
    );
}

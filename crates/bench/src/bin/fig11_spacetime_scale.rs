//! Paper Fig. 11: Matérn 2D space–time Cholesky, strong correlation, on
//! 4096 and 48384 modeled Fugaku nodes.
//!
//! The paper's findings, reproduced here as shapes:
//!
//! * on 4096 nodes MP+dense/TLR gains "slightly less than an order of
//!   magnitude" over pure dense FP64 — space–time ranks are higher and
//!   low-precision opportunities rarer than in the pure-space weak case;
//! * on 48384 nodes the superiority *shrinks further* (strong-scaling
//!   limit: "there may not be enough tasks to keep the computational
//!   resources busy") while the memory-footprint gain persists.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin fig11_spacetime_scale
//! ```

use xgs_perfmodel::{project, Correlation, ScaleConfig, SolverVariant};

fn main() {
    let nb = 800;
    println!("space-time (strong correlation) Cholesky on modeled Fugaku nodes, tile {nb}\n");
    println!(
        "{:>10} {:>7} | {:>11} {:>11} | {:>8} {:>11} {:>12}",
        "n", "nodes", "fp64 (s)", "mp+tlr (s)", "speedup", "efficiency", "mem cut"
    );
    let mut speedups = Vec::new();
    for (n, nodes) in [
        (4_000_000usize, 4096usize),
        (4_000_000, 48_384),
        (10_000_000, 48_384),
    ] {
        let d = project(&ScaleConfig::new(
            n,
            nb,
            nodes,
            Correlation::SpaceTimeStrong,
            SolverVariant::DenseF64,
        ));
        let t = project(&ScaleConfig::new(
            n,
            nb,
            nodes,
            Correlation::SpaceTimeStrong,
            SolverVariant::MpDenseTlr,
        ));
        let speedup = d.makespan / t.makespan;
        speedups.push((nodes, speedup));
        println!(
            "{:>10} {:>7} | {:>11.1} {:>11.1} | {:>7.1}x {:>10.0}% {:>11.0}%",
            n,
            nodes,
            d.makespan,
            t.makespan,
            speedup,
            100.0 * t.efficiency,
            100.0 * (1.0 - t.footprint_bytes / d.footprint_bytes)
        );
    }
    let s4096 = speedups.iter().find(|(n, _)| *n == 4096).unwrap().1;
    let s48k = speedups.iter().find(|(n, _)| *n == 48_384).unwrap().1;
    println!(
        "\nspeedup at 4096 nodes: {s4096:.1}x (paper: slightly under 10x); at 48384 nodes the\n\
         same matrix gives {s48k:.1}x — reduced, as the paper observes, because strong scaling\n\
         runs out of tasks; the memory-footprint gain remains."
    );
}

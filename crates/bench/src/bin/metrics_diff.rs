//! Compare two `--metrics` JSON exports kernel by kernel.
//!
//! Every metrics producer in the workspace — the shared-memory executor,
//! the distributed event simulator (`exageostat scale --metrics`), and the
//! prediction server (`loadgen --metrics`) — writes the same schema, so
//! any pair of runs can be diffed: before/after a code change, measured vs
//! simulated, FP64 vs mixed precision.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin metrics_diff -- base.json new.json
//! ```
//!
//! For each kernel kind: task count, total seconds and mean seconds in
//! both runs, plus the relative change of the total. Kernels present in
//! only one file show `-` on the missing side. Exit code 2 on unreadable
//! or unparsable input.
//!
//! `--assert-counts potrf,trsm,...` additionally *checks* that the two
//! runs agree on the per-kernel task counts for the listed kinds (a kind
//! missing on one side counts as 0). This is how CI proves that a real
//! sharded factorization executed exactly the task census the distributed
//! event simulator projected. Exit code 1 on any mismatch.
//!
//! `--assert-wire-equal tile,task,...` does the same for the bytes-on-wire
//! census: the listed frame kinds must agree in both frame count and total
//! bytes. A sharded run held to a `scale --metrics` projection this way
//! proves the coordinator measured exactly the closed-form TILE bytes the
//! simulator predicted. `--assert-wire-below <kind>` checks the candidate
//! moved strictly fewer bytes of that kind than the baseline (the
//! mixed-precision wire must beat dense f64, not just match it).
//!
//! `--expect-count kind=N` and `--expect-min kind=N` assert on the
//! *candidate alone*: its count for `kind` must equal (resp. reach) `N`,
//! with a missing kind counting as 0. This is how the CI chaos smoke
//! holds a fault-injected run to its recovery contract — exactly one
//! `worker_death`, at least one `panel_replay` — without needing a
//! baseline that also lost a worker. Exit code 1 on any miss.
//!
//! `--assert-checksum-equal` compares the `loadgen.checksum` field of two
//! **loadgen** report files (the order-independent FNV fold over every
//! response payload). Two replays of the same seeded stream must agree —
//! this is how CI proves the threaded and reactor frontends return
//! bitwise-identical predictions. Exit code 1 when the checksums differ
//! or either file lacks one.

use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;
use xgs_runtime::MetricsReport;

fn load(path: &str) -> Result<MetricsReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    MetricsReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn mean(total: f64, count: u64) -> f64 {
    if count > 0 {
        total / count as f64
    } else {
        0.0
    }
}

fn rel_change(base: f64, new: f64) -> String {
    if base > 0.0 {
        format!("{:+.1}%", 100.0 * (new - base) / base)
    } else if new > 0.0 {
        "new".to_string()
    } else {
        "-".to_string()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Explicit scan: `--assert-counts` consumes the next token, so a flag
    // value never masquerades as an input path.
    let mut paths: Vec<&String> = Vec::new();
    let mut assert_counts: Vec<String> = Vec::new();
    let mut assert_wire_equal: Vec<String> = Vec::new();
    let mut assert_wire_below: Vec<String> = Vec::new();
    let mut assert_checksum_equal = false;
    // (kind, n, exact): candidate-only count assertions.
    let mut expect: Vec<(String, u64, bool)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--assert-checksum-equal" => {
                assert_checksum_equal = true;
                i += 1;
            }
            "--assert-counts" => {
                let Some(list) = args.get(i + 1) else {
                    eprintln!("metrics_diff: --assert-counts needs a kind list (e.g. potrf,gemm)");
                    return ExitCode::from(2);
                };
                assert_counts.extend(list.split(',').map(|s| s.trim().to_string()));
                i += 2;
            }
            "--assert-wire-equal" => {
                let Some(list) = args.get(i + 1) else {
                    eprintln!(
                        "metrics_diff: --assert-wire-equal needs a frame kind list (e.g. tile,task)"
                    );
                    return ExitCode::from(2);
                };
                assert_wire_equal.extend(list.split(',').map(|s| s.trim().to_string()));
                i += 2;
            }
            "--assert-wire-below" => {
                let Some(list) = args.get(i + 1) else {
                    eprintln!("metrics_diff: --assert-wire-below needs a frame kind (e.g. tile)");
                    return ExitCode::from(2);
                };
                assert_wire_below.extend(list.split(',').map(|s| s.trim().to_string()));
                i += 2;
            }
            flag @ ("--expect-count" | "--expect-min") => {
                let exact = flag == "--expect-count";
                let parsed = args.get(i + 1).and_then(|spec| {
                    let (kind, n) = spec.split_once('=')?;
                    Some((kind.trim().to_string(), n.trim().parse::<u64>().ok()?))
                });
                let Some((kind, n)) = parsed else {
                    eprintln!("metrics_diff: {flag} needs kind=N (e.g. worker_death=1)");
                    return ExitCode::from(2);
                };
                expect.push((kind, n, exact));
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("metrics_diff: unknown flag '{flag}'");
                return ExitCode::from(2);
            }
            _ => {
                paths.push(&args[i]);
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: metrics_diff [--assert-counts k1,k2,..] [--assert-wire-equal k1,k2,..] \
             [--assert-wire-below k1,..] [--expect-count kind=N] [--expect-min kind=N] \
             [--assert-checksum-equal] <baseline.json> <candidate.json>"
        );
        return ExitCode::from(2);
    }
    let (base, cand) = match (load(paths[0]), load(paths[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            for r in [a.err(), b.err()].into_iter().flatten() {
                eprintln!("metrics_diff: {r}");
            }
            return ExitCode::from(2);
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "wall      {:>12.6}s -> {:>12.6}s  ({})",
        base.wall_seconds,
        cand.wall_seconds,
        rel_change(base.wall_seconds, cand.wall_seconds)
    );
    let _ = writeln!(
        out,
        "tasks     {:>12} -> {:>12}  workers {} -> {}",
        base.tasks, cand.tasks, base.workers, cand.workers
    );

    // Union of kernel kinds, baseline order first, then candidate-only.
    let mut kinds: Vec<&str> = base.kernels.iter().map(|k| k.kind).collect();
    for k in &cand.kernels {
        if !kinds.contains(&k.kind) {
            kinds.push(k.kind);
        }
    }
    let _ = writeln!(
        out,
        "{:>12} | {:>10} {:>10} | {:>12} {:>12} | {:>12} {:>12} | {:>8}",
        "kernel",
        "count A",
        "count B",
        "total A (s)",
        "total B (s)",
        "mean A (s)",
        "mean B (s)",
        "d total"
    );
    for kind in kinds {
        let a = base.kernels.iter().find(|k| k.kind == kind);
        let b = cand.kernels.iter().find(|k| k.kind == kind);
        let fmt_count = |k: Option<&xgs_runtime::KernelStats>| match k {
            Some(k) => format!("{}", k.count),
            None => "-".to_string(),
        };
        let fmt_total = |k: Option<&xgs_runtime::KernelStats>| match k {
            Some(k) => format!("{:.6}", k.total_seconds),
            None => "-".to_string(),
        };
        let fmt_mean = |k: Option<&xgs_runtime::KernelStats>| match k {
            Some(k) => format!("{:.3e}", mean(k.total_seconds, k.count)),
            None => "-".to_string(),
        };
        let delta = rel_change(
            a.map_or(0.0, |k| k.total_seconds),
            b.map_or(0.0, |k| k.total_seconds),
        );
        let _ = writeln!(
            out,
            "{:>12} | {:>10} {:>10} | {:>12} {:>12} | {:>12} {:>12} | {:>8}",
            kind,
            fmt_count(a),
            fmt_count(b),
            fmt_total(a),
            fmt_total(b),
            fmt_mean(a),
            fmt_mean(b),
            delta
        );
    }

    // Bytes-on-wire census, when either run carries one.
    if !base.wire.is_empty() || !cand.wire.is_empty() {
        let mut frame_kinds: Vec<&str> = base.wire.iter().map(|w| w.kind).collect();
        for w in &cand.wire {
            if !frame_kinds.contains(&w.kind) {
                frame_kinds.push(w.kind);
            }
        }
        let _ = writeln!(
            out,
            "{:>12} | {:>10} {:>10} | {:>14} {:>14} | {:>8}",
            "wire", "frames A", "frames B", "bytes A", "bytes B", "d bytes"
        );
        for kind in frame_kinds {
            let a = base.wire.iter().find(|w| w.kind == kind);
            let b = cand.wire.iter().find(|w| w.kind == kind);
            let fmt = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
            let _ = writeln!(
                out,
                "{:>12} | {:>10} {:>10} | {:>14} {:>14} | {:>8}",
                kind,
                fmt(a.map(|w| w.frames)),
                fmt(b.map(|w| w.frames)),
                fmt(a.map(|w| w.bytes)),
                fmt(b.map(|w| w.bytes)),
                rel_change(
                    a.map_or(0.0, |w| w.bytes as f64),
                    b.map_or(0.0, |w| w.bytes as f64)
                )
            );
        }
    }

    if let (Some(va), Some(vb)) = (&base.validation, &cand.validation) {
        let _ = writeln!(
            out,
            "validation  edges {} -> {}  skipped {} -> {}",
            va.edges_checked, vb.edges_checked, va.edges_skipped, vb.edges_skipped
        );
    }
    // Best-effort write: a reader that hangs up early (| head) is fine.
    let _ = std::io::stdout().write_all(out.as_bytes());

    let mut mismatches = 0u32;
    for kind in &assert_counts {
        let count = |r: &MetricsReport| {
            r.kernels
                .iter()
                .find(|k| k.kind == kind.as_str())
                .map_or(0, |k| k.count)
        };
        let (a, b) = (count(&base), count(&cand));
        if a != b {
            eprintln!("metrics_diff: {kind} count mismatch: {a} (baseline) != {b} (candidate)");
            mismatches += 1;
        }
    }
    let wire = |r: &MetricsReport, kind: &str| {
        r.wire
            .iter()
            .find(|w| w.kind == kind)
            .map_or((0, 0), |w| (w.frames, w.bytes))
    };
    for kind in &assert_wire_equal {
        let (af, ab) = wire(&base, kind);
        let (bf, bb) = wire(&cand, kind);
        if (af, ab) != (bf, bb) {
            eprintln!(
                "metrics_diff: {kind} wire mismatch: {af} frames / {ab} bytes (baseline) != \
                 {bf} frames / {bb} bytes (candidate)"
            );
            mismatches += 1;
        }
    }
    for (kind, n, exact) in &expect {
        let got = cand
            .kernels
            .iter()
            .find(|k| k.kind == kind.as_str())
            .map_or(0, |k| k.count);
        let ok = if *exact { got == *n } else { got >= *n };
        if !ok {
            let rel = if *exact { "==" } else { ">=" };
            eprintln!("metrics_diff: candidate {kind} count {got}, expected {rel} {n}");
            mismatches += 1;
        }
    }
    for kind in &assert_wire_below {
        let (_, ab) = wire(&base, kind);
        let (_, bb) = wire(&cand, kind);
        if bb >= ab {
            eprintln!(
                "metrics_diff: {kind} wire bytes not reduced: {bb} (candidate) >= {ab} (baseline)"
            );
            mismatches += 1;
        }
    }
    if assert_checksum_equal {
        // Loadgen reports, not MetricsReports: read the raw documents and
        // pull `loadgen.checksum` from each.
        let checksum = |path: &str| -> Option<String> {
            let text = std::fs::read_to_string(path).ok()?;
            xgs_runtime::parse_json(&text)
                .ok()?
                .get("loadgen")?
                .get("checksum")?
                .as_str()
                .map(str::to_string)
        };
        match (checksum(paths[0]), checksum(paths[1])) {
            (Some(a), Some(b)) if a == b => {
                println!("checksum   {a} == {b}");
            }
            (Some(a), Some(b)) => {
                eprintln!("metrics_diff: response checksum mismatch: {a} != {b}");
                mismatches += 1;
            }
            (a, b) => {
                for (path, side) in [(paths[0], a), (paths[1], b)] {
                    if side.is_none() {
                        eprintln!("metrics_diff: {path}: no loadgen.checksum field");
                    }
                }
                mismatches += 1;
            }
        }
    }
    if mismatches > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

//! Paper Fig. 5: dense FP64 GEMM vs TLR FP64 GEMM time (and their ratio)
//! as a function of tile rank, single core.
//!
//! Two panels are printed:
//!
//! 1. **measured** — wall time of our dense GEMM kernel vs the full TLR
//!    GEMM sequence (LR product + QR/SVD rounding) on real buffers at a
//!    locally feasible tile size;
//! 2. **modeled (tile 2700)** — the calibrated A64FX kernel model at the
//!    paper's tile size, whose crossover the paper pins at rank ~200.
//!
//! The structure-aware runtime decision (Algorithm 2's `band_size_dense`)
//! derived from the same numbers is shown at the end.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin fig5_gemm_crossover
//! ```

use xgs_bench::{random_buffer, timed};
use xgs_kernels::{gemm, Precision, Trans};
use xgs_linalg::{LowRank, Matrix};
use xgs_perfmodel::A64fxKernelModel;
use xgs_tile::{auto_tune_band_size, KernelTimeModel};

fn measured_panel(nb: usize) {
    println!("-- measured on this machine, tile size {nb}, accuracy-1e-8-style ranks --");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "rank", "dense (ms)", "tlr (ms)", "ratio"
    );
    let a = Matrix::from_vec(nb, nb, random_buffer(nb * nb, 1));
    let b = Matrix::from_vec(nb, nb, random_buffer(nb * nb, 2));
    let mut c = Matrix::from_vec(nb, nb, random_buffer(nb * nb, 3));
    // Dense GEMM time (best of 3).
    let mut dense_s = f64::INFINITY;
    for _ in 0..3 {
        let (_, s) = timed(|| {
            gemm(
                Trans::No,
                Trans::Yes,
                nb,
                nb,
                nb,
                -1.0,
                a.as_slice(),
                nb,
                b.as_slice(),
                nb,
                1.0,
                c.as_mut_slice(),
                nb,
            )
        });
        dense_s = dense_s.min(s);
    }

    for rank in [4usize, 8, 16, 32, 48, 64, 96, 128] {
        if rank * 2 > nb {
            break;
        }
        let mk = |s: u64| LowRank {
            u: Matrix::from_vec(nb, rank, random_buffer(nb * rank, s)),
            v: Matrix::from_vec(nb, rank, random_buffer(nb * rank, s + 9)),
        };
        let (a_lr, b_lr, c_lr) = (mk(10), mk(20), mk(30));
        let mut tlr_s = f64::INFINITY;
        for _ in 0..3 {
            let (_, s) = timed(|| {
                let prod = a_lr.matmul_lr_transposed(&b_lr);
                std::hint::black_box(c_lr.add_rounded(-1.0, &prod, 1e-8));
            });
            tlr_s = tlr_s.min(s);
        }
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>8.2}",
            rank,
            dense_s * 1e3,
            tlr_s * 1e3,
            dense_s / tlr_s
        );
    }
    println!();
}

fn modeled_panel() {
    let model = A64fxKernelModel::default();
    let nb = 2700;
    println!("-- modeled A64FX core, tile size {nb} (the paper's Fig. 5 setting) --");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "rank", "dense (s)", "tlr (s)", "ratio"
    );
    let dense = model.dense_gemm_time(nb, Precision::F64);
    let mut crossover = None;
    for rank in [20usize, 50, 100, 150, 200, 250, 300, 400, 600] {
        let tlr = model.tlr_gemm_time(nb, rank, Precision::F64);
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>8.2}",
            rank,
            dense,
            tlr,
            dense / tlr
        );
        if crossover.is_none() && tlr >= dense {
            crossover = Some(rank);
        }
    }
    println!(
        "\ncrossover (TLR no longer wins): rank ~{} — paper reports ~200\n",
        crossover.unwrap_or(0)
    );
}

fn band_tuning_panel() {
    // Algorithm 2 on a synthetic rank profile (high near the diagonal,
    // decaying geometrically) at the paper's tile size.
    let model = A64fxKernelModel::default();
    let nt = 371; // 1M / 2700
    let nb = 2700;
    println!("-- Algorithm 2: auto-tuned band_size_dense at tile {nb}, NT {nt} --");
    for (label, near_rank, tau) in [
        ("weak correlation", 500.0, 0.04),
        ("medium correlation", 900.0, 0.10),
        ("strong correlation", 1500.0, 0.25),
    ] {
        let ranks: Vec<(usize, usize, usize)> = (0..nt)
            .flat_map(|j| (j + 1..nt).map(move |i| (i, j)))
            .map(|(i, j)| {
                let u = (i - j) as f64 / nt as f64;
                let r = (near_rank * (-u / tau).exp()).max(12.0) as usize;
                (i, j, r.min(nb))
            })
            .collect();
        let band = auto_tune_band_size(&ranks, nt, nb, &model);
        println!("{label:>20}: band_size_dense = {band}");
    }
}

fn main() {
    let nb = xgs_bench::env_usize("XGS_FIG5_NB", 256);
    measured_panel(nb);
    modeled_panel();
    band_tuning_panel();
}

//! Paper Fig. 7: mixed-precision dense Cholesky throughput on 1024 nodes,
//! tile size 800, versus matrix size.
//!
//! The paper's panel compares dense FP64, dense FP32, and band-structured
//! mixed-precision variants, reporting sustained Tflop/s (dense-equivalent
//! flops / time) and noting 94% scaling efficiency for FP64 at 1024 nodes.
//! We replay the same DAGs through the event/analytic simulator on the
//! calibrated A64FX model.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin fig7_mp_cholesky_scale
//! ```

use xgs_perfmodel::{project, Correlation, ScaleConfig, SolverVariant};

fn main() {
    let nodes = 1024;
    let nb = 800;
    println!("Fig. 7 reproduction: Cholesky on {nodes} modeled A64FX nodes, tile {nb}\n");
    println!(
        "{:>10} | {:>12} {:>12} {:>12} | {:>9} {:>9}",
        "n", "fp64 (s)", "fp32 (s)", "mp (s)", "fp64 Tf/s", "mp Tf/s"
    );
    for n in [200_000usize, 400_000, 800_000, 1_200_000, 1_600_000] {
        let mut res = Vec::new();
        for v in [
            SolverVariant::DenseF64,
            SolverVariant::DenseF32,
            SolverVariant::MpDense,
        ] {
            // Weak correlation = the most low-precision-friendly panel.
            res.push(project(&ScaleConfig::new(
                n,
                nb,
                nodes,
                Correlation::Weak,
                v,
            )));
        }
        println!(
            "{:>10} | {:>12.2} {:>12.2} {:>12.2} | {:>9.1} {:>9.1}",
            n,
            res[0].makespan,
            res[1].makespan,
            res[2].makespan,
            res[0].flops / 1e12,
            res[2].flops / 1e12
        );
    }

    // Scaling efficiency cross-check (paper: 94% of single-node rate for
    // FP64 at 1024 nodes).
    let n = 1_600_000;
    let full = project(&ScaleConfig::new(
        n,
        nb,
        nodes,
        Correlation::Weak,
        SolverVariant::DenseF64,
    ));
    println!(
        "\nmodeled parallel efficiency at {nodes} nodes (n = {n}): {:.0}% (paper reports 94%)",
        full.efficiency * 100.0
    );
}

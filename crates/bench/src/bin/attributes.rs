//! Regenerates the paper's §II "Performance Attributes" table.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin attributes
//! ```

fn main() {
    print!("{}", xgs_perfmodel::performance_attributes());
}

//! Validator recording overhead at large NT (closes the ROADMAP item
//! "measure recording overhead at large NT in release profiles").
//!
//! Sweeps the parallel factorization with the schedule validator off,
//! sampled (`validate_every` ∈ {64, 8}), and exhaustive (`1`), plus one
//! run with the pre-execution graph checker (`XGS_PRECHECK`-style) forced
//! on and one with the dynamic vector-clock race checker
//! (`xgs_runtime::race`, normally debug-only / `XGS_RACE=1`) forced on,
//! all over the same generated matrix. The validator's cost is per
//! task-*endpoint* recording (two atomic ticks) plus a post-run edge walk;
//! the race checker's is a global-mutex clock join per declared access —
//! so overhead is expected to be flat in stride until the edge walk
//! dominates — that expectation is what this binary measures.
//!
//! ```text
//! cargo run -p xgs-bench --release --bin validator_overhead
//! XGS_N=4000 XGS_REPS=5 cargo run -p xgs-bench --release --bin validator_overhead
//! ```

use xgs_bench::{demo_model, env_usize, quartiles, sites, timed};
use xgs_cholesky::TiledFactor;
use xgs_covariance::{Matern, MaternParams};
use xgs_runtime::ExecOptions;
use xgs_tile::{SymTileMatrix, TlrConfig, Variant};

fn main() {
    let n = env_usize("XGS_N", 3000);
    let nb = env_usize("XGS_NB", 64);
    let reps = env_usize("XGS_REPS", 3);
    let workers = env_usize("XGS_WORKERS", xgs_runtime::logical_cores());
    let nt = n.div_ceil(nb);
    let tasks = nt + nt * (nt - 1) / 2 + nt * (nt * nt - 1) / 6;
    println!(
        "-- validator overhead sweep: n = {n}, nb = {nb} (NT = {nt}, {tasks} tasks), \
         {workers} workers, {reps} reps --"
    );

    let locs = sites(n, 14.0, 3);
    let kernel = Matern::new(MaternParams::new(0.67, 0.17, 0.44));
    let model = demo_model();
    let base = ExecOptions {
        validate: false,
        precheck: false,
        ..ExecOptions::default()
    };
    let configs: [(&str, ExecOptions, bool); 6] = [
        ("validate off", base, false),
        (
            "validate every 64",
            ExecOptions {
                validate: true,
                validate_every: 64,
                ..base
            },
            false,
        ),
        (
            "validate every 8",
            ExecOptions {
                validate: true,
                validate_every: 8,
                ..base
            },
            false,
        ),
        (
            "validate every 1",
            ExecOptions {
                validate: true,
                validate_every: 1,
                ..base
            },
            false,
        ),
        (
            "precheck only",
            ExecOptions {
                precheck: true,
                ..base
            },
            false,
        ),
        ("race check on", base, true),
    ];

    println!(
        "{:>18} | {:>10} {:>12} {:>12} {:>10}",
        "config", "median s", "edges chk", "edges skip", "vs off"
    );
    let mut baseline = 0.0f64;
    for (label, opts, race_on) in configs {
        // Pin the race checker per config so the release-build default
        // (off) cannot leak an `XGS_RACE` environment setting into the
        // baseline rows.
        xgs_runtime::race::set_enabled(Some(race_on));
        let mut secs = Vec::with_capacity(reps);
        let mut checked = 0u64;
        let mut skipped = 0u64;
        for _ in 0..reps {
            let f = std::sync::Arc::new(TiledFactor::from_matrix(SymTileMatrix::generate(
                &kernel,
                &locs,
                TlrConfig::new(Variant::DenseF64, nb),
                &model,
            )));
            let ((res, report), s) = timed(|| f.factorize_parallel_opts(workers, opts));
            res.expect("benchmark matrix is SPD");
            secs.push(s);
            if let Some(v) = report.metrics.and_then(|m| m.validation) {
                checked = v.edges_checked;
                skipped = v.edges_skipped;
            }
        }
        let (_, median, _) = quartiles(&mut secs);
        if label == "validate off" {
            baseline = median;
        }
        let delta = if baseline > 0.0 {
            format!("{:+.1}%", (median / baseline - 1.0) * 100.0)
        } else {
            "-".to_string()
        };
        println!("{label:>18} | {median:>10.3} {checked:>12} {skipped:>12} {delta:>10}");
    }
    xgs_runtime::race::set_enabled(None);
    let races = xgs_runtime::race::race_count();
    println!(
        "\nrecording = two relaxed-ordering ticks per sampled task; the edge walk\n\
         runs once post-factorization on the coordinator thread. The race-check\n\
         row pays a global-mutex vector-clock join per declared task access\n\
         ({races} race(s) detected — expected 0).\n"
    );
}

//! Shared helpers for the benchmark harness.
//!
//! Each paper table/figure has a dedicated binary in `src/bin/` (see
//! DESIGN.md's experiment index); the microbenchmarks live in `benches/`.
//! Binaries honour a few environment variables so the full campaign can be
//! scaled to the machine at hand:
//!
//! * `XGS_REPS` — replicate count for the Fig. 6 boxplots (default 25;
//!   paper: 100),
//! * `XGS_N` — location count for the locally-executed accuracy studies
//!   (default 1000),
//! * `XGS_WORKERS` — worker threads for parallel factorization (default:
//!   all cores).

use rand::rngs::StdRng;
use rand::SeedableRng;
use xgs_covariance::{jittered_grid, morton_order, Location};

/// Environment-variable override with default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--metrics <path>` from the binary's own argv (bench binaries take no
/// other arguments), with `XGS_METRICS=<path>` as the env-style spelling.
pub fn metrics_path() -> Option<String> {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == "--metrics")
        .and_then(|i| argv.get(i + 1).cloned())
        .or_else(|| std::env::var("XGS_METRICS").ok())
}

/// Write a runtime metrics report as JSON, with a console note.
pub fn write_metrics(path: &str, report: &xgs_runtime::MetricsReport) {
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote runtime metrics to {path}"),
        Err(e) => eprintln!("could not write metrics to {path}: {e}"),
    }
}

/// Deterministic Morton-ordered site set, optionally on a widened domain
/// (see `PipelineConfig::domain_size`).
pub fn sites(n: usize, domain: f64, seed: u64) -> Vec<Location> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut locs = jittered_grid(n, &mut rng);
    if domain != 1.0 {
        for l in &mut locs {
            l.x *= domain;
            l.y *= domain;
        }
    }
    morton_order(&mut locs);
    locs
}

/// Column-major random buffer for kernel benchmarks.
pub fn random_buffer(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// Median/quartiles of a sample (for the Fig. 6 boxplot tables).
pub fn quartiles(xs: &mut [f64]) -> (f64, f64, f64) {
    xs.sort_by(|a, b| a.total_cmp(b));
    let q = |f: f64| -> f64 {
        let pos = f * (xs.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let w = pos - lo as f64;
        xs[lo] * (1.0 - w) + xs[hi] * w
    };
    (q(0.25), q(0.5), q(0.75))
}

/// The kernel-time model for demo-scale tile sizes: drops the memory-bound
/// TLR penalty so the structure decision engages below tile ~512 (the
/// calibrated A64FX crossover ~nb/13.5 correctly rejects TLR for small
/// tiles; see DESIGN.md §5a).
pub fn demo_model() -> xgs_tile::FlopKernelModel {
    xgs_tile::FlopKernelModel {
        dense_rate: 45.0e9,
        mem_factor: 1.0,
    }
}

/// Wall-time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = std::time::Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_known_sample() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let (q1, q2, q3) = quartiles(&mut xs);
        assert_eq!(q2, 3.0);
        assert_eq!(q1, 2.0);
        assert_eq!(q3, 4.0);
    }

    #[test]
    fn env_default_used_when_unset() {
        assert_eq!(env_usize("XGS_DOES_NOT_EXIST_X", 7), 7);
    }

    #[test]
    fn sites_scale_with_domain() {
        let a = sites(100, 1.0, 3);
        let b = sites(100, 5.0, 3);
        let max_a = a.iter().map(|l| l.x.max(l.y)).fold(0.0f64, f64::max);
        let max_b = b.iter().map(|l| l.x.max(l.y)).fold(0.0f64, f64::max);
        assert!(max_b > 4.0 * max_a);
    }
}

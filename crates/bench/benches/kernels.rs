//! Criterion microbenchmarks of the tile kernels (the per-task costs the
//! performance model consumes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xgs_bench::random_buffer;
use xgs_kernels::{demote_f64_to_f16, gemm, gemm_flops, potrf, shgemm, Half, Trans};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [64usize, 128, 256] {
        group.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));
        let a = random_buffer(n * n, 1);
        let b = random_buffer(n * n, 2);
        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let mut a16 = vec![Half::ZERO; n * n];
        let mut b16 = vec![Half::ZERO; n * n];
        demote_f64_to_f16(&a, &mut a16);
        demote_f64_to_f16(&b, &mut b16);

        group.bench_with_input(BenchmarkId::new("fp64", n), &n, |bch, &n| {
            let mut cbuf = vec![0f64; n * n];
            bch.iter(|| {
                gemm(
                    Trans::No,
                    Trans::Yes,
                    n,
                    n,
                    n,
                    1.0,
                    &a,
                    n,
                    &b,
                    n,
                    0.0,
                    &mut cbuf,
                    n,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("fp32", n), &n, |bch, &n| {
            let mut cbuf = vec![0f32; n * n];
            bch.iter(|| {
                gemm(
                    Trans::No,
                    Trans::Yes,
                    n,
                    n,
                    n,
                    1.0f32,
                    &a32,
                    n,
                    &b32,
                    n,
                    0.0,
                    &mut cbuf,
                    n,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("shgemm", n), &n, |bch, &n| {
            let mut cbuf = vec![0f32; n * n];
            bch.iter(|| {
                shgemm(
                    Trans::No,
                    Trans::Yes,
                    n,
                    n,
                    n,
                    1.0,
                    &a16,
                    n,
                    &b16,
                    n,
                    0.0,
                    &mut cbuf,
                    n,
                )
            });
        });
    }
    group.finish();
}

fn bench_potrf(c: &mut Criterion) {
    let mut group = c.benchmark_group("potrf");
    for n in [64usize, 128, 256] {
        // SPD tile: B B^T + n I.
        let b = random_buffer(n * n, 3);
        let mut spd = vec![0f64; n * n];
        gemm(
            Trans::No,
            Trans::Yes,
            n,
            n,
            n,
            1.0,
            &b,
            n,
            &b,
            n,
            0.0,
            &mut spd,
            n,
        );
        for i in 0..n {
            spd[i + i * n] += n as f64;
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| {
                let mut a = spd.clone();
                potrf(n, &mut a, n).unwrap();
                a
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_potrf);
criterion_main!(benches);

//! Criterion benchmarks of the full tile Cholesky in the paper's three
//! variants (locally measured counterpart of the simulated Figs. 10/11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use xgs_bench::sites;
use xgs_cholesky::TiledFactor;
use xgs_covariance::{Matern, MaternParams};
use xgs_tile::{FlopKernelModel, SymTileMatrix, TlrConfig, Variant};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_cholesky");
    group.sample_size(10);
    let n = 768;
    let nb = 64;
    // Wide domain: the adaptive formats engage (see DESIGN.md §2).
    let locs = sites(n, 10.0, 7);
    let kernel = Matern::new(MaternParams::new(1.0, 0.17, 0.5));
    let model = FlopKernelModel {
        dense_rate: 45.0e9,
        mem_factor: 1.0,
    };

    for variant in [Variant::DenseF64, Variant::MpDense, Variant::MpDenseTlr] {
        group.bench_with_input(
            BenchmarkId::new("seq", variant.name()),
            &variant,
            |b, &variant| {
                b.iter_batched(
                    || SymTileMatrix::generate(&kernel, &locs, TlrConfig::new(variant, nb), &model),
                    |m| {
                        let mut f = TiledFactor::from_matrix(m);
                        f.factorize_seq().unwrap();
                        f
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }

    // Parallel engine (worker count = all cores; on single-core CI this
    // measures runtime overhead, on real nodes the speedup).
    group.bench_function("parallel/mp-dense-tlr", |b| {
        b.iter_batched(
            || {
                SymTileMatrix::generate(
                    &kernel,
                    &locs,
                    TlrConfig::new(Variant::MpDenseTlr, nb),
                    &model,
                )
            },
            |m| {
                let f = Arc::new(TiledFactor::from_matrix(m));
                let (res, _) = f.factorize_parallel(0);
                res.unwrap();
                f
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);

//! Criterion benchmarks of the TLR compression/rounding machinery:
//! ACA vs SVD compression of covariance-like tiles, and the rounded
//! addition at the heart of the TLR GEMM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xgs_bench::random_buffer;
use xgs_linalg::{LowRank, Matrix};

/// Smooth displaced-kernel tile: the compressible structure real
/// off-diagonal covariance tiles have.
fn smooth_tile(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let x = i as f64 / n as f64;
        let y = 3.0 + j as f64 / n as f64;
        (-(x - y).abs()).exp()
    })
}

fn bench_compressors(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    for n in [64usize, 128, 256] {
        let tile = smooth_tile(n);
        let tol = 1e-8 * tile.norm_fro();
        group.bench_with_input(BenchmarkId::new("aca", n), &n, |b, _| {
            b.iter(|| LowRank::compress_aca(&tile, tol));
        });
        group.bench_with_input(BenchmarkId::new("svd", n), &n, |b, _| {
            b.iter(|| LowRank::compress_svd(&tile, tol));
        });
    }
    group.finish();
}

fn bench_rounded_addition(c: &mut Criterion) {
    let mut group = c.benchmark_group("lr_add_rounded");
    for (n, k) in [(128usize, 8usize), (128, 24), (256, 16)] {
        let a = LowRank {
            u: Matrix::from_vec(n, k, random_buffer(n * k, 1)),
            v: Matrix::from_vec(n, k, random_buffer(n * k, 2)),
        };
        let b = LowRank {
            u: Matrix::from_vec(n, k, random_buffer(n * k, 3)),
            v: Matrix::from_vec(n, k, random_buffer(n * k, 4)),
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |bch, _| {
                bch.iter(|| a.add_rounded(-1.0, &b, 1e-8));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compressors, bench_rounded_addition);
criterion_main!(benches);

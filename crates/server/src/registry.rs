//! Registry of fitted models with cached Cholesky factors.
//!
//! The expensive part of kriging is the O(n³) factorization of Σ(θ); the
//! per-query work is only triangular solves and cross-covariance dot
//! products against the cached factor. The registry holds one
//! [`PredictionPlan`] per model name — factor, solved weights, kernel and
//! training locations — and bounds its residency two ways:
//!
//! * **capacity** — at most `capacity` plans stay cached; inserting past
//!   it evicts the least-recently-used entry (every `get` is a "use");
//! * **TTL** — entries idle longer than `ttl` are purged on the next
//!   registry operation.
//!
//! Eviction only drops the registry's own `Arc`: plans held by in-flight
//! requests (the batch queue clones the `Arc` at accept time) stay alive
//! and keep answering until the last reference drops — eviction can never
//! yank a factor out from under a running solve.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use xgs_core::{log_likelihood_engine, FactorEngine, ModelFamily, PredictionPlan};
use xgs_covariance::Location;
use xgs_tile::{FlopKernelModel, TlrConfig, Variant};

use crate::protocol::LoadRequest;

struct Entry {
    plan: Arc<PredictionPlan>,
    /// Last time a lookup touched this entry (LRU + TTL clock).
    last_used: Instant,
}

/// Shared, concurrently usable model store with LRU + TTL eviction.
pub struct ModelRegistry {
    models: Mutex<HashMap<String, Entry>>,
    /// Maximum resident plans (≥ 1).
    capacity: usize,
    /// Idle time after which an entry is purged (None = never).
    ttl: Option<Duration>,
    evictions: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> ModelRegistry {
        ModelRegistry::new()
    }
}

impl ModelRegistry {
    /// Unbounded registry (no capacity limit, no TTL).
    pub fn new() -> ModelRegistry {
        ModelRegistry::with_limits(usize::MAX, None)
    }

    /// Registry that keeps at most `capacity` plans, purging entries idle
    /// longer than `ttl`.
    pub fn with_limits(capacity: usize, ttl: Option<Duration>) -> ModelRegistry {
        ModelRegistry {
            models: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            ttl,
            evictions: AtomicU64::new(0),
        }
    }

    /// Drop entries idle past the TTL. Caller holds the lock.
    fn sweep(&self, models: &mut HashMap<String, Entry>) {
        let Some(ttl) = self.ttl else { return };
        let now = Instant::now();
        let before = models.len();
        models.retain(|_, e| now.duration_since(e.last_used) < ttl);
        self.evictions
            .fetch_add((before - models.len()) as u64, Ordering::Relaxed);
    }

    /// Insert (or replace) a model under `name`, evicting the
    /// least-recently-used entry if the registry is at capacity.
    pub fn insert(&self, name: &str, plan: Arc<PredictionPlan>) {
        let mut models = self.models.lock();
        self.sweep(&mut models);
        if models.len() >= self.capacity && !models.contains_key(name) {
            // Linear LRU scan: the registry holds a handful of plans (each
            // is an O(n²) factor), never enough to warrant an ordered map.
            if let Some(lru) = models
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                models.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        models.insert(
            name.to_string(),
            Entry {
                plan,
                last_used: Instant::now(),
            },
        );
    }

    /// Shared handle to a cached plan; refreshes its LRU/TTL clock.
    pub fn get(&self, name: &str) -> Option<Arc<PredictionPlan>> {
        let mut models = self.models.lock();
        self.sweep(&mut models);
        let e = models.get_mut(name)?;
        e.last_used = Instant::now();
        Some(e.plan.clone())
    }

    /// `(name, n_train)` pairs, sorted by name.
    pub fn list(&self) -> Vec<(String, usize)> {
        let mut models = self.models.lock();
        self.sweep(&mut models);
        let mut out: Vec<(String, usize)> = models
            .iter()
            .map(|(k, e)| (k.clone(), e.plan.n_train()))
            .collect();
        drop(models);
        out.sort();
        out
    }

    /// Total entries evicted so far (LRU + TTL).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.models.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.models.lock().is_empty()
    }
}

/// Factorize Σ(θ) for a dataset and wrap everything a query needs into a
/// cached [`PredictionPlan`]. Returns the plan and the log-likelihood at θ
/// (a cheap by-product of the factorization, reported to the client as a
/// sanity check on the loaded model). `workers = 0` lets the runtime pick.
pub fn build_plan(
    family: ModelFamily,
    theta: &[f64],
    variant: Variant,
    tile: usize,
    locs: Vec<Location>,
    z: &[f64],
    workers: usize,
) -> Result<(Arc<PredictionPlan>, f64), String> {
    build_plan_engine(
        family,
        theta,
        variant,
        tile,
        locs,
        z,
        &FactorEngine::from_workers(workers),
    )
}

/// [`build_plan`] on an explicit [`FactorEngine`] — the sharded engine fans
/// the factorization out to worker processes. Any engine failure
/// (indefinite Σ, lost worker, deadline) maps to an `Err(String)` so the
/// caller answers `ok:false` and never caches a half-built plan.
pub fn build_plan_engine(
    family: ModelFamily,
    theta: &[f64],
    variant: Variant,
    tile: usize,
    locs: Vec<Location>,
    z: &[f64],
    engine: &FactorEngine,
) -> Result<(Arc<PredictionPlan>, f64), String> {
    if theta.len() != family.n_params() {
        return Err(format!(
            "theta needs {} values, got {}",
            family.n_params(),
            theta.len()
        ));
    }
    let n = locs.len();
    let nb = if tile == 0 {
        (n / 10).clamp(32, 512)
    } else {
        tile
    };
    let cfg = TlrConfig::new(variant, nb);
    let model = FlopKernelModel::default();
    let kernel: Arc<dyn xgs_covariance::CovarianceKernel> = Arc::from(family.kernel(theta));
    let rep = log_likelihood_engine(kernel.as_ref(), &locs, z, &cfg, &model, engine)
        .map_err(|e| format!("factorization failed: {e}"))?;
    let plan = PredictionPlan::new(kernel, Arc::from(locs), z, rep.factor);
    Ok((Arc::new(plan), rep.llh))
}

/// [`build_plan_engine`] from a wire-level [`LoadRequest`].
pub fn build_plan_from_request(
    req: &LoadRequest,
    engine: &FactorEngine,
) -> Result<(Arc<PredictionPlan>, f64), String> {
    build_plan_engine(
        req.family,
        &req.theta,
        req.variant,
        req.tile,
        req.locs.clone(),
        &req.z,
        engine,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_core::simulate_field;
    use xgs_covariance::jittered_grid;

    fn small_plan(seed: u64) -> Arc<PredictionPlan> {
        let mut rng = StdRng::seed_from_u64(seed);
        let locs = jittered_grid(60, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, seed + 1);
        build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::DenseF64,
            30,
            locs,
            &z,
            1,
        )
        .unwrap()
        .0
    }

    #[test]
    fn registry_builds_caches_and_lists_models() {
        let mut rng = StdRng::seed_from_u64(11);
        let locs = jittered_grid(120, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, 12);

        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let (plan, llh) = build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::MpDense,
            40,
            locs.clone(),
            &z,
            1,
        )
        .unwrap();
        assert!(llh.is_finite());
        reg.insert("soil", plan.clone());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("soil").unwrap().n_train(), 120);
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.list(), vec![("soil".to_string(), 120)]);
        assert_eq!(reg.evictions(), 0);

        // Self-prediction through the cached plan interpolates exactly.
        let pred = plan.query(&locs[..10], false);
        for (p, t) in pred.mean.iter().zip(&z[..10]) {
            assert!((p - t).abs() < 1e-6, "{p} vs {t}");
        }

        // Bad theta arity is a clean error.
        assert!(build_plan(
            ModelFamily::MaternSpace,
            &[1.0],
            Variant::MpDense,
            40,
            locs,
            &z,
            1
        )
        .is_err());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let reg = ModelRegistry::with_limits(2, None);
        reg.insert("a", small_plan(1));
        std::thread::sleep(Duration::from_millis(2));
        reg.insert("b", small_plan(2));
        std::thread::sleep(Duration::from_millis(2));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(reg.get("a").is_some());
        std::thread::sleep(Duration::from_millis(2));
        reg.insert("c", small_plan(3));
        assert_eq!(reg.len(), 2);
        assert!(reg.get("b").is_none(), "LRU entry evicted");
        assert!(reg.get("a").is_some() && reg.get("c").is_some());
        assert_eq!(reg.evictions(), 1);

        // Replacing an existing key at capacity evicts nothing.
        reg.insert("c", small_plan(4));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.evictions(), 1);
    }

    #[test]
    fn ttl_purges_idle_entries_but_pins_live_arcs() {
        let reg = ModelRegistry::with_limits(usize::MAX, Some(Duration::from_millis(30)));
        let plan = small_plan(7);
        reg.insert("m", plan.clone());
        // A handle cloned before expiry (an "in-flight request")…
        let pinned = reg.get("m").unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert!(reg.get("m").is_none(), "idle entry expired");
        assert_eq!(reg.len(), 0);
        assert!(reg.evictions() >= 1);
        // …still answers queries after eviction: the registry only dropped
        // its own Arc.
        let q = pinned.query(&[Location::new(0.4, 0.6)], false);
        assert!(q.mean[0].is_finite());
        drop(plan);
    }
}

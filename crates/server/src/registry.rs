//! Registry of fitted models with cached Cholesky factors.
//!
//! The expensive part of kriging is the O(n³) factorization of Σ(θ); the
//! per-query work is only triangular solves and cross-covariance dot
//! products against the cached factor. The registry holds one
//! [`PredictionPlan`] per model name — factor, solved weights, kernel and
//! training locations — behind an `RwLock`, so concurrent predict
//! handlers share plans lock-free after the lookup.

use std::collections::HashMap;
use std::sync::Arc;
use xgs_core::{log_likelihood, ModelFamily, PredictionPlan};
use xgs_covariance::Location;
use xgs_tile::{FlopKernelModel, TlrConfig, Variant};

use crate::protocol::LoadRequest;

/// Shared, concurrently readable model store.
pub struct ModelRegistry {
    models: parking_lot::RwLock<HashMap<String, Arc<PredictionPlan>>>,
}

impl Default for ModelRegistry {
    fn default() -> ModelRegistry {
        ModelRegistry::new()
    }
}

impl ModelRegistry {
    pub fn new() -> ModelRegistry {
        ModelRegistry {
            models: parking_lot::RwLock::new(HashMap::new()),
        }
    }

    /// Insert (or replace) a model under `name`.
    pub fn insert(&self, name: &str, plan: Arc<PredictionPlan>) {
        self.models.write().insert(name.to_string(), plan);
    }

    /// Shared handle to a cached plan.
    pub fn get(&self, name: &str) -> Option<Arc<PredictionPlan>> {
        self.models.read().get(name).cloned()
    }

    /// `(name, n_train)` pairs, sorted by name.
    pub fn list(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .models
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.n_train()))
            .collect();
        out.sort();
        out
    }

    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

/// Factorize Σ(θ) for a dataset and wrap everything a query needs into a
/// cached [`PredictionPlan`]. Returns the plan and the log-likelihood at θ
/// (a cheap by-product of the factorization, reported to the client as a
/// sanity check on the loaded model). `workers = 0` lets the runtime pick.
pub fn build_plan(
    family: ModelFamily,
    theta: &[f64],
    variant: Variant,
    tile: usize,
    locs: Vec<Location>,
    z: &[f64],
    workers: usize,
) -> Result<(Arc<PredictionPlan>, f64), String> {
    if theta.len() != family.n_params() {
        return Err(format!(
            "theta needs {} values, got {}",
            family.n_params(),
            theta.len()
        ));
    }
    let n = locs.len();
    let nb = if tile == 0 {
        (n / 10).clamp(32, 512)
    } else {
        tile
    };
    let cfg = TlrConfig::new(variant, nb);
    let model = FlopKernelModel::default();
    let kernel: Arc<dyn xgs_covariance::CovarianceKernel> = Arc::from(family.kernel(theta));
    let rep = log_likelihood(kernel.as_ref(), &locs, z, &cfg, &model, workers)
        .map_err(|e| format!("factorization failed: {e}"))?;
    let plan = PredictionPlan::new(kernel, Arc::from(locs), z, rep.factor);
    Ok((Arc::new(plan), rep.llh))
}

/// [`build_plan`] from a wire-level [`LoadRequest`].
pub fn build_plan_from_request(req: &LoadRequest) -> Result<(Arc<PredictionPlan>, f64), String> {
    build_plan(
        req.family,
        &req.theta,
        req.variant,
        req.tile,
        req.locs.clone(),
        &req.z,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_core::simulate_field;
    use xgs_covariance::jittered_grid;

    #[test]
    fn registry_builds_caches_and_lists_models() {
        let mut rng = StdRng::seed_from_u64(11);
        let locs = jittered_grid(120, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, 12);

        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let (plan, llh) = build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::MpDense,
            40,
            locs.clone(),
            &z,
            1,
        )
        .unwrap();
        assert!(llh.is_finite());
        reg.insert("soil", plan.clone());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("soil").unwrap().n_train(), 120);
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.list(), vec![("soil".to_string(), 120)]);

        // Self-prediction through the cached plan interpolates exactly.
        let pred = plan.query(&locs[..10], false);
        for (p, t) in pred.mean.iter().zip(&z[..10]) {
            assert!((p - t).abs() < 1e-6, "{p} vs {t}");
        }

        // Bad theta arity is a clean error.
        assert!(build_plan(
            ModelFamily::MaternSpace,
            &[1.0],
            Variant::MpDense,
            40,
            locs,
            &z,
            1
        )
        .is_err());
    }
}

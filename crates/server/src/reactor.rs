//! The epoll frontend: every connection multiplexed from one event loop.
//!
//! One thread owns the listener and all connection sockets (nonblocking),
//! parked in `epoll_wait` via the `polling` shim. Readiness events drive
//! bounded line-buffered reads (same 1 MiB cap and discard-to-EOL
//! semantics as the threaded frontend), request dispatch through
//! [`handle_request`], and per-connection outbound queues drained on
//! writability. Solver threads never touch a socket: a finished
//! [`Reply`] goes to the [`CompletionHub`], which wakes the loop through
//! the poller's eventfd; the loop drains the hub, records latency, and
//! queues the bytes on the owning connection.
//!
//! Invariants carried over from the threaded frontend, restated as event
//! bookkeeping:
//!
//! * **Every accepted request is answered** — each dispatched line bumps
//!   the connection's `pending` count; every hub reply decrements it; a
//!   connection is reaped only at `pending == 0` with its outbound queue
//!   flushed (or its socket dead — then replies are still drained and
//!   recorded, exactly like the threaded writer after a hangup).
//! * **Bounded buffers** — inbound partial lines are capped at
//!   [`MAX_LINE_BYTES`]; the outbound queue is capped at
//!   [`ServerConfig::max_conn_outbound`], past which the socket of a
//!   client that stopped reading is closed instead of buffering forever.
//! * **Clean close after an oversized line** — one error response, then
//!   inbound bytes are discarded until the newline (bounded by the same
//!   5 s patience as the threaded path) so the close is a FIN, not a RST.
//!
//! Health counters (`ready_event`, `wakeup`, `partial_write`,
//! `open_conns_hwm`) are flushed into [`ServerMetrics`] once per loop
//! iteration; see the metrics docs in `server.rs`.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use polling::{Event, Events, Poller};

use crate::batch::{Reply, ReplySink};
use crate::protocol::error_response;
use crate::server::{handle_request, ServerConfig, Shared, MAX_LINE_BYTES};

/// Poll key of the listening socket; connections get keys from 1 up.
const LISTENER_KEY: usize = 0;

/// Upper bound on one `epoll_wait` nap, so the shutdown flag (which can
/// rise without any socket event, e.g. via [`crate::ServerHandle`]) is
/// observed promptly — the reactor's analogue of the threaded frontend's
/// `READ_POLL` read timeout.
const WAIT_TIMEOUT: Duration = Duration::from_millis(50);

/// Read syscall granularity. Level-triggered polling re-reports leftover
/// bytes, so this bounds per-call work, not throughput.
const READ_CHUNK: usize = 64 * 1024;

/// Fairness bound: how much one connection may consume per readiness
/// event before the loop moves on. A pipelined firehose (a client
/// writing faster than its replies drain) would otherwise pin the loop
/// inside its read burst, starving completion draining — and with it the
/// outbound-cap check that protects the server from clients that never
/// read. Level-triggered polling re-reports the leftover immediately.
const READ_BUDGET: usize = 4 * READ_CHUNK;

/// How long a connection may dribble out an oversized line before the
/// reactor stops waiting for the newline and closes anyway (mirrors
/// `discard_rest_of_line`'s patience budget).
const DISCARD_PATIENCE: Duration = Duration::from_secs(5);

/// Where solver threads (and spawned `load` threads) hand finished
/// replies back to the event loop. `push` is called from any thread;
/// `drain` only from the reactor.
pub(crate) struct CompletionHub {
    done: Mutex<Vec<(u64, Reply)>>,
    poller: Arc<Poller>,
    /// eventfd notifies issued (the `wakeup` metric). Only the
    /// empty→nonempty transition notifies, so a burst of completions
    /// between two loop iterations costs one wakeup.
    notifies: AtomicU64,
    /// Key of this hub's edge in the runtime race checker: a push is a
    /// release, a drain an acquire, so everything a solver thread did
    /// before handing a reply over happens-before the reactor using it.
    race_key: u64,
}

impl CompletionHub {
    pub(crate) fn push(&self, conn: u64, reply: Reply) {
        let was_empty = {
            let mut q = self.done.lock();
            let was_empty = q.is_empty();
            q.push((conn, reply));
            was_empty
        };
        xgs_runtime::race::release(xgs_runtime::race::SPACE_HUB, self.race_key, 0);
        if was_empty {
            self.notifies.fetch_add(1, Ordering::Relaxed);
            let _ = self.poller.notify();
        }
    }

    fn drain(&self) -> Vec<(u64, Reply)> {
        xgs_runtime::race::acquire(xgs_runtime::race::SPACE_HUB, self.race_key, 0);
        std::mem::take(&mut *self.done.lock())
    }
}

/// Per-connection state. The socket stays registered for readability
/// while the connection accepts input; write interest is raised only
/// while the outbound queue holds bytes.
struct Conn {
    stream: TcpStream,
    /// Bytes of the current (incomplete) inbound line.
    inbuf: Vec<u8>,
    /// Outbound bytes not yet written; `out_head` marks the flushed
    /// prefix (drained in place, compacted when empty).
    out: Vec<u8>,
    out_head: usize,
    /// Requests dispatched but not yet answered through the hub.
    pending: usize,
    /// Dropping inbound bytes until end-of-line (after an oversized
    /// line), with the deadline after which patience runs out.
    discarding: Option<Instant>,
    /// No more input will be processed; close once `pending` and `out`
    /// drain (oversized line handled, or server shutting down).
    draining: bool,
    /// Peer sent FIN. Responses may still be owed (half-close).
    peer_eof: bool,
    /// Socket unusable (I/O error or outbound cap breach): no reads, no
    /// writes, but the entry survives until `pending` drains so every
    /// accepted request is still recorded.
    dead: bool,
    /// Interest currently registered with the poller, to skip redundant
    /// `epoll_ctl` calls.
    interest: (bool, bool),
}

impl Conn {
    fn unsent(&self) -> usize {
        self.out.len() - self.out_head
    }
}

/// The epoll frontend. Built on the `serve` thread (so bind/register
/// errors surface from [`crate::serve`]), then moved into its event-loop
/// thread, which takes the place of the threaded frontend's acceptor.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    listener: TcpListener,
    /// The server's own address (for `shutdown`-op plumbing).
    addr: SocketAddr,
    poller: Arc<Poller>,
    hub: Arc<CompletionHub>,
    max_conn_outbound: usize,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    accepting: bool,
    /// Local counter deltas, flushed to `ServerMetrics` once per iteration.
    ready_events: u64,
    partial_writes: u64,
    conns_hwm: u64,
    /// High-water mark already published to the metrics.
    hwm_published: u64,
}

impl Reactor {
    pub(crate) fn bind(
        shared: Arc<Shared>,
        listener: TcpListener,
        addr: SocketAddr,
        config: &ServerConfig,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let poller = Arc::new(Poller::new()?);
        poller.add(&listener, Event::readable(LISTENER_KEY))?;
        let hub = Arc::new(CompletionHub {
            done: Mutex::new(Vec::new()),
            poller: poller.clone(),
            notifies: AtomicU64::new(0),
            race_key: xgs_runtime::race::new_scope(),
        });
        Ok(Reactor {
            shared,
            listener,
            addr,
            poller,
            hub,
            max_conn_outbound: config.max_conn_outbound.max(1),
            conns: HashMap::new(),
            next_key: LISTENER_KEY + 1,
            accepting: true,
            ready_events: 0,
            partial_writes: 0,
            conns_hwm: 0,
            hwm_published: 0,
        })
    }

    /// The event loop. Returns after shutdown once every connection has
    /// drained — the same postcondition the threaded acceptor + handler
    /// threads reach, so [`crate::ServerHandle::join`] works unchanged.
    pub(crate) fn run(mut self) {
        let mut events = Events::new();
        let mut chunk = vec![0u8; READ_CHUNK];
        loop {
            match self.poller.wait(&mut events, Some(WAIT_TIMEOUT)) {
                Ok(_) => {}
                Err(_) => {
                    // epoll itself failing is unrecoverable; drain what we
                    // can and exit rather than spin.
                    self.shared.shutdown.store(true, Ordering::SeqCst);
                }
            }
            self.ready_events += events.len() as u64;
            let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
            if shutting_down && self.accepting {
                self.accepting = false;
                let _ = self.poller.delete(&self.listener);
            }

            for ev in events.iter() {
                if ev.key == LISTENER_KEY {
                    if self.accepting {
                        self.accept_ready();
                    }
                    continue;
                }
                if ev.readable {
                    self.read_ready(ev.key, &mut chunk);
                }
                if ev.writable {
                    self.write_ready(ev.key);
                }
            }

            self.drain_completions();

            if shutting_down {
                for conn in self.conns.values_mut() {
                    conn.draining = true;
                    conn.inbuf.clear();
                }
            }
            self.reap();
            self.flush_counters();
            if shutting_down && self.conns.is_empty() {
                return;
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let key = self.next_key;
                    self.next_key += 1;
                    if self.poller.add(&stream, Event::readable(key)).is_err() {
                        continue;
                    }
                    self.shared.open_conns.fetch_add(1, Ordering::AcqRel);
                    self.conns.insert(
                        key,
                        Conn {
                            stream,
                            inbuf: Vec::new(),
                            out: Vec::new(),
                            out_head: 0,
                            pending: 0,
                            discarding: None,
                            draining: false,
                            peer_eof: false,
                            dead: false,
                            interest: (true, false),
                        },
                    );
                    self.conns_hwm = self.conns_hwm.max(self.conns.len() as u64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // EMFILE/ENFILE or a connection that died in the backlog:
                // skip it; the listener stays registered, so later
                // connects still get their chance. The short sleep keeps a
                // persistently-failing accept (fd exhaustion) from turning
                // the level-triggered listener event into a busy spin.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    return;
                }
            }
        }
    }

    fn read_ready(&mut self, key: usize, chunk: &mut [u8]) {
        let mut consumed = 0usize;
        while consumed < READ_BUDGET {
            let result = {
                let Some(conn) = self.conns.get_mut(&key) else {
                    return;
                };
                if conn.dead || conn.draining || conn.peer_eof {
                    return;
                }
                conn.stream.read(chunk)
            };
            match result {
                Ok(0) => {
                    if let Some(conn) = self.conns.get_mut(&key) {
                        conn.peer_eof = true;
                        // A partial line at FIN has no newline and never
                        // will: dropped, same as the threaded bounded
                        // reader.
                        conn.inbuf.clear();
                        self.update_interest(key);
                    }
                    return;
                }
                Ok(n) => {
                    consumed += n;
                    if !self.ingest(key, n, chunk) {
                        self.update_interest(key);
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.kill(key);
                    return;
                }
            }
        }
    }

    /// Split `chunk[..n]` into lines, honoring discard mode and the line
    /// cap, and dispatch each complete line. Returns whether the caller
    /// should keep reading this socket.
    fn ingest(&mut self, key: usize, n: usize, chunk: &[u8]) -> bool {
        let mut start = 0;
        while start < n {
            let Some(conn) = self.conns.get_mut(&key) else {
                return false;
            };
            if conn.draining || conn.dead {
                return false;
            }
            let rel = chunk[start..n].iter().position(|&b| b == b'\n');
            if conn.discarding.is_some() {
                match rel {
                    Some(_) => {
                        // Oversized line fully consumed: now the close is
                        // a clean FIN.
                        conn.discarding = None;
                        conn.draining = true;
                        return false;
                    }
                    None => return true,
                }
            }
            match rel {
                Some(p) => {
                    if conn.inbuf.len() + p > MAX_LINE_BYTES {
                        self.reject_oversized(key);
                        // The newline is already here; no discard phase.
                        if let Some(c) = self.conns.get_mut(&key) {
                            c.discarding = None;
                            c.draining = true;
                        }
                        return false;
                    }
                    let mut line = std::mem::take(&mut conn.inbuf);
                    line.extend_from_slice(&chunk[start..start + p]);
                    start += p + 1;
                    self.dispatch_line(key, &line);
                }
                None => {
                    let tail = &chunk[start..n];
                    if conn.inbuf.len() + tail.len() > MAX_LINE_BYTES {
                        self.reject_oversized(key);
                        return true;
                    }
                    conn.inbuf.extend_from_slice(tail);
                    return true;
                }
            }
        }
        true
    }

    /// One error response, then discard-to-EOL mode (bounded patience).
    fn reject_oversized(&mut self, key: usize) {
        let sink = ReplySink::Reactor {
            hub: self.hub.clone(),
            conn: key as u64,
        };
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.pending += 1;
            conn.inbuf = Vec::new();
            conn.discarding = Some(Instant::now() + DISCARD_PATIENCE);
        }
        sink.send(Reply {
            line: error_response(&format!("request line exceeds {MAX_LINE_BYTES} bytes")),
            t0: Instant::now(),
            err: true,
        });
    }

    fn dispatch_line(&mut self, key: usize, raw: &[u8]) {
        let mut raw = raw;
        if raw.last() == Some(&b'\r') {
            raw = &raw[..raw.len() - 1];
        }
        // Invalid UTF-8 (binary garbage) becomes replacement characters
        // that fail JSON parsing — a bad request, not a crash.
        let line = String::from_utf8_lossy(raw);
        if line.trim().is_empty() {
            return;
        }
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.pending += 1;
        }
        let sink = ReplySink::Reactor {
            hub: self.hub.clone(),
            conn: key as u64,
        };
        handle_request(&self.shared, &line, self.addr, Instant::now(), &sink);
    }

    /// Move hub completions onto their connections' outbound queues,
    /// recording latency and the error census for every reply — including
    /// replies whose connection died, which is exactly what the threaded
    /// writer loop does after a hangup.
    fn drain_completions(&mut self) {
        let replies = self.hub.drain();
        if replies.is_empty() {
            return;
        }
        {
            let mut m = self.shared.metrics.lock();
            for (_, reply) in &replies {
                m.record_reply(reply.t0.elapsed().as_secs_f64(), reply.err);
            }
        }
        for (conn_id, reply) in replies {
            let key = conn_id as usize;
            let Some(conn) = self.conns.get_mut(&key) else {
                continue;
            };
            conn.pending = conn.pending.saturating_sub(1);
            if conn.dead {
                continue;
            }
            conn.out.reserve(reply.line.len() + 1);
            conn.out.extend_from_slice(reply.line.as_bytes());
            conn.out.push(b'\n');
            if conn.unsent() > self.max_conn_outbound {
                // The client stopped reading; responses are piling up.
                // Cut the socket instead of buffering unboundedly.
                self.kill(key);
                continue;
            }
            self.write_ready(key);
        }
    }

    /// Flush as much of the outbound queue as the socket accepts, then
    /// set write interest iff bytes remain.
    fn write_ready(&mut self, key: usize) {
        let mut died = false;
        let mut partial = false;
        {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            if conn.dead {
                return;
            }
            while conn.out_head < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_head..]) {
                    Ok(0) => {
                        died = true;
                        break;
                    }
                    Ok(n) => conn.out_head += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        partial = true;
                        break;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        died = true;
                        break;
                    }
                }
            }
            if conn.out_head == conn.out.len() {
                conn.out.clear();
                conn.out_head = 0;
            }
        }
        if partial {
            self.partial_writes += 1;
        }
        if died {
            self.kill(key);
            return;
        }
        self.update_interest(key);
    }

    /// Reconcile the poller registration with what the connection can
    /// still do: read while input is accepted, write while bytes wait.
    fn update_interest(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        if conn.dead {
            return;
        }
        let want = (!(conn.peer_eof || conn.draining), conn.unsent() > 0);
        if want == conn.interest {
            return;
        }
        let ev = Event {
            key,
            readable: want.0,
            writable: want.1,
        };
        if self.poller.modify(&conn.stream, ev).is_ok() {
            conn.interest = want;
        }
    }

    /// Tear the socket down now (error or outbound-cap breach) but keep
    /// the entry for reply accounting until `pending` drains.
    fn kill(&mut self, key: usize) {
        if let Some(conn) = self.conns.get_mut(&key) {
            if !conn.dead {
                conn.dead = true;
                let _ = self.poller.delete(&conn.stream);
                let _ = conn.stream.shutdown(Shutdown::Both);
                conn.out.clear();
                conn.out_head = 0;
                conn.inbuf.clear();
            }
        }
    }

    /// Close every connection that is owed nothing: responses flushed,
    /// no pending requests, and either the peer is gone, the connection
    /// is draining, or the socket already died.
    fn reap(&mut self) {
        let now = Instant::now();
        let mut closing: Vec<usize> = Vec::new();
        for (&key, conn) in &mut self.conns {
            if let Some(deadline) = conn.discarding {
                if now >= deadline {
                    // Peer never finished its oversized line; stop waiting.
                    conn.discarding = None;
                    conn.draining = true;
                }
            }
            let flushed = conn.unsent() == 0;
            if conn.pending == 0 && (conn.dead || ((conn.peer_eof || conn.draining) && flushed)) {
                closing.push(key);
            }
        }
        for key in closing {
            if let Some(conn) = self.conns.remove(&key) {
                if !conn.dead {
                    let _ = self.poller.delete(&conn.stream);
                }
                self.shared.open_conns.fetch_sub(1, Ordering::AcqRel);
            }
        }
        // Draining-but-not-closable conns may still need interest updates
        // (e.g. shutdown raised `draining` outside the read path).
        let keys: Vec<usize> = self.conns.keys().copied().collect();
        for key in keys {
            self.update_interest(key);
        }
    }

    /// Publish counter deltas into the shared metrics (once per loop
    /// iteration, and only when something changed).
    fn flush_counters(&mut self) {
        let wakeups = self.hub.notifies.swap(0, Ordering::Relaxed);
        if self.ready_events == 0
            && wakeups == 0
            && self.partial_writes == 0
            && self.conns_hwm <= self.hwm_published
        {
            return;
        }
        let mut m = self.shared.metrics.lock();
        m.reactor.ready_events += self.ready_events;
        m.reactor.wakeups += wakeups;
        m.reactor.partial_writes += self.partial_writes;
        m.reactor.conns_hwm = m.reactor.conns_hwm.max(self.conns_hwm);
        self.ready_events = 0;
        self.partial_writes = 0;
        self.hwm_published = self.conns_hwm;
    }
}

//! The TCP prediction server.
//!
//! Thread layout:
//!
//! * **acceptor** — owns the listener, spawns one handler thread per
//!   connection, exits when the shutdown flag rises (a self-connection
//!   unblocks `accept`).
//! * **connection handlers** — read newline-delimited JSON requests with a
//!   short read timeout so they observe shutdown between requests;
//!   `predict` enqueues a [`Job`](crate::batch::Job) and blocks on its
//!   response channel, everything else is answered inline.
//! * **solvers** — pop coalesced batches off the shared queue and run one
//!   multi-RHS query per batch against the cached factor.
//!
//! Graceful shutdown (`{"op":"shutdown"}` or [`ServerHandle::shutdown`])
//! drains: the acceptor stops first, handlers finish their in-flight
//! request, and only then is the queue closed so solvers exit after the
//! last batch. No request that was acknowledged into the queue is dropped.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use xgs_runtime::{KernelStats, MetricsReport, QueueDepthStats, WorkerStats};

use crate::batch::{solve_batch, BatchQueue, Job};
use crate::protocol::{
    error_response, load_response, models_response, parse_request, predict_response, Request,
};
use crate::registry::{build_plan_from_request, ModelRegistry};

/// Tuning knobs of [`serve`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Batch-solver threads.
    pub solvers: usize,
    /// Coalescing stops adding requests once a batch reaches this many
    /// points (the multi-RHS solve is O(n² · points), so this bounds
    /// per-batch latency).
    pub max_batch_points: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            solvers: 2,
            max_batch_points: 4096,
        }
    }
}

/// How long connection handlers block on a read before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Server-side counters, exported as the shared [`MetricsReport`] JSON
/// schema so `metrics_diff` can compare service runs with factorization
/// runs. Kernel kinds: `request` (end-to-end request latency), `solve`
/// (per-batch multi-RHS query time), `batch_size` (batch size recorded as
/// `points · 1e-6` "seconds", i.e. the log₂-µs histogram buckets read as
/// log₂-points), `load` (model factorization+cache time).
struct ServerMetrics {
    started: Instant,
    request: KernelStats,
    solve: KernelStats,
    batch_size: KernelStats,
    queue_wait: KernelStats,
    load: KernelStats,
    queue_depth: QueueDepthStats,
    solver_stats: Vec<WorkerStats>,
    errors: u64,
}

impl ServerMetrics {
    fn new(solvers: usize) -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            request: KernelStats::new("request"),
            solve: KernelStats::new("solve"),
            batch_size: KernelStats::new("batch_size"),
            queue_wait: KernelStats::new("queue_wait"),
            load: KernelStats::new("load"),
            queue_depth: QueueDepthStats::default(),
            solver_stats: vec![WorkerStats::default(); solvers],
            errors: 0,
        }
    }

    fn report(&self) -> MetricsReport {
        let kernels: Vec<KernelStats> = [
            self.request,
            self.solve,
            self.batch_size,
            self.queue_wait,
            self.load,
        ]
        .into_iter()
        .filter(|k| k.count > 0)
        .collect();
        MetricsReport {
            wall_seconds: self.started.elapsed().as_secs_f64(),
            tasks: self.request.count as usize,
            workers: self.solver_stats.len(),
            kernels,
            queue_depth: self.queue_depth,
            worker_stats: self.solver_stats.clone(),
            ..MetricsReport::default()
        }
    }
}

struct Shared {
    registry: Arc<ModelRegistry>,
    queue: BatchQueue,
    shutdown: AtomicBool,
    open_conns: AtomicUsize,
    metrics: Mutex<ServerMetrics>,
    max_batch_points: usize,
}

/// Running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] (or send `{"op":"shutdown"}`) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    solvers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server metrics as the shared JSON schema.
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.lock().report().to_json()
    }

    /// Raise the shutdown flag (idempotent, non-blocking). In-flight
    /// requests still complete; use [`ServerHandle::join`] to wait.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Wait for the full drain: acceptor gone, every connection closed,
    /// queue empty, solvers exited. Returns the final metrics report.
    pub fn join(mut self) -> MetricsReport {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Handlers finish their in-flight request and exit within one
        // read-poll interval of the flag rising; their enqueued jobs must
        // stay servable until then, so the queue closes only after the
        // last connection is gone.
        while self.shared.open_conns.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.queue.close();
        for s in self.solvers.drain(..) {
            let _ = s.join();
        }
        self.shared.metrics.lock().report()
    }
}

fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect(addr);
    }
}

/// Bind and start the service. Returns once the listener is live.
pub fn serve(config: &ServerConfig, registry: Arc<ModelRegistry>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let solvers = config.solvers.max(1);
    let shared = Arc::new(Shared {
        registry,
        queue: BatchQueue::new(),
        shutdown: AtomicBool::new(false),
        open_conns: AtomicUsize::new(0),
        metrics: Mutex::new(ServerMetrics::new(solvers)),
        max_batch_points: config.max_batch_points.max(1),
    });

    let mut solver_handles = Vec::with_capacity(solvers);
    for id in 0..solvers {
        let shared = shared.clone();
        solver_handles.push(std::thread::spawn(move || solver_loop(&shared, id)));
    }

    let acceptor = {
        let shared = shared.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = shared.clone();
                shared.open_conns.fetch_add(1, Ordering::AcqRel);
                std::thread::spawn(move || {
                    handle_connection(&shared, stream, addr);
                    shared.open_conns.fetch_sub(1, Ordering::AcqRel);
                });
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        solvers: solver_handles,
    })
}

fn solver_loop(shared: &Shared, id: usize) {
    while let Some((batch, depth)) = shared.queue.pop_batch(shared.max_batch_points) {
        let requests = batch.len() as u64;
        let (points, solve_seconds, max_wait) = solve_batch(batch);
        let mut m = shared.metrics.lock();
        m.queue_depth.sample(depth);
        m.solve.record(solve_seconds);
        m.queue_wait.record(max_wait);
        // Batch size goes through the same log₂ histogram as durations by
        // recording `points · 1e-6 s` (bucket i ⇔ 2^(i-1) ≤ points < 2^i).
        m.batch_size.record(points as f64 * 1e-6);
        m.solver_stats[id].busy_seconds += solve_seconds;
        m.solver_stats[id].tasks += requests;
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream, addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Timed out mid-line: `read_line` guarantees the bytes read
                // so far are in `line`, so keep them and poll again.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.ends_with('\n') && line.trim().is_empty() {
            line.clear();
            continue;
        }
        let t0 = Instant::now();
        let response = handle_request(shared, &line, addr);
        line.clear();
        {
            let mut m = shared.metrics.lock();
            m.request.record(t0.elapsed().as_secs_f64());
            if response.starts_with("{\"ok\":false") {
                m.errors += 1;
            }
        }
        if writer
            .write_all(response.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .is_err()
        {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn handle_request(shared: &Shared, line: &str, addr: SocketAddr) -> String {
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return error_response(&e),
    };
    match req {
        Request::Ping => {
            let up = shared.metrics.lock().started.elapsed().as_secs_f64();
            format!("{{\"ok\":true,\"uptime_seconds\":{up}}}")
        }
        Request::Models => models_response(&shared.registry.list()),
        Request::Metrics => {
            format!(
                "{{\"ok\":true,\"metrics\":{}}}",
                shared.metrics.lock().report().to_json()
            )
        }
        Request::Shutdown => {
            request_shutdown(shared, addr);
            "{\"ok\":true,\"draining\":true}".to_string()
        }
        Request::Load(load) => {
            let t0 = Instant::now();
            match build_plan_from_request(&load) {
                Ok((plan, llh)) => {
                    let n = plan.n_train();
                    shared.registry.insert(&load.name, plan);
                    shared
                        .metrics
                        .lock()
                        .load
                        .record(t0.elapsed().as_secs_f64());
                    load_response(&load.name, n, llh)
                }
                Err(e) => error_response(&e),
            }
        }
        Request::Predict(p) => {
            let Some(plan) = shared.registry.get(&p.model) else {
                return error_response(&format!("unknown model '{}'", p.model));
            };
            let (tx, rx) = mpsc::channel();
            let accepted = shared.queue.push(Job {
                model: p.model,
                plan,
                points: p.points,
                uncertainty: p.uncertainty,
                enqueued: Instant::now(),
                resp: tx,
            });
            if !accepted {
                return error_response("server is shutting down");
            }
            match rx.recv_timeout(Duration::from_secs(120)) {
                Ok(res) => predict_response(
                    &res.mean,
                    res.uncertainty.as_deref(),
                    res.batch_points,
                    res.batch_requests,
                ),
                Err(_) => error_response("solver did not answer (timeout)"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_core::{simulate_field, ModelFamily};
    use xgs_covariance::jittered_grid;
    use xgs_runtime::parse_json;
    use xgs_tile::Variant;

    fn started_server() -> (ServerHandle, Vec<xgs_covariance::Location>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(33);
        let locs = jittered_grid(150, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, 34);
        let (plan, _) = crate::registry::build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::MpDense,
            48,
            locs.clone(),
            &z,
            1,
        )
        .unwrap();
        let registry = Arc::new(ModelRegistry::new());
        registry.insert("default", plan);
        let handle = serve(&ServerConfig::default(), registry).unwrap();
        (handle, locs, z)
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> xgs_runtime::JsonValue {
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        parse_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"))
    }

    #[test]
    fn full_session_over_tcp() {
        let (handle, locs, z) = started_server();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();

        let pong = roundtrip(&mut conn, "{\"op\":\"ping\"}");
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));

        let models = roundtrip(&mut conn, "{\"op\":\"models\"}");
        let list = models.get("models").unwrap().as_array().unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].get("n_train").unwrap().as_usize(), Some(150));

        // Self-prediction over the wire reproduces the training data.
        let pts: String = locs[..5]
            .iter()
            .map(|l| format!("[{},{}]", l.x, l.y))
            .collect::<Vec<_>>()
            .join(",");
        let pred = roundtrip(
            &mut conn,
            &format!("{{\"op\":\"predict\",\"points\":[{pts}],\"uncertainty\":true}}"),
        );
        assert_eq!(pred.get("ok").unwrap().as_bool(), Some(true));
        let mean = pred.get("mean").unwrap().as_array().unwrap();
        for (m, t) in mean.iter().zip(&z[..5]) {
            assert!((m.as_f64().unwrap() - t).abs() < 1e-5);
        }
        let unc = pred.get("uncertainty").unwrap().as_array().unwrap();
        assert_eq!(unc.len(), 5);

        // Errors come back as ok:false without killing the connection.
        let err = roundtrip(
            &mut conn,
            "{\"op\":\"predict\",\"model\":\"nope\",\"points\":[[0.5,0.5]]}",
        );
        assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));
        assert!(err.get("error").unwrap().as_str().unwrap().contains("nope"));

        let m = roundtrip(&mut conn, "{\"op\":\"metrics\"}");
        let report = MetricsReport::from_json(&m.get("metrics").unwrap().to_json_string())
            .expect("metrics parse back");
        assert!(report.tasks >= 4);

        let bye = roundtrip(&mut conn, "{\"op\":\"shutdown\"}");
        assert_eq!(bye.get("draining").unwrap().as_bool(), Some(true));
        drop(conn);
        let report = handle.join();
        assert!(report.kernels.iter().any(|k| k.kind == "request"));
    }

    #[test]
    fn concurrent_clients_get_bitwise_identical_answers() {
        let (handle, _locs, _z) = started_server();
        let addr = handle.addr();
        let points = "[[0.21,0.34],[0.55,0.62],[0.81,0.17]]";
        let request = format!("{{\"op\":\"predict\",\"points\":{points}}}");

        let mut joins = Vec::new();
        for _ in 0..6 {
            let request = request.clone();
            joins.push(std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).unwrap();
                let mut out = Vec::new();
                for _ in 0..5 {
                    let v = roundtrip(&mut conn, &request);
                    let mean: Vec<u64> = v
                        .get("mean")
                        .unwrap()
                        .as_array()
                        .unwrap()
                        .iter()
                        .map(|x| x.as_f64().unwrap().to_bits())
                        .collect();
                    out.push(mean);
                }
                out
            }));
        }
        let all: Vec<Vec<Vec<u64>>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let first = &all[0][0];
        for per_client in &all {
            for mean in per_client {
                assert_eq!(mean, first, "batching changed the numbers");
            }
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn load_over_the_wire_then_predict() {
        let registry = Arc::new(ModelRegistry::new());
        let handle = serve(&ServerConfig::default(), registry).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();

        let mut rng = StdRng::seed_from_u64(77);
        let locs = jittered_grid(80, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, 78);
        let locs_json: String = locs
            .iter()
            .map(|l| format!("[{},{}]", l.x, l.y))
            .collect::<Vec<_>>()
            .join(",");
        let z_json: String = z.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
        let loaded = roundtrip(
            &mut conn,
            &format!(
                "{{\"op\":\"load\",\"name\":\"wire\",\"theta\":[1.0,0.1,0.5],\
                 \"variant\":\"dense\",\"tile\":32,\"locs\":[{locs_json}],\"z\":[{z_json}]}}"
            ),
        );
        assert_eq!(
            loaded.get("ok").unwrap().as_bool(),
            Some(true),
            "{loaded:?}"
        );
        assert_eq!(loaded.get("n_train").unwrap().as_usize(), Some(80));

        let pred = roundtrip(
            &mut conn,
            &format!(
                "{{\"op\":\"predict\",\"model\":\"wire\",\"points\":[[{},{}]]}}",
                locs[3].x, locs[3].y
            ),
        );
        let m = pred.get("mean").unwrap().as_array().unwrap()[0]
            .as_f64()
            .unwrap();
        assert!((m - z[3]).abs() < 1e-5, "{m} vs {}", z[3]);

        handle.shutdown();
        handle.join();
    }
}

//! The TCP prediction server.
//!
//! Two interchangeable connection frontends sit in front of one solver
//! pool ([`Frontend`]): the thread-per-connection layout below, and the
//! single-threaded epoll event loop in [`crate::reactor`]. Both speak the
//! same protocol, share [`handle_request`] dispatch, and uphold the same
//! invariants (every accepted request answered, bounded lines, deadlines,
//! shedding) — proven by running the adversarial suite against both.
//!
//! Threaded frontend layout:
//!
//! * **acceptor** — owns the listener, spawns one handler thread per
//!   connection, exits when the shutdown flag rises (a self-connection
//!   unblocks `accept`).
//! * **connection handlers** — read newline-delimited JSON requests with a
//!   short read timeout so they observe shutdown between requests. Request
//!   lines are length-capped ([`MAX_LINE_BYTES`]): a client streaming bytes
//!   without a newline gets one error response and a closed connection
//!   instead of an unbounded buffer. `predict` submits a
//!   [`Job`](crate::batch::Job) to the batch queue *without blocking*;
//!   everything else is answered inline.
//! * **per-connection writers** — each connection owns a writer thread fed
//!   by a channel; responses are written in completion order, so one slow
//!   `predict` never head-of-line-blocks a `ping` or `metrics` on the same
//!   connection. Clients that pipeline requests tag them with `"id"`s to
//!   correlate the out-of-order responses.
//! * **solvers** — pop coalesced batches off the shared queue, answer jobs
//!   whose `deadline_ms` already expired with a timeout error, and run one
//!   multi-RHS query per batch against the cached factor.
//!
//! Overload protection: the batch queue carries a points budget
//! ([`ServerConfig::max_queued_points`]); once the backlog reaches it,
//! `predict` is answered immediately with
//! `{"ok":false,…,"retry_after_ms":…}` instead of queueing unboundedly.
//!
//! Graceful shutdown (`{"op":"shutdown"}` or [`ServerHandle::shutdown`])
//! drains: the acceptor stops first, handlers finish their in-flight
//! request and join their writer (which flushes every response the
//! connection is still owed), and only then is the queue closed so solvers
//! exit after the last batch. No request that was acknowledged into the
//! queue is dropped.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use xgs_cholesky::ShardBackend;
use xgs_core::FactorEngine;
use xgs_runtime::{KernelStats, MetricsReport, QueueDepthStats, WorkerStats};

use crate::batch::{solve_batch, BatchQueue, Job, PushError, Reply, ReplySink, Responder};
use crate::protocol::{
    error_response, load_response, models_response, parse_request, shed_response, with_id, Request,
};
use crate::registry::{build_plan_from_request, ModelRegistry};

/// Hard cap on one request line. Newline-delimited JSON with coordinates
/// comfortably fits; a client that streams more without a newline is
/// answered with one error and disconnected (OOM guard).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Which connection-handling frontend [`serve`] boots. Both speak the
/// identical wire protocol; the choice is an operational one (threads per
/// connection vs. one event loop for tens of thousands of connections).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Frontend {
    /// One handler + one writer thread per connection (the original
    /// layout; robust, simple, ~2 threads per client).
    #[default]
    Threaded,
    /// A single epoll event loop multiplexing every connection on
    /// nonblocking sockets ([`crate::reactor`]); solver threads hand
    /// completions back through an eventfd-woken hub.
    Reactor,
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Frontend, String> {
        match s {
            "threaded" => Ok(Frontend::Threaded),
            "reactor" => Ok(Frontend::Reactor),
            other => Err(format!(
                "unknown frontend '{other}' (expected 'threaded' or 'reactor')"
            )),
        }
    }
}

/// Tuning knobs of [`serve`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Connection frontend (threaded vs. epoll reactor).
    pub frontend: Frontend,
    /// Batch-solver threads.
    pub solvers: usize,
    /// Coalescing stops adding requests once a batch reaches this many
    /// points (the multi-RHS solve is O(n² · points), so this bounds
    /// per-batch latency).
    pub max_batch_points: usize,
    /// Backpressure budget: once this many points sit in the batch queue,
    /// further `predict`s are shed with a `retry_after_ms` hint instead of
    /// queued.
    pub max_queued_points: usize,
    /// When set, `load` requests factorize on this multi-process backend
    /// instead of in-process threads. The CLI passes the `xgs-fleet`
    /// supervisor here: one persistent warm fleet across every `load`,
    /// instead of paying a fresh fleet spawn per factorization.
    pub shard: Option<Arc<dyn ShardBackend>>,
    /// Reactor only: per-connection outbound queue cap in bytes. A client
    /// that stops reading while responses accumulate past this budget has
    /// its socket closed (the threaded frontend's `WRITE_TIMEOUT`
    /// equivalent — there a blocked writer thread absorbs the backpressure,
    /// here the buffer is explicit and must be bounded).
    pub max_conn_outbound: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            frontend: Frontend::Threaded,
            solvers: 2,
            max_batch_points: 4096,
            max_queued_points: 1 << 16,
            shard: None,
            max_conn_outbound: 8 << 20,
        }
    }
}

/// How long connection handlers block on a read before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Writer-side guard against clients that stop reading (slow loris on the
/// response path): a blocked write fails after this long and the writer
/// switches to draining without the socket.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Server-side counters, exported as the shared [`MetricsReport`] JSON
/// schema so `metrics_diff` can compare service runs with factorization
/// runs. Kernel kinds: `request` (end-to-end request latency), `solve`
/// (per-batch multi-RHS query time), `batch_size` (batch size recorded as
/// `points · 1e-6` "seconds", i.e. the log₂-µs histogram buckets read as
/// log₂-points), `load` (model factorization+cache time), `shed` (overload
/// refusals, the "duration" being the advertised retry_after), `deadline`
/// (requests expired at dequeue, the "duration" being how late they were),
/// `evict` (registry evictions, count only).
///
/// Reactor-frontend runs additionally export count-only kinds:
/// `ready_event` (epoll readiness events processed), `wakeup` (eventfd
/// notifies from solver completions), `partial_write` (flushes that hit
/// `EAGAIN` with bytes still queued), `open_conns_hwm` (high-water mark of
/// concurrently open connections). All four stay zero — and are therefore
/// omitted from the report — under the threaded frontend.
pub(crate) struct ServerMetrics {
    started: Instant,
    request: KernelStats,
    solve: KernelStats,
    batch_size: KernelStats,
    queue_wait: KernelStats,
    load: KernelStats,
    shed: KernelStats,
    deadline: KernelStats,
    queue_depth: QueueDepthStats,
    solver_stats: Vec<WorkerStats>,
    errors: u64,
    pub(crate) reactor: ReactorCounters,
}

/// Event-loop health counters (see [`ServerMetrics`] docs).
#[derive(Default)]
pub(crate) struct ReactorCounters {
    pub ready_events: u64,
    pub wakeups: u64,
    pub partial_writes: u64,
    pub conns_hwm: u64,
}

impl ServerMetrics {
    fn new(solvers: usize) -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            request: KernelStats::new("request"),
            solve: KernelStats::new("solve"),
            batch_size: KernelStats::new("batch_size"),
            queue_wait: KernelStats::new("queue_wait"),
            load: KernelStats::new("load"),
            shed: KernelStats::new("shed"),
            deadline: KernelStats::new("deadline"),
            queue_depth: QueueDepthStats::default(),
            solver_stats: vec![WorkerStats::default(); solvers],
            errors: 0,
            reactor: ReactorCounters::default(),
        }
    }

    /// Record one finished response: end-to-end latency plus the error
    /// census. Called by the threaded writer loop and the reactor's
    /// completion drain — the two places replies funnel through.
    pub(crate) fn record_reply(&mut self, seconds: f64, err: bool) {
        self.request.record(seconds);
        if err {
            self.errors += 1;
        }
    }

    fn report(&self, evictions: u64) -> MetricsReport {
        let count_only = |kind: &'static str, n: u64| {
            let mut k = KernelStats::new(kind);
            k.count = n;
            k.min_seconds = 0.0;
            k
        };
        let kernels: Vec<KernelStats> = [
            self.request,
            self.solve,
            self.batch_size,
            self.queue_wait,
            self.load,
            self.shed,
            self.deadline,
            count_only("evict", evictions),
            count_only("ready_event", self.reactor.ready_events),
            count_only("wakeup", self.reactor.wakeups),
            count_only("partial_write", self.reactor.partial_writes),
            count_only("open_conns_hwm", self.reactor.conns_hwm),
        ]
        .into_iter()
        .filter(|k| k.count > 0)
        .collect();
        MetricsReport {
            wall_seconds: self.started.elapsed().as_secs_f64(),
            tasks: self.request.count as usize,
            workers: self.solver_stats.len(),
            kernels,
            queue_depth: self.queue_depth,
            worker_stats: self.solver_stats.clone(),
            ..MetricsReport::default()
        }
    }
}

pub(crate) struct Shared {
    registry: Arc<ModelRegistry>,
    queue: BatchQueue,
    pub(crate) shutdown: AtomicBool,
    pub(crate) open_conns: AtomicUsize,
    pub(crate) metrics: Mutex<ServerMetrics>,
    max_batch_points: usize,
    /// Engine for `load`-request factorizations (sharded when configured).
    load_engine: FactorEngine,
}

impl Shared {
    fn report(&self) -> MetricsReport {
        self.metrics.lock().report(self.registry.evictions())
    }
}

/// Running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] (or send `{"op":"shutdown"}`) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    solvers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server metrics as the shared JSON schema.
    pub fn metrics_json(&self) -> String {
        self.shared.report().to_json()
    }

    /// Raise the shutdown flag (idempotent, non-blocking). In-flight
    /// requests still complete; use [`ServerHandle::join`] to wait.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Wait for the full drain: acceptor gone, every connection closed,
    /// queue empty, solvers exited. Returns the final metrics report.
    pub fn join(mut self) -> MetricsReport {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Handlers finish their in-flight request and exit within one
        // read-poll interval of the flag rising; their enqueued jobs must
        // stay servable until then (a handler only counts as closed after
        // its writer flushed every owed response), so the queue closes
        // only after the last connection is gone.
        while self.shared.open_conns.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.queue.close();
        for s in self.solvers.drain(..) {
            let _ = s.join();
        }
        self.shared.report()
    }
}

pub(crate) fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect(addr);
    }
}

/// Bind and start the service. Returns once the listener is live.
pub fn serve(config: &ServerConfig, registry: Arc<ModelRegistry>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let solvers = config.solvers.max(1);
    let shared = Arc::new(Shared {
        registry,
        queue: BatchQueue::new(config.max_queued_points),
        shutdown: AtomicBool::new(false),
        open_conns: AtomicUsize::new(0),
        metrics: Mutex::new(ServerMetrics::new(solvers)),
        max_batch_points: config.max_batch_points.max(1),
        load_engine: match &config.shard {
            Some(backend) => FactorEngine::Sharded(backend.clone()),
            None => FactorEngine::from_workers(0),
        },
    });

    let mut solver_handles = Vec::with_capacity(solvers);
    for id in 0..solvers {
        let shared = shared.clone();
        solver_handles.push(std::thread::spawn(move || solver_loop(&shared, id)));
    }

    // Both frontends park their I/O thread in the `acceptor` slot; `join`
    // does not care which one it is (reactor exit implies every connection
    // drained, same as the acceptor + open_conns handshake).
    let acceptor = match config.frontend {
        Frontend::Threaded => {
            let shared = shared.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = shared.clone();
                    shared.open_conns.fetch_add(1, Ordering::AcqRel);
                    std::thread::spawn(move || {
                        handle_connection(&shared, stream, addr);
                        shared.open_conns.fetch_sub(1, Ordering::AcqRel);
                    });
                }
            })
        }
        Frontend::Reactor => {
            let reactor = crate::reactor::Reactor::bind(shared.clone(), listener, addr, config)?;
            std::thread::spawn(move || reactor.run())
        }
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        solvers: solver_handles,
    })
}

fn solver_loop(shared: &Shared, id: usize) {
    while let Some((batch, depth)) = shared.queue.pop_batch(shared.max_batch_points) {
        // Deadline enforcement at dequeue: expired jobs are answered with
        // a timeout error — never solved, never silently dropped.
        let now = Instant::now();
        let (live, expired): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|j| j.deadline.is_none_or(|d| d > now));
        if !expired.is_empty() {
            let mut m = shared.metrics.lock();
            for job in &expired {
                let late = job
                    .deadline
                    .map_or(0.0, |d| now.duration_since(d).as_secs_f64());
                m.deadline.record(late);
            }
        }
        for job in expired {
            job.resp
                .send(error_response("deadline_ms exceeded before solve"), true);
        }
        if live.is_empty() {
            shared.metrics.lock().queue_depth.sample(depth);
            continue;
        }
        let requests = live.len() as u64;
        let (points, solve_seconds, max_wait) = solve_batch(live);
        let mut m = shared.metrics.lock();
        m.queue_depth.sample(depth);
        m.solve.record(solve_seconds);
        m.queue_wait.record(max_wait);
        // Batch size goes through the same log₂ histogram as durations by
        // recording `points · 1e-6 s` (bucket i ⇔ 2^(i-1) ≤ points < 2^i).
        m.batch_size.record(points as f64 * 1e-6);
        m.solver_stats[id].busy_seconds += solve_seconds;
        m.solver_stats[id].tasks += requests;
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// Clean end of stream, or shutdown/socket error — close silently.
    Closed,
    /// The line exceeded [`MAX_LINE_BYTES`] before a newline arrived.
    TooLong,
}

/// Read one newline-terminated line into `buf` without ever holding more
/// than [`MAX_LINE_BYTES`] + one `BufReader` block. Spins on the read
/// timeout so shutdown is observed mid-line too.
fn read_bounded_line(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
) -> LineRead {
    loop {
        enum Step {
            Consumed(usize),
            Done(usize, LineRead),
        }
        let step = match reader.fill_buf() {
            Ok([]) => return LineRead::Closed,
            Ok(available) => match available.iter().position(|&b| b == b'\n') {
                Some(pos) if buf.len() + pos > MAX_LINE_BYTES => {
                    Step::Done(pos + 1, LineRead::TooLong)
                }
                Some(pos) => {
                    buf.extend_from_slice(&available[..pos]);
                    Step::Done(pos + 1, LineRead::Line)
                }
                None if buf.len() + available.len() > MAX_LINE_BYTES => {
                    Step::Done(available.len(), LineRead::TooLong)
                }
                None => {
                    buf.extend_from_slice(available);
                    Step::Consumed(available.len())
                }
            },
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Timed out mid-line: bytes read so far stay in `buf`.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return LineRead::Closed;
                }
                continue;
            }
            Err(_) => return LineRead::Closed,
        };
        match step {
            Step::Consumed(n) => reader.consume(n),
            Step::Done(n, result) => {
                reader.consume(n);
                return result;
            }
        }
    }
}

/// Consume and drop input until the current line ends, the peer hangs up,
/// or a patience budget runs out. Used before closing on an oversized
/// line; never buffers what it reads.
fn discard_rest_of_line(reader: &mut BufReader<TcpStream>) {
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_secs(5) {
        match reader.fill_buf() {
            Ok([]) => return,
            Ok(available) => {
                let newline = available.iter().position(|&b| b == b'\n');
                let n = newline.map_or(available.len(), |p| p + 1);
                reader.consume(n);
                if newline.is_some() {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        }
    }
}

/// Drain the response channel onto the socket, recording each response's
/// end-to-end latency. Runs until every sender (the handler plus any
/// still-queued jobs) is gone, so joining the writer proves the connection
/// is owed nothing.
fn writer_loop(shared: &Shared, mut stream: TcpStream, rx: mpsc::Receiver<Reply>) {
    let mut socket_dead = false;
    for reply in rx {
        shared
            .metrics
            .lock()
            .record_reply(reply.t0.elapsed().as_secs_f64(), reply.err);
        if !socket_dead
            && stream
                .write_all(reply.line.as_bytes())
                .and_then(|_| stream.write_all(b"\n"))
                .is_err()
        {
            // Client hung up (or stopped reading past the write timeout):
            // keep draining so queued jobs are still accounted for and
            // their responders never block.
            socket_dead = true;
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Reply>();
    let writer_thread = {
        let shared = shared.clone();
        std::thread::spawn(move || writer_loop(&shared, writer, rx))
    };
    let sink = ReplySink::Thread(tx.clone());
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        match read_bounded_line(shared, &mut reader, &mut buf) {
            LineRead::Closed => break,
            LineRead::TooLong => {
                // One error, then hang up: the line has no parseable
                // request (and possibly no end).
                let _ = tx.send(Reply {
                    line: error_response(&format!("request line exceeds {MAX_LINE_BYTES} bytes")),
                    t0: Instant::now(),
                    err: true,
                });
                // Closing with unread bytes in the receive queue would turn
                // the close into a reset that can destroy the error response
                // in flight. Discard the rest of the line (O(1) memory,
                // bounded time) so the close is a clean FIN.
                discard_rest_of_line(&mut reader);
                break;
            }
            LineRead::Line => {}
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        // Invalid UTF-8 (binary garbage) turns into replacement characters
        // that fail JSON parsing — answered as a bad request, not a crash.
        let line = String::from_utf8_lossy(&buf);
        if line.trim().is_empty() {
            continue;
        }
        handle_request(shared, &line, addr, Instant::now(), &sink);
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    // Joining the writer keeps the connection "open" (for the drain
    // accounting) until every response it is owed has been flushed. Both
    // sender handles must drop first — the writer drains until the last
    // one (here or inside a still-queued job's responder) is gone.
    drop(sink);
    drop(tx);
    let _ = writer_thread.join();
}

fn send_reply(sink: &ReplySink, id: Option<&str>, body: String, t0: Instant, err: bool) {
    sink.send(Reply {
        line: with_id(id, body),
        t0,
        err,
    });
}

/// Estimate how long until the backlog has drained, from the observed
/// solve throughput (falls back to 0.5 ms/point before any history).
fn retry_after_ms(m: &ServerMetrics, queued_points: usize) -> u64 {
    // batch_size records points·1e-6 "seconds" per batch, so its total
    // recovers the solved-point census.
    let solved_points = m.batch_size.total_seconds * 1e6;
    let per_point_seconds = if solved_points >= 1.0 && m.solve.total_seconds > 0.0 {
        m.solve.total_seconds / solved_points
    } else {
        5e-4
    };
    ((queued_points as f64 * per_point_seconds * 1e3).ceil() as u64).clamp(1, 10_000)
}

/// Parse and dispatch one request line, routing the response (or the
/// eventual solver response) through `sink`. Frontend-agnostic: the
/// threaded frontend calls this from the connection's handler thread, the
/// reactor from the event loop. The one asymmetry is `load` — a
/// factorization blocks for seconds, which a handler thread can afford but
/// the event loop cannot, so under a reactor sink it runs on a spawned
/// thread that answers through its own sink clone.
pub(crate) fn handle_request(
    shared: &Arc<Shared>,
    line: &str,
    addr: SocketAddr,
    t0: Instant,
    sink: &ReplySink,
) {
    let envelope = match parse_request(line) {
        Ok(e) => e,
        Err(f) => {
            send_reply(sink, f.id.as_deref(), error_response(&f.error), t0, true);
            return;
        }
    };
    let id = envelope.id;
    match envelope.req {
        Request::Ping => {
            let up = shared.metrics.lock().started.elapsed().as_secs_f64();
            send_reply(
                sink,
                id.as_deref(),
                format!("{{\"ok\":true,\"uptime_seconds\":{up}}}"),
                t0,
                false,
            );
        }
        Request::Models => send_reply(
            sink,
            id.as_deref(),
            models_response(&shared.registry.list()),
            t0,
            false,
        ),
        Request::Metrics => send_reply(
            sink,
            id.as_deref(),
            format!("{{\"ok\":true,\"metrics\":{}}}", shared.report().to_json()),
            t0,
            false,
        ),
        Request::Shutdown => {
            request_shutdown(shared, addr);
            send_reply(
                sink,
                id.as_deref(),
                "{\"ok\":true,\"draining\":true}".to_string(),
                t0,
                false,
            );
        }
        Request::Load(load) => {
            let shared = shared.clone();
            // A factorization blocks for seconds; the event loop must not.
            // The reactor sink keeps the connection's pending count raised
            // until the spawned load answers, so the drain invariant is
            // unaffected by the thread hop.
            let spawn = matches!(sink, ReplySink::Reactor { .. });
            let sink = sink.clone();
            let run_load = move || {
                let t_load = Instant::now();
                match build_plan_from_request(&load, &shared.load_engine) {
                    Ok((plan, llh)) => {
                        let n = plan.n_train();
                        shared.registry.insert(&load.name, plan);
                        shared
                            .metrics
                            .lock()
                            .load
                            .record(t_load.elapsed().as_secs_f64());
                        send_reply(
                            &sink,
                            id.as_deref(),
                            load_response(&load.name, n, llh),
                            t0,
                            false,
                        );
                    }
                    Err(e) => send_reply(&sink, id.as_deref(), error_response(&e), t0, true),
                }
            };
            if spawn {
                std::thread::spawn(run_load);
            } else {
                run_load();
            }
        }
        Request::Predict(p) => {
            let Some(plan) = shared.registry.get(&p.model) else {
                let msg = format!("unknown model '{}'", p.model);
                send_reply(sink, id.as_deref(), error_response(&msg), t0, true);
                return;
            };
            let deadline = p.deadline_ms.map(|ms| t0 + Duration::from_millis(ms));
            let job = Job {
                model: p.model,
                plan,
                points: p.points,
                uncertainty: p.uncertainty,
                enqueued: Instant::now(),
                deadline,
                resp: Responder {
                    id,
                    tx: sink.clone(),
                    t0,
                },
            };
            // Accepted jobs are answered by a solver through the writer
            // channel; refused jobs are answered right here. Either way
            // exactly one response goes out.
            match shared.queue.push(job) {
                Ok(()) => {}
                Err((job, PushError::Overloaded { queued_points })) => {
                    let retry = {
                        let mut m = shared.metrics.lock();
                        let retry = retry_after_ms(&m, queued_points);
                        m.shed.record(retry as f64 * 1e-3);
                        retry
                    };
                    job.resp.send(shed_response(retry), true);
                }
                Err((job, PushError::Closed)) => {
                    job.resp
                        .send(error_response("server is shutting down"), true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_core::{simulate_field, ModelFamily};
    use xgs_covariance::jittered_grid;
    use xgs_runtime::parse_json;
    use xgs_tile::Variant;

    fn started_server() -> (ServerHandle, Vec<xgs_covariance::Location>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(33);
        let locs = jittered_grid(150, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, 34);
        let (plan, _) = crate::registry::build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::MpDense,
            48,
            locs.clone(),
            &z,
            1,
        )
        .unwrap();
        let registry = Arc::new(ModelRegistry::new());
        registry.insert("default", plan);
        let handle = serve(&ServerConfig::default(), registry).unwrap();
        (handle, locs, z)
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> xgs_runtime::JsonValue {
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        parse_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"))
    }

    #[test]
    fn full_session_over_tcp() {
        let (handle, locs, z) = started_server();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();

        let pong = roundtrip(&mut conn, "{\"op\":\"ping\"}");
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));

        // Ids are echoed on every op.
        let pong = roundtrip(&mut conn, "{\"op\":\"ping\",\"id\":\"p1\"}");
        assert_eq!(pong.get("id").unwrap().as_str(), Some("p1"));

        let models = roundtrip(&mut conn, "{\"op\":\"models\"}");
        let list = models.get("models").unwrap().as_array().unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].get("n_train").unwrap().as_usize(), Some(150));

        // Self-prediction over the wire reproduces the training data.
        let pts: String = locs[..5]
            .iter()
            .map(|l| format!("[{},{}]", l.x, l.y))
            .collect::<Vec<_>>()
            .join(",");
        let pred = roundtrip(
            &mut conn,
            &format!("{{\"op\":\"predict\",\"points\":[{pts}],\"uncertainty\":true}}"),
        );
        assert_eq!(pred.get("ok").unwrap().as_bool(), Some(true));
        let mean = pred.get("mean").unwrap().as_array().unwrap();
        for (m, t) in mean.iter().zip(&z[..5]) {
            assert!((m.as_f64().unwrap() - t).abs() < 1e-5);
        }
        let unc = pred.get("uncertainty").unwrap().as_array().unwrap();
        assert_eq!(unc.len(), 5);

        // Errors come back as ok:false without killing the connection.
        let err = roundtrip(
            &mut conn,
            "{\"op\":\"predict\",\"model\":\"nope\",\"points\":[[0.5,0.5]]}",
        );
        assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));
        assert!(err.get("error").unwrap().as_str().unwrap().contains("nope"));

        let m = roundtrip(&mut conn, "{\"op\":\"metrics\"}");
        let report = MetricsReport::from_json(&m.get("metrics").unwrap().to_json_string())
            .expect("metrics parse back");
        assert!(report.tasks >= 5);

        let bye = roundtrip(&mut conn, "{\"op\":\"shutdown\"}");
        assert_eq!(bye.get("draining").unwrap().as_bool(), Some(true));
        drop(conn);
        let report = handle.join();
        assert!(report.kernels.iter().any(|k| k.kind == "request"));
    }

    #[test]
    fn concurrent_clients_get_bitwise_identical_answers() {
        let (handle, _locs, _z) = started_server();
        let addr = handle.addr();
        let points = "[[0.21,0.34],[0.55,0.62],[0.81,0.17]]";
        let request = format!("{{\"op\":\"predict\",\"points\":{points}}}");

        let mut joins = Vec::new();
        for _ in 0..6 {
            let request = request.clone();
            joins.push(std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).unwrap();
                let mut out = Vec::new();
                for _ in 0..5 {
                    let v = roundtrip(&mut conn, &request);
                    let mean: Vec<u64> = v
                        .get("mean")
                        .unwrap()
                        .as_array()
                        .unwrap()
                        .iter()
                        .map(|x| x.as_f64().unwrap().to_bits())
                        .collect();
                    out.push(mean);
                }
                out
            }));
        }
        let all: Vec<Vec<Vec<u64>>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let first = &all[0][0];
        for per_client in &all {
            for mean in per_client {
                assert_eq!(mean, first, "batching changed the numbers");
            }
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn load_over_the_wire_then_predict() {
        let registry = Arc::new(ModelRegistry::new());
        let handle = serve(&ServerConfig::default(), registry).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();

        let mut rng = StdRng::seed_from_u64(77);
        let locs = jittered_grid(80, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, 78);
        let locs_json: String = locs
            .iter()
            .map(|l| format!("[{},{}]", l.x, l.y))
            .collect::<Vec<_>>()
            .join(",");
        let z_json: String = z.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
        let loaded = roundtrip(
            &mut conn,
            &format!(
                "{{\"op\":\"load\",\"name\":\"wire\",\"theta\":[1.0,0.1,0.5],\
                 \"variant\":\"dense\",\"tile\":32,\"locs\":[{locs_json}],\"z\":[{z_json}]}}"
            ),
        );
        assert_eq!(
            loaded.get("ok").unwrap().as_bool(),
            Some(true),
            "{loaded:?}"
        );
        assert_eq!(loaded.get("n_train").unwrap().as_usize(), Some(80));

        let pred = roundtrip(
            &mut conn,
            &format!(
                "{{\"op\":\"predict\",\"model\":\"wire\",\"points\":[[{},{}]]}}",
                locs[3].x, locs[3].y
            ),
        );
        let m = pred.get("mean").unwrap().as_array().unwrap()[0]
            .as_f64()
            .unwrap();
        assert!((m - z[3]).abs() < 1e-5, "{m} vs {}", z[3]);

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn retry_hint_scales_with_backlog_and_history() {
        let mut m = ServerMetrics::new(1);
        // No history: 0.5 ms/point fallback.
        assert_eq!(retry_after_ms(&m, 100), 50);
        assert_eq!(retry_after_ms(&m, 0), 1, "clamped to at least 1 ms");
        // History: 200 points solved in 0.1 s → 0.5 ms/point measured
        // (ceil may round the float arithmetic up by one).
        m.solve.record(0.1);
        m.batch_size.record(200.0 * 1e-6);
        let hint = retry_after_ms(&m, 1000);
        assert!((500..=501).contains(&hint), "{hint}");
        assert_eq!(retry_after_ms(&m, usize::MAX / 2), 10_000, "upper clamp");
    }
}

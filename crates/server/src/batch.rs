//! Request batching: queue + coalescing policy.
//!
//! Concurrent predict requests against the same model are merged into one
//! multi-RHS solve — the cross-covariance assembly and the triangular
//! solves process every point of the batch in one pass over the cached
//! factor, which is where the service's throughput over one-shot CLI runs
//! comes from. Batching never changes results: each point's mean and
//! variance are computed column-independently (see the bitwise tests in
//! `xgs-core::predict` and `xgs-cholesky::solve`), so a batch of 64 equals
//! 64 singleton queries bit for bit.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use xgs_core::PredictionPlan;
use xgs_covariance::Location;

/// One enqueued predict request.
pub(crate) struct Job {
    /// Registry key — jobs only coalesce within the same model.
    pub model: String,
    pub plan: Arc<PredictionPlan>,
    pub points: Vec<Location>,
    pub uncertainty: bool,
    pub enqueued: Instant,
    /// Where the solver sends this request's slice of the batch result.
    pub resp: mpsc::Sender<JobResult>,
}

/// Per-request result, carved out of the batch solve.
pub(crate) struct JobResult {
    pub mean: Vec<f64>,
    pub uncertainty: Option<Vec<f64>>,
    /// Total points of the batch this request rode in.
    pub batch_points: usize,
    /// Number of requests coalesced into that batch.
    pub batch_requests: usize,
}

struct Inner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// MPMC job queue with same-model coalescing on pop.
pub(crate) struct BatchQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl BatchQueue {
    pub fn new() -> BatchQueue {
        BatchQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a job; `false` when the queue is already closed (the
    /// connection handler reports "shutting down" to the client).
    pub fn push(&self, job: Job) -> bool {
        let mut inner = self.inner.lock();
        if inner.closed {
            return false;
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.cv.notify_one();
        true
    }

    /// Block until work is available, then return a batch: the oldest job
    /// plus every queued job for the same `(model, uncertainty)` key, up
    /// to `max_points` total points. Returns `(batch, queue depth seen)`;
    /// `None` once the queue is closed and fully drained.
    pub fn pop_batch(&self, max_points: usize) -> Option<(Vec<Job>, usize)> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(first) = inner.jobs.pop_front() {
                let depth = inner.jobs.len() + 1;
                let mut batch = vec![first];
                let mut points = batch[0].points.len();
                let mut i = 0;
                while i < inner.jobs.len() && points < max_points {
                    let same = inner.jobs[i].model == batch[0].model
                        && inner.jobs[i].uncertainty == batch[0].uncertainty;
                    if same {
                        let job = inner.jobs.remove(i).unwrap();
                        points += job.points.len();
                        batch.push(job);
                    } else {
                        i += 1;
                    }
                }
                return Some((batch, depth));
            }
            if inner.closed {
                return None;
            }
            self.cv.wait(&mut inner);
        }
    }

    /// Close the queue: pending jobs still drain, new pushes are refused,
    /// and idle solvers wake up to exit.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_all();
    }
}

/// Execute one coalesced batch: a single multi-point query against the
/// shared plan, then scatter each request's slice back through its
/// response channel. Returns `(total points, solve seconds, longest queue
/// wait of the batch)` for metrics.
pub(crate) fn solve_batch(batch: Vec<Job>) -> (usize, f64, f64) {
    let plan = batch[0].plan.clone();
    let uncertainty = batch[0].uncertainty;
    let n_requests = batch.len();
    let all_points: Vec<Location> = batch
        .iter()
        .flat_map(|j| j.points.iter().copied())
        .collect();
    let total = all_points.len();
    let max_wait = batch
        .iter()
        .map(|j| j.enqueued.elapsed().as_secs_f64())
        .fold(0.0, f64::max);

    let t0 = Instant::now();
    let result = plan.query(&all_points, uncertainty);
    let solve_seconds = t0.elapsed().as_secs_f64();

    let mut offset = 0;
    for job in batch {
        let k = job.points.len();
        let res = JobResult {
            mean: result.mean[offset..offset + k].to_vec(),
            uncertainty: result
                .uncertainty
                .as_ref()
                .map(|u| u[offset..offset + k].to_vec()),
            batch_points: total,
            batch_requests: n_requests,
        };
        offset += k;
        // A vanished receiver means the client hung up; nothing to do.
        let _ = job.resp.send(res);
    }
    (total, solve_seconds, max_wait)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_core::{simulate_field, ModelFamily};
    use xgs_covariance::jittered_grid;
    use xgs_tile::Variant;

    fn test_plan() -> Arc<PredictionPlan> {
        let mut rng = StdRng::seed_from_u64(5);
        let locs = jittered_grid(100, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, 6);
        crate::registry::build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::DenseF64,
            32,
            locs,
            &z,
            1,
        )
        .unwrap()
        .0
    }

    fn job(
        plan: &Arc<PredictionPlan>,
        model: &str,
        points: Vec<Location>,
        uncertainty: bool,
    ) -> (Job, mpsc::Receiver<JobResult>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                model: model.to_string(),
                plan: plan.clone(),
                points,
                uncertainty,
                enqueued: Instant::now(),
                resp: tx,
            },
            rx,
        )
    }

    #[test]
    fn pop_batch_coalesces_only_matching_jobs() {
        let plan = test_plan();
        let q = BatchQueue::new();
        let pts = |x: f64| vec![Location::new(x, 0.5)];
        let (j1, _r1) = job(&plan, "a", pts(0.1), false);
        let (j2, _r2) = job(&plan, "b", pts(0.2), false);
        let (j3, _r3) = job(&plan, "a", pts(0.3), false);
        let (j4, _r4) = job(&plan, "a", pts(0.4), true); // different key
        assert!(q.push(j1) && q.push(j2) && q.push(j3) && q.push(j4));

        let (batch, depth) = q.pop_batch(1024).unwrap();
        assert_eq!(depth, 4);
        assert_eq!(batch.len(), 2, "both 'a'/plain jobs coalesce");
        assert!(batch.iter().all(|j| j.model == "a" && !j.uncertainty));
        let (batch2, _) = q.pop_batch(1024).unwrap();
        assert_eq!(batch2[0].model, "b");
        let (batch3, _) = q.pop_batch(1024).unwrap();
        assert!(batch3[0].uncertainty);

        q.close();
        assert!(q.pop_batch(1024).is_none());
        let (j5, _r5) = job(&plan, "a", pts(0.5), false);
        assert!(!q.push(j5), "closed queue refuses work");
    }

    #[test]
    fn max_points_caps_a_batch() {
        let plan = test_plan();
        let q = BatchQueue::new();
        let mut rxs = Vec::new();
        for i in 0..6 {
            let (j, r) = job(
                &plan,
                "m",
                vec![Location::new(0.1 * i as f64, 0.5); 4],
                false,
            );
            q.push(j);
            rxs.push(r);
        }
        // First pop stops adding once >= 8 points are gathered.
        let (batch, _) = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.iter().map(|j| j.points.len()).sum::<usize>(), 8);
    }

    #[test]
    fn solve_batch_scatters_slices_bitwise() {
        let plan = test_plan();
        let points: Vec<Location> = (0..9)
            .map(|i| Location::new(0.1 * i as f64, 0.37))
            .collect();
        // Reference: one flat query.
        let reference = plan.query(&points, true);

        let mut jobs = Vec::new();
        let mut rxs = Vec::new();
        for chunk in points.chunks(3) {
            let (j, r) = job(&plan, "m", chunk.to_vec(), true);
            jobs.push(j);
            rxs.push(r);
        }
        let (total, secs, wait) = solve_batch(jobs);
        assert_eq!(total, 9);
        assert!(secs >= 0.0 && wait >= 0.0);
        let mut got_mean = Vec::new();
        let mut got_unc = Vec::new();
        for rx in rxs {
            let res = rx.recv().unwrap();
            assert_eq!(res.batch_points, 9);
            assert_eq!(res.batch_requests, 3);
            got_mean.extend(res.mean);
            got_unc.extend(res.uncertainty.unwrap());
        }
        for (a, b) in reference.mean.iter().zip(&got_mean) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in reference.uncertainty.unwrap().iter().zip(&got_unc) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

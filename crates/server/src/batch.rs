//! Request batching: bounded queue + coalescing policy + response routing.
//!
//! Concurrent predict requests against the same model are merged into one
//! multi-RHS solve — the cross-covariance assembly and the triangular
//! solves process every point of the batch in one pass over the cached
//! factor, which is where the service's throughput over one-shot CLI runs
//! comes from. Batching never changes results: each point's mean and
//! variance are computed column-independently (see the bitwise tests in
//! `xgs-core::predict` and `xgs-cholesky::solve`), so a batch of 64 equals
//! 64 singleton queries bit for bit.
//!
//! Two robustness properties live here:
//!
//! * **Backpressure** — the queue carries a total-points budget; once the
//!   backlog reaches it, [`BatchQueue::push`] refuses new work so the
//!   handler can shed the request with a `retry_after_ms` hint instead of
//!   queueing unboundedly ([`PushError::Overloaded`]).
//! * **Out-of-order delivery** — jobs carry a [`Responder`] that routes
//!   the *formatted* response line (id attached) to the connection's
//!   writer thread, so answers flow back whenever their batch completes,
//!   independent of request order on the connection.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use xgs_core::PredictionPlan;
use xgs_covariance::Location;

use crate::protocol::{predict_response, with_id};

/// One response line headed back to a connection, paired with the request
/// arrival time (the writer records end-to-end latency) and an error flag.
pub(crate) struct Reply {
    /// Complete response line, id already attached, no trailing newline.
    pub line: String,
    /// When the request was read off the socket.
    pub t0: Instant,
    /// Whether this is an `{"ok":false,…}` response (for the error census).
    pub err: bool,
}

/// Where finished [`Reply`]s go — the frontend-specific half of response
/// routing. The threaded frontend hands replies to the connection's
/// dedicated writer thread over an mpsc channel; the reactor frontend
/// posts them to the event loop's completion hub (tagged with the
/// connection key) and wakes the loop via the poller's eventfd.
#[derive(Clone)]
pub(crate) enum ReplySink {
    Thread(mpsc::Sender<Reply>),
    Reactor {
        hub: Arc<crate::reactor::CompletionHub>,
        conn: u64,
    },
}

impl ReplySink {
    /// Deliver one finished reply. A vanished receiver (threaded) or a
    /// closed-and-reaped connection (reactor) means the client hung up
    /// mid-flight; the reactor hub still records the reply for latency
    /// and drain accounting, matching the threaded writer loop.
    pub fn send(&self, reply: Reply) {
        match self {
            ReplySink::Thread(tx) => {
                let _ = tx.send(reply);
            }
            ReplySink::Reactor { hub, conn } => hub.push(*conn, reply),
        }
    }
}

/// Where a job's answer goes: the owning connection's reply sink.
/// Consuming `send` enforces exactly-one-response per accepted request.
pub(crate) struct Responder {
    /// Serialized id to echo (`None` = request carried no id).
    pub id: Option<String>,
    pub tx: ReplySink,
    pub t0: Instant,
}

impl Responder {
    /// Send a response body (a JSON object literal).
    pub fn send(self, body: String, err: bool) {
        let line = with_id(self.id.as_deref(), body);
        self.tx.send(Reply {
            line,
            t0: self.t0,
            err,
        });
    }
}

/// One enqueued predict request.
pub(crate) struct Job {
    /// Registry key — jobs only coalesce within the same model.
    pub model: String,
    pub plan: Arc<PredictionPlan>,
    pub points: Vec<Location>,
    pub uncertainty: bool,
    pub enqueued: Instant,
    /// Absolute per-request deadline; expired jobs are answered with a
    /// timeout error at dequeue instead of being solved (or dropped).
    pub deadline: Option<Instant>,
    pub resp: Responder,
}

/// Why a push was refused. The job comes back so its responder can still
/// answer the client (the drain invariant "every accepted request is
/// answered" extends to refused ones: they're answered *immediately*).
pub(crate) enum PushError {
    /// The queue's points budget is exhausted; shed with a retry hint.
    Overloaded {
        /// Backlog size at refusal time (for the retry_after estimate).
        queued_points: usize,
    },
    /// The queue has been closed (server draining).
    Closed,
}

struct Inner {
    jobs: VecDeque<Job>,
    /// Total points across `jobs` (the backpressure quantity: solve cost
    /// scales with points, not with request count).
    queued_points: usize,
    closed: bool,
}

/// MPMC job queue with same-model coalescing on pop and a points budget
/// on push.
pub(crate) struct BatchQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
    /// Push refuses work once the backlog holds this many points. A single
    /// request larger than the budget is still accepted when the queue is
    /// empty (otherwise it could never run).
    max_queued_points: usize,
}

impl BatchQueue {
    pub fn new(max_queued_points: usize) -> BatchQueue {
        BatchQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                queued_points: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            max_queued_points: max_queued_points.max(1),
        }
    }

    /// Enqueue a job, or hand it back with the refusal reason.
    // Returning the Job by value is the point: the caller must still
    // answer the client through its responder, and one ~170-byte move per
    // refused request is noise next to the solve it avoided.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: Job) -> Result<(), (Job, PushError)> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err((job, PushError::Closed));
        }
        if inner.queued_points >= self.max_queued_points {
            let queued_points = inner.queued_points;
            return Err((job, PushError::Overloaded { queued_points }));
        }
        inner.queued_points += job.points.len();
        inner.jobs.push_back(job);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Block until work is available, then return a batch: the oldest job
    /// plus every queued job for the same `(model, uncertainty)` key, up
    /// to `max_points` total points. Returns `(batch, queue depth seen)`;
    /// `None` once the queue is closed and fully drained.
    pub fn pop_batch(&self, max_points: usize) -> Option<(Vec<Job>, usize)> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(first) = inner.jobs.pop_front() {
                let depth = inner.jobs.len() + 1;
                let mut batch = vec![first];
                let mut points = batch[0].points.len();
                let mut i = 0;
                while i < inner.jobs.len() && points < max_points {
                    let same = inner.jobs[i].model == batch[0].model
                        && inner.jobs[i].uncertainty == batch[0].uncertainty;
                    if same {
                        // The loop guard keeps `i` in range so `remove`
                        // yields the job; the `None` arm skips it rather
                        // than trusting that proof with a panic.
                        match inner.jobs.remove(i) {
                            Some(job) => {
                                points += job.points.len();
                                batch.push(job);
                            }
                            None => i += 1,
                        }
                    } else {
                        i += 1;
                    }
                }
                inner.queued_points -= batch.iter().map(|j| j.points.len()).sum::<usize>();
                return Some((batch, depth));
            }
            if inner.closed {
                return None;
            }
            self.cv.wait(&mut inner);
        }
    }

    /// Current backlog in points (the backpressure quantity).
    #[cfg(test)]
    pub fn queued_points(&self) -> usize {
        self.inner.lock().queued_points
    }

    /// Close the queue: pending jobs still drain, new pushes are refused,
    /// and idle solvers wake up to exit.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_all();
    }
}

/// Execute one coalesced batch: a single multi-point query against the
/// shared plan, then send each request's slice of the result back through
/// its responder. Returns `(total points, solve seconds, longest queue
/// wait of the batch)` for metrics.
pub(crate) fn solve_batch(batch: Vec<Job>) -> (usize, f64, f64) {
    let plan = batch[0].plan.clone();
    let uncertainty = batch[0].uncertainty;
    let n_requests = batch.len();
    let all_points: Vec<Location> = batch
        .iter()
        .flat_map(|j| j.points.iter().copied())
        .collect();
    let total = all_points.len();
    let max_wait = batch
        .iter()
        .map(|j| j.enqueued.elapsed().as_secs_f64())
        .fold(0.0, f64::max);

    let t0 = Instant::now();
    let result = plan.query(&all_points, uncertainty);
    let solve_seconds = t0.elapsed().as_secs_f64();

    let mut offset = 0;
    for job in batch {
        let k = job.points.len();
        let body = predict_response(
            &result.mean[offset..offset + k],
            result
                .uncertainty
                .as_deref()
                .map(|u| &u[offset..offset + k]),
            total,
            n_requests,
        );
        offset += k;
        job.resp.send(body, false);
    }
    (total, solve_seconds, max_wait)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_core::{simulate_field, ModelFamily};
    use xgs_covariance::jittered_grid;
    use xgs_runtime::parse_json;
    use xgs_tile::Variant;

    fn test_plan() -> Arc<PredictionPlan> {
        let mut rng = StdRng::seed_from_u64(5);
        let locs = jittered_grid(100, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, 6);
        crate::registry::build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::DenseF64,
            32,
            locs,
            &z,
            1,
        )
        .unwrap()
        .0
    }

    fn job(
        plan: &Arc<PredictionPlan>,
        model: &str,
        points: Vec<Location>,
        uncertainty: bool,
    ) -> (Job, mpsc::Receiver<Reply>) {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        (
            Job {
                model: model.to_string(),
                plan: plan.clone(),
                points,
                uncertainty,
                enqueued: now,
                deadline: None,
                resp: Responder {
                    id: None,
                    tx: ReplySink::Thread(tx),
                    t0: now,
                },
            },
            rx,
        )
    }

    #[test]
    fn pop_batch_coalesces_only_matching_jobs() {
        let plan = test_plan();
        let q = BatchQueue::new(1 << 16);
        let pts = |x: f64| vec![Location::new(x, 0.5)];
        let (j1, _r1) = job(&plan, "a", pts(0.1), false);
        let (j2, _r2) = job(&plan, "b", pts(0.2), false);
        let (j3, _r3) = job(&plan, "a", pts(0.3), false);
        let (j4, _r4) = job(&plan, "a", pts(0.4), true); // different key
        for j in [j1, j2, j3, j4] {
            assert!(q.push(j).is_ok());
        }
        assert_eq!(q.queued_points(), 4);

        let (batch, depth) = q.pop_batch(1024).unwrap();
        assert_eq!(depth, 4);
        assert_eq!(batch.len(), 2, "both 'a'/plain jobs coalesce");
        assert!(batch.iter().all(|j| j.model == "a" && !j.uncertainty));
        assert_eq!(q.queued_points(), 2);
        let (batch2, _) = q.pop_batch(1024).unwrap();
        assert_eq!(batch2[0].model, "b");
        let (batch3, _) = q.pop_batch(1024).unwrap();
        assert!(batch3[0].uncertainty);
        assert_eq!(q.queued_points(), 0);

        q.close();
        assert!(q.pop_batch(1024).is_none());
        let (j5, _r5) = job(&plan, "a", pts(0.5), false);
        assert!(
            matches!(q.push(j5), Err((_, PushError::Closed))),
            "closed queue refuses work"
        );
    }

    #[test]
    fn max_points_caps_a_batch() {
        let plan = test_plan();
        let q = BatchQueue::new(1 << 16);
        let mut rxs = Vec::new();
        for i in 0..6 {
            let (j, r) = job(
                &plan,
                "m",
                vec![Location::new(0.1 * i as f64, 0.5); 4],
                false,
            );
            assert!(q.push(j).is_ok());
            rxs.push(r);
        }
        // First pop stops adding once >= 8 points are gathered.
        let (batch, _) = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.iter().map(|j| j.points.len()).sum::<usize>(), 8);
    }

    #[test]
    fn points_budget_sheds_past_the_cap() {
        let plan = test_plan();
        let q = BatchQueue::new(10);
        let mk = |n: usize| job(&plan, "m", vec![Location::new(0.3, 0.5); n], false);

        // 4 + 4 fills to 8 < 10; the third push finds 8 < 10 and is
        // accepted (budget is a threshold, not a hard ceiling)…
        let (j1, _r1) = mk(4);
        let (j2, _r2) = mk(4);
        let (j3, _r3) = mk(4);
        assert!(q.push(j1).is_ok() && q.push(j2).is_ok() && q.push(j3).is_ok());
        assert_eq!(q.queued_points(), 12);
        // …and now the backlog ≥ budget: even a 1-point job is refused,
        // with the backlog size attached for the retry hint.
        let (j4, _r4) = mk(1);
        match q.push(j4) {
            Err((job, PushError::Overloaded { queued_points })) => {
                assert_eq!(queued_points, 12);
                assert_eq!(job.points.len(), 1, "job handed back intact");
            }
            _ => panic!("expected overload"),
        }
        // Draining restores capacity.
        let (batch, _) = q.pop_batch(1 << 16).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(q.queued_points(), 0);
        let (j5, _r5) = mk(1);
        assert!(q.push(j5).is_ok());

        // An empty queue accepts even a request larger than the budget
        // (it could otherwise never run).
        let q2 = BatchQueue::new(4);
        let (big, _rb) = mk(64);
        assert!(q2.push(big).is_ok());
    }

    #[test]
    fn solve_batch_scatters_slices_bitwise() {
        let plan = test_plan();
        let points: Vec<Location> = (0..9)
            .map(|i| Location::new(0.1 * i as f64, 0.37))
            .collect();
        // Reference: one flat query.
        let reference = plan.query(&points, true);

        let mut jobs = Vec::new();
        let mut rxs = Vec::new();
        for chunk in points.chunks(3) {
            let (j, r) = job(&plan, "m", chunk.to_vec(), true);
            jobs.push(j);
            rxs.push(r);
        }
        let (total, secs, wait) = solve_batch(jobs);
        assert_eq!(total, 9);
        assert!(secs >= 0.0 && wait >= 0.0);
        let mut got_mean = Vec::new();
        let mut got_unc = Vec::new();
        for rx in rxs {
            let reply = rx.recv().unwrap();
            assert!(!reply.err);
            let v = parse_json(&reply.line).unwrap();
            let batch = v.get("batch").unwrap();
            assert_eq!(batch.get("points").unwrap().as_usize(), Some(9));
            assert_eq!(batch.get("requests").unwrap().as_usize(), Some(3));
            for x in v.get("mean").unwrap().as_array().unwrap() {
                got_mean.push(x.as_f64().unwrap());
            }
            for x in v.get("uncertainty").unwrap().as_array().unwrap() {
                got_unc.push(x.as_f64().unwrap());
            }
        }
        for (a, b) in reference.mean.iter().zip(&got_mean) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in reference.uncertainty.unwrap().iter().zip(&got_unc) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

//! Wire protocol of the prediction service.
//!
//! Newline-delimited JSON over TCP: each request is one JSON object on one
//! line, each response is one JSON object on one line. The grammar is
//! documented in the repository README ("Prediction service protocol");
//! parsing reuses the hand-rolled [`xgs_runtime::json`] reader so the
//! server stays dependency-free.

use xgs_core::ModelFamily;
use xgs_covariance::Location;
use xgs_runtime::{escape_json, parse_json, JsonValue};
use xgs_tile::Variant;

/// One parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// List loaded models.
    Models,
    /// Export the server's metrics report.
    Metrics,
    /// Drain in-flight work and stop the server.
    Shutdown,
    /// Fit-free model ingestion: factorize and cache a new model.
    Load(LoadRequest),
    /// Kriging query against a cached model.
    Predict(PredictRequest),
}

/// `{"op":"load", ...}` payload.
#[derive(Debug)]
pub struct LoadRequest {
    pub name: String,
    pub family: ModelFamily,
    pub theta: Vec<f64>,
    pub variant: Variant,
    /// Tile size; 0 picks the CLI's default heuristic.
    pub tile: usize,
    pub locs: Vec<Location>,
    pub z: Vec<f64>,
}

/// `{"op":"predict", ...}` payload.
#[derive(Debug)]
pub struct PredictRequest {
    pub model: String,
    pub points: Vec<Location>,
    pub uncertainty: bool,
}

fn parse_points(v: &JsonValue) -> Result<Vec<Location>, String> {
    let arr = v.as_array().ok_or("'points' must be an array")?;
    let mut out = Vec::with_capacity(arr.len());
    for p in arr {
        let coords = p.as_array().ok_or("each point must be [x,y] or [x,y,t]")?;
        let c: Vec<f64> = coords
            .iter()
            .map(|x| x.as_f64().ok_or("point coordinates must be numbers"))
            .collect::<Result<_, _>>()?;
        match c.len() {
            2 => out.push(Location::new(c[0], c[1])),
            3 => out.push(Location::new_st(c[0], c[1], c[2])),
            n => return Err(format!("point has {n} coordinates (want 2 or 3)")),
        }
    }
    Ok(out)
}

fn parse_f64_list(v: &JsonValue, what: &str) -> Result<Vec<f64>, String> {
    v.as_array()
        .ok_or(format!("'{what}' must be an array of numbers"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or(format!("'{what}' must contain only numbers"))
        })
        .collect()
}

/// Parse one request line. Errors are client-facing strings (they go back
/// over the wire in an `{"ok":false}` envelope).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line).map_err(|e| format!("bad JSON: {e}"))?;
    let obj = v.as_object().ok_or("request must be a JSON object")?;
    let op = obj
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or("missing string field 'op'")?;
    match op {
        "ping" => Ok(Request::Ping),
        "models" => Ok(Request::Models),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "predict" => {
            let model = obj
                .get("model")
                .and_then(|m| m.as_str())
                .unwrap_or("default")
                .to_string();
            let points = parse_points(obj.get("points").ok_or("predict needs 'points'")?)?;
            if points.is_empty() {
                return Err("'points' must not be empty".into());
            }
            let uncertainty = obj
                .get("uncertainty")
                .map(|u| u.as_bool().ok_or("'uncertainty' must be a boolean"))
                .transpose()?
                .unwrap_or(false);
            Ok(Request::Predict(PredictRequest {
                model,
                points,
                uncertainty,
            }))
        }
        "load" => {
            let name = obj
                .get("name")
                .and_then(|m| m.as_str())
                .unwrap_or("default")
                .to_string();
            let family = match obj
                .get("kernel")
                .and_then(|k| k.as_str())
                .unwrap_or("matern")
            {
                "matern" => ModelFamily::MaternSpace,
                "gneiting" => ModelFamily::GneitingSpaceTime,
                other => return Err(format!("unknown kernel '{other}' (matern|gneiting)")),
            };
            let variant = match obj
                .get("variant")
                .and_then(|s| s.as_str())
                .unwrap_or("mp-tlr")
            {
                "dense" => Variant::DenseF64,
                "mp" => Variant::MpDense,
                "mp-tlr" => Variant::MpDenseTlr,
                other => return Err(format!("unknown variant '{other}' (dense|mp|mp-tlr)")),
            };
            let theta = parse_f64_list(obj.get("theta").ok_or("load needs 'theta'")?, "theta")?;
            if theta.len() != family.n_params() {
                return Err(format!(
                    "'theta' needs {} values for this kernel, got {}",
                    family.n_params(),
                    theta.len()
                ));
            }
            let locs = parse_points(obj.get("locs").ok_or("load needs 'locs'")?)?;
            let z = parse_f64_list(obj.get("z").ok_or("load needs 'z'")?, "z")?;
            if locs.is_empty() || locs.len() != z.len() {
                return Err(format!(
                    "'locs' ({}) and 'z' ({}) must be equal-length and non-empty",
                    locs.len(),
                    z.len()
                ));
            }
            let tile = obj
                .get("tile")
                .map(|t| t.as_usize().ok_or("'tile' must be a non-negative integer"))
                .transpose()?
                .unwrap_or(0);
            Ok(Request::Load(LoadRequest {
                name,
                family,
                theta,
                variant,
                tile,
                locs,
                z,
            }))
        }
        other => Err(format!("unknown op '{other}'")),
    }
}

/// `{"ok":false,"error":...}` envelope.
pub fn error_response(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", escape_json(msg))
}

fn join_f64(xs: &[f64]) -> String {
    // `{}` (shortest round-trip formatting) keeps the wire value bit-exact
    // when the client parses it back — the smoke tests checksum on this.
    xs.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
}

/// Successful predict response.
pub fn predict_response(
    mean: &[f64],
    uncertainty: Option<&[f64]>,
    batch_points: usize,
    batched_requests: usize,
) -> String {
    let mut s = format!("{{\"ok\":true,\"mean\":[{}]", join_f64(mean));
    if let Some(u) = uncertainty {
        s.push_str(&format!(",\"uncertainty\":[{}]", join_f64(u)));
    }
    s.push_str(&format!(
        ",\"batch\":{{\"points\":{batch_points},\"requests\":{batched_requests}}}}}"
    ));
    s
}

/// Successful load response.
pub fn load_response(name: &str, n_train: usize, llh: f64) -> String {
    format!(
        "{{\"ok\":true,\"name\":\"{}\",\"n_train\":{n_train},\"llh\":{llh}}}",
        escape_json(name)
    )
}

/// Successful models listing.
pub fn models_response(models: &[(String, usize)]) -> String {
    let items = models
        .iter()
        .map(|(name, n)| format!("{{\"name\":\"{}\",\"n_train\":{n}}}", escape_json(name)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"ok\":true,\"models\":[{items}]}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_requests() {
        assert!(matches!(
            parse_request("{\"op\":\"ping\"}"),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request("{\"op\":\"models\"}"),
            Ok(Request::Models)
        ));
        let p = parse_request(
            "{\"op\":\"predict\",\"model\":\"m\",\"points\":[[0.1,0.2],[0.3,0.4,0.5]],\
             \"uncertainty\":true}",
        )
        .unwrap();
        match p {
            Request::Predict(p) => {
                assert_eq!(p.model, "m");
                assert_eq!(p.points.len(), 2);
                assert_eq!(p.points[1].t, 0.5);
                assert!(p.uncertainty);
            }
            other => panic!("{other:?}"),
        }
        let l = parse_request(
            "{\"op\":\"load\",\"name\":\"a\",\"theta\":[1.0,0.1,0.5],\"variant\":\"mp\",\
             \"tile\":32,\"locs\":[[0.0,0.0],[1.0,1.0]],\"z\":[0.5,-0.5]}",
        )
        .unwrap();
        match l {
            Request::Load(l) => {
                assert_eq!(l.name, "a");
                assert_eq!(l.variant, Variant::MpDense);
                assert_eq!(l.locs.len(), 2);
                assert_eq!(l.tile, 32);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_with_readable_errors() {
        for (line, needle) in [
            ("not json", "bad JSON"),
            ("[1,2]", "object"),
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"predict\"}", "points"),
            ("{\"op\":\"predict\",\"points\":[]}", "empty"),
            ("{\"op\":\"predict\",\"points\":[[1.0]]}", "coordinates"),
            (
                "{\"op\":\"load\",\"theta\":[1.0],\"locs\":[[0.0,0.0]],\"z\":[1.0]}",
                "theta",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn responses_are_valid_json() {
        for s in [
            predict_response(&[1.5, -0.25], Some(&[0.1, 0.2]), 7, 2),
            predict_response(&[1.0], None, 1, 1),
            error_response("bad \"thing\""),
            load_response("m", 100, -42.5),
            models_response(&[("a".into(), 10), ("b".into(), 20)]),
        ] {
            parse_json(&s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn float_wire_format_round_trips_bitwise() {
        let xs = [1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 123456.789012345];
        let s = predict_response(&xs, None, 1, 1);
        let v = parse_json(&s).unwrap();
        let mean = v.get("mean").unwrap().as_array().unwrap();
        for (a, b) in xs.iter().zip(mean) {
            assert_eq!(a.to_bits(), b.as_f64().unwrap().to_bits());
        }
    }
}

//! Wire protocol of the prediction service.
//!
//! Newline-delimited JSON over TCP: each request is one JSON object on one
//! line, each response is one JSON object on one line. The grammar is
//! documented in the repository README ("Prediction service protocol");
//! parsing reuses the hand-rolled [`xgs_runtime::json`] reader so the
//! server stays dependency-free.
//!
//! Requests may carry an optional client-assigned `"id"` (string or finite
//! number) that is echoed verbatim in the matching response. Because the
//! server answers a connection's requests out of order (`predict` runs on
//! the solver pool while `ping`/`metrics` are answered inline), a client
//! that pipelines more than one request at a time must tag them with ids
//! to correlate the responses. `predict` additionally accepts
//! `"deadline_ms"`: a per-request time budget after which the server
//! answers with a timeout error instead of running the solve.

use xgs_core::ModelFamily;
use xgs_covariance::Location;
use xgs_runtime::{escape_json, parse_json, JsonValue};
use xgs_tile::Variant;

/// Hard cap on the serialized length of a client-assigned `id` (the server
/// echoes ids verbatim, so unbounded ids would let a client inflate every
/// response).
pub const MAX_ID_LEN: usize = 256;

/// One parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// List loaded models.
    Models,
    /// Export the server's metrics report.
    Metrics,
    /// Drain in-flight work and stop the server.
    Shutdown,
    /// Fit-free model ingestion: factorize and cache a new model.
    Load(LoadRequest),
    /// Kriging query against a cached model.
    Predict(PredictRequest),
}

/// A parsed request plus its correlation id (already serialized back to
/// JSON text, ready to echo).
#[derive(Debug)]
pub struct Envelope {
    pub id: Option<String>,
    pub req: Request,
}

/// A request that failed to parse; carries the id (when one was readable)
/// so even error responses stay correlatable on a multiplexed connection.
#[derive(Debug)]
pub struct ParseFailure {
    pub id: Option<String>,
    pub error: String,
}

/// `{"op":"load", ...}` payload.
#[derive(Debug)]
pub struct LoadRequest {
    pub name: String,
    pub family: ModelFamily,
    pub theta: Vec<f64>,
    pub variant: Variant,
    /// Tile size; 0 picks the CLI's default heuristic.
    pub tile: usize,
    pub locs: Vec<Location>,
    pub z: Vec<f64>,
}

/// `{"op":"predict", ...}` payload.
#[derive(Debug)]
pub struct PredictRequest {
    pub model: String,
    pub points: Vec<Location>,
    pub uncertainty: bool,
    /// Per-request time budget, milliseconds (None = no deadline).
    pub deadline_ms: Option<u64>,
}

/// A finite `f64` or a client-facing error naming the offending field —
/// non-finite coordinates/values must never reach a solve (a single NaN
/// poisons the whole batched multi-RHS solve it rides in).
fn finite(x: f64, what: &str) -> Result<f64, String> {
    if x.is_finite() {
        Ok(x)
    } else {
        Err(format!("'{what}' contains a non-finite number"))
    }
}

fn parse_points(v: &JsonValue, what: &str) -> Result<Vec<Location>, String> {
    let arr = v.as_array().ok_or(format!("'{what}' must be an array"))?;
    let mut out = Vec::with_capacity(arr.len());
    for p in arr {
        let coords = p.as_array().ok_or("each point must be [x,y] or [x,y,t]")?;
        let c: Vec<f64> = coords
            .iter()
            .map(|x| {
                x.as_f64()
                    .ok_or("point coordinates must be numbers".to_string())
                    .and_then(|x| finite(x, what))
            })
            .collect::<Result<_, _>>()?;
        match c.len() {
            2 => out.push(Location::new(c[0], c[1])),
            3 => out.push(Location::new_st(c[0], c[1], c[2])),
            n => return Err(format!("point has {n} coordinates (want 2 or 3)")),
        }
    }
    Ok(out)
}

fn parse_f64_list(v: &JsonValue, what: &str) -> Result<Vec<f64>, String> {
    v.as_array()
        .ok_or(format!("'{what}' must be an array of numbers"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or(format!("'{what}' must contain only numbers"))
                .and_then(|x| finite(x, what))
        })
        .collect()
}

/// Serialize a request's `"id"` member back to JSON text for echoing.
/// Only strings and finite numbers are accepted as ids.
fn parse_id(obj: &std::collections::BTreeMap<String, JsonValue>) -> Result<Option<String>, String> {
    let Some(id) = obj.get("id") else {
        return Ok(None);
    };
    let text = match id {
        JsonValue::String(s) => format!("\"{}\"", escape_json(s)),
        JsonValue::Number(n) if n.is_finite() => n.to_string(),
        _ => return Err("'id' must be a string or a finite number".to_string()),
    };
    if text.len() > MAX_ID_LEN {
        return Err(format!("'id' longer than {MAX_ID_LEN} bytes"));
    }
    Ok(Some(text))
}

/// Parse one request line. Failures are client-facing ([`ParseFailure`]
/// goes back over the wire in an `{"ok":false}` envelope, id attached when
/// one could be read).
pub fn parse_request(line: &str) -> Result<Envelope, ParseFailure> {
    let no_id = |error: String| ParseFailure { id: None, error };
    let v = parse_json(line).map_err(|e| no_id(format!("bad JSON: {e}")))?;
    let obj = v
        .as_object()
        .ok_or_else(|| no_id("request must be a JSON object".to_string()))?;
    let id = parse_id(obj).map_err(no_id)?;
    let fail = |error: String| ParseFailure {
        id: id.clone(),
        error,
    };
    let op = obj
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or_else(|| fail("missing string field 'op'".to_string()))?;
    let req = match op {
        "ping" => Request::Ping,
        "models" => Request::Models,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        "predict" => parse_predict(obj).map_err(fail)?,
        "load" => parse_load(obj).map_err(fail)?,
        other => return Err(fail(format!("unknown op '{other}'"))),
    };
    Ok(Envelope { id, req })
}

fn parse_predict(obj: &std::collections::BTreeMap<String, JsonValue>) -> Result<Request, String> {
    let model = obj
        .get("model")
        .and_then(|m| m.as_str())
        .unwrap_or("default")
        .to_string();
    let points = parse_points(obj.get("points").ok_or("predict needs 'points'")?, "points")?;
    if points.is_empty() {
        return Err("'points' must not be empty".into());
    }
    let uncertainty = obj
        .get("uncertainty")
        .map(|u| u.as_bool().ok_or("'uncertainty' must be a boolean"))
        .transpose()?
        .unwrap_or(false);
    let deadline_ms = obj
        .get("deadline_ms")
        .map(|d| {
            d.as_u64()
                .ok_or("'deadline_ms' must be a non-negative integer")
        })
        .transpose()?;
    Ok(Request::Predict(PredictRequest {
        model,
        points,
        uncertainty,
        deadline_ms,
    }))
}

fn parse_load(obj: &std::collections::BTreeMap<String, JsonValue>) -> Result<Request, String> {
    let name = obj
        .get("name")
        .and_then(|m| m.as_str())
        .unwrap_or("default")
        .to_string();
    let family = match obj
        .get("kernel")
        .and_then(|k| k.as_str())
        .unwrap_or("matern")
    {
        "matern" => ModelFamily::MaternSpace,
        "gneiting" => ModelFamily::GneitingSpaceTime,
        other => return Err(format!("unknown kernel '{other}' (matern|gneiting)")),
    };
    let variant = match obj
        .get("variant")
        .and_then(|s| s.as_str())
        .unwrap_or("mp-tlr")
    {
        "dense" => Variant::DenseF64,
        "mp" => Variant::MpDense,
        "mp-tlr" => Variant::MpDenseTlr,
        other => return Err(format!("unknown variant '{other}' (dense|mp|mp-tlr)")),
    };
    let theta = parse_f64_list(obj.get("theta").ok_or("load needs 'theta'")?, "theta")?;
    if theta.len() != family.n_params() {
        return Err(format!(
            "'theta' needs {} values for this kernel, got {}",
            family.n_params(),
            theta.len()
        ));
    }
    let locs = parse_points(obj.get("locs").ok_or("load needs 'locs'")?, "locs")?;
    let z = parse_f64_list(obj.get("z").ok_or("load needs 'z'")?, "z")?;
    if locs.is_empty() || locs.len() != z.len() {
        return Err(format!(
            "'locs' ({}) and 'z' ({}) must be equal-length and non-empty",
            locs.len(),
            z.len()
        ));
    }
    let tile = obj
        .get("tile")
        .map(|t| t.as_usize().ok_or("'tile' must be a non-negative integer"))
        .transpose()?
        .unwrap_or(0);
    Ok(Request::Load(LoadRequest {
        name,
        family,
        theta,
        variant,
        tile,
        locs,
        z,
    }))
}

/// Prepend the echoed `"id"` member to a response body (`body` must be a
/// JSON object literal, which every response in this module is).
pub fn with_id(id: Option<&str>, body: String) -> String {
    match id {
        None => body,
        Some(id) => format!("{{\"id\":{id},{}", &body[1..]),
    }
}

/// `{"ok":false,"error":...}` envelope.
pub fn error_response(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", escape_json(msg))
}

/// Overload-shedding response: the request was refused *before* queueing,
/// with a hint for when capacity should be back.
pub fn shed_response(retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"server overloaded, retry later\",\
         \"retry_after_ms\":{retry_after_ms}}}"
    )
}

fn join_f64(xs: &[f64]) -> String {
    // `{}` (shortest round-trip formatting) keeps the wire value bit-exact
    // when the client parses it back — the smoke tests checksum on this.
    xs.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
}

/// Successful predict response.
pub fn predict_response(
    mean: &[f64],
    uncertainty: Option<&[f64]>,
    batch_points: usize,
    batched_requests: usize,
) -> String {
    let mut s = format!("{{\"ok\":true,\"mean\":[{}]", join_f64(mean));
    if let Some(u) = uncertainty {
        s.push_str(&format!(",\"uncertainty\":[{}]", join_f64(u)));
    }
    s.push_str(&format!(
        ",\"batch\":{{\"points\":{batch_points},\"requests\":{batched_requests}}}}}"
    ));
    s
}

/// Successful load response.
pub fn load_response(name: &str, n_train: usize, llh: f64) -> String {
    format!(
        "{{\"ok\":true,\"name\":\"{}\",\"n_train\":{n_train},\"llh\":{llh}}}",
        escape_json(name)
    )
}

/// Successful models listing.
pub fn models_response(models: &[(String, usize)]) -> String {
    let items = models
        .iter()
        .map(|(name, n)| format!("{{\"name\":\"{}\",\"n_train\":{n}}}", escape_json(name)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"ok\":true,\"models\":[{items}]}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(line: &str) -> Result<Request, String> {
        parse_request(line).map(|e| e.req).map_err(|f| f.error)
    }

    #[test]
    fn parses_the_documented_requests() {
        assert!(matches!(req("{\"op\":\"ping\"}"), Ok(Request::Ping)));
        assert!(matches!(req("{\"op\":\"models\"}"), Ok(Request::Models)));
        let p = req(
            "{\"op\":\"predict\",\"model\":\"m\",\"points\":[[0.1,0.2],[0.3,0.4,0.5]],\
             \"uncertainty\":true,\"deadline_ms\":250}",
        )
        .unwrap();
        match p {
            Request::Predict(p) => {
                assert_eq!(p.model, "m");
                assert_eq!(p.points.len(), 2);
                assert_eq!(p.points[1].t, 0.5);
                assert!(p.uncertainty);
                assert_eq!(p.deadline_ms, Some(250));
            }
            other => panic!("{other:?}"),
        }
        let l = req(
            "{\"op\":\"load\",\"name\":\"a\",\"theta\":[1.0,0.1,0.5],\"variant\":\"mp\",\
             \"tile\":32,\"locs\":[[0.0,0.0],[1.0,1.0]],\"z\":[0.5,-0.5]}",
        )
        .unwrap();
        match l {
            Request::Load(l) => {
                assert_eq!(l.name, "a");
                assert_eq!(l.variant, Variant::MpDense);
                assert_eq!(l.locs.len(), 2);
                assert_eq!(l.tile, 32);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ids_are_parsed_and_echoed_even_on_errors() {
        let e = parse_request("{\"op\":\"ping\",\"id\":\"req-7\"}").unwrap();
        assert_eq!(e.id.as_deref(), Some("\"req-7\""));
        let e = parse_request("{\"op\":\"ping\",\"id\":42}").unwrap();
        assert_eq!(e.id.as_deref(), Some("42"));
        assert!(parse_request("{\"op\":\"ping\"}").unwrap().id.is_none());

        // A bad op still yields the id so the error can be correlated.
        let f = parse_request("{\"op\":\"nope\",\"id\":9}").unwrap_err();
        assert_eq!(f.id.as_deref(), Some("9"));
        // Structurally bad ids are themselves an error (without an echo).
        let f = parse_request("{\"op\":\"ping\",\"id\":[1]}").unwrap_err();
        assert!(f.id.is_none());
        assert!(f.error.contains("'id'"), "{}", f.error);
        let long = format!("{{\"op\":\"ping\",\"id\":\"{}\"}}", "x".repeat(4096));
        assert!(parse_request(&long).unwrap_err().error.contains("longer"));

        // with_id splices the echo into every response shape.
        let tagged = with_id(Some("\"req-7\""), error_response("nope"));
        let v = parse_json(&tagged).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("req-7"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(with_id(None, "{\"ok\":true}".into()), "{\"ok\":true}");
    }

    #[test]
    fn rejects_malformed_requests_with_readable_errors() {
        for (line, needle) in [
            ("not json", "bad JSON"),
            ("[1,2]", "object"),
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"predict\"}", "points"),
            ("{\"op\":\"predict\",\"points\":[]}", "empty"),
            ("{\"op\":\"predict\",\"points\":[[1.0]]}", "coordinates"),
            (
                "{\"op\":\"predict\",\"points\":[[0.1,0.2]],\"deadline_ms\":-5}",
                "deadline_ms",
            ),
            (
                "{\"op\":\"load\",\"theta\":[1.0],\"locs\":[[0.0,0.0]],\"z\":[1.0]}",
                "theta",
            ),
        ] {
            let err = req(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn non_finite_payloads_never_reach_a_solve() {
        // `1e999` overflows to +inf during parsing — grammar-valid JSON
        // that must still be refused before it poisons a batched solve.
        for (line, field) in [
            ("{\"op\":\"predict\",\"points\":[[1e999,0.2]]}", "points"),
            ("{\"op\":\"predict\",\"points\":[[0.1,-1e999]]}", "points"),
            (
                "{\"op\":\"load\",\"theta\":[1e999,0.1,0.5],\"locs\":[[0.0,0.0]],\"z\":[1.0]}",
                "theta",
            ),
            (
                "{\"op\":\"load\",\"theta\":[1.0,0.1,0.5],\"locs\":[[0.0,0.0]],\"z\":[1e999]}",
                "z",
            ),
            (
                "{\"op\":\"load\",\"theta\":[1.0,0.1,0.5],\"locs\":[[0.0,1e999]],\"z\":[1.0]}",
                "locs",
            ),
        ] {
            let err = req(line).unwrap_err();
            assert!(
                err.contains("non-finite") && err.contains(field),
                "{line}: {err}"
            );
        }
    }

    #[test]
    fn responses_are_valid_json() {
        for s in [
            predict_response(&[1.5, -0.25], Some(&[0.1, 0.2]), 7, 2),
            predict_response(&[1.0], None, 1, 1),
            error_response("bad \"thing\""),
            shed_response(120),
            load_response("m", 100, -42.5),
            models_response(&[("a".into(), 10), ("b".into(), 20)]),
            with_id(Some("\"x\""), predict_response(&[1.0], None, 1, 1)),
        ] {
            parse_json(&s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
        let shed = parse_json(&shed_response(120)).unwrap();
        assert_eq!(shed.get("retry_after_ms").unwrap().as_u64(), Some(120));
    }

    #[test]
    fn float_wire_format_round_trips_bitwise() {
        let xs = [1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 123456.789012345];
        let s = predict_response(&xs, None, 1, 1);
        let v = parse_json(&s).unwrap();
        let mean = v.get("mean").unwrap().as_array().unwrap();
        for (a, b) in xs.iter().zip(mean) {
            assert_eq!(a.to_bits(), b.as_f64().unwrap().to_bits());
        }
    }
}

//! Synthetic query-stream load generator for the prediction service.
//!
//! Replays a deterministic stream of predict requests against a running
//! server from `conns` parallel connections, optionally throttled to a
//! target aggregate rate, and reports throughput plus latency percentiles.
//! Every request carries an `"id"` and each connection keeps up to
//! `concurrency_per_conn` requests in flight, correlating the server's
//! out-of-order responses by id — so the generator doubles as an exerciser
//! of the server's connection multiplexing.
//!
//! Every successful response's mean vector is folded into an
//! order-independent checksum (per-request FNV hashes combined with XOR),
//! so two runs with the same seed against the same model must produce the
//! same checksum — the smoke tests use this to prove that neither batching
//! nor out-of-order completion ever changes results.
//!
//! The generator never panics on server misbehaviour: refused (shed),
//! expired (deadline) and failed requests are counted separately and the
//! binary turns unexpected ones into a nonzero exit.
//!
//! Two drive modes:
//!
//! * **Closed loop** (default): `conns` worker threads, each a pipelined
//!   blocking connection with up to `concurrency_per_conn` in flight.
//! * **Open loop** (`connections > 0`): one thread multiplexes that many
//!   nonblocking sockets through the same epoll shim the server's reactor
//!   uses, connecting in ramped batches. Connect failures (`EMFILE`,
//!   `ECONNREFUSED` from a full backlog, timeouts) are counted and
//!   retried until the connect budget runs out — a high-concurrency run
//!   reports instead of aborting. This is the mode that proves the
//!   reactor frontend holds 10k+ concurrent connections.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use polling::{Event, Events, Poller};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xgs_runtime::{parse_json, JsonValue};

/// Load-generation parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4741`.
    pub addr: String,
    /// Model name to query.
    pub model: String,
    /// Total predict requests across all connections.
    pub requests: usize,
    /// Parallel connections.
    pub conns: usize,
    /// Points per predict request.
    pub points: usize,
    /// Aggregate target rate, requests/second (0 = unthrottled).
    pub rate: f64,
    /// Ask for kriging variance too.
    pub uncertainty: bool,
    /// Seed of the synthetic query stream.
    pub seed: u64,
    /// Query locations are uniform in `[0, domain]²`.
    pub domain: f64,
    /// How long to retry the initial connection (covers server startup).
    pub connect_timeout: Duration,
    /// Send `{"op":"shutdown"}` after the run (for scripted smoke tests).
    pub shutdown: bool,
    /// In-flight requests per connection (pipelining window, ≥ 1). Above 1
    /// the server may answer out of order; responses are matched by id.
    pub concurrency_per_conn: usize,
    /// Attach `"deadline_ms"` to every predict (0 = none).
    pub deadline_ms: u64,
    /// Overload drill: shed responses (`retry_after_ms`) are expected and
    /// do not fail the run.
    pub overload: bool,
    /// Open-loop mode: when > 0, hold this many concurrent connections
    /// from a single epoll-driven thread (ignoring `conns` and
    /// `concurrency_per_conn`), spreading `requests` across them. Extra
    /// connections beyond the request count sit idle but open — the
    /// concurrency soak the reactor frontend is gated on.
    pub connections: usize,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:4741".to_string(),
            model: "default".to_string(),
            requests: 100,
            conns: 4,
            points: 8,
            rate: 0.0,
            uncertainty: false,
            seed: 1,
            domain: 1.0,
            connect_timeout: Duration::from_secs(10),
            shutdown: false,
            concurrency_per_conn: 1,
            deadline_ms: 0,
            overload: false,
            connections: 0,
        }
    }
}

/// Outcome of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Requests answered `ok:true`.
    pub sent: usize,
    /// Hard failures: transport errors, disconnects, malformed or
    /// unclassifiable error responses.
    pub errors: usize,
    /// Requests refused with a `retry_after_ms` hint (overload shedding).
    pub shed: usize,
    /// Requests answered with a deadline-exceeded error.
    pub expired: usize,
    /// Wall time of the request phase, seconds.
    pub elapsed: f64,
    /// Successful requests per second.
    pub throughput: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Order-independent checksum over all response means (and variances).
    pub checksum: u64,
    /// Failed connect attempts that were retried (open-loop mode; always 0
    /// in closed-loop mode, whose per-worker retry loop has no counter).
    pub connect_failures: usize,
    /// Most connections simultaneously established (open-loop mode).
    pub peak_conns: usize,
    /// The server's metrics JSON, fetched after the request phase.
    pub server_metrics: Option<String>,
}

impl LoadgenReport {
    /// Human-oriented multi-line summary.
    pub fn summary(&self) -> String {
        let open_loop = if self.peak_conns > 0 {
            format!(
                " | {} peak conns, {} connect retries",
                self.peak_conns, self.connect_failures
            )
        } else {
            String::new()
        };
        format!(
            "{} requests in {:.2}s: {:.0} req/s | latency p50 {:.2} ms, p95 {:.2} ms, \
             p99 {:.2} ms, max {:.2} ms | {} errors, {} shed, {} expired | checksum {:016x}{}",
            self.sent,
            self.elapsed,
            self.throughput,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
            self.errors,
            self.shed,
            self.expired,
            self.checksum,
            open_loop
        )
    }

    /// Machine-readable dump; when the server metrics were fetched they are
    /// embedded verbatim under `"server"` (same schema as every other
    /// `--metrics` export, so `metrics_diff` can digest it).
    pub fn to_json(&self) -> String {
        let loadgen = format!(
            concat!(
                "{{\"sent\":{},\"errors\":{},\"shed\":{},\"expired\":{},",
                "\"elapsed_seconds\":{},\"throughput_rps\":{},",
                "\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{},",
                "\"connect_failures\":{},\"peak_conns\":{},\"checksum\":\"{:016x}\"}}"
            ),
            self.sent,
            self.errors,
            self.shed,
            self.expired,
            self.elapsed,
            self.throughput,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
            self.connect_failures,
            self.peak_conns,
            self.checksum
        );
        match &self.server_metrics {
            Some(m) => format!("{{\"loadgen\":{loadgen},\"server\":{m}}}"),
            None => format!("{{\"loadgen\":{loadgen}}}"),
        }
    }
}

/// Connect, retrying until the server accepts (it may still be binding).
pub fn connect_with_retry(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("could not connect to {addr}: {e}"))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// FNV-1a over the IEEE bits of a float sequence.
fn hash_bits(acc: u64, x: f64) -> u64 {
    (acc ^ x.to_bits()).wrapping_mul(0x100000001b3)
}

fn build_request(cfg: &LoadgenConfig, rng: &mut StdRng, seq: usize) -> String {
    let pts: String = (0..cfg.points)
        .map(|_| {
            format!(
                "[{},{}]",
                rng.random_range(0.0..cfg.domain),
                rng.random_range(0.0..cfg.domain)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let deadline = if cfg.deadline_ms > 0 {
        format!(",\"deadline_ms\":{}", cfg.deadline_ms)
    } else {
        String::new()
    };
    format!(
        "{{\"op\":\"predict\",\"id\":{seq},\"model\":\"{}\",\"points\":[{pts}],\
         \"uncertainty\":{}{deadline}}}\n",
        cfg.model, cfg.uncertainty
    )
}

/// Per-connection tally, merged across workers after the join.
#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    errors: usize,
    shed: usize,
    expired: usize,
    checksum: u64,
}

impl Tally {
    /// Classify one attributed response (its send time already looked up)
    /// into the ok/shed/expired/error census, folding successful results
    /// into the latency list and checksum. Shared by both drive modes.
    fn record(&mut self, v: &JsonValue, t_send: Instant) {
        if v.get("ok").and_then(|o| o.as_bool()) == Some(true) {
            let mut h = 0xcbf29ce484222325u64;
            let mut numeric = true;
            for field in ["mean", "uncertainty"] {
                if let Some(values) = v.get(field).and_then(|m| m.as_array()) {
                    for x in values {
                        match x.as_f64() {
                            Some(f) => h = hash_bits(h, f),
                            None => numeric = false,
                        }
                    }
                }
            }
            if numeric {
                self.latencies_ms.push(t_send.elapsed().as_secs_f64() * 1e3);
                self.checksum ^= h;
            } else {
                self.errors += 1;
            }
        } else if v.get("retry_after_ms").is_some() {
            self.shed += 1;
        } else if v
            .get("error")
            .and_then(|e| e.as_str())
            .is_some_and(|e| e.contains("deadline"))
        {
            self.expired += 1;
        } else {
            self.errors += 1;
        }
    }
}

/// One pipelined connection: keep up to `window` requests in flight,
/// correlate out-of-order responses by id. Any transport failure fails the
/// connection's remaining requests — never the process.
fn run_conn(cfg: &LoadgenConfig, conn_id: usize, share: usize, interval: Duration) -> Tally {
    let mut tally = Tally {
        latencies_ms: Vec::with_capacity(share),
        ..Tally::default()
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(7919 * conn_id as u64));
    let window = cfg.concurrency_per_conn.max(1);

    let Ok(mut stream) = connect_with_retry(&cfg.addr, cfg.connect_timeout) else {
        tally.errors += share;
        return tally;
    };
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => {
            tally.errors += share;
            return tally;
        }
    };

    let mut pending: HashMap<usize, Instant> = HashMap::new();
    let mut sent = 0usize;
    let mut done = 0usize;
    let mut next_send = Instant::now();
    while done < share {
        let due = interval.is_zero() || Instant::now() >= next_send;
        if sent < share && pending.len() < window && due {
            let request = build_request(cfg, &mut rng, sent);
            if stream.write_all(request.as_bytes()).is_err() {
                tally.errors += share - done;
                return tally;
            }
            pending.insert(sent, Instant::now());
            sent += 1;
            if !interval.is_zero() {
                next_send += interval;
            }
            continue;
        }
        if pending.is_empty() {
            // Throttled with nothing in flight: wait out the interval.
            let now = Instant::now();
            if now < next_send {
                std::thread::sleep(next_send - now);
            }
            continue;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => {
                // Disconnect or socket error: everything outstanding fails.
                tally.errors += share - done;
                return tally;
            }
        }
        let Ok(v) = parse_json(&line) else {
            tally.errors += share - done;
            return tally;
        };
        let Some(t_send) = v
            .get("id")
            .and_then(|i| i.as_usize())
            .and_then(|seq| pending.remove(&seq))
        else {
            // A response we cannot attribute means the stream is out of
            // sync; abandon the connection rather than guess.
            tally.errors += share - done;
            return tally;
        };
        done += 1;
        tally.record(&v, t_send);
    }
    tally
}

/// Post-run control traffic on a fresh connection: fetch the server's
/// metrics export and, when configured, ask it to drain.
fn fetch_metrics_and_shutdown(cfg: &LoadgenConfig) -> Option<String> {
    let mut server_metrics = None;
    if let Ok(mut ctl) = connect_with_retry(&cfg.addr, Duration::from_secs(2)) {
        if let Ok(clone) = ctl.try_clone() {
            let mut reader = BufReader::new(clone);
            if ctl.write_all(b"{\"op\":\"metrics\"}\n").is_ok() {
                let mut line = String::new();
                if reader.read_line(&mut line).is_ok() {
                    if let Ok(v) = parse_json(&line) {
                        server_metrics = v.get("metrics").map(|m| m.to_json_string());
                    }
                }
            }
            if cfg.shutdown {
                let _ = ctl.write_all(b"{\"op\":\"shutdown\"}\n");
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
            }
        }
    }
    server_metrics
}

/// Latency percentiles + report assembly shared by both drive modes.
fn build_report(
    cfg: &LoadgenConfig,
    mut tally: Tally,
    elapsed: f64,
    connect_failures: usize,
    peak_conns: usize,
) -> LoadgenReport {
    tally.latencies_ms.sort_by(f64::total_cmp);
    let latencies = &tally.latencies_ms;
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        latencies[((latencies.len() - 1) as f64 * p).round() as usize]
    };
    let server_metrics = fetch_metrics_and_shutdown(cfg);
    let sent = latencies.len();
    LoadgenReport {
        sent,
        errors: tally.errors,
        shed: tally.shed,
        expired: tally.expired,
        elapsed,
        throughput: if elapsed > 0.0 {
            sent as f64 / elapsed
        } else {
            0.0
        },
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        checksum: tally.checksum,
        connect_failures,
        peak_conns,
        server_metrics,
    }
}

/// Run the full load-generation session.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.connections > 0 {
        return run_open_loop(cfg);
    }
    let conns = cfg.conns.max(1);
    // Fail fast (and wait for a booting server) before spawning workers.
    drop(connect_with_retry(&cfg.addr, cfg.connect_timeout)?);

    let per_conn_interval = if cfg.rate > 0.0 {
        Duration::from_secs_f64(conns as f64 / cfg.rate)
    } else {
        Duration::ZERO
    };

    let t0 = Instant::now();
    let mut workers = Vec::new();
    for conn_id in 0..conns {
        let cfg = cfg.clone();
        // Requests are split evenly; the first `requests % conns`
        // connections take one extra.
        let share = cfg.requests / conns + usize::from(conn_id < cfg.requests % conns);
        let worker = std::thread::spawn(move || run_conn(&cfg, conn_id, share, per_conn_interval));
        workers.push((share, worker));
    }

    let mut total = Tally::default();
    for (share, w) in workers {
        match w.join() {
            Ok(t) => {
                total.latencies_ms.extend(t.latencies_ms);
                total.errors += t.errors;
                total.shed += t.shed;
                total.expired += t.expired;
                total.checksum ^= t.checksum;
            }
            // A panicked worker answered nothing: its whole share failed.
            Err(_) => total.errors += share,
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    Ok(build_report(cfg, total, elapsed, 0, 0))
}

/// Connect attempts per ramp tick in open-loop mode. Matched to typical
/// listener backlogs so a tick cannot by itself overflow the accept queue
/// it is also racing the server to drain.
const RAMP_BATCH: usize = 128;

/// One open-loop connection: nonblocking socket, queue of unsent request
/// lines, in-flight send times keyed by id.
struct OpenConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    /// Request lines not yet (fully) written; the front one is written
    /// from offset `woff`.
    unsent: VecDeque<(usize, Vec<u8>)>,
    woff: usize,
    pending: HashMap<usize, Instant>,
    /// Requests this connection still owes the tally (unsent + pending).
    outstanding: usize,
}

impl OpenConn {
    /// Flush queued request lines. Returns false when the socket died.
    fn flush(&mut self) -> bool {
        while let Some((id, bytes)) = self.unsent.front() {
            match self.stream.write(&bytes[self.woff..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.woff += n;
                    if self.woff == bytes.len() {
                        self.pending.insert(*id, Instant::now());
                        self.unsent.pop_front();
                        self.woff = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }
}

/// The open-loop engine: every connection multiplexed from this thread
/// through the `polling` epoll shim, mirroring the server's reactor.
fn run_open_loop(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let n_conns = cfg.connections;
    let addr: SocketAddr = cfg
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address {}: {e}", cfg.addr))?
        .next()
        .ok_or_else(|| format!("address {} resolved to nothing", cfg.addr))?;
    let poller = Poller::new().map_err(|e| format!("epoll setup failed: {e}"))?;
    let mut events = Events::new();
    let mut tally = Tally::default();
    let mut connect_failures = 0usize;
    let mut peak_conns = 0usize;

    // Slots still to connect (their index decides the request share) and
    // established connections, keyed by slot for poller events.
    let mut to_connect: VecDeque<usize> = (0..n_conns).collect();
    let mut conns: HashMap<usize, OpenConn> = HashMap::new();
    let share = |slot: usize| cfg.requests / n_conns + usize::from(slot < cfg.requests % n_conns);
    let connect_deadline = Instant::now() + cfg.connect_timeout;
    let mut answered = 0usize; // responses attributed or written off
    let total_requests = cfg.requests;

    let t0 = Instant::now();
    let mut chunk = vec![0u8; 64 * 1024];
    while answered < total_requests || !to_connect.is_empty() {
        // Ramp: a bounded batch of connect attempts per iteration, each
        // failure counted and the slot requeued until the budget is spent.
        let mut attempts = RAMP_BATCH.min(to_connect.len());
        while attempts > 0 {
            attempts -= 1;
            let Some(slot) = to_connect.pop_front() else {
                break;
            };
            match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_err()
                        || poller.add(&stream, Event::all(slot)).is_err()
                    {
                        connect_failures += 1;
                        to_connect.push_back(slot);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(7919 * slot as u64));
                    let unsent: VecDeque<(usize, Vec<u8>)> = (0..share(slot))
                        .map(|seq| (seq, build_request(cfg, &mut rng, seq).into_bytes()))
                        .collect();
                    let outstanding = unsent.len();
                    conns.insert(
                        slot,
                        OpenConn {
                            stream,
                            rbuf: Vec::new(),
                            unsent,
                            woff: 0,
                            pending: HashMap::new(),
                            outstanding,
                        },
                    );
                    peak_conns = peak_conns.max(conns.len());
                }
                // EMFILE, ECONNREFUSED (full backlog), timeout: count,
                // retry until the connect budget runs out, then write the
                // slot's share off as errors — report, don't abort.
                Err(_) => {
                    connect_failures += 1;
                    if Instant::now() >= connect_deadline {
                        tally.errors += share(slot);
                        answered += share(slot);
                    } else {
                        to_connect.push_back(slot);
                    }
                }
            }
        }
        if answered >= total_requests && to_connect.is_empty() {
            break;
        }
        if conns.is_empty() && to_connect.is_empty() {
            break;
        }

        let _ = poller.wait(&mut events, Some(Duration::from_millis(20)));
        let mut dead: Vec<usize> = Vec::new();
        for ev in events.iter() {
            let Some(conn) = conns.get_mut(&ev.key) else {
                continue;
            };
            if ev.writable && !conn.flush() {
                dead.push(ev.key);
                continue;
            }
            if ev.readable {
                let mut conn_dead = false;
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            conn_dead = true;
                            break;
                        }
                        Ok(n) => {
                            conn.rbuf.extend_from_slice(&chunk[..n]);
                            while let Some(p) = conn.rbuf.iter().position(|&b| b == b'\n') {
                                let line: Vec<u8> = conn.rbuf.drain(..=p).collect();
                                let Ok(v) =
                                    parse_json(&String::from_utf8_lossy(&line[..line.len() - 1]))
                                else {
                                    tally.errors += 1;
                                    answered += 1;
                                    conn.outstanding = conn.outstanding.saturating_sub(1);
                                    continue;
                                };
                                let Some(t_send) = v
                                    .get("id")
                                    .and_then(|i| i.as_usize())
                                    .and_then(|seq| conn.pending.remove(&seq))
                                else {
                                    tally.errors += 1;
                                    answered += 1;
                                    conn.outstanding = conn.outstanding.saturating_sub(1);
                                    continue;
                                };
                                tally.record(&v, t_send);
                                answered += 1;
                                conn.outstanding -= 1;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn_dead = true;
                            break;
                        }
                    }
                }
                if conn_dead {
                    dead.push(ev.key);
                }
            }
        }
        for key in dead {
            if let Some(conn) = conns.remove(&key) {
                let _ = poller.delete(&conn.stream);
                // Everything unanswered on a dead socket is an error.
                tally.errors += conn.outstanding;
                answered += conn.outstanding;
            }
        }
        // Drop write interest on fully-sent connections so idle sockets
        // stop reporting writability (which would busy-spin the loop).
        let fully_sent: Vec<usize> = conns
            .iter()
            .filter(|(_, c)| c.unsent.is_empty())
            .map(|(k, _)| *k)
            .collect();
        for key in fully_sent {
            if let Some(conn) = conns.get(&key) {
                let _ = poller.modify(&conn.stream, Event::readable(key));
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    // Connections close here, en masse — the drain the reactor smoke
    // implicitly exercises.
    drop(conns);
    Ok(build_report(
        cfg,
        tally,
        elapsed,
        connect_failures,
        peak_conns,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_parseable() {
        let r = LoadgenReport {
            sent: 10,
            errors: 0,
            shed: 2,
            expired: 1,
            elapsed: 0.5,
            throughput: 20.0,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
            max_ms: 4.0,
            checksum: 0xdeadbeef,
            connect_failures: 3,
            peak_conns: 7,
            server_metrics: Some("{\"tasks\":10}".to_string()),
        };
        let v = parse_json(&r.to_json()).unwrap();
        assert_eq!(
            v.get("loadgen").unwrap().get("sent").unwrap().as_usize(),
            Some(10)
        );
        assert_eq!(
            v.get("loadgen").unwrap().get("shed").unwrap().as_usize(),
            Some(2)
        );
        assert_eq!(
            v.get("server").unwrap().get("tasks").unwrap().as_usize(),
            Some(10)
        );
        assert_eq!(
            v.get("loadgen")
                .unwrap()
                .get("connect_failures")
                .unwrap()
                .as_usize(),
            Some(3)
        );
        assert!(r.summary().contains("10 requests"));
        assert!(r.summary().contains("2 shed"));
        assert!(r.summary().contains("7 peak conns"));
    }

    #[test]
    fn open_loop_counts_connect_failures_without_aborting() {
        // Nothing listens on port 1: every connect attempt fails. The run
        // must still return a report — failures counted, the whole request
        // budget written off as errors — rather than an Err or a panic.
        let cfg = LoadgenConfig {
            addr: "127.0.0.1:1".to_string(),
            requests: 6,
            connections: 3,
            connect_timeout: Duration::from_millis(150),
            ..LoadgenConfig::default()
        };
        let report = run(&cfg).expect("open loop reports instead of aborting");
        assert_eq!(report.sent, 0);
        assert_eq!(report.errors, 6);
        assert!(report.connect_failures >= 3, "{}", report.connect_failures);
        assert_eq!(report.peak_conns, 0);
    }

    #[test]
    fn checksum_is_order_independent() {
        // XOR-combined per-request hashes: any interleaving of the same
        // request set yields the same fold.
        let hs = [
            hash_bits(0xcbf29ce484222325, 1.5),
            hash_bits(0xcbf29ce484222325, -2.5),
            hash_bits(0xcbf29ce484222325, 0.25),
        ];
        let a = hs[0] ^ hs[1] ^ hs[2];
        let b = hs[2] ^ hs[0] ^ hs[1];
        assert_eq!(a, b);
    }

    #[test]
    fn request_stream_is_deterministic_and_tagged() {
        let cfg = LoadgenConfig {
            deadline_ms: 250,
            ..LoadgenConfig::default()
        };
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let a = build_request(&cfg, &mut rng_a, 3);
        let b = build_request(&cfg, &mut rng_b, 3);
        assert_eq!(a, b);
        assert!(a.contains("\"id\":3"));
        assert!(a.contains("\"deadline_ms\":250"));
        let no_deadline =
            build_request(&LoadgenConfig::default(), &mut StdRng::seed_from_u64(9), 0);
        assert!(!no_deadline.contains("deadline_ms"));
    }

    #[test]
    fn connect_retry_times_out_cleanly() {
        // Port 1 on localhost is essentially never listening.
        let err = connect_with_retry("127.0.0.1:1", Duration::from_millis(120)).unwrap_err();
        assert!(err.contains("could not connect"), "{err}");
    }
}

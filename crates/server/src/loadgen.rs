//! Synthetic query-stream load generator for the prediction service.
//!
//! Replays a deterministic stream of predict requests against a running
//! server from `conns` parallel connections, optionally throttled to a
//! target aggregate rate, and reports throughput plus latency percentiles.
//! Every response's mean vector is folded into an order-independent
//! checksum (per-request FNV hashes combined with XOR), so two runs with
//! the same seed against the same model must produce the same checksum —
//! the smoke tests use this to prove batching never changes results.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xgs_runtime::parse_json;

/// Load-generation parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4741`.
    pub addr: String,
    /// Model name to query.
    pub model: String,
    /// Total predict requests across all connections.
    pub requests: usize,
    /// Parallel connections.
    pub conns: usize,
    /// Points per predict request.
    pub points: usize,
    /// Aggregate target rate, requests/second (0 = unthrottled).
    pub rate: f64,
    /// Ask for kriging variance too.
    pub uncertainty: bool,
    /// Seed of the synthetic query stream.
    pub seed: u64,
    /// Query locations are uniform in `[0, domain]²`.
    pub domain: f64,
    /// How long to retry the initial connection (covers server startup).
    pub connect_timeout: Duration,
    /// Send `{"op":"shutdown"}` after the run (for scripted smoke tests).
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:4741".to_string(),
            model: "default".to_string(),
            requests: 100,
            conns: 4,
            points: 8,
            rate: 0.0,
            uncertainty: false,
            seed: 1,
            domain: 1.0,
            connect_timeout: Duration::from_secs(10),
            shutdown: false,
        }
    }
}

/// Outcome of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    pub sent: usize,
    pub errors: usize,
    /// Wall time of the request phase, seconds.
    pub elapsed: f64,
    /// Successful requests per second.
    pub throughput: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Order-independent checksum over all response means (and variances).
    pub checksum: u64,
    /// The server's metrics JSON, fetched after the request phase.
    pub server_metrics: Option<String>,
}

impl LoadgenReport {
    /// Human-oriented multi-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} requests in {:.2}s: {:.0} req/s | latency p50 {:.2} ms, p95 {:.2} ms, \
             p99 {:.2} ms, max {:.2} ms | {} errors | checksum {:016x}",
            self.sent,
            self.elapsed,
            self.throughput,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
            self.errors,
            self.checksum
        )
    }

    /// Machine-readable dump; when the server metrics were fetched they are
    /// embedded verbatim under `"server"` (same schema as every other
    /// `--metrics` export, so `metrics_diff` can digest it).
    pub fn to_json(&self) -> String {
        let loadgen = format!(
            concat!(
                "{{\"sent\":{},\"errors\":{},\"elapsed_seconds\":{},\"throughput_rps\":{},",
                "\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{},\"checksum\":\"{:016x}\"}}"
            ),
            self.sent,
            self.errors,
            self.elapsed,
            self.throughput,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
            self.checksum
        );
        match &self.server_metrics {
            Some(m) => format!("{{\"loadgen\":{loadgen},\"server\":{m}}}"),
            None => format!("{{\"loadgen\":{loadgen}}}"),
        }
    }
}

/// Connect, retrying until the server accepts (it may still be binding).
pub fn connect_with_retry(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("could not connect to {addr}: {e}"))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// FNV-1a over the IEEE bits of a float sequence.
fn hash_bits(acc: u64, x: f64) -> u64 {
    (acc ^ x.to_bits()).wrapping_mul(0x100000001b3)
}

fn one_request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    cfg: &LoadgenConfig,
    rng: &mut StdRng,
) -> Result<u64, String> {
    let pts: String = (0..cfg.points)
        .map(|_| {
            format!(
                "[{},{}]",
                rng.random_range(0.0..cfg.domain),
                rng.random_range(0.0..cfg.domain)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let request = format!(
        "{{\"op\":\"predict\",\"model\":\"{}\",\"points\":[{pts}],\"uncertainty\":{}}}\n",
        cfg.model, cfg.uncertainty
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("recv: {e}"))?;
    if line.is_empty() {
        return Err("server closed the connection".to_string());
    }
    let v = parse_json(&line).map_err(|e| format!("bad response: {e}"))?;
    if v.get("ok").and_then(|o| o.as_bool()) != Some(true) {
        return Err(v
            .get("error")
            .and_then(|e| e.as_str())
            .unwrap_or("request failed")
            .to_string());
    }
    let mut h = 0xcbf29ce484222325u64;
    for field in ["mean", "uncertainty"] {
        if let Some(values) = v.get(field).and_then(|m| m.as_array()) {
            for x in values {
                h = hash_bits(h, x.as_f64().ok_or("non-numeric result")?);
            }
        }
    }
    Ok(h)
}

/// Run the full load-generation session.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let conns = cfg.conns.max(1);
    // Fail fast (and wait for a booting server) before spawning workers.
    drop(connect_with_retry(&cfg.addr, cfg.connect_timeout)?);

    let errors = Arc::new(AtomicUsize::new(0));
    let checksum = Arc::new(AtomicU64::new(0));
    let per_conn_interval = if cfg.rate > 0.0 {
        Duration::from_secs_f64(conns as f64 / cfg.rate)
    } else {
        Duration::ZERO
    };

    let t0 = Instant::now();
    let mut workers = Vec::new();
    for conn_id in 0..conns {
        let cfg = cfg.clone();
        let errors = errors.clone();
        let checksum = checksum.clone();
        // Requests are split evenly; the first `requests % conns`
        // connections take one extra.
        let share = cfg.requests / conns + usize::from(conn_id < cfg.requests % conns);
        workers.push(std::thread::spawn(move || -> Vec<f64> {
            let mut latencies = Vec::with_capacity(share);
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(7919 * conn_id as u64));
            let Ok(mut stream) = connect_with_retry(&cfg.addr, cfg.connect_timeout) else {
                errors.fetch_add(share, Ordering::Relaxed);
                return latencies;
            };
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut next_send = Instant::now();
            for _ in 0..share {
                if !per_conn_interval.is_zero() {
                    let now = Instant::now();
                    if now < next_send {
                        std::thread::sleep(next_send - now);
                    }
                    next_send += per_conn_interval;
                }
                let t = Instant::now();
                match one_request(&mut stream, &mut reader, &cfg, &mut rng) {
                    Ok(h) => {
                        latencies.push(t.elapsed().as_secs_f64() * 1e3);
                        checksum.fetch_xor(h, Ordering::Relaxed);
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            latencies
        }));
    }

    let mut latencies: Vec<f64> = Vec::with_capacity(cfg.requests);
    for w in workers {
        latencies.extend(w.join().map_err(|_| "worker panicked".to_string())?);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        latencies[((latencies.len() - 1) as f64 * p).round() as usize]
    };

    // Post-run control traffic on a fresh connection.
    let mut server_metrics = None;
    if let Ok(mut ctl) = connect_with_retry(&cfg.addr, Duration::from_secs(2)) {
        let mut reader = BufReader::new(ctl.try_clone().map_err(|e| e.to_string())?);
        if ctl.write_all(b"{\"op\":\"metrics\"}\n").is_ok() {
            let mut line = String::new();
            if reader.read_line(&mut line).is_ok() {
                if let Ok(v) = parse_json(&line) {
                    server_metrics = v.get("metrics").map(|m| m.to_json_string());
                }
            }
        }
        if cfg.shutdown {
            let _ = ctl.write_all(b"{\"op\":\"shutdown\"}\n");
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
        }
    }

    let sent = latencies.len();
    Ok(LoadgenReport {
        sent,
        errors: errors.load(Ordering::Relaxed),
        elapsed,
        throughput: if elapsed > 0.0 {
            sent as f64 / elapsed
        } else {
            0.0
        },
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        checksum: checksum.load(Ordering::Relaxed),
        server_metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_parseable() {
        let r = LoadgenReport {
            sent: 10,
            errors: 0,
            elapsed: 0.5,
            throughput: 20.0,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
            max_ms: 4.0,
            checksum: 0xdeadbeef,
            server_metrics: Some("{\"tasks\":10}".to_string()),
        };
        let v = parse_json(&r.to_json()).unwrap();
        assert_eq!(
            v.get("loadgen").unwrap().get("sent").unwrap().as_usize(),
            Some(10)
        );
        assert_eq!(
            v.get("server").unwrap().get("tasks").unwrap().as_usize(),
            Some(10)
        );
        assert!(r.summary().contains("10 requests"));
    }

    #[test]
    fn checksum_is_order_independent() {
        // XOR-combined per-request hashes: any interleaving of the same
        // request set yields the same fold.
        let hs = [
            hash_bits(0xcbf29ce484222325, 1.5),
            hash_bits(0xcbf29ce484222325, -2.5),
            hash_bits(0xcbf29ce484222325, 0.25),
        ];
        let a = hs[0] ^ hs[1] ^ hs[2];
        let b = hs[2] ^ hs[0] ^ hs[1];
        assert_eq!(a, b);
    }

    #[test]
    fn connect_retry_times_out_cleanly() {
        // Port 1 on localhost is essentially never listening.
        let err = connect_with_retry("127.0.0.1:1", Duration::from_millis(120)).unwrap_err();
        assert!(err.contains("could not connect"), "{err}");
    }
}

//! Replay a synthetic query stream against a running `exageostat serve`
//! instance and report throughput + latency percentiles.
//!
//! ```text
//! cargo run -p xgs-server --release --bin loadgen -- \
//!     --addr 127.0.0.1:4741 --requests 1000 --conns 8 --points 16 \
//!     [--rate 500] [--uncertainty] [--model default] [--seed 1] \
//!     [--concurrency-per-conn 8] [--deadline-ms 250] [--overload] \
//!     [--connections 10000] [--metrics out.json] [--shutdown]
//! ```
//!
//! `--concurrency-per-conn` pipelines that many requests per connection
//! (responses are correlated by id, so out-of-order completion is fine);
//! `--deadline-ms` attaches a per-request deadline; `--overload` runs an
//! overload drill in which shed responses (`retry_after_ms`) are expected.
//! `--connections N` switches to open-loop mode: one epoll-driven thread
//! holds N concurrent connections (ignoring `--conns`), ramping connects in
//! batches and counting-and-retrying failures — the concurrency soak for
//! the reactor frontend.
//!
//! Exit status: 0 when every request succeeded (shed responses count as
//! failures unless `--overload`, deadline expiries unless `--deadline-ms`),
//! 1 otherwise — CI smoke tests rely on this. `--shutdown` sends
//! `{"op":"shutdown"}` at the end so a scripted server drains and exits
//! cleanly.

use std::process::ExitCode;
use std::time::Duration;
use xgs_server::loadgen;

fn parse_args(argv: &[String]) -> Result<(loadgen::LoadgenConfig, Option<String>), String> {
    let mut cfg = loadgen::LoadgenConfig::default();
    let mut metrics_path = None;
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or(format!("--{name} needs a value"))
        };
        match flag {
            "--addr" => cfg.addr = value("addr")?,
            "--model" => cfg.model = value("model")?,
            "--requests" => {
                cfg.requests = value("requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--conns" => {
                cfg.conns = value("conns")?
                    .parse()
                    .map_err(|e| format!("--conns: {e}"))?
            }
            "--points" => {
                cfg.points = value("points")?
                    .parse()
                    .map_err(|e| format!("--points: {e}"))?
            }
            "--rate" => cfg.rate = value("rate")?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--seed" => cfg.seed = value("seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--domain" => {
                cfg.domain = value("domain")?
                    .parse()
                    .map_err(|e| format!("--domain: {e}"))?
            }
            "--connect-timeout" => {
                cfg.connect_timeout = Duration::from_secs_f64(
                    value("connect-timeout")?
                        .parse()
                        .map_err(|e| format!("--connect-timeout: {e}"))?,
                )
            }
            "--concurrency-per-conn" => {
                cfg.concurrency_per_conn = value("concurrency-per-conn")?
                    .parse()
                    .map_err(|e| format!("--concurrency-per-conn: {e}"))?
            }
            "--deadline-ms" => {
                cfg.deadline_ms = value("deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--connections" => {
                cfg.connections = value("connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--uncertainty" => cfg.uncertainty = true,
            "--overload" => cfg.overload = true,
            "--shutdown" => cfg.shutdown = true,
            "--metrics" => metrics_path = Some(value("metrics")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok((cfg, metrics_path))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, metrics_path) = match parse_args(&argv) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    match loadgen::run(&cfg) {
        Ok(report) => {
            println!("{}", report.summary());
            if let Some(path) = metrics_path {
                match std::fs::write(&path, report.to_json()) {
                    Ok(()) => println!("wrote metrics to {path}"),
                    Err(e) => {
                        eprintln!("loadgen: could not write {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            let unexpected_shed = !cfg.overload && report.shed > 0;
            let unexpected_expiry = cfg.deadline_ms == 0 && report.expired > 0;
            if report.errors > 0 || unexpected_shed || unexpected_expiry {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::from(2)
        }
    }
}

//! `xgs-server` — a long-lived kriging-prediction service.
//!
//! The paper's workflow ends at batch prediction: fit θ once, factorize
//! Σ(θ) once, then krige. Operationally that factor is worth serving: it
//! is the expensive O(n³) artifact, while each prediction against it is
//! only O(n²)-ish solves and dot products. This crate keeps fitted models
//! resident — tile-Cholesky factor, solved kriging weights, kernel and
//! training locations ([`xgs_core::PredictionPlan`]) — behind a TCP
//! newline-delimited-JSON protocol, and coalesces concurrent requests
//! into multi-RHS solves ([`batch`]) for throughput.
//!
//! Requests may carry a client-assigned `"id"` (echoed in the response)
//! and a `"deadline_ms"`; responses complete out of order, so a slow
//! `predict` never blocks a `ping` on the same connection. Two frontends
//! implement the connection handling behind one protocol
//! ([`server::Frontend`]): the original thread-per-connection layout, and
//! an epoll [`reactor`] that multiplexes every socket from one event
//! loop. The batch queue carries a points budget:
//! past it, `predict` is shed with a `retry_after_ms` hint instead of
//! queueing unboundedly, and request lines / JSON nesting are hard-capped
//! so hostile clients cannot exhaust memory or the stack.
//!
//! Everything is dependency-free `std::net` + threads; JSON goes through
//! the hand-rolled reader/writers in `xgs-runtime`. See the repository
//! README ("Prediction service protocol") for the wire grammar and the
//! `loadgen` binary for a replay client.
//!
//! # Lock order
//!
//! The server holds three long-lived mutexes. Whenever more than one is
//! held at a time, they must be acquired in this order (and a single
//! rank must never be re-acquired while held):
//!
//! 1. [`batch::BatchQueue`] `inner` — queue state, shortest hold times;
//! 2. [`registry::ModelRegistry`] `models` — the model table, held
//!    across factor lookups;
//! 3. `server::Shared` `metrics` — the counters, innermost because every
//!    path increments something on the way out.
//!
//! The order is machine-checked as a consequence of the workspace lock
//! graph: `xgs-lint` builds one call-graph-propagated lock-acquisition
//! graph over every crate (`crates/analysis/src/lockgraph.rs`), so an
//! acquisition of a lower rank while a higher rank is held — even
//! indirectly, through a helper the direct caller never sees — is a
//! `lock-order` finding, and any cycle anywhere in the graph is a
//! `lock-cycle` finding with its full witness path.

pub mod batch;
pub mod loadgen;
pub mod protocol;
pub mod reactor;
pub mod registry;
pub mod server;

pub use loadgen::{connect_with_retry, LoadgenConfig, LoadgenReport};
pub use protocol::{parse_request, Envelope, LoadRequest, ParseFailure, PredictRequest, Request};
pub use registry::{build_plan, build_plan_engine, ModelRegistry};
pub use server::{serve, Frontend, ServerConfig, ServerHandle, MAX_LINE_BYTES};

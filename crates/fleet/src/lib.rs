//! Elastic shard fleet: the supervisor behind the warm sharded engine.
//!
//! [`ShardRunner`](xgs_cholesky::ShardRunner) is spawn-per-run: every
//! factorization pays a full fleet spawn, and any worker death fails the
//! job. The [`Supervisor`] here replaces that with a *registration*
//! model over the same frame protocol:
//!
//! * Workers dial the supervisor's listener (`worker --connect <addr>`)
//!   and register with a `JOIN` frame advertising capabilities (cores,
//!   supported precisions, protocol version); the supervisor answers
//!   with `ASSIGN` carrying a fleet member id and the active/standby
//!   role. Admission is [`xgs_cholesky::admit_worker`] — the same
//!   handshake every other acceptor uses, so the protocol cannot drift.
//! * The first `p * q` members form the factorization grid; members
//!   beyond it are **standbys**, registered and warm but idle.
//! * Liveness: during a run the coordinator's deadline'd reads detect
//!   death; between runs a monitor thread exchanges `HEARTBEAT`
//!   ping/echo with every idle member and culls the ones that stopped
//!   answering, refilling to target strength.
//! * On worker death mid-factorization the supervisor — acting as the
//!   run's [`ReplacementSource`] — promotes a standby (or launches a
//!   fresh worker) and the coordinator replays the lost shard's frames
//!   from the last published tile versions. The recovery plan is
//!   validated by `xgs-analysis` before a single frame is sent, and the
//!   recovered factor stays bitwise-equal to the sequential one.
//! * Runs are **persistent** ([`ShardOptions::persistent`]): no
//!   `SHUTDOWN`/`BYE` teardown, sockets stay open, and the same fleet
//!   serves the next factorization after a state-resetting `HELLO`.
//!
//! Fleet lifecycle lands in the shared metrics schema: the engine
//! already records `worker_death` / `panel_replay` / `standby_promote`
//! events, and the supervisor adds a `worker_join` row counting
//! admissions (initial spawns, dial-ins, mid-run replacements) since the
//! previous report, so `metrics_diff` can assert on recovery behavior.

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use xgs_cholesky::shard::K_HEARTBEAT;
use xgs_cholesky::{
    admit_worker, worker_loop_with, JoinInfo, ReplacementOrigin, ReplacementSource,
    ReplacementWorker, ShardBackend, ShardError, ShardOptions, ShardReport, TiledFactor,
    WorkerOptions,
};
use xgs_runtime::{read_frame, write_frame, KernelStats, WireWriter};

/// How the supervisor brings new workers into existence when it has to
/// launch them itself (initial fill, respawn after a death). Externally
/// dialed workers are admitted regardless of this setting.
#[derive(Clone, Debug)]
pub enum Launch {
    /// `<exe> worker --connect <addr>` child processes — the production
    /// configuration, where `<exe>` is the `exageostat` binary itself.
    Process(PathBuf),
    /// In-process threads running the worker loop — tests and benches,
    /// where spawning real processes would dominate the runtime. The
    /// [`WorkerOptions`] seed every launched thread (chaos injection).
    Threads(WorkerOptions),
}

/// Supervisor configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// How locally launched workers come up.
    pub launch: Launch,
    /// Grid strength: the factorization runs on this many workers
    /// (`grid_shape(workers)` picks the `p x q` layout).
    pub workers: usize,
    /// Warm spares beyond the grid, promoted on death.
    pub standbys: usize,
    /// Wall-clock budget per factorization (recovery included).
    pub deadline: Duration,
    /// Budget for one worker to connect and complete the `JOIN`/`ASSIGN`
    /// handshake.
    pub spawn_deadline: Duration,
    /// Monitor cadence for idle-member heartbeats and dial-in admission.
    pub heartbeat_every: Duration,
    /// How long an idle member may sit on a heartbeat echo before the
    /// monitor declares it dead.
    pub heartbeat_timeout: Duration,
    /// Launch replacements when standbys run out (mid-run) and refill
    /// culled members between runs. Off = the fleet only shrinks.
    pub respawn: bool,
    /// Extra environment for launched worker processes (chaos tests).
    pub env: Vec<(String, String)>,
}

impl FleetConfig {
    /// Production defaults over `exe worker --connect`.
    pub fn process(exe: PathBuf, workers: usize) -> FleetConfig {
        FleetConfig::with_launch(Launch::Process(exe), workers)
    }

    /// In-process thread workers (tests).
    pub fn threads(workers: usize) -> FleetConfig {
        FleetConfig::with_launch(Launch::Threads(WorkerOptions::default()), workers)
    }

    fn with_launch(launch: Launch, workers: usize) -> FleetConfig {
        FleetConfig {
            launch,
            workers: workers.max(1),
            standbys: 0,
            deadline: Duration::from_secs(120),
            spawn_deadline: Duration::from_secs(30),
            heartbeat_every: Duration::from_secs(5),
            heartbeat_timeout: Duration::from_secs(2),
            respawn: true,
            env: Vec::new(),
        }
    }
}

/// One registered worker: its connection, its launch handle (when the
/// supervisor launched it), and what its `JOIN` advertised. Dropping a
/// member closes the socket and reaps the child — a culled or replaced
/// worker can never linger as an orphan.
#[derive(Debug)]
struct Member {
    id: u32,
    stream: TcpStream,
    child: Option<Child>,
    info: JoinInfo,
}

impl Drop for Member {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(c) = &mut self.child {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Mutable fleet state, all under the one `pool` lock: the grid members,
/// the standby queue, and the admission counters. A factorization holds
/// the lock for its whole run, which is what keeps the monitor thread
/// off the sockets while the coordinator is driving them.
#[derive(Debug, Default)]
struct FleetState {
    active: Vec<Member>,
    standbys: VecDeque<Member>,
    next_id: u32,
    /// Admissions since the last report (drained into `worker_join`).
    joins: u64,
    /// Idle members the monitor culled for missing heartbeats.
    idle_culled: u64,
}

/// Point-in-time fleet summary (tests, `serve` banner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetStatus {
    pub active: usize,
    pub standbys: usize,
    /// Sum of the cores every registered member advertised in its `JOIN`.
    pub cores: u32,
    /// Admissions not yet drained into a report's `worker_join` row.
    pub pending_joins: u64,
    pub idle_culled: u64,
}

#[derive(Debug)]
struct Inner {
    cfg: FleetConfig,
    listener: TcpListener,
    addr: SocketAddr,
    pool: Mutex<FleetState>,
}

/// The elastic fleet supervisor. Owns the registration listener, the
/// member pool, and a monitor thread; implements [`ShardBackend`] so
/// `FactorEngine::Sharded` and the prediction server route through a
/// persistent warm fleet instead of paying spawn per factorization.
#[derive(Debug)]
pub struct Supervisor {
    inner: Arc<Inner>,
    stop: Arc<AtomicBool>,
    monitor: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Bind the registration listener, bring the fleet up to target
    /// strength (`workers` grid members + `standbys` spares), and start
    /// the liveness monitor.
    pub fn start(cfg: FleetConfig) -> Result<Supervisor, ShardError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(spawn_err)?;
        let addr = listener.local_addr().map_err(spawn_err)?;
        listener.set_nonblocking(true).map_err(spawn_err)?;
        let inner = Arc::new(Inner {
            cfg,
            listener,
            addr,
            pool: Mutex::new(FleetState::default()),
        });
        inner.pool.lock().fill(&inner)?;

        let stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let weak = Arc::downgrade(&inner);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("fleet-monitor".into())
                .spawn(move || monitor_loop(weak, &stop))
                .map_err(spawn_err)?
        };
        Ok(Supervisor {
            inner,
            stop,
            monitor: Some(monitor),
        })
    }

    /// Where workers dial in (`worker --connect <addr>`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Current strength and counters.
    pub fn status(&self) -> FleetStatus {
        let pool = self.inner.pool.lock();
        FleetStatus {
            active: pool.active.len(),
            standbys: pool.standbys.len(),
            cores: pool
                .active
                .iter()
                .chain(pool.standbys.iter())
                .map(|m| m.info.cores)
                .sum(),
            pending_joins: pool.joins,
            idle_culled: pool.idle_culled,
        }
    }

    /// Kill an idle member by id (fault-injection tests): `SIGKILL` for
    /// process workers, a socket shutdown for thread workers. Returns
    /// whether a member with that id was found. Blocks while a
    /// factorization holds the pool, so it only ever hits idle members —
    /// mid-run chaos goes through `XGS_CHAOS_ABORT` instead.
    pub fn kill_member(&self, id: u32) -> bool {
        let mut pool = self.inner.pool.lock();
        let FleetState {
            active, standbys, ..
        } = &mut *pool;
        for m in active.iter_mut().chain(standbys.iter_mut()) {
            if m.id != id {
                continue;
            }
            match &mut m.child {
                Some(c) => {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                None => {
                    let _ = m.stream.shutdown(Shutdown::Both);
                }
            }
            return true;
        }
        false
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        // `inner` drops with us (the monitor held only a Weak), taking
        // every Member with it: sockets shut, children killed and reaped.
    }
}

impl ShardBackend for Supervisor {
    /// One factorization on the warm fleet. Holds the pool for the whole
    /// run; on success the grid members stay registered and warm for the
    /// next call, on error they are discarded (the coordinator shut the
    /// sockets down) and the next call rebuilds the fleet.
    fn factorize(&self, f: &mut TiledFactor) -> Result<ShardReport, ShardError> {
        let inner = &self.inner;
        let mut pool = inner.pool.lock();
        pool.admit_dialins(inner);
        pool.fill(inner)?;

        let mut members = std::mem::take(&mut pool.active);
        let mut streams = Vec::with_capacity(members.len());
        for m in &members {
            streams.push(m.stream.try_clone().map_err(spawn_err)?);
        }

        let mut opts = ShardOptions::for_workers(inner.cfg.workers);
        opts.deadline = inner.cfg.deadline;
        opts.persistent = true;
        let mut source = FleetSource {
            inner,
            pool: &mut pool,
            members: &mut members,
        };
        let result = f.factorize_elastic(&mut streams, &opts, &mut source);
        drop(streams); // members keep their own handles to the sockets

        match result {
            Ok(mut report) => {
                pool.active = members;
                let joined = std::mem::take(&mut pool.joins);
                if joined > 0 {
                    let mut ev = KernelStats::new("worker_join");
                    for _ in 0..joined {
                        ev.record(0.0);
                    }
                    report.metrics.kernels.push(ev);
                }
                Ok(report)
            }
            Err(e) => {
                // The coordinator shut the sockets down on its way out;
                // dropping the members reaps the processes. Next call
                // starts from an empty pool.
                members.clear();
                Err(e)
            }
        }
    }

    fn describe(&self) -> String {
        let cfg = &self.inner.cfg;
        format!(
            "warm fleet x{} (+{} standby, registration {})",
            cfg.workers, cfg.standbys, self.inner.addr
        )
    }
}

/// The supervisor acting as a run's [`ReplacementSource`]: standbys
/// first, then (if configured) a fresh launch. Replaced members are
/// dropped on the spot, which reaps the dead process.
struct FleetSource<'a> {
    inner: &'a Inner,
    pool: &'a mut FleetState,
    members: &'a mut Vec<Member>,
}

impl ReplacementSource for FleetSource<'_> {
    fn replace(&mut self, worker: usize) -> Option<ReplacementWorker> {
        let (member, origin) = match self.pool.standbys.pop_front() {
            Some(m) => (m, ReplacementOrigin::Standby),
            None if self.inner.cfg.respawn => {
                let m = self.pool.launch(self.inner, false).ok()?;
                (m, ReplacementOrigin::Respawn)
            }
            None => return None,
        };
        let stream = member.stream.try_clone().ok()?;
        // Dropping the dead member shuts its socket and reaps its child.
        self.members[worker] = member;
        Some(ReplacementWorker { stream, origin })
    }
}

impl FleetState {
    /// Bring the fleet to target strength: promote standbys into empty
    /// grid slots, launch what is still missing, then refill the standby
    /// queue.
    fn fill(&mut self, inner: &Inner) -> Result<(), ShardError> {
        while self.active.len() < inner.cfg.workers {
            let m = match self.standbys.pop_front() {
                Some(m) => m,
                None => self.launch(inner, false)?,
            };
            self.active.push(m);
        }
        while self.standbys.len() < inner.cfg.standbys {
            let m = self.launch(inner, true)?;
            self.standbys.push_back(m);
        }
        Ok(())
    }

    /// Launch one worker (per [`Launch`]) and admit it through the
    /// shared `JOIN`/`ASSIGN` handshake.
    fn launch(&mut self, inner: &Inner, standby: bool) -> Result<Member, ShardError> {
        let cfg = &inner.cfg;
        let mut child = match &cfg.launch {
            Launch::Process(exe) => {
                let mut cmd = Command::new(exe);
                cmd.arg("worker")
                    .arg("--connect")
                    .arg(inner.addr.to_string())
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::null());
                for (k, v) in &cfg.env {
                    cmd.env(k, v);
                }
                Some(
                    cmd.spawn()
                        .map_err(|e| ShardError::Spawn(format!("{}: {e}", exe.display())))?,
                )
            }
            Launch::Threads(opts) => {
                let addr = inner.addr;
                let opts = *opts;
                std::thread::Builder::new()
                    .name("fleet-worker".into())
                    .spawn(move || {
                        if let Ok(s) = TcpStream::connect(addr) {
                            let _ = worker_loop_with(s, opts);
                        }
                    })
                    .map_err(spawn_err)?;
                None
            }
        };
        let mut stream = accept_within(inner, cfg.spawn_deadline, child.as_mut())?;
        let id = self.next_id;
        self.next_id += 1;
        let info = admit_worker(&mut stream, id, standby, cfg.spawn_deadline)?;
        self.joins += 1;
        Ok(Member {
            id,
            stream,
            child,
            info,
        })
    }

    /// Admit workers that dialed in on their own since the last look at
    /// the listener. They join as standbys — the grid is assigned by
    /// [`FleetState::fill`], not by connection order.
    fn admit_dialins(&mut self, inner: &Inner) {
        loop {
            match inner.listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let id = self.next_id;
                    self.next_id += 1;
                    // A stranger that never completes the handshake (or
                    // speaks an old protocol) is turned away; the
                    // connection drops on the Err path here.
                    if let Ok(info) =
                        admit_worker(&mut stream, id, true, inner.cfg.heartbeat_timeout)
                    {
                        self.joins += 1;
                        self.standbys.push_back(Member {
                            id,
                            stream,
                            child: None,
                            info,
                        });
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Heartbeat every idle member; cull the ones that stopped answering.
    fn sweep(&mut self, inner: &Inner) {
        let timeout = inner.cfg.heartbeat_timeout;
        let alive = |m: &mut Member| probe(m, timeout);
        let before = self.active.len() + self.standbys.len();
        self.active.retain_mut(alive);
        self.standbys.retain_mut(alive);
        self.idle_culled += (before - self.active.len() - self.standbys.len()) as u64;
    }
}

/// One `HEARTBEAT` ping/echo round-trip on an idle member's socket.
fn probe(m: &mut Member, timeout: Duration) -> bool {
    let mut w = WireWriter::new();
    w.put_u64(u64::from(m.id));
    if write_frame(&mut m.stream, K_HEARTBEAT, &w.buf).is_err() {
        return false;
    }
    matches!(
        read_frame(&mut m.stream, Some(timeout), None),
        Ok((kind, echo)) if kind == K_HEARTBEAT && echo.len() >= 8
    )
}

/// Accept one connection on the (nonblocking) registration listener,
/// bounded by `deadline`. While polling, a launched child that exited
/// before connecting is reported instead of waiting out the clock.
fn accept_within(
    inner: &Inner,
    deadline: Duration,
    mut child: Option<&mut Child>,
) -> Result<TcpStream, ShardError> {
    let until = Instant::now() + deadline;
    loop {
        match inner.listener.accept() {
            Ok((s, _)) => {
                let _ = s.set_nonblocking(false);
                return Ok(s);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(c) = child.as_deref_mut() {
                    if let Ok(Some(status)) = c.try_wait() {
                        return Err(ShardError::Spawn(format!(
                            "worker exited before connecting: {status}"
                        )));
                    }
                }
                if Instant::now() >= until {
                    return Err(ShardError::Spawn(format!(
                        "no worker connected within {deadline:?}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(spawn_err(e)),
        }
    }
}

/// Between runs: admit dial-ins, heartbeat idle members, refill. Skips
/// the tick entirely when a factorization holds the pool — the monitor
/// must never touch sockets the coordinator is driving.
fn monitor_loop(inner: Weak<Inner>, stop: &AtomicBool) {
    let mut last = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(25));
        let Some(strong) = inner.upgrade() else {
            return;
        };
        if last.elapsed() < strong.cfg.heartbeat_every {
            continue;
        }
        let tick = strong.pool.try_lock();
        if let Some(mut pool) = tick {
            last = Instant::now();
            pool.admit_dialins(&strong);
            pool.sweep(&strong);
            if strong.cfg.respawn {
                // Best effort: a launch failure here surfaces on the
                // next factorization's fill instead.
                let _ = pool.fill(&strong);
            }
        }
    }
}

fn spawn_err(e: io::Error) -> ShardError {
    ShardError::Spawn(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xgs_cholesky::shard::{ChaosSpec, ChaosTrigger};
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, SymTileMatrix, TlrConfig, Variant};

    fn build(n: usize, nb: usize) -> TiledFactor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        let kernel = Matern::new(MaternParams::new(1.0, 0.05, 0.5));
        let model = FlopKernelModel {
            dense_rate: 45.0e9,
            mem_factor: 1.0,
        };
        TiledFactor::from_matrix(SymTileMatrix::generate(
            &kernel,
            &locs,
            TlrConfig::new(Variant::DenseF64, nb),
            &model,
        ))
    }

    fn event_count(r: &ShardReport, kind: &str) -> u64 {
        r.metrics
            .kernels
            .iter()
            .find(|k| k.kind == kind)
            .map_or(0, |k| k.count)
    }

    #[test]
    fn warm_fleet_runs_back_to_back_and_reports_joins_once() {
        let fleet = Supervisor::start(FleetConfig::threads(4)).unwrap();

        let mut seq = build(200, 64);
        seq.factorize_seq().unwrap();

        let mut a = build(200, 64);
        let ra = fleet.factorize(&mut a).unwrap();
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            a.to_dense_lower().as_slice()
        );
        // The initial fill is the first report's worker_join row...
        assert_eq!(event_count(&ra, "worker_join"), 4);

        // ...and a second run on the warm fleet admits nobody new.
        let mut b = build(200, 64);
        let rb = fleet.factorize(&mut b).unwrap();
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            b.to_dense_lower().as_slice()
        );
        assert_eq!(event_count(&rb, "worker_join"), 0);
        assert_eq!(event_count(&rb, "worker_death"), 0);

        let st = fleet.status();
        assert_eq!((st.active, st.standbys), (4, 0));
    }

    #[test]
    fn standby_is_promoted_on_mid_run_death() {
        let chaos = ChaosSpec {
            member: 3,
            trigger: ChaosTrigger::TaskStart(3),
            disconnect: true,
        };
        let mut cfg = FleetConfig::threads(4);
        cfg.launch = Launch::Threads(WorkerOptions {
            idle_timeout: None,
            chaos: Some(chaos),
            ..WorkerOptions::default()
        });
        cfg.standbys = 1;
        let fleet = Supervisor::start(FleetConfig { ..cfg }).unwrap();

        let mut seq = build(200, 64);
        seq.factorize_seq().unwrap();

        let mut f = build(200, 64);
        let r = fleet.factorize(&mut f).unwrap();
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            f.to_dense_lower().as_slice(),
            "recovered factor must stay bitwise equal"
        );
        assert_eq!(event_count(&r, "worker_death"), 1);
        assert!(event_count(&r, "panel_replay") >= 1);
        assert_eq!(event_count(&r, "standby_promote"), 1);
        // 4 grid + 1 standby admissions in the first report.
        assert_eq!(event_count(&r, "worker_join"), 5);

        // The standby moved into the grid; refill is the monitor's job,
        // so right after the run the queue is empty.
        let st = fleet.status();
        assert_eq!(st.active, 4);

        // The warm (post-recovery) fleet still factorizes correctly —
        // the replacement's fresh member id never re-triggers chaos.
        let mut g = build(200, 64);
        let rg = fleet.factorize(&mut g).unwrap();
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            g.to_dense_lower().as_slice()
        );
        assert_eq!(event_count(&rg, "worker_death"), 0);
    }

    #[test]
    fn respawn_covers_death_when_no_standby_is_registered() {
        let chaos = ChaosSpec {
            member: 3,
            trigger: ChaosTrigger::TaskStart(3),
            disconnect: true,
        };
        let mut cfg = FleetConfig::threads(4);
        cfg.launch = Launch::Threads(WorkerOptions {
            idle_timeout: None,
            chaos: Some(chaos),
            ..WorkerOptions::default()
        });
        let fleet = Supervisor::start(cfg).unwrap();

        let mut seq = build(200, 64);
        seq.factorize_seq().unwrap();

        let mut f = build(200, 64);
        let r = fleet.factorize(&mut f).unwrap();
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            f.to_dense_lower().as_slice()
        );
        assert_eq!(event_count(&r, "worker_death"), 1);
        assert!(event_count(&r, "panel_replay") >= 1);
        assert_eq!(event_count(&r, "standby_promote"), 0);
        // 4 grid admissions + the mid-run respawn.
        assert_eq!(event_count(&r, "worker_join"), 5);
    }

    #[test]
    fn monitor_culls_a_killed_idle_member_and_refills() {
        let mut cfg = FleetConfig::threads(2);
        cfg.standbys = 1;
        cfg.heartbeat_every = Duration::from_millis(50);
        cfg.heartbeat_timeout = Duration::from_millis(500);
        let fleet = Supervisor::start(cfg).unwrap();
        assert!(fleet.kill_member(2), "standby member 2 must exist");

        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let st = fleet.status();
            if st.idle_culled == 1 && st.active == 2 && st.standbys == 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "monitor never culled/refilled: {st:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        // The repaired fleet still factorizes.
        let mut seq = build(150, 50);
        seq.factorize_seq().unwrap();
        let mut f = build(150, 50);
        fleet.factorize(&mut f).unwrap();
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            f.to_dense_lower().as_slice()
        );
    }

    #[test]
    fn dialed_in_worker_registers_as_standby() {
        let mut cfg = FleetConfig::threads(2);
        cfg.heartbeat_every = Duration::from_millis(50);
        cfg.respawn = false;
        let fleet = Supervisor::start(cfg).unwrap();
        let addr = fleet.addr();

        // An external worker dials the registration address on its own.
        let h = std::thread::spawn(move || {
            let s = TcpStream::connect(addr)?;
            worker_loop_with(
                s,
                WorkerOptions {
                    idle_timeout: None,
                    ..WorkerOptions::default()
                },
            )
        });

        let deadline = Instant::now() + Duration::from_secs(10);
        while fleet.status().standbys != 1 {
            assert!(
                Instant::now() < deadline,
                "dial-in was never admitted: {:?}",
                fleet.status()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(fleet.status().active, 2);
        drop(fleet); // shuts every socket; the dialed worker's loop ends
        let _ = h.join();
    }

    #[test]
    fn describe_names_the_strategy() {
        let fleet = Supervisor::start(FleetConfig::threads(2)).unwrap();
        let d = fleet.describe();
        assert!(d.contains("warm fleet x2"), "{d}");
    }
}

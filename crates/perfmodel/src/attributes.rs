//! The paper's §II "Performance Attributes" table, regenerated from the
//! harness configuration.

use crate::a64fx::{A64fxNode, FUGAKU_FULL_NODES};

/// Render the performance-attributes table (paper §II) for this
/// reproduction, annotating the substitutions.
pub fn performance_attributes() -> String {
    let node = A64fxNode::default();
    let cores = FUGAKU_FULL_NODES * node.cores;
    format!(
        "Performance Attributes               | This reproduction\n\
         -------------------------------------+------------------------------------------\n\
         Problem size                         | up to ten million geospatial locations (simulated scale)\n\
         Category of achievement              | time-to-solution and scalability\n\
         Type of method used                  | Maximum Likelihood Estimation (MLE)\n\
         Results reported on basis of         | whole application\n\
         Precision reported                   | double, single, and half precision\n\
         System scale                         | {FUGAKU_FULL_NODES} modeled A64FX nodes ({cores} cores)\n\
         Measurement mechanism                | timers; flops; discrete-event simulation\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mentions_the_paper_scale() {
        let t = performance_attributes();
        assert!(t.contains("48384"));
        assert!(t.contains("2322432")); // 48384 * 48 cores
        assert!(t.contains("Maximum Likelihood Estimation"));
    }
}

//! Synthetic tile-format profiles for paper-scale simulation.
//!
//! At 1M–10M locations we cannot materialize the covariance matrix, but the
//! *decision maps* (Fig. 9) have simple structure once locations are
//! Morton-ordered: format depends (to first order) on the normalized
//! tile-index distance `u = |i-j| / NT`. These profiles encode that
//! structure for the paper's weak/medium/strong correlation regimes,
//! calibrated so the resulting memory footprints land near the Fig. 9
//! annotations (dense FP64 4356 GB; WC: MP 1607 GB, MP+TLR 915 GB; SC: MP
//! 3877 GB, MP+TLR 1830 GB for the 1M matrix at tile 2700).

use xgs_cholesky::dag::TileMetaSource;
use xgs_kernels::Precision;

/// Correlation strength of the underlying field (paper: a = 0.03 / 0.1 /
/// 0.3 on the unit square).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Correlation {
    Weak,
    Medium,
    Strong,
    /// The space–time regime of Fig. 11: strong *spatial* correlation (rare
    /// low-precision opportunities) but a temporally-blocked structure that
    /// compresses well, giving close to an order of magnitude TLR gain.
    SpaceTimeStrong,
}

impl Correlation {
    pub fn name(self) -> &'static str {
        match self {
            Correlation::Weak => "weak",
            Correlation::Medium => "medium",
            Correlation::Strong => "strong",
            Correlation::SpaceTimeStrong => "space-time strong",
        }
    }

    /// Matérn range parameter the regime corresponds to.
    pub fn range(self) -> f64 {
        match self {
            Correlation::Weak => 0.03,
            Correlation::Medium => 0.1,
            Correlation::Strong | Correlation::SpaceTimeStrong => 0.3,
        }
    }
}

/// Piecewise-in-`u` format profile.
#[derive(Clone, Copy, Debug)]
pub struct TileFormatProfile {
    pub nt: usize,
    pub nb: usize,
    /// Tiles with `|i-j| < dense_band` stay dense (structure decision).
    pub dense_band: usize,
    /// Below this `u`, dense tiles are FP64.
    pub u_f64: f64,
    /// Below this `u` (and above `u_f64`), FP32; beyond, FP16.
    pub u_f32: f64,
    /// Rank model: `rank(u) = max(rank_floor, rank0 * exp(-u / tau))`,
    /// capped at `nb`.
    pub rank0: f64,
    pub tau: f64,
    pub rank_floor: usize,
    /// When false (dense variants), every tile is dense.
    pub tlr: bool,
}

impl TileFormatProfile {
    /// Profile for a correlation regime. `tlr = false` reproduces the MP
    /// dense variant's precision map with no low-rank tiles.
    pub fn new(c: Correlation, nt: usize, nb: usize, tlr: bool) -> TileFormatProfile {
        // Precision thresholds calibrated to the Fig. 9 footprints; rank
        // decay calibrated to the paper's band sizes (~3 tiles at WC) and
        // far-field ranks at accuracy 1e-8.
        let (u_f64, u_f32, rank0, tau, rank_floor, dense_band) = match c {
            Correlation::Weak => (0.02, 0.15, 0.15 * nb as f64, 0.025, 10, 3),
            Correlation::Medium => (0.10, 0.40, 0.28 * nb as f64, 0.08, 18, 4),
            Correlation::Strong => (0.50, 0.90, 0.40 * nb as f64, 0.15, 30, 6),
            Correlation::SpaceTimeStrong => (0.50, 0.90, 0.15 * nb as f64, 0.04, 14, 5),
        };
        TileFormatProfile {
            nt,
            nb,
            dense_band,
            u_f64,
            u_f32,
            rank0,
            tau,
            rank_floor,
            tlr,
        }
    }

    #[inline]
    fn u(&self, i: usize, j: usize) -> f64 {
        i.abs_diff(j) as f64 / self.nt as f64
    }

    /// The rank the TLR compressor would produce at tile distance `u`.
    pub fn rank_at(&self, u: f64) -> usize {
        let r = (self.rank0 * (-u / self.tau).exp()).max(self.rank_floor as f64);
        (r as usize).min(self.nb)
    }
}

impl TileMetaSource for TileFormatProfile {
    fn is_dense(&self, i: usize, j: usize) -> bool {
        if !self.tlr || i == j {
            return true;
        }
        if i.abs_diff(j) < self.dense_band {
            return true;
        }
        // Structure rule: revert to dense past the Fig. 5 crossover
        // (rank ~ nb/13.5 with the calibrated model).
        let crossover = (self.nb as f64 / 13.5) as usize;
        self.rank(i, j) >= crossover.max(1)
    }

    fn rank(&self, i: usize, j: usize) -> usize {
        self.rank_at(self.u(i, j))
    }

    fn precision(&self, i: usize, j: usize) -> Precision {
        if i == j {
            return Precision::F64;
        }
        let u = self.u(i, j);
        if u < self.u_f64 {
            Precision::F64
        } else if u < self.u_f32 {
            Precision::F32
        } else if self.tlr && !self.is_dense(i, j) {
            // No FP16 low-rank tiles.
            Precision::F32
        } else {
            Precision::F16
        }
    }
}

/// Convenience alias used by the scale driver.
pub type ProfileMeta = TileFormatProfile;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_has_more_low_precision_than_strong() {
        let nt = 370;
        let frac_fp16 = |c: Correlation| {
            let p = TileFormatProfile::new(c, nt, 2700, false);
            let mut n16 = 0usize;
            let mut total = 0usize;
            for j in 0..nt {
                for i in j..nt {
                    total += 1;
                    if p.precision(i, j) == Precision::F16 {
                        n16 += 1;
                    }
                }
            }
            n16 as f64 / total as f64
        };
        assert!(frac_fp16(Correlation::Weak) > 0.5);
        assert!(frac_fp16(Correlation::Weak) > frac_fp16(Correlation::Medium));
        assert!(frac_fp16(Correlation::Medium) > frac_fp16(Correlation::Strong));
    }

    #[test]
    fn ranks_decay_with_distance_and_respect_floor() {
        let p = TileFormatProfile::new(Correlation::Weak, 370, 2700, true);
        assert!(p.rank_at(0.01) > p.rank_at(0.1));
        assert!(p.rank_at(0.9) >= p.rank_floor);
        assert!(p.rank_at(0.0) <= 2700);
    }

    #[test]
    fn dense_band_and_diagonal_always_dense_fp64() {
        let p = TileFormatProfile::new(Correlation::Medium, 100, 2700, true);
        for k in 0..100 {
            assert!(p.is_dense(k, k));
            assert_eq!(p.precision(k, k), Precision::F64);
        }
        assert!(p.is_dense(5, 3)); // within band 4
    }

    #[test]
    fn tlr_disabled_means_all_dense() {
        let p = TileFormatProfile::new(Correlation::Weak, 50, 2700, false);
        for j in 0..50 {
            for i in j..50 {
                assert!(p.is_dense(i, j));
            }
        }
    }

    #[test]
    fn space_time_profile_compresses_harder_than_space_strong() {
        // Fig. 11's premise: the space-time SC matrix has lower TLR ranks
        // than the pure-space SC matrix, despite the same precision map.
        let nt = 200;
        let st = TileFormatProfile::new(Correlation::SpaceTimeStrong, nt, 800, true);
        let sc = TileFormatProfile::new(Correlation::Strong, nt, 800, true);
        let avg_rank = |p: &TileFormatProfile| {
            let mut total = 0usize;
            let mut count = 0usize;
            for j in 0..nt {
                for i in j + 1..nt {
                    if !p.is_dense(i, j) {
                        total += p.rank(i, j);
                        count += 1;
                    }
                }
            }
            (total as f64 / count.max(1) as f64, count)
        };
        let (r_st, n_st) = avg_rank(&st);
        let (r_sc, n_sc) = avg_rank(&sc);
        assert!(
            n_st > n_sc,
            "space-time must have more LR tiles: {n_st} vs {n_sc}"
        );
        assert!(
            r_st < r_sc,
            "space-time ranks must be lower: {r_st} vs {r_sc}"
        );
        // Precision maps match (both are strong-correlation regimes).
        assert_eq!(st.u_f64, sc.u_f64);
    }

    #[test]
    fn tlr_profile_has_low_rank_majority_at_weak_correlation() {
        let nt = 370;
        let p = TileFormatProfile::new(Correlation::Weak, nt, 2700, true);
        let mut lr = 0usize;
        let mut total = 0usize;
        for j in 0..nt {
            for i in j + 1..nt {
                total += 1;
                if !p.is_dense(i, j) {
                    lr += 1;
                }
            }
        }
        assert!(
            lr as f64 / total as f64 > 0.6,
            "only {lr}/{total} tiles low-rank"
        );
    }
}

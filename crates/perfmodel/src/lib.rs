//! Performance model of the paper's hardware context and the simulated
//! Fugaku-scale experiment driver.
//!
//! The paper benchmarks on Fugaku (A64FX, 48 cores/node, TofuD) with SSL
//! BLAS running at 65% of peak (sector-cache optimizations disabled for
//! task-model compatibility, §VI). We cannot run on Fugaku; instead this
//! crate calibrates an analytic machine model to the paper's reported
//! operating points and drives the *same tile-Cholesky DAG* through the
//! discrete-event simulator of `xgs-runtime` (exact at moderate tile
//! counts) or a closed-form work/critical-path model (at full paper
//! scale), regenerating the shapes of Figs. 5, 7, 10 and 11. DESIGN.md §2
//! documents this substitution.

pub mod a64fx;
pub mod attributes;
pub mod profiles;
pub mod scale;

pub use a64fx::{A64fxKernelModel, A64fxNode, FUGAKU_FULL_NODES};
pub use attributes::performance_attributes;
pub use profiles::{Correlation, ProfileMeta, TileFormatProfile};
pub use scale::{
    footprint_bytes, project, project_with_metrics, Projection, ScaleConfig, SolverVariant,
};

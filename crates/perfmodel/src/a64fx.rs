//! Calibrated A64FX / Fugaku machine constants and kernel time model.
//!
//! Operating points taken from the paper:
//!
//! * A64FX node: 48 compute cores in four CMGs, 32 GB HBM2, ~3.072 Tflop/s
//!   FP64 peak; the paper sustains **65% of peak** with SSL's sector-cache
//!   optimizations disabled (§VI).
//! * FP32 runs at 2x FP64. FP16: Fugaku's pure HGEMM is unusable for MLE
//!   (needs FP32 accumulation), and BLIS's SHGEMM is slower than SGEMM, so
//!   the paper "falls back to SGEMM for performance, without trading off
//!   accuracy" — i.e. FP16 *storage* with FP32-rate *compute* (§VII-C).
//! * TofuD interconnect: ~6.8 GB/s injection per node (one of six links).
//! * The Fig. 5 crossover: FP64 TLR GEMM beats dense GEMM below rank ~200
//!   at tile size 2700, accuracy 1e-8 — which pins the TLR memory-bound
//!   penalty factor to ~9x per flop.

use xgs_kernels::Precision;
use xgs_runtime::MachineSpec;
use xgs_tile::KernelTimeModel;

/// Full-system Fugaku node count (the paper's largest run uses 48,384 of
/// the 158,976 installed; we keep the paper's figure as the reference max).
pub const FUGAKU_FULL_NODES: usize = 48_384;

/// One A64FX node.
#[derive(Clone, Copy, Debug)]
pub struct A64fxNode {
    pub cores: usize,
    /// FP64 peak per node, flop/s.
    pub peak_f64: f64,
    /// Sustained fraction of peak (0.65 per the paper).
    pub sustained: f64,
    /// HBM2 bandwidth per node, bytes/s.
    pub mem_bandwidth: f64,
    /// Memory capacity per node, bytes.
    pub mem_capacity: f64,
    /// TofuD injection bandwidth, bytes/s.
    pub net_bandwidth: f64,
    /// Network latency, seconds.
    pub net_latency: f64,
}

impl Default for A64fxNode {
    fn default() -> A64fxNode {
        A64fxNode {
            cores: 48,
            peak_f64: 3.072e12,
            sustained: 0.65,
            mem_bandwidth: 1.024e12,
            mem_capacity: 32.0e9,
            net_bandwidth: 6.8e9,
            net_latency: 0.7e-6,
        }
    }
}

impl A64fxNode {
    /// Effective FP64 rate of one core, flop/s.
    pub fn core_rate_f64(&self) -> f64 {
        self.peak_f64 * self.sustained / self.cores as f64
    }

    /// [`MachineSpec`] for the distributed simulator with `nodes` nodes.
    pub fn machine(&self, nodes: usize) -> MachineSpec {
        MachineSpec {
            nodes,
            cores_per_node: self.cores,
            net_bandwidth: self.net_bandwidth,
            net_latency: self.net_latency,
        }
    }
}

/// Kernel time model calibrated to the A64FX operating points.
#[derive(Clone, Copy, Debug)]
pub struct A64fxKernelModel {
    /// Effective per-core FP64 flop rate for compute-bound dense kernels.
    pub dense_rate: f64,
    /// Per-flop penalty of memory-bound TLR kernels (calibrated to the
    /// Fig. 5 crossover: rank ~200 at tile 2700).
    pub mem_factor: f64,
    /// FP16 compute speedup vs FP64. 2.0 = the paper's SGEMM fallback;
    /// 4.0 = hypothetical native HGEMM-with-FP32-accumulation hardware.
    pub fp16_speedup: f64,
}

impl Default for A64fxKernelModel {
    fn default() -> A64fxKernelModel {
        A64fxKernelModel {
            dense_rate: A64fxNode::default().core_rate_f64(),
            mem_factor: 9.0,
            fp16_speedup: 2.0,
        }
    }
}

impl A64fxKernelModel {
    fn speedup(&self, p: Precision) -> f64 {
        match p {
            Precision::F64 => 1.0,
            Precision::F32 => 2.0,
            Precision::F16 => self.fp16_speedup,
        }
    }
}

impl KernelTimeModel for A64fxKernelModel {
    fn dense_gemm_time(&self, nb: usize, precision: Precision) -> f64 {
        let flops = 2.0 * (nb as f64).powi(3);
        flops / (self.dense_rate * self.speedup(precision))
    }

    fn tlr_gemm_time(&self, nb: usize, rank: usize, precision: Precision) -> f64 {
        let nb = nb as f64;
        let k = (rank.max(1)) as f64;
        // LR product + QR/SVD rounding of the 2k-wide stacked factors.
        let flops = 36.0 * nb * k * k + 36.0 * k * k * k;
        let p = if precision == Precision::F16 {
            Precision::F32
        } else {
            precision
        };
        flops * self.mem_factor / (self.dense_rate * self.speedup(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_core_rate_matches_paper_operating_point() {
        let node = A64fxNode::default();
        // 3.072 Tflop/s * 0.65 / 48 cores ~ 41.6 Gflop/s per core.
        let r = node.core_rate_f64();
        assert!((r - 41.6e9).abs() < 0.5e9, "core rate {r:.3e}");
    }

    #[test]
    fn fig5_crossover_is_near_rank_200_at_tile_2700() {
        let m = A64fxKernelModel::default();
        let nb = 2700;
        let dense = m.dense_gemm_time(nb, Precision::F64);
        // Find the rank where TLR GEMM time crosses dense GEMM time.
        let mut crossover = nb;
        for k in 1..nb {
            if m.tlr_gemm_time(nb, k, Precision::F64) >= dense {
                crossover = k;
                break;
            }
        }
        assert!(
            (150..=260).contains(&crossover),
            "crossover {crossover}, paper reports ~200"
        );
    }

    #[test]
    fn ratio_curve_decays_with_rank_like_fig5() {
        // Fig. 5's right axis: dense/TLR time ratio falls monotonically
        // with rank, >>1 at small ranks.
        let m = A64fxKernelModel::default();
        let nb = 2700;
        let dense = m.dense_gemm_time(nb, Precision::F64);
        let ratio = |k: usize| dense / m.tlr_gemm_time(nb, k, Precision::F64);
        assert!(ratio(20) > 5.0);
        assert!(ratio(20) > ratio(100));
        assert!(ratio(100) > ratio(300));
        assert!(ratio(400) < 1.0);
    }

    #[test]
    fn fp16_fallback_matches_fp32_rate() {
        let m = A64fxKernelModel::default();
        assert_eq!(
            m.dense_gemm_time(512, Precision::F16),
            m.dense_gemm_time(512, Precision::F32)
        );
        // Hypothetical native hardware doubles it again.
        let native = A64fxKernelModel {
            fp16_speedup: 4.0,
            ..m
        };
        assert!(
            native.dense_gemm_time(512, Precision::F16)
                < native.dense_gemm_time(512, Precision::F32)
        );
    }

    #[test]
    fn machine_spec_export() {
        let spec = A64fxNode::default().machine(1024);
        assert_eq!(spec.nodes, 1024);
        assert_eq!(spec.cores_per_node, 48);
    }
}

//! Paper-scale projection of the three Cholesky variants.
//!
//! Two engines share the same tile-format metadata and kernel model:
//!
//! * **event** — builds the real tile-Cholesky DAG (`xgs-cholesky::dag`)
//!   and replays it in the discrete-event simulator; exact scheduling
//!   behaviour, O(NT^3) tasks, used up to `event_sim_max_nt`.
//! * **analytic** — closed-form total work (O(NT^2) summation over
//!   sub-diagonal multiplicities) and the diagonal-chain critical path;
//!   `makespan ≈ max(work / (nodes · cores), critical_path) · overhead`,
//!   with the overhead factor calibrated against the event engine (they
//!   are cross-checked in tests).

use crate::a64fx::{A64fxKernelModel, A64fxNode};
use crate::profiles::{Correlation, TileFormatProfile};
use xgs_cholesky::dag::{cholesky_dag, DagOptions, TileMetaSource};
use xgs_kernels::Precision;
use xgs_runtime::{simulate, simulate_with_metrics, MetricsReport};
use xgs_tile::KernelTimeModel;

/// Which solver variant to project (mirrors `xgs_tile::Variant` but owned
/// here so the projector has no dependency on generated matrices).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverVariant {
    DenseF64,
    /// Pure FP32 dense (a Fig. 7 baseline).
    DenseF32,
    MpDense,
    MpDenseTlr,
}

impl SolverVariant {
    pub fn name(self) -> &'static str {
        match self {
            SolverVariant::DenseF64 => "dense-fp64",
            SolverVariant::DenseF32 => "dense-fp32",
            SolverVariant::MpDense => "mp-dense",
            SolverVariant::MpDenseTlr => "mp-dense-tlr",
        }
    }
}

/// Scale experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Matrix dimension (number of locations).
    pub n: usize,
    /// Tile size (the paper uses 2700 at scale, 800 for Fig. 7).
    pub nb: usize,
    pub nodes: usize,
    pub correlation: Correlation,
    pub variant: SolverVariant,
    pub node: A64fxNode,
    pub model: A64fxKernelModel,
    /// Largest NT routed to the event simulator (above: analytic).
    pub event_sim_max_nt: usize,
}

impl ScaleConfig {
    pub fn new(
        n: usize,
        nb: usize,
        nodes: usize,
        correlation: Correlation,
        variant: SolverVariant,
    ) -> ScaleConfig {
        ScaleConfig {
            n,
            nb,
            nodes,
            correlation,
            variant,
            node: A64fxNode::default(),
            model: A64fxKernelModel::default(),
            event_sim_max_nt: 160,
        }
    }

    fn profile(&self) -> TileFormatProfile {
        let nt = self.n.div_ceil(self.nb);
        match self.variant {
            SolverVariant::DenseF64 => {
                let mut p = TileFormatProfile::new(self.correlation, nt, self.nb, false);
                p.u_f64 = 2.0; // everything FP64
                p.u_f32 = 3.0;
                p
            }
            SolverVariant::DenseF32 => {
                let mut p = TileFormatProfile::new(self.correlation, nt, self.nb, false);
                p.u_f64 = 0.0;
                p.u_f32 = 2.0; // everything FP32 (diagonal stays FP64)
                p
            }
            SolverVariant::MpDense => TileFormatProfile::new(self.correlation, nt, self.nb, false),
            SolverVariant::MpDenseTlr => {
                TileFormatProfile::new(self.correlation, nt, self.nb, true)
            }
        }
    }
}

/// Projection outcome (serializable for downstream plotting via
/// [`Projection::to_json`]).
#[derive(Clone, Copy, Debug)]
pub struct Projection {
    pub nt: usize,
    /// Simulated time-to-solution of one Cholesky, seconds.
    pub makespan: f64,
    /// Nominal throughput: `(n^3/3) / makespan`, flop/s (the paper reports
    /// dense-equivalent flops even for the memory-bound TLR variant).
    pub flops: f64,
    /// Matrix storage under the variant's formats, bytes.
    pub footprint_bytes: f64,
    /// Whether the footprint fits the aggregate node memory.
    pub fits_in_memory: bool,
    /// `true` when the event engine produced the number.
    pub event_simulated: bool,
    /// Parallel efficiency: compute work / (makespan * total cores).
    pub efficiency: f64,
}

impl Projection {
    /// One JSON object (no trailing newline); the benches embed this in
    /// their machine-readable result dumps.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"nt\":{},\"makespan\":{},\"flops\":{},\"footprint_bytes\":{},",
                "\"fits_in_memory\":{},\"event_simulated\":{},\"efficiency\":{}}}"
            ),
            self.nt,
            self.makespan,
            self.flops,
            self.footprint_bytes,
            self.fits_in_memory,
            self.event_simulated,
            self.efficiency
        )
    }
}

/// Storage footprint of the profile's format assignment (closed form over
/// sub-diagonals).
pub fn footprint_bytes(meta: &TileFormatProfile) -> f64 {
    let nt = meta.nt;
    let nb = meta.nb;
    let mut total = 0.0f64;
    for d in 0..nt {
        let count = (nt - d) as f64;
        // Representative tile on this sub-diagonal.
        let (i, j) = (d, 0);
        let bytes = if meta.is_dense(i, j) {
            (nb * nb * meta.precision(i, j).bytes()) as f64
        } else {
            (meta.rank(i, j) * 2 * nb * meta.precision(i, j).bytes()) as f64
        };
        total += count * bytes;
    }
    total
}

/// Project one configuration.
pub fn project(cfg: &ScaleConfig) -> Projection {
    let nt = cfg.n.div_ceil(cfg.nb);
    let profile = cfg.profile();
    let fp = footprint_bytes(&profile);
    let fits = fp <= cfg.node.mem_capacity * cfg.nodes as f64;
    let nominal = {
        let n = cfg.n as f64;
        n * n * n / 3.0
    };

    let (makespan, efficiency) = if nt <= cfg.event_sim_max_nt {
        event_makespan(cfg, &profile, nt)
    } else {
        analytic_makespan(cfg, &profile, nt)
    };

    Projection {
        nt,
        makespan,
        flops: nominal / makespan,
        footprint_bytes: fp,
        fits_in_memory: fits,
        event_simulated: nt <= cfg.event_sim_max_nt,
        efficiency,
    }
}

/// [`project`], additionally returning the per-kernel census of the event
/// replay as a [`MetricsReport`] (the same JSON schema the shared-memory
/// executor and the prediction server export, so `metrics_diff` can compare
/// a projection against a measured run). `None` when the configuration is
/// routed to the analytic engine, which has no task-level breakdown.
pub fn project_with_metrics(cfg: &ScaleConfig) -> (Projection, Option<MetricsReport>) {
    let nt = cfg.n.div_ceil(cfg.nb);
    if nt > cfg.event_sim_max_nt {
        return (project(cfg), None);
    }
    let profile = cfg.profile();
    let (p, q) = process_grid(cfg.nodes);
    let opts = DagOptions {
        nt,
        nb: cfg.nb,
        grid_p: p,
        grid_q: q,
        model: &cfg.model,
    };
    let (tasks, _stats) = cholesky_dag(&profile, &opts);
    let machine = cfg.node.machine(p * q);
    let (r, mut metrics) = simulate_with_metrics(&tasks, &machine);
    // Closed-form frame census of the sharded protocol under this
    // profile's formats: a real sharded run of the same grid must measure
    // exactly these TILE frames/bytes when formats are static
    // (`metrics_diff --assert-wire-equal tile`). The warm variant, because
    // the CLI's `--shards` runs on the persistent fleet: the drain rides a
    // HEARTBEAT exchange and no SHUTDOWN/BYE frames cross the wire.
    metrics.wire = xgs_cholesky::project_wire_census_warm(&profile, cfg.n, cfg.nb, cfg.nodes);
    let fp = footprint_bytes(&profile);
    let nominal = {
        let n = cfg.n as f64;
        n * n * n / 3.0
    };
    let projection = Projection {
        nt,
        makespan: r.makespan,
        flops: nominal / r.makespan,
        footprint_bytes: fp,
        fits_in_memory: fp <= cfg.node.mem_capacity * cfg.nodes as f64,
        event_simulated: true,
        efficiency: r.efficiency,
    };
    (projection, Some(metrics))
}

fn process_grid(nodes: usize) -> (usize, usize) {
    let mut p = (nodes as f64).sqrt() as usize;
    while p > 1 && !nodes.is_multiple_of(p) {
        p -= 1;
    }
    (p.max(1), nodes / p.max(1))
}

fn event_makespan(cfg: &ScaleConfig, profile: &TileFormatProfile, nt: usize) -> (f64, f64) {
    let (p, q) = process_grid(cfg.nodes);
    let opts = DagOptions {
        nt,
        nb: cfg.nb,
        grid_p: p,
        grid_q: q,
        model: &cfg.model,
    };
    let (tasks, _stats) = cholesky_dag(profile, &opts);
    let machine = cfg.node.machine(p * q);
    let r = simulate(&tasks, &machine);
    (r.makespan, r.efficiency)
}

/// Overhead factor of the analytic estimate over the ideal
/// `max(work/cores, critical path)` bound; calibrated against the event
/// simulator (tests keep the two engines within ~25% of each other at the
/// handoff size).
const ANALYTIC_OVERHEAD: f64 = 1.12;

fn analytic_makespan(cfg: &ScaleConfig, meta: &TileFormatProfile, nt: usize) -> (f64, f64) {
    let model = &cfg.model;
    let nb = cfg.nb;
    let lrp = |p: Precision| {
        if p == Precision::F16 {
            Precision::F32
        } else {
            p
        }
    };

    // Representative per-sub-diagonal kernel costs.
    let trsm_cost = |d: usize| -> f64 {
        let (i, j) = (d, 0);
        if meta.is_dense(i, j) {
            model.dense_trsm_time(nb, meta.precision(i, j))
        } else {
            model.tlr_trsm_time(nb, meta.rank(i, j), lrp(meta.precision(i, j)))
        }
    };
    let syrk_cost = |d: usize| -> f64 {
        let (i, j) = (d, 0);
        if meta.is_dense(i, j) {
            0.5 * model.dense_gemm_time(nb, Precision::F64)
        } else {
            0.5 * model.tlr_gemm_time(nb, meta.rank(i, j), Precision::F64)
        }
    };
    // GEMM(i,j,k): C at distance b = i-j, A at a = i-k, B at a-b = j-k.
    let gemm_cost = |b: usize, a: usize| -> f64 {
        let c_dense = meta.is_dense(b, 0);
        if c_dense {
            model.dense_gemm_time(nb, meta.precision(b, 0))
        } else {
            let ra = if meta.is_dense(a, 0) {
                nb
            } else {
                meta.rank(a, 0)
            };
            let rb = if meta.is_dense(a - b, 0) {
                nb
            } else {
                meta.rank(a - b, 0)
            };
            let r_prod = ra.min(rb);
            if r_prod >= nb {
                2.0 * model.dense_gemm_time(nb, Precision::F64)
            } else {
                let r = r_prod.max(meta.rank(b, 0)).min(nb);
                model.tlr_gemm_time(nb, r, lrp(meta.precision(b, 0)))
            }
        }
    };

    let c_potrf = model.dense_gemm_time(nb, Precision::F64) / 6.0;
    let mut work = nt as f64 * c_potrf;
    for d in 1..nt {
        let count = (nt - d) as f64;
        work += count * (trsm_cost(d) + syrk_cost(d));
    }
    for a in 2..nt {
        let count = (nt - a) as f64;
        for b in 1..a {
            work += count * gemm_cost(b, a);
        }
    }

    // Critical path: the diagonal chain potrf -> trsm(d=1) -> syrk(d=1).
    let cp = nt as f64 * (c_potrf + trsm_cost(1.min(nt - 1)) + syrk_cost(1.min(nt - 1)));

    let cores = (cfg.nodes * cfg.node.cores) as f64;
    let makespan = (work / cores).max(cp) * ANALYTIC_OVERHEAD;
    (makespan, work / (makespan * cores))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tile 800 (the paper's Fig. 7 tile size): at extreme scale the
    // diagonal-chain critical path must stay short enough to "expose more
    // tasks" (paper §VII-E), which the smaller tile provides.
    fn cfg(n: usize, nodes: usize, c: Correlation, v: SolverVariant) -> ScaleConfig {
        ScaleConfig::new(n, 800, nodes, c, v)
    }

    #[test]
    fn process_grid_factors_exactly() {
        for nodes in [1, 2, 16, 1024, 2048, 48384] {
            let (p, q) = process_grid(nodes);
            assert_eq!(p * q, nodes, "grid for {nodes}");
            assert!(p <= q);
        }
    }

    #[test]
    fn footprint_matches_paper_fig9_scale() {
        // 1M matrix, tile 2700: dense FP64 lower half = 4 TB-ish (paper
        // reports 4356 GB for the full square; our lower-half accounting
        // should land at roughly half that +- tile granularity... the paper
        // stores the symmetric matrix's lower half too, so compare against
        // ~4356 GB with both-halves accounting).
        let nt = 1_000_000usize.div_ceil(2700);
        let mut p = TileFormatProfile::new(Correlation::Weak, nt, 2700, false);
        p.u_f64 = 2.0;
        p.u_f32 = 3.0;
        // The paper's MF accounting exploits symmetry (abstract: ~4 TB for
        // a 1M-location matrix), so the stored lower half is the comparable
        // quantity.
        let gb = footprint_bytes(&p) / 1e9;
        assert!(
            (3500.0..5000.0).contains(&gb),
            "dense footprint {gb:.0} GB vs paper 4356 GB"
        );

        // MP dense (weak correlation): paper reports 1607 GB (63% cut).
        let mp = TileFormatProfile::new(Correlation::Weak, nt, 2700, false);
        let mp_gb = footprint_bytes(&mp) / 1e9;
        assert!(
            mp_gb < 0.5 * gb,
            "MP footprint {mp_gb:.0} GB should be well under half of {gb:.0} GB"
        );

        // MP+TLR (weak): paper reports 915 GB (79% cut).
        let tlr = TileFormatProfile::new(Correlation::Weak, nt, 2700, true);
        let tlr_gb = footprint_bytes(&tlr) / 1e9;
        assert!(
            tlr_gb < mp_gb,
            "TLR footprint {tlr_gb:.0} GB should beat MP {mp_gb:.0} GB"
        );
        assert!(
            tlr_gb > 50.0,
            "TLR footprint suspiciously small: {tlr_gb:.0} GB"
        );
    }

    #[test]
    fn variants_order_correctly_at_weak_correlation() {
        // The paper's headline: MP+TLR up to ~12x over dense FP64 at weak
        // correlation on 16K nodes (9M matrix). We check ordering and a
        // sizeable gap at a smaller-but-analytic scale.
        let n = 2_000_000;
        let t64 = project(&cfg(n, 4096, Correlation::Weak, SolverVariant::DenseF64)).makespan;
        let tmp = project(&cfg(n, 4096, Correlation::Weak, SolverVariant::MpDense)).makespan;
        let ttlr = project(&cfg(n, 4096, Correlation::Weak, SolverVariant::MpDenseTlr)).makespan;
        assert!(tmp < t64, "MP {tmp} !< dense {t64}");
        assert!(ttlr < tmp, "TLR {ttlr} !< MP {tmp}");
        let speedup = t64 / ttlr;
        assert!(
            (4.0..30.0).contains(&speedup),
            "TLR speedup {speedup:.1} out of plausible range"
        );
    }

    #[test]
    fn strong_correlation_shrinks_the_gain() {
        let n = 2_000_000;
        let weak = project(&cfg(n, 4096, Correlation::Weak, SolverVariant::DenseF64)).makespan
            / project(&cfg(n, 4096, Correlation::Weak, SolverVariant::MpDenseTlr)).makespan;
        let strong = project(&cfg(n, 4096, Correlation::Strong, SolverVariant::DenseF64)).makespan
            / project(&cfg(
                n,
                4096,
                Correlation::Strong,
                SolverVariant::MpDenseTlr,
            ))
            .makespan;
        assert!(
            weak > strong,
            "weak gain {weak:.1}x must exceed strong gain {strong:.1}x"
        );
    }

    #[test]
    fn event_and_analytic_engines_agree_at_handoff() {
        // Same configuration through both engines near the handoff NT.
        let mut c = cfg(150 * 800, 256, Correlation::Medium, SolverVariant::DenseF64);
        c.event_sim_max_nt = 160; // event
        let ev = project(&c);
        assert!(ev.event_simulated);
        c.event_sim_max_nt = 10; // force analytic
        let an = project(&c);
        assert!(!an.event_simulated);
        let ratio = ev.makespan / an.makespan;
        assert!(
            (0.7..1.4).contains(&ratio),
            "engines disagree: event {} vs analytic {}",
            ev.makespan,
            an.makespan
        );
    }

    #[test]
    fn event_projection_exports_kernel_census() {
        let c = cfg(40 * 800, 16, Correlation::Medium, SolverVariant::MpDense);
        let (proj, metrics) = project_with_metrics(&c);
        assert!(proj.event_simulated);
        let m = metrics.expect("event engine produces metrics");
        assert_eq!(m.wall_seconds, proj.makespan);
        let kinds: Vec<&str> = m.kernels.iter().map(|k| k.kind).collect();
        for k in ["potrf", "trsm", "syrk", "gemm"] {
            assert!(kinds.contains(&k), "missing kernel {k} in {kinds:?}");
        }
        assert_eq!(
            m.kernels.iter().map(|k| k.count).sum::<u64>() as usize,
            m.tasks
        );
        // Matches plain project() bit-for-bit (same DAG, same replay).
        let p2 = project(&c);
        assert_eq!(proj.makespan, p2.makespan);

        // Analytic route yields no census.
        let mut big = c;
        big.event_sim_max_nt = 10;
        let (pa, ma) = project_with_metrics(&big);
        assert!(!pa.event_simulated);
        assert!(ma.is_none());
    }

    #[test]
    fn event_projection_exports_wire_census() {
        let tile = |v: SolverVariant| {
            let c = cfg(4000, 4, Correlation::Weak, v);
            let (_, metrics) = project_with_metrics(&c);
            let m = metrics.expect("event engine produces metrics");
            let kinds: Vec<&str> = m.wire.iter().map(|w| w.kind).collect();
            for k in ["hello", "tile", "task", "done", "heartbeat"] {
                assert!(kinds.contains(&k), "missing frame kind {k} in {kinds:?}");
            }
            // Warm-fleet projection: the drain is a HEARTBEAT exchange,
            // never a SHUTDOWN/BYE teardown.
            for k in ["shutdown", "bye"] {
                assert!(!kinds.contains(&k), "stale frame kind {k} in {kinds:?}");
            }
            let t = m.wire.iter().find(|w| w.kind == "tile").unwrap();
            assert!(t.frames > 0 && t.bytes > 0);
            (t.frames, t.bytes)
        };
        let (dense_frames, dense_bytes) = tile(SolverVariant::DenseF64);
        let (mp_frames, mp_bytes) = tile(SolverVariant::MpDense);
        // Same protocol, same frame count — only the payload widths shrink.
        assert_eq!(dense_frames, mp_frames);
        assert!(
            mp_bytes < dense_bytes,
            "MP TILE bytes {mp_bytes} should be below dense-f64 {dense_bytes}"
        );
    }

    #[test]
    fn memory_gate_matches_paper_motivation() {
        // A 10M dense FP64 matrix needs ~400 TB; 1024 nodes x 32 GB = 32 TB
        // cannot host it, while MP+TLR's footprint fits far smaller systems
        // — the paper's "allowing to handle larger problem sizes for the
        // same allocated resources".
        let dense = project(&cfg(
            10_000_000,
            1024,
            Correlation::Weak,
            SolverVariant::DenseF64,
        ));
        assert!(!dense.fits_in_memory);
        let tlr = project(&cfg(
            10_000_000,
            16384,
            Correlation::Weak,
            SolverVariant::MpDenseTlr,
        ));
        assert!(tlr.fits_in_memory);
    }

    #[test]
    fn strong_scaling_reduces_time_with_diminishing_returns() {
        let n = 2_000_000;
        let t2048 = project(&cfg(
            n,
            2048,
            Correlation::Medium,
            SolverVariant::MpDenseTlr,
        ))
        .makespan;
        let t4096 = project(&cfg(
            n,
            4096,
            Correlation::Medium,
            SolverVariant::MpDenseTlr,
        ))
        .makespan;
        let t16384 = project(&cfg(
            n,
            16384,
            Correlation::Medium,
            SolverVariant::MpDenseTlr,
        ))
        .makespan;
        assert!(t4096 < t2048);
        assert!(t16384 <= t4096);
        // Efficiency decays: 8x nodes from 2048 -> 16384 gains < 8x.
        assert!(t2048 / t16384 < 8.0, "superlinear scaling is implausible");
    }
}

//! Householder QR factorization.
//!
//! Used by the low-rank "rounding" (recompression) step of TLR arithmetic:
//! after adding two low-rank terms the stacked factors are re-orthogonalized
//! with thin QR before an SVD of the small core.

use crate::matrix::Matrix;

/// Thin QR factors: `A (m x n) = Q (m x k) * R (k x n)` with `k = min(m,n)`.
pub struct QrFactors {
    pub q: Matrix,
    pub r: Matrix,
}

/// Householder QR with explicit thin-`Q` formation.
#[allow(clippy::needless_range_loop)]
pub fn householder_qr(a: &Matrix) -> QrFactors {
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut r = a.clone();
    // Householder vectors stored below the diagonal of `r`, taus aside
    // (H_j = I - tau_j v_j v_j^T).
    let mut taus = vec![0.0f64; k];

    for j in 0..k {
        // Build the reflector from r[j.., j].
        let (tau, _rdiag) = {
            let col = &mut r.as_mut_slice()[j * m + j..(j + 1) * m];
            make_householder(col)
        };
        taus[j] = tau;
        // Apply to trailing columns: r[j.., j+1..] -= tau * v (v^T r).
        if tau != 0.0 {
            for c in j + 1..n {
                let mut dot = 0.0;
                {
                    let vcol = &r.as_slice()[j * m + j..(j + 1) * m];
                    let ccol = &r.as_slice()[c * m + j..(c + 1) * m];
                    // v[0] is implicitly 1.
                    dot += ccol[0];
                    for t in 1..vcol.len() {
                        dot += vcol[t] * ccol[t];
                    }
                }
                let scaled = tau * dot;
                // Split borrows: v lives in column j, target in column c.
                let (vcopy, clen) = {
                    let vcol = &r.as_slice()[j * m + j..(j + 1) * m];
                    (vcol.to_vec(), m - j)
                };
                let ccol = &mut r.as_mut_slice()[c * m + j..c * m + j + clen];
                ccol[0] -= scaled;
                for t in 1..clen {
                    ccol[t] -= scaled * vcopy[t];
                }
            }
        }
    }

    // Accumulate thin Q by applying reflectors to the first k columns of I,
    // in reverse order.
    let mut q = Matrix::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = 1.0;
    }
    for j in (0..k).rev() {
        let tau = taus[j];
        if tau == 0.0 {
            continue;
        }
        let vcopy: Vec<f64> = r.as_slice()[j * m + j..(j + 1) * m].to_vec();
        for c in 0..k {
            let ccol = &mut q.as_mut_slice()[c * m + j..(c + 1) * m];
            let mut dot = ccol[0];
            for t in 1..vcopy.len() {
                dot += vcopy[t] * ccol[t];
            }
            let scaled = tau * dot;
            ccol[0] -= scaled;
            for t in 1..vcopy.len() {
                ccol[t] -= scaled * vcopy[t];
            }
        }
    }

    // Extract upper-triangular R (k x n).
    let mut rr = Matrix::zeros(k, n);
    for j in 0..n {
        for i in 0..=j.min(k - 1) {
            rr[(i, j)] = r[(i, j)];
        }
    }
    QrFactors { q, r: rr }
}

/// Turn `x` into a Householder vector in place (LAPACK `dlarfg` style):
/// on return `x[0]` holds the resulting `R` diagonal entry, `x[1..]` the
/// reflector tail (with implicit leading 1); returns `(tau, rdiag)`.
#[allow(clippy::needless_range_loop)]
fn make_householder(x: &mut [f64]) -> (f64, f64) {
    let n = x.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let alpha = x[0];
    let xnorm = crate::matrix::norm2_scaled(&x[1..]);
    if xnorm == 0.0 {
        // Already upper-triangular in this column; reflector is identity.
        return (0.0, alpha);
    }
    let mut beta_val = -(alpha.hypot(xnorm)).copysign(alpha);
    if beta_val == 0.0 {
        beta_val = -f64::MIN_POSITIVE;
    }
    let tau = (beta_val - alpha) / beta_val;
    let inv = 1.0 / (alpha - beta_val);
    for t in 1..n {
        x[t] *= inv;
    }
    x[0] = beta_val;
    (tau, beta_val)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn reconstructs_tall_matrix() {
        let a = rnd(10, 4, 1);
        let QrFactors { q, r } = householder_qr(&a);
        assert_eq!(q.shape(), (10, 4));
        assert_eq!(r.shape(), (4, 4));
        assert_close(&q.matmul(&r), &a, 1e-12);
    }

    #[test]
    fn reconstructs_wide_matrix() {
        let a = rnd(3, 8, 2);
        let QrFactors { q, r } = householder_qr(&a);
        assert_eq!(q.shape(), (3, 3));
        assert_eq!(r.shape(), (3, 8));
        assert_close(&q.matmul(&r), &a, 1e-12);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = rnd(12, 5, 3);
        let QrFactors { q, .. } = householder_qr(&a);
        let qtq = q.t_matmul(&q);
        let i = Matrix::identity(5);
        assert_close(&qtq, &i, 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = rnd(6, 6, 4);
        let QrFactors { r, .. } = householder_qr(&a);
        for j in 0..6 {
            for i in j + 1..6 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn handles_rank_deficient_input() {
        // Two identical columns.
        let mut a = rnd(5, 1, 5);
        a = a.hcat(&a.clone());
        let QrFactors { q, r } = householder_qr(&a);
        assert_close(&q.matmul(&r), &a, 1e-12);
        // Second diagonal of R must be (numerically) zero.
        assert!(r[(1, 1)].abs() < 1e-12);
    }

    #[test]
    fn single_column() {
        let a = rnd(7, 1, 6);
        let QrFactors { q, r } = householder_qr(&a);
        assert!((q.norm_fro() - 1.0).abs() < 1e-12);
        assert!((r[(0, 0)].abs() - a.norm_fro()).abs() < 1e-12);
        assert_close(&q.matmul(&r), &a, 1e-12);
    }
}

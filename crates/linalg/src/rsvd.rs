//! Randomized SVD (Halko–Martinsson–Tropp) — the third compressor of the
//! HiCMA family (alongside deterministic SVD and ACA).
//!
//! Range-finding with a Gaussian sketch plus power iterations, then an
//! exact SVD of the small projected matrix. For tiles whose spectrum decays
//! (the TLR regime) this costs `O(m n (k + p))` with tiny constants and is
//! embarrassingly cache-friendly; the adaptive variant doubles the sketch
//! until the tolerance certifies.

use crate::matrix::Matrix;
use crate::qr::householder_qr;
use crate::svd::jacobi_svd;

/// Deterministic xorshift Gaussian sketch (Box–Muller over a counter-based
/// stream) — keeps the crate dependency-free and runs reproducible.
fn gaussian_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f64 = next().max(1e-300);
        let u2: f64 = next();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    })
}

/// Fixed-rank randomized SVD: returns `(U*S, V)` factors of rank at most
/// `k` with oversampling `p` and `q` power iterations.
pub fn rsvd_fixed_rank(a: &Matrix, k: usize, p: usize, q: usize, seed: u64) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    let l = (k + p).min(n).min(m);
    if l == 0 {
        return (Matrix::zeros(m, 0), Matrix::zeros(n, 0));
    }
    // Range finder: Y = (A A^T)^q A Ω.
    let omega = gaussian_matrix(n, l, seed);
    let mut y = a.matmul(&omega);
    for _ in 0..q {
        // Orthogonalize between powers for numerical stability.
        let qy = householder_qr(&y).q;
        let z = a.t_matmul(&qy);
        let qz = householder_qr(&z).q;
        y = a.matmul(&qz);
    }
    let qy = householder_qr(&y).q; // m x l
                                   // Project: B = Q^T A  (l x n); SVD of B.
    let b = qy.t_matmul(a);
    let svd = jacobi_svd(&b);
    let keep = k.min(svd.s.len());
    let mut us = svd.u.truncate_cols(keep);
    for j in 0..keep {
        let sj = svd.s[j];
        for x in us.col_mut(j) {
            *x *= sj;
        }
    }
    (qy.matmul(&us), svd.v.truncate_cols(keep))
}

/// Adaptive randomized compression to absolute Frobenius tolerance: doubles
/// the sketch size until the residual certifies `||A - U V^T||_F <= tol`,
/// falling back to full rank if the spectrum refuses to decay.
pub fn rsvd_adaptive(a: &Matrix, tol: f64, seed: u64) -> (Matrix, Matrix, usize) {
    let (m, n) = a.shape();
    let maxk = m.min(n);
    let mut k = 8.min(maxk.max(1));
    loop {
        let (u, v) = rsvd_fixed_rank(a, k, 8, 2, seed);
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        if err <= tol || k >= maxk {
            // Trim trailing negligible columns (u carries the singular value
            // scaling, so column norms expose the spectrum). Budget-aware:
            // dropped columns add their norms in quadrature to the residual,
            // so only trim while the combined error stays within tol.
            let mut keep = u.cols();
            let mut budget_sq = (tol * tol - err * err).max(0.0);
            while keep > 0 {
                let col_norm = crate::matrix::norm2_scaled(u.col(keep - 1));
                if col_norm * col_norm > budget_sq {
                    break;
                }
                budget_sq -= col_norm * col_norm;
                keep -= 1;
            }
            let rank = if err <= tol { keep } else { u.cols() };
            return (u.truncate_cols(rank), v.truncate_cols(rank), rank);
        }
        k = (k * 2).min(maxk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn low_rank_matrix(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
        rnd(m, k, seed).matmul_t(&rnd(n, k, seed + 7))
    }

    #[test]
    fn recovers_exact_low_rank() {
        let a = low_rank_matrix(40, 30, 5, 1);
        let (u, v) = rsvd_fixed_rank(&a, 5, 8, 2, 42);
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        assert!(err < 1e-9 * a.norm_fro(), "err {err}");
    }

    #[test]
    fn fixed_rank_matches_optimal_up_to_oversampling_slack() {
        // Compare against the truncated (optimal) SVD on a decaying matrix.
        let base = Matrix::from_fn(32, 32, |i, j| {
            0.5f64.powi((i as i32 - j as i32).abs()) // exponential decay
        });
        let k = 6;
        let (u, v) = rsvd_fixed_rank(&base, k, 8, 2, 3);
        let rand_err = base.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        let svd = jacobi_svd(&base);
        let opt_err: f64 = svd.s[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!(
            rand_err <= 3.0 * opt_err + 1e-12,
            "randomized {rand_err} vs optimal {opt_err}"
        );
    }

    #[test]
    fn adaptive_meets_tolerance() {
        let a = Matrix::from_fn(48, 48, |i, j| {
            1.0 / (1.0 + (i as f64 / 48.0 - 3.0 - j as f64 / 48.0).abs())
        });
        let tol = 1e-8 * a.norm_fro();
        let (u, v, rank) = rsvd_adaptive(&a, tol, 11);
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        assert!(err <= tol, "err {err} > tol {tol}");
        assert!(rank < 24, "rank {rank} did not compress");
        assert_eq!(u.cols(), rank);
        assert_eq!(v.cols(), rank);
    }

    #[test]
    fn adaptive_full_rank_fallback_on_random_matrix() {
        let a = rnd(16, 16, 9);
        let tol = 1e-12 * a.norm_fro();
        let (u, v, rank) = rsvd_adaptive(&a, tol, 13);
        assert_eq!(rank, 16);
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        assert!(err <= 1e-9 * a.norm_fro(), "err {err}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = low_rank_matrix(20, 20, 4, 5);
        let (u1, v1) = rsvd_fixed_rank(&a, 4, 4, 1, 99);
        let (u2, v2) = rsvd_fixed_rank(&a, 4, 4, 1, 99);
        assert_eq!(u1.as_slice(), u2.as_slice());
        assert_eq!(v1.as_slice(), v2.as_slice());
    }

    #[test]
    fn zero_rank_request() {
        let a = rnd(10, 8, 2);
        let (u, v) = rsvd_fixed_rank(&a, 0, 0, 0, 1);
        assert_eq!(u.cols(), 0);
        assert_eq!(v.cols(), 0);
    }
}

//! Reference dense Cholesky on [`Matrix`] — the FP64 oracle every tile
//! variant is validated against, and the exact solver used for moderate-size
//! synthetic data generation.

use crate::matrix::Matrix;
use xgs_kernels::{potrf, trsm_left_lower_notrans, trsm_left_lower_trans, PotrfError};

/// Error from the dense Cholesky path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CholeskyError(pub PotrfError);

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for CholeskyError {}

/// Factor a symmetric positive definite matrix in place (lower triangle);
/// the strict upper triangle is zeroed so the result is a clean `L`.
pub fn cholesky_in_place(a: &mut Matrix) -> Result<(), CholeskyError> {
    let (n, m) = a.shape();
    assert_eq!(n, m, "Cholesky needs a square matrix");
    potrf(n, a.as_mut_slice(), n).map_err(CholeskyError)?;
    for j in 0..n {
        for i in 0..j {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// `log det(A) = 2 * sum_i log L_ii` given the factor `L`.
pub fn cholesky_logdet(l: &Matrix) -> f64 {
    let n = l.rows();
    (0..n).map(|i| l[(i, i)].ln()).sum::<f64>() * 2.0
}

/// Solve `A x = b` given the factor `L` (two substitutions); `b` is
/// overwritten by `x`.
pub fn cholesky_solve(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(b.len() % n, 0, "b must hold whole RHS columns");
    let nrhs = b.len() / n;
    trsm_left_lower_notrans(n, nrhs, 1.0, l.as_slice(), n, b, n);
    trsm_left_lower_trans(n, nrhs, 1.0, l.as_slice(), n, b, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn spd(n: usize, seed: u64) -> Matrix {
        let b = rnd(n, n, seed);
        let mut a = b.matmul_t(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_and_reconstruct() {
        let a = spd(15, 1);
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let rec = l.matmul_t(&l);
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let n = 12;
        let a = spd(n, 2);
        let x = rnd(n, 1, 3);
        let mut b = a.matvec(x.as_slice());
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        cholesky_solve(&l, &mut b);
        for (bi, xi) in b.iter().zip(x.as_slice()) {
            assert!((bi - xi).abs() < 1e-9);
        }
    }

    #[test]
    fn logdet_matches_product_of_eigen_like_diagonal() {
        // For a diagonal matrix logdet is the sum of logs.
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        let mut expect = 0.0;
        for i in 0..n {
            let d = (i + 1) as f64 * 0.7;
            a[(i, i)] = d;
            expect += d.ln();
        }
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        assert!((cholesky_logdet(&l) - expect).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = Matrix::identity(4);
        a[(2, 2)] = -3.0;
        assert!(cholesky_in_place(&mut a).is_err());
    }

    #[test]
    fn multiple_rhs() {
        let n = 8;
        let a = spd(n, 4);
        let xs = rnd(n, 3, 5);
        let bm = a.matmul(&xs);
        let mut b = bm.as_slice().to_vec();
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        cholesky_solve(&l, &mut b);
        for (bi, xi) in b.iter().zip(xs.as_slice()) {
            assert!((bi - xi).abs() < 1e-9);
        }
    }
}

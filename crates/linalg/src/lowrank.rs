//! Low-rank factor algebra: the arithmetic of TLR tiles.
//!
//! A TLR tile stores `A ≈ U V^T` with `U (m x k)`, `V (n x k)`. The TLR
//! Cholesky needs products of low-rank and dense operands plus *rounded
//! addition*: sums of low-rank terms are recompressed back to the target
//! accuracy with the classical QR+SVD rounding, which is what keeps ranks —
//! and therefore the memory footprint the paper's Fig. 9 reports — bounded.

use crate::matrix::Matrix;
use crate::qr::householder_qr;
use crate::svd::{jacobi_svd, truncated_svd};
use xgs_kernels::trsm_left_lower_notrans;

/// A low-rank representation `U * V^T`.
#[derive(Clone, Debug)]
pub struct LowRank {
    /// `m x k` left factor (carries the singular-value scaling).
    pub u: Matrix,
    /// `n x k` right factor (orthonormal columns after recompression).
    pub v: Matrix,
}

impl LowRank {
    /// Compress a dense block to absolute Frobenius tolerance `tol` using
    /// the SVD oracle.
    pub fn compress_svd(a: &Matrix, tol: f64) -> LowRank {
        let (u, v, _k) = truncated_svd(a, tol);
        LowRank { u, v }
    }

    /// Compress with ACA followed by a rounding pass (the production path).
    pub fn compress_aca(a: &Matrix, tol: f64) -> LowRank {
        let (u, v) = crate::aca::aca(a, tol, a.rows().min(a.cols()));
        let lr = LowRank { u, v };
        // ACA overshoots rank slightly; round back to the target.
        lr.recompress(tol)
    }

    /// Exact zero block of the given shape (rank 0).
    pub fn zero(m: usize, n: usize) -> LowRank {
        LowRank {
            u: Matrix::zeros(m, 0),
            v: Matrix::zeros(n, 0),
        }
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.u.rows()
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.v.rows()
    }

    /// Dense reconstruction `U V^T`.
    pub fn reconstruct(&self) -> Matrix {
        if self.rank() == 0 {
            return Matrix::zeros(self.rows(), self.cols());
        }
        self.u.matmul_t(&self.v)
    }

    /// Frobenius norm of `U V^T` without reconstruction:
    /// `||U V^T||_F = ||Ru Rv^T||_F` via small QRs.
    pub fn norm_fro(&self) -> f64 {
        if self.rank() == 0 {
            return 0.0;
        }
        let qu = householder_qr(&self.u);
        let qv = householder_qr(&self.v);
        qu.r.matmul_t(&qv.r).norm_fro()
    }

    /// Storage in scalar elements (what the memory-footprint accounting
    /// sums): `k (m + n)`.
    pub fn storage_len(&self) -> usize {
        self.rank() * (self.rows() + self.cols())
    }

    /// Rounding / recompression: re-orthogonalize both factors and truncate
    /// the small core to tolerance `tol` (absolute Frobenius).
    pub fn recompress(&self, tol: f64) -> LowRank {
        let k = self.rank();
        if k == 0 {
            return self.clone();
        }
        let qu = householder_qr(&self.u);
        let qv = householder_qr(&self.v);
        let core = qu.r.matmul_t(&qv.r); // k x k
        let svd = jacobi_svd(&core);
        let r = svd.rank_for_tolerance(tol);
        let mut uc = svd.u.truncate_cols(r);
        for j in 0..r {
            let sj = svd.s[j];
            for x in uc.col_mut(j) {
                *x *= sj;
            }
        }
        let vc = svd.v.truncate_cols(r);
        LowRank {
            u: qu.q.matmul(&uc),
            v: qv.q.matmul(&vc),
        }
    }

    /// Rounded addition `self + alpha * other`, recompressed to `tol`.
    pub fn add_rounded(&self, alpha: f64, other: &LowRank, tol: f64) -> LowRank {
        assert_eq!(self.rows(), other.rows());
        assert_eq!(self.cols(), other.cols());
        if other.rank() == 0 {
            return self.clone();
        }
        if self.rank() == 0 {
            let mut u = other.u.clone();
            u.scale(alpha);
            return LowRank {
                u,
                v: other.v.clone(),
            }
            .recompress(tol);
        }
        let mut ou = other.u.clone();
        ou.scale(alpha);
        let stacked = LowRank {
            u: self.u.hcat(&ou),
            v: self.v.hcat(&other.v),
        };
        stacked.recompress(tol)
    }

    /// `(U V^T) * B` for dense `B` — stays low-rank with the same `U`.
    pub fn matmul_dense(&self, b: &Matrix) -> LowRank {
        assert_eq!(self.cols(), b.rows());
        // (U V^T) B = U (B^T V)^T.
        LowRank {
            u: self.u.clone(),
            v: b.t_matmul(&self.v),
        }
    }

    /// `A * (U V^T)` for dense `A` — stays low-rank with the same `V`.
    pub fn dense_matmul(a: &Matrix, lr: &LowRank) -> LowRank {
        assert_eq!(a.cols(), lr.rows());
        LowRank {
            u: a.matmul(&lr.u),
            v: lr.v.clone(),
        }
    }

    /// `(U1 V1^T) * (U2 V2^T)^T = U1 (V1^T V2) U2^T` — low-rank times
    /// transposed low-rank, the core product of the TLR GEMM in the Cholesky
    /// trailing update (`C -= A_ik * A_jk^T`).
    pub fn matmul_lr_transposed(&self, other: &LowRank) -> LowRank {
        assert_eq!(
            self.cols(),
            other.cols(),
            "inner dims (original columns) must match"
        );
        let k1 = self.rank();
        let k2 = other.rank();
        if k1 == 0 || k2 == 0 {
            return LowRank::zero(self.rows(), other.rows());
        }
        let core = self.v.t_matmul(&other.v); // k1 x k2
        if k1 <= k2 {
            // Fold the core into the right factor: U1 * (U2 core^T)^T.
            LowRank {
                u: self.u.clone(),
                v: other.u.matmul(&core.transpose()),
            }
        } else {
            LowRank {
                u: self.u.matmul(&core),
                v: other.u.clone(),
            }
        }
    }

    /// Apply `L^{-T}` on the right: `(U V^T) L^{-T} = U (L^{-1} V)^T`.
    ///
    /// This is the TLR `TRSM` — note it only touches the (small) `V` factor,
    /// which is why TLR TRSM costs `O(n k^2)` instead of `O(n^3)`.
    pub fn trsm_right_lower_trans(&mut self, l: &Matrix) {
        let n = self.cols();
        assert_eq!(l.shape(), (n, n));
        let k = self.rank();
        if k == 0 {
            return;
        }
        trsm_left_lower_notrans(n, k, 1.0, l.as_slice(), n, self.v.as_mut_slice(), n);
    }

    /// `A - U V^T` applied to a dense accumulator in place:
    /// `c -= alpha * U V^T` (used when a low-rank update hits a dense tile).
    pub fn subtract_from_dense(&self, alpha: f64, c: &mut Matrix) {
        assert_eq!(c.shape(), (self.rows(), self.cols()));
        let k = self.rank();
        if k == 0 {
            return;
        }
        xgs_kernels::gemm(
            xgs_kernels::Trans::No,
            xgs_kernels::Trans::Yes,
            self.rows(),
            self.cols(),
            k,
            -alpha,
            self.u.as_slice(),
            self.rows().max(1),
            self.v.as_slice(),
            self.cols().max(1),
            1.0,
            c.as_mut_slice(),
            self.rows().max(1),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn lowrank(m: usize, n: usize, k: usize, seed: u64) -> LowRank {
        LowRank {
            u: rnd(m, k, seed),
            v: rnd(n, k, seed + 100),
        }
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn norm_matches_dense() {
        let lr = lowrank(14, 9, 3, 1);
        let dense = lr.reconstruct();
        assert!((lr.norm_fro() - dense.norm_fro()).abs() < 1e-10);
    }

    #[test]
    fn recompress_preserves_value_and_reduces_rank() {
        // Rank-2 content stored with redundant rank 6.
        let base = lowrank(12, 10, 2, 2);
        let dense = base.reconstruct();
        let redundant = LowRank {
            u: base.u.hcat(&base.u.clone()).hcat(&base.u.clone()),
            v: base.v.hcat(&base.v.clone()).hcat(&base.v.clone()),
        };
        let r = redundant.recompress(1e-12);
        assert!(r.rank() <= 2, "rank {}", r.rank());
        // value: redundant = 3 * base
        let mut expect = dense.clone();
        expect.scale(3.0);
        assert_close(&r.reconstruct(), &expect, 1e-9);
    }

    #[test]
    fn add_rounded_matches_dense_addition() {
        let a = lowrank(10, 8, 2, 3);
        let b = lowrank(10, 8, 3, 4);
        let sum = a.add_rounded(-0.5, &b, 1e-12);
        let expect = a.reconstruct().add_scaled(-0.5, &b.reconstruct());
        assert_close(&sum.reconstruct(), &expect, 1e-9);
        assert!(sum.rank() <= 5);
    }

    #[test]
    fn add_rounded_handles_zero_ranks() {
        let z = LowRank::zero(6, 5);
        let a = lowrank(6, 5, 2, 5);
        assert_close(
            &z.add_rounded(1.0, &a, 1e-12).reconstruct(),
            &a.reconstruct(),
            1e-10,
        );
        assert_close(
            &a.add_rounded(1.0, &z, 1e-12).reconstruct(),
            &a.reconstruct(),
            1e-10,
        );
    }

    #[test]
    fn products_match_dense_oracle() {
        let a = lowrank(9, 7, 2, 6);
        let b = rnd(7, 5, 7);
        assert_close(
            &a.matmul_dense(&b).reconstruct(),
            &a.reconstruct().matmul(&b),
            1e-10,
        );

        let c = rnd(4, 9, 8);
        assert_close(
            &LowRank::dense_matmul(&c, &a).reconstruct(),
            &c.matmul(&a.reconstruct()),
            1e-10,
        );

        let d = lowrank(6, 7, 3, 9);
        assert_close(
            &a.matmul_lr_transposed(&d).reconstruct(),
            &a.reconstruct().matmul_t(&d.reconstruct()),
            1e-10,
        );
    }

    #[test]
    fn lr_product_rank_is_min_of_operands() {
        let a = lowrank(20, 15, 2, 10);
        let b = lowrank(18, 15, 5, 11);
        assert_eq!(a.matmul_lr_transposed(&b).rank(), 2);
        assert_eq!(b.matmul_lr_transposed(&a).rank(), 2);
    }

    #[test]
    fn trsm_matches_dense_oracle() {
        let n = 8;
        let mut lmat = rnd(n, n, 12);
        for j in 0..n {
            for i in 0..j {
                lmat[(i, j)] = 0.0;
            }
            lmat[(j, j)] = 2.0 + lmat[(j, j)].abs();
        }
        let mut lr = lowrank(10, n, 3, 13);
        let dense = lr.reconstruct();
        lr.trsm_right_lower_trans(&lmat);
        // Oracle: dense * L^{-T} via kernel trsm.
        let mut oracle = dense.clone();
        xgs_kernels::trsm_right_lower_trans(
            10,
            n,
            1.0,
            lmat.as_slice(),
            n,
            oracle.as_mut_slice(),
            10,
        );
        assert_close(&lr.reconstruct(), &oracle, 1e-9);
    }

    #[test]
    fn subtract_from_dense_matches() {
        let lr = lowrank(7, 6, 2, 14);
        let mut c = rnd(7, 6, 15);
        let expect = c.add_scaled(-1.5, &lr.reconstruct());
        lr.subtract_from_dense(1.5, &mut c);
        assert_close(&c, &expect, 1e-10);
    }

    #[test]
    fn compressors_agree_on_smooth_kernel() {
        let a = Matrix::from_fn(32, 32, |i, j| {
            1.0 / (1.0 + (i as f64 / 32.0 - 3.0 - j as f64 / 32.0).abs())
        });
        let tol = 1e-8 * a.norm_fro();
        let svd_lr = LowRank::compress_svd(&a, tol);
        let aca_lr = LowRank::compress_aca(&a, tol);
        let esvd = a.add_scaled(-1.0, &svd_lr.reconstruct()).norm_fro();
        let eaca = a.add_scaled(-1.0, &aca_lr.reconstruct()).norm_fro();
        assert!(esvd <= tol * 1.01);
        assert!(eaca <= tol * 20.0, "ACA err {eaca} vs tol {tol}");
        // Ranks in the same ballpark.
        assert!(aca_lr.rank() <= svd_lr.rank() + 4);
    }
}

//! Singular value decomposition via one-sided Jacobi.
//!
//! One-sided Jacobi is simple, numerically robust, and plenty fast for the
//! tile sizes TLR compression works on (tens to a few hundred); it is the
//! oracle against which the faster ACA compressor is validated, and the
//! engine of the low-rank recompression ("rounding") step.

use crate::matrix::{dot, norm2_scaled, Matrix};
use crate::qr::householder_qr;

/// Thin SVD: `A (m x n) = U (m x k) * diag(s) * V^T (k x n)`, `k = min(m,n)`,
/// singular values sorted descending.
pub struct Svd {
    pub u: Matrix,
    pub s: Vec<f64>,
    pub v: Matrix,
}

impl Svd {
    /// Reassemble `U * diag(s) * V^T`.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.s.len();
        let mut us = self.u.clone();
        for j in 0..k {
            let sj = self.s[j];
            for x in us.col_mut(j) {
                *x *= sj;
            }
        }
        us.matmul_t(&self.v)
    }

    /// Smallest rank whose tail of singular values satisfies
    /// `sqrt(sum_{i>=r} s_i^2) <= tol` (absolute Frobenius tolerance).
    pub fn rank_for_tolerance(&self, tol: f64) -> usize {
        let mut tail = 0.0f64;
        // Walk from the smallest singular value backwards.
        let mut r = self.s.len();
        while r > 0 {
            let cand = tail + self.s[r - 1] * self.s[r - 1];
            if cand.sqrt() > tol {
                break;
            }
            tail = cand;
            r -= 1;
        }
        r
    }
}

/// One-sided Jacobi SVD.
///
/// For tall matrices a QR preconditioning step reduces the work to an
/// `n x n` problem. Sweeps rotate column pairs until all off-diagonal
/// Gram entries are negligible.
pub fn jacobi_svd(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    if m < n {
        // Work on the transpose and swap U/V.
        let svd = jacobi_svd(&a.transpose());
        return Svd {
            u: svd.v,
            s: svd.s,
            v: svd.u,
        };
    }
    if n == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(0, 0),
        };
    }

    // QR preconditioning: A = Q R, SVD of R (n x n), U = Q * U_r.
    let qr = householder_qr(a);
    let mut w = qr.r.clone(); // n x n working copy, columns become U*S
    let mut v = Matrix::identity(n);

    let eps = f64::EPSILON;
    let max_sweeps = 60;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries of columns p, q.
                let (app, aqq, apq) = {
                    let cp = w.col(p);
                    let cq = w.col(q);
                    (dot(cp, cp), dot(cq, cq), dot(cp, cq))
                };
                let denom = (app * aqq).sqrt();
                if denom > 0.0 {
                    off = off.max(apq.abs() / denom);
                }
                if apq.abs() <= eps * denom || denom == 0.0 {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_cols(&mut w, p, q, c, s);
                rotate_cols(&mut v, p, q, c, s);
            }
        }
        if off <= eps * 8.0 {
            break;
        }
    }

    // Column norms are the singular values; normalize to get U_r.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n).map(|j| norm2_scaled(w.col(j))).collect();
    order.sort_by(|&i, &j| norms[j].total_cmp(&norms[i]));

    let mut s = Vec::with_capacity(n);
    let mut ur = Matrix::zeros(n, n);
    let mut vs = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let sj = norms[old_j];
        s.push(sj);
        if sj > 0.0 {
            let inv = 1.0 / sj;
            for (dst, src) in ur.col_mut(new_j).iter_mut().zip(w.col(old_j)) {
                *dst = src * inv;
            }
        }
        vs.col_mut(new_j).copy_from_slice(v.col(old_j));
    }

    Svd {
        u: qr.q.matmul(&ur),
        s,
        v: vs,
    }
}

fn rotate_cols(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let rows = m.rows();
    let (pc, qc) = {
        let data = m.as_mut_slice();
        let (lo, hi) = if p < q {
            let (a, b) = data.split_at_mut(q * rows);
            (&mut a[p * rows..p * rows + rows], &mut b[..rows])
        } else {
            let (a, b) = data.split_at_mut(p * rows);
            (&mut b[..rows], &mut a[q * rows..q * rows + rows])
        };
        (lo, hi)
    };
    for (x, y) in pc.iter_mut().zip(qc.iter_mut()) {
        let xp = c * *x - s * *y;
        let yq = s * *x + c * *y;
        *x = xp;
        *y = yq;
    }
}

/// Rank-truncated SVD approximation to absolute Frobenius tolerance `tol`:
/// returns `(U*sqrt(S), V*sqrt(S))`-style factors — concretely `(U_k scaled
/// by s_k, V_k)` such that `A ≈ U V^T` — along with the chosen rank.
///
/// This is the compression oracle: `||A - U V^T||_F <= tol` by the
/// Eckart–Young theorem.
pub fn truncated_svd(a: &Matrix, tol: f64) -> (Matrix, Matrix, usize) {
    let svd = jacobi_svd(a);
    let k = svd.rank_for_tolerance(tol);
    let mut u = svd.u.truncate_cols(k);
    let v = svd.v.truncate_cols(k);
    for j in 0..k {
        let sj = svd.s[j];
        for x in u.col_mut(j) {
            *x *= sj;
        }
    }
    (u, v, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn reconstructs_random_square() {
        let a = rnd(9, 9, 1);
        let svd = jacobi_svd(&a);
        let r = svd.reconstruct();
        for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-11);
        }
    }

    #[test]
    fn reconstructs_tall_and_wide() {
        for (m, n, seed) in [(12, 5, 2), (5, 12, 3)] {
            let a = rnd(m, n, seed);
            let svd = jacobi_svd(&a);
            assert_eq!(svd.u.shape(), (m, m.min(n)));
            assert_eq!(svd.v.shape(), (n, m.min(n)));
            let r = svd.reconstruct();
            for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
                assert!((x - y).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = rnd(10, 7, 4);
        let svd = jacobi_svd(&a);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn orthonormal_factors() {
        let a = rnd(8, 6, 5);
        let svd = jacobi_svd(&a);
        let utu = svd.u.t_matmul(&svd.u);
        let vtv = svd.v.t_matmul(&svd.v);
        let i = Matrix::identity(6);
        for (x, y) in utu.as_slice().iter().zip(i.as_slice()) {
            assert!((x - y).abs() < 1e-11);
        }
        for (x, y) in vtv.as_slice().iter().zip(i.as_slice()) {
            assert!((x - y).abs() < 1e-11);
        }
    }

    #[test]
    fn recovers_known_singular_values() {
        // Diagonal matrix: singular values are |diag| sorted.
        let mut a = Matrix::zeros(5, 5);
        let d = [3.0, -7.0, 0.5, 2.0, 0.0];
        for (i, &v) in d.iter().enumerate() {
            a[(i, i)] = v;
        }
        let svd = jacobi_svd(&a);
        let expect = [7.0, 3.0, 2.0, 0.5, 0.0];
        for (got, want) in svd.s.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn exact_low_rank_is_detected() {
        // Rank-3 matrix built from outer products.
        let u = rnd(20, 3, 6);
        let v = rnd(15, 3, 7);
        let a = u.matmul_t(&v);
        let svd = jacobi_svd(&a);
        assert!(svd.s[2] > 1e-8);
        assert!(svd.s[3] < 1e-10 * svd.s[0]);
        let r = svd.rank_for_tolerance(1e-8 * svd.s[0]);
        assert_eq!(r, 3);
    }

    #[test]
    fn truncated_svd_meets_tolerance() {
        let a = rnd(16, 16, 8);
        let tol = 0.3 * a.norm_fro();
        let (u, v, k) = truncated_svd(&a, tol);
        assert!(k < 16);
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        assert!(err <= tol * (1.0 + 1e-10), "err {err} > tol {tol}");
    }

    #[test]
    fn truncated_svd_zero_tolerance_keeps_full_rank() {
        let a = rnd(6, 6, 9);
        let (u, v, k) = truncated_svd(&a, 0.0);
        assert_eq!(k, 6);
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        assert!(err < 1e-11);
    }

    #[test]
    fn rank_for_tolerance_edges() {
        let svd = Svd {
            u: Matrix::identity(3),
            s: vec![4.0, 2.0, 1.0],
            v: Matrix::identity(3),
        };
        assert_eq!(svd.rank_for_tolerance(0.5), 3);
        assert_eq!(svd.rank_for_tolerance(1.0), 2);
        // sqrt(1+4) ~ 2.236
        assert_eq!(svd.rank_for_tolerance(2.3), 1);
        assert_eq!(svd.rank_for_tolerance(100.0), 0);
    }
}

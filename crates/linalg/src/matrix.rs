//! Owned column-major FP64 matrix.

use xgs_kernels::{gemm, Trans};

/// A dense column-major matrix of `f64`, stored contiguously
/// (`data[i + j * rows]`).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from an existing column-major buffer.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw column-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Transposed copy.
    #[allow(clippy::needless_range_loop)]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Frobenius norm, accumulated with scaling to avoid overflow.
    pub fn norm_fro(&self) -> f64 {
        norm2_scaled(&self.data)
    }

    /// Max-absolute-entry norm.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut c = Matrix::zeros(self.rows, other.cols);
        gemm(
            Trans::No,
            Trans::No,
            self.rows,
            other.cols,
            self.cols,
            1.0,
            &self.data,
            self.rows.max(1),
            &other.data,
            other.rows.max(1),
            0.0,
            &mut c.data,
            self.rows.max(1),
        );
        c
    }

    /// `self^T * other`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "inner dimension mismatch");
        let mut c = Matrix::zeros(self.cols, other.cols);
        gemm(
            Trans::Yes,
            Trans::No,
            self.cols,
            other.cols,
            self.rows,
            1.0,
            &self.data,
            self.rows.max(1),
            &other.data,
            other.rows.max(1),
            0.0,
            &mut c.data,
            self.cols.max(1),
        );
        c
    }

    /// `self * other^T`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimension mismatch");
        let mut c = Matrix::zeros(self.rows, other.rows);
        gemm(
            Trans::No,
            Trans::Yes,
            self.rows,
            other.rows,
            self.cols,
            1.0,
            &self.data,
            self.rows.max(1),
            &other.data,
            other.rows.max(1),
            0.0,
            &mut c.data,
            self.rows.max(1),
        );
        c
    }

    /// Matrix–vector product `self * x`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for (yi, aij) in y.iter_mut().zip(self.col(j)) {
                *yi += aij * xj;
            }
        }
        y
    }

    /// `self + alpha * other` (same shape).
    pub fn add_scaled(&self, alpha: f64, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + alpha * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Copy of the sub-block of size `nrows x ncols` starting at `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> Matrix {
        assert!(r0 + nrows <= self.rows && c0 + ncols <= self.cols);
        Matrix::from_fn(nrows, ncols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Keep only the first `k` columns.
    #[must_use]
    pub fn truncate_cols(mut self, k: usize) -> Matrix {
        assert!(k <= self.cols);
        self.data.truncate(self.rows * k);
        self.cols = k;
        self
    }

    /// Horizontal concatenation `[self  other]`.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows);
        let mut data = Vec::with_capacity(self.rows * (self.cols + other.cols));
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows,
            cols: self.cols + other.cols,
            data,
        }
    }

    /// Mirror the lower triangle onto the upper (for symmetric matrices kept
    /// lower-only).
    pub fn symmetrize_from_lower(&mut self) {
        assert_eq!(self.rows, self.cols);
        for j in 0..self.cols {
            for i in j + 1..self.rows {
                let v = self[(i, j)];
                self[(j, i)] = v;
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_r = self.rows.min(8);
        let show_c = self.cols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if show_c < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_r < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Two-norm of a slice with overflow-safe scaling (LAPACK `dnrm2` style).
pub fn norm2_scaled(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                let r = scale / a;
                ssq = 1.0 + ssq * r * r;
                scale = a;
            } else {
                let r = a / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// Dot product of two slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(4, 7, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(3, 2)], m[(2, 3)]);
    }

    #[test]
    fn matmul_against_identity() {
        let m = Matrix::from_fn(5, 5, |i, j| (i + 2 * j) as f64);
        let i5 = Matrix::identity(5);
        assert_eq!(m.matmul(&i5), m);
        assert_eq!(i5.matmul(&m), m);
    }

    #[test]
    fn t_matmul_and_matmul_t_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i as f64 - j as f64) * 0.5);
        let b = Matrix::from_fn(4, 2, |i, j| (i * j) as f64 + 1.0);
        let c1 = a.t_matmul(&b);
        let c2 = a.transpose().matmul(&b);
        for j in 0..2 {
            for i in 0..3 {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-14);
            }
        }
        let d = Matrix::from_fn(5, 3, |i, j| (i + j) as f64);
        let e1 = a.matmul_t(&d);
        let e2 = a.matmul(&d.transpose());
        for j in 0..5 {
            for i in 0..4 {
                assert!((e1[(i, j)] - e2[(i, j)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn frobenius_norm_overflow_safe() {
        let m = Matrix::from_vec(1, 2, vec![1e200, 1e200]);
        let n = m.norm_fro();
        assert!((n - 2.0f64.sqrt() * 1e200).abs() / n < 1e-14);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        let y = a.matvec(&x);
        let xm = Matrix::from_vec(4, 1, x);
        let ym = a.matmul(&xm);
        for i in 0..3 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-14);
        }
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(6, 6, |i, j| (10 * i + j) as f64);
        let s = m.submatrix(2, 3, 2, 2);
        assert_eq!(s[(0, 0)], 23.0);
        assert_eq!(s[(1, 1)], 34.0);
    }

    #[test]
    fn hcat_and_truncate() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(3, 1, |i, _| i as f64 * 7.0);
        let c = a.hcat(&b);
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c[(2, 2)], 14.0);
        let t = c.truncate_cols(2);
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(1, 1)], 2.0);
    }

    #[test]
    fn symmetrize_mirrors_lower() {
        let mut m = Matrix::from_fn(3, 3, |i, j| {
            if i >= j {
                (i + 1) as f64 * (j + 1) as f64
            } else {
                0.0
            }
        });
        m.symmetrize_from_lower();
        assert_eq!(m[(0, 2)], m[(2, 0)]);
        assert_eq!(m[(1, 2)], m[(2, 1)]);
    }
}

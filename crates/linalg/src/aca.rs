//! Adaptive Cross Approximation (ACA).
//!
//! The production compressor of TLR solvers (HiCMA uses the same family):
//! builds a low-rank approximation `A ≈ U V^T` one cross (rank-1 update) at
//! a time. Because the tile generation path materializes each tile densely
//! anyway, we use *full pivoting* on an explicit residual: pick the largest
//! remaining entry, subtract its cross, and stop when the residual's
//! Frobenius norm is at or below the tolerance. This costs `O(m n k)` — the
//! same order as generating the tile — and, unlike partially pivoted ACA,
//! gives a *guaranteed* `||A - U V^T||_F <= tol` (partial pivoting's
//! heuristic stopping rule can terminate early on covariance tiles whose
//! leading rows are nearly zero). The SVD compressor
//! ([`crate::svd::truncated_svd`]) remains the minimal-rank oracle in
//! tests.

use crate::matrix::Matrix;

/// Full-pivot ACA to absolute Frobenius tolerance `tol`.
///
/// Returns `(U, V)` with `||A - U V^T||_F <= tol`, rank at most `max_rank`
/// (at `max_rank` the guarantee is only best-effort; callers cap with
/// `min(m, n)` for an exact fallback).
#[allow(clippy::needless_range_loop)]
pub fn aca(a: &Matrix, tol: f64, max_rank: usize) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    let kmax = max_rank.min(m.min(n));
    let mut residual = a.clone();
    let mut us: Vec<Vec<f64>> = Vec::new();
    let mut vs: Vec<Vec<f64>> = Vec::new();

    // Residual norm^2, updated incrementally after each cross subtraction.
    let mut res_sq: f64 = residual.as_slice().iter().map(|x| x * x).sum();

    for _k in 0..kmax {
        if res_sq.max(0.0).sqrt() <= tol {
            break;
        }
        // Full pivot: largest |entry| of the residual.
        let (mut pi, mut pj, mut pval) = (0usize, 0usize, 0.0f64);
        for j in 0..n {
            let col = residual.col(j);
            for (i, &x) in col.iter().enumerate() {
                if x.abs() > pval.abs() || (pval == 0.0 && x != 0.0) {
                    pi = i;
                    pj = j;
                    pval = x;
                }
            }
        }
        if pval == 0.0 {
            break; // residual exactly zero
        }
        // Cross: u = R[:, pj] / pivot, v = R[pi, :].
        let inv = 1.0 / pval;
        let u: Vec<f64> = residual.col(pj).iter().map(|&x| x * inv).collect();
        let v: Vec<f64> = (0..n).map(|j| residual[(pi, j)]).collect();
        // R -= u v^T, recomputing the norm on the fly.
        res_sq = 0.0;
        for j in 0..n {
            let vj = v[j];
            let col = residual.col_mut(j);
            for (i, x) in col.iter_mut().enumerate() {
                *x -= u[i] * vj;
                res_sq += *x * *x;
            }
        }
        us.push(u);
        vs.push(v);
    }

    let k = us.len();
    let mut u = Matrix::zeros(m, k);
    let mut v = Matrix::zeros(n, k);
    for (j, (ucol, vcol)) in us.iter().zip(&vs).enumerate() {
        u.col_mut(j).copy_from_slice(ucol);
        v.col_mut(j).copy_from_slice(vcol);
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    /// A smooth kernel matrix (what covariance tiles look like off-diagonal):
    /// K[i,j] = 1 / (1 + |x_i - y_j|), x in [0,1], y in [3,4] — well separated
    /// clusters give rapidly decaying singular values.
    fn smooth_kernel(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| {
            let x = i as f64 / m as f64;
            let y = 3.0 + j as f64 / n as f64;
            1.0 / (1.0 + (x - y).abs())
        })
    }

    #[test]
    fn exact_recovery_of_low_rank() {
        let u = rnd(30, 4, 1);
        let v = rnd(25, 4, 2);
        let a = u.matmul_t(&v);
        let (au, av) = aca(&a, 1e-12 * a.norm_fro(), 30);
        assert!(au.cols() <= 6, "rank blew up: {}", au.cols());
        let err = a.add_scaled(-1.0, &au.matmul_t(&av)).norm_fro();
        assert!(err < 1e-10 * a.norm_fro(), "err {err}");
    }

    #[test]
    fn error_bound_is_guaranteed() {
        // Full pivoting with explicit residual: the tolerance is a hard
        // bound, not a heuristic.
        for seed in 0..10u64 {
            let a = rnd(24, 18, seed);
            let tol = 0.05 * a.norm_fro();
            let (u, v) = aca(&a, tol, 24);
            let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
            assert!(err <= tol * (1.0 + 1e-12), "seed {seed}: {err} > {tol}");
        }
    }

    #[test]
    fn smooth_kernel_compresses_hard() {
        let a = smooth_kernel(64, 64);
        let tol = 1e-8 * a.norm_fro();
        let (u, v) = aca(&a, tol, 64);
        assert!(u.cols() < 20, "rank {}", u.cols());
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        assert!(err <= tol, "err {err} vs tol {tol}");
    }

    #[test]
    fn handles_zero_leading_rows() {
        // Partial pivoting's classic failure: leading rows ~ zero while the
        // mass sits elsewhere.
        let mut a = Matrix::zeros(16, 16);
        for j in 0..16 {
            for i in 8..16 {
                a[(i, j)] = 1.0 / (1.0 + (i + j) as f64);
            }
        }
        let tol = 1e-10 * a.norm_fro();
        let (u, v) = aca(&a, tol, 16);
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        assert!(err <= tol, "err {err}");
    }

    #[test]
    fn full_rank_fallback_is_exact() {
        let a = rnd(12, 12, 3);
        let (u, v) = aca(&a, 0.0, 12);
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        assert!(err < 1e-9 * a.norm_fro(), "err {err}");
    }

    #[test]
    fn zero_matrix_gives_zero_rank_quickly() {
        let a = Matrix::zeros(10, 8);
        let (u, _v) = aca(&a, 1e-8, 10);
        assert_eq!(u.cols(), 0);
    }

    #[test]
    fn respects_max_rank() {
        let a = rnd(20, 20, 4);
        let (u, _v) = aca(&a, 0.0, 5);
        assert_eq!(u.cols(), 5);
    }

    #[test]
    fn rectangular_shapes() {
        for (m, n) in [(40, 10), (10, 40)] {
            let a = smooth_kernel(m, n);
            let tol = 1e-6 * a.norm_fro();
            let (u, v) = aca(&a, tol, m.min(n));
            let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
            assert!(err <= tol, "({m},{n}) err {err}");
        }
    }
}

//! LAPACK-like dense layer on top of the raw kernels.
//!
//! Provides the owned column-major [`Matrix`] type plus the numerical tools
//! the tile-low-rank (TLR) machinery needs: Householder QR, one-sided Jacobi
//! SVD, adaptive cross approximation (ACA), low-rank factor algebra with
//! QR-based recompression ("rounding"), and a reference dense Cholesky.
//!
//! Everything here is FP64: precision emulation happens one level up, in the
//! tile storage (`xgs-tile`), by rounding buffers *through* FP32/FP16 — the
//! same place the paper's runtime takes its precision decisions.

pub mod aca;
pub mod cholesky;
pub mod lowrank;
pub mod matrix;
pub mod qr;
pub mod rsvd;
pub mod svd;

pub use aca::aca;
pub use cholesky::{cholesky_in_place, cholesky_logdet, cholesky_solve, CholeskyError};
pub use lowrank::LowRank;
pub use matrix::Matrix;
pub use qr::{householder_qr, QrFactors};
pub use rsvd::{rsvd_adaptive, rsvd_fixed_rank};
pub use svd::{jacobi_svd, truncated_svd, Svd};

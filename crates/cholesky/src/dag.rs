//! Structural DAG export of the tile Cholesky for distributed simulation.
//!
//! Builds the exact task graph the factorization executes — POTRF, TRSM,
//! SYRK, GEMM over `NT` tiles — as cost/communication skeletons, without
//! touching numerical data. `xgs-perfmodel` replays these against the
//! A64FX machine model to regenerate the paper's Fugaku-scale figures
//! (7, 10, 11): tiles are mapped 2D-block-cyclically, each task runs on the
//! owner of its written tile, and remote reads ship the stored tile payload
//! (at its stored precision — the conversion happens at the receiver).

use std::collections::HashMap;
use xgs_kernels::Precision;
use xgs_runtime::{block_cyclic_owner, SimTask};
use xgs_tile::KernelTimeModel;

/// Per-tile format metadata the DAG builder consumes. Implemented by real
/// generated matrices (small scale) and by synthetic profiles
/// (paper-scale).
pub trait TileMetaSource {
    /// Dense or low-rank?
    fn is_dense(&self, i: usize, j: usize) -> bool;
    /// Rank of a low-rank tile (unused when dense).
    fn rank(&self, i: usize, j: usize) -> usize;
    /// Stored precision.
    fn precision(&self, i: usize, j: usize) -> Precision;
}

/// Options for DAG construction.
pub struct DagOptions<'a> {
    pub nt: usize,
    pub nb: usize,
    /// Process grid (p * q = nodes).
    pub grid_p: usize,
    pub grid_q: usize,
    pub model: &'a dyn KernelTimeModel,
}

/// Aggregate statistics of a built DAG.
#[derive(Clone, Copy, Debug, Default)]
pub struct DagStats {
    pub tasks: usize,
    /// Sum of modeled task times, seconds (single-core work).
    pub total_cost: f64,
    /// Modeled FP64-equivalent flops of the dense-FP64 factorization of the
    /// same size (`n^3/3`), for Tflop/s reporting.
    pub nominal_flops: f64,
}

/// Bytes one remote read of tile `(i, j)` moves, in wire-frame units
/// ([`crate::shard::tile_wire_frame_bytes`]): header, coordinates, and
/// the per-precision `xgs_tile::wire` payload. Using the real frame size
/// keeps the simulator's `comm_bytes` directly comparable to a sharded
/// run's measured TILE census.
fn tile_bytes(meta: &dyn TileMetaSource, nb: usize, i: usize, j: usize) -> f64 {
    crate::shard::tile_wire_frame_bytes(meta, nb, nb, i, j) as f64
}

/// Effective TLR compute precision (no FP16 low-rank path).
pub(crate) fn lr_precision(p: Precision) -> Precision {
    if p == Precision::F16 {
        Precision::F32
    } else {
        p
    }
}

/// Build the simulation DAG. Returns tasks in topological order plus
/// stats.
pub fn cholesky_dag(meta: &dyn TileMetaSource, opts: &DagOptions) -> (Vec<SimTask>, DagStats) {
    let nt = opts.nt;
    let nb = opts.nb;
    let model = opts.model;
    let owner = |i: usize, j: usize| block_cyclic_owner(i, j, opts.grid_p, opts.grid_q);

    let mut tasks: Vec<SimTask> = Vec::with_capacity(nt * (nt + 1) * (nt + 2) / 6);
    let mut last_writer: HashMap<(usize, usize), usize> = HashMap::new();
    let mut total_cost = 0.0f64;

    let push = |tasks: &mut Vec<SimTask>,
                last_writer: &mut HashMap<(usize, usize), usize>,
                kind: &'static str,
                cost: f64,
                write: (usize, usize),
                reads: &[(usize, usize)],
                total_cost: &mut f64| {
        let own = owner(write.0, write.1);
        let mut preds: Vec<(usize, f64)> = Vec::with_capacity(reads.len() + 1);
        if let Some(&w) = last_writer.get(&write) {
            preds.push((w, 0.0)); // same owner by construction
        }
        for &(ri, rj) in reads {
            if let Some(&w) = last_writer.get(&(ri, rj)) {
                let bytes = if owner(ri, rj) == own {
                    0.0
                } else {
                    tile_bytes(meta, nb, ri, rj)
                };
                preds.push((w, bytes));
            } else if owner(ri, rj) != own {
                // Unwritten (original) tile still needs shipping; model as a
                // zero-cost virtual producer at time 0 — i.e. just latency +
                // bytes handled by attaching to task 0 is wrong, so instead
                // fold it into nothing: generation is not on the critical
                // path in the paper's single-iteration timing.
            }
        }
        let id = tasks.len();
        tasks.push(SimTask {
            kind,
            cost,
            owner: own,
            preds,
        });
        last_writer.insert(write, id);
        *total_cost += cost;
        id
    };

    for k in 0..nt {
        // POTRF on the FP64 diagonal: nb^3/3 flops = 1/6 of a dense GEMM.
        let c_potrf = model.dense_gemm_time(nb, Precision::F64) / 6.0;
        push(
            &mut tasks,
            &mut last_writer,
            "potrf",
            c_potrf,
            (k, k),
            &[],
            &mut total_cost,
        );

        for i in k + 1..nt {
            let c = if meta.is_dense(i, k) {
                model.dense_trsm_time(nb, meta.precision(i, k))
            } else {
                model.tlr_trsm_time(nb, meta.rank(i, k), lr_precision(meta.precision(i, k)))
            };
            push(
                &mut tasks,
                &mut last_writer,
                "trsm",
                c,
                (i, k),
                &[(k, k)],
                &mut total_cost,
            );
        }

        for i in k + 1..nt {
            for j in k + 1..=i {
                if i == j {
                    // SYRK into the FP64 diagonal.
                    let c = if meta.is_dense(i, k) {
                        0.5 * model.dense_gemm_time(nb, Precision::F64)
                    } else {
                        0.5 * model.tlr_gemm_time(nb, meta.rank(i, k), Precision::F64)
                    };
                    push(
                        &mut tasks,
                        &mut last_writer,
                        "syrk",
                        c,
                        (i, i),
                        &[(i, k)],
                        &mut total_cost,
                    );
                } else {
                    // GEMM led by C_ij's format.
                    let c = if meta.is_dense(i, j) {
                        model.dense_gemm_time(nb, meta.precision(i, j))
                    } else {
                        // Product rank is bounded by the smaller LR operand
                        // (dense x LR stays at the LR operand's rank); the
                        // rounded addition works at max(product, C) rank.
                        let ra = if meta.is_dense(i, k) {
                            nb
                        } else {
                            meta.rank(i, k)
                        };
                        let rb = if meta.is_dense(j, k) {
                            nb
                        } else {
                            meta.rank(j, k)
                        };
                        let r_prod = ra.min(rb);
                        if r_prod >= nb {
                            // Dense x dense into a low-rank tile: full GEMM
                            // plus a compression of comparable cost.
                            2.0 * model.dense_gemm_time(nb, Precision::F64)
                        } else {
                            let r = r_prod.max(meta.rank(i, j)).min(nb);
                            model.tlr_gemm_time(nb, r, lr_precision(meta.precision(i, j)))
                        }
                    };
                    push(
                        &mut tasks,
                        &mut last_writer,
                        "gemm",
                        c,
                        (i, j),
                        &[(i, k), (j, k)],
                        &mut total_cost,
                    );
                }
            }
        }
    }

    let n = (nt * nb) as f64;
    let stats = DagStats {
        tasks: tasks.len(),
        total_cost,
        nominal_flops: n * n * n / 3.0,
    };
    (tasks, stats)
}

/// Uniform metadata: everything dense at one precision (the dense-FP64 and
/// band-structured MP baselines).
pub struct UniformMeta {
    pub precision_of: fn(i: usize, j: usize) -> Precision,
}

impl TileMetaSource for UniformMeta {
    fn is_dense(&self, _i: usize, _j: usize) -> bool {
        true
    }
    fn rank(&self, _i: usize, _j: usize) -> usize {
        0
    }
    fn precision(&self, i: usize, j: usize) -> Precision {
        (self.precision_of)(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgs_runtime::{simulate, MachineSpec};
    use xgs_tile::FlopKernelModel;

    fn machine(nodes: usize) -> MachineSpec {
        MachineSpec {
            nodes,
            cores_per_node: 4,
            net_bandwidth: 6.8e9,
            net_latency: 1e-6,
        }
    }

    struct BandMeta {
        band: usize,
        rank: usize,
    }

    impl TileMetaSource for BandMeta {
        fn is_dense(&self, i: usize, j: usize) -> bool {
            i.abs_diff(j) < self.band
        }
        fn rank(&self, _i: usize, _j: usize) -> usize {
            self.rank
        }
        fn precision(&self, i: usize, j: usize) -> Precision {
            if i.abs_diff(j) < self.band {
                Precision::F64
            } else {
                Precision::F32
            }
        }
    }

    #[test]
    fn task_count_matches_closed_form() {
        let meta = UniformMeta {
            precision_of: |_, _| Precision::F64,
        };
        let model = FlopKernelModel::default();
        let nt = 12;
        let (tasks, stats) = cholesky_dag(
            &meta,
            &DagOptions {
                nt,
                nb: 256,
                grid_p: 2,
                grid_q: 2,
                model: &model,
            },
        );
        let expect = nt + nt * (nt - 1) / 2 + (nt * nt * nt - nt) / 6;
        assert_eq!(tasks.len(), expect);
        assert_eq!(stats.tasks, expect);
        assert!(stats.total_cost > 0.0);
    }

    #[test]
    fn tasks_are_topologically_ordered() {
        let meta = UniformMeta {
            precision_of: |_, _| Precision::F64,
        };
        let model = FlopKernelModel::default();
        let (tasks, _) = cholesky_dag(
            &meta,
            &DagOptions {
                nt: 10,
                nb: 128,
                grid_p: 2,
                grid_q: 1,
                model: &model,
            },
        );
        for (idx, t) in tasks.iter().enumerate() {
            for &(p, _) in &t.preds {
                assert!(p < idx);
            }
        }
    }

    #[test]
    fn tlr_dag_costs_less_than_dense() {
        let model = FlopKernelModel::default();
        let dense = UniformMeta {
            precision_of: |_, _| Precision::F64,
        };
        let tlr = BandMeta { band: 2, rank: 20 };
        let opts = DagOptions {
            nt: 16,
            nb: 1024,
            grid_p: 2,
            grid_q: 2,
            model: &model,
        };
        let (_, sd) = cholesky_dag(&dense, &opts);
        let (_, st) = cholesky_dag(&tlr, &opts);
        assert!(
            st.total_cost < 0.5 * sd.total_cost,
            "TLR {:.3e} vs dense {:.3e}",
            st.total_cost,
            sd.total_cost
        );
    }

    #[test]
    fn more_nodes_shrink_simulated_makespan() {
        let model = FlopKernelModel::default();
        let meta = UniformMeta {
            precision_of: |_, _| Precision::F64,
        };
        let opts1 = DagOptions {
            nt: 20,
            nb: 512,
            grid_p: 1,
            grid_q: 1,
            model: &model,
        };
        let (t1, _) = cholesky_dag(&meta, &opts1);
        let opts4 = DagOptions {
            nt: 20,
            nb: 512,
            grid_p: 2,
            grid_q: 2,
            model: &model,
        };
        let (t4, _) = cholesky_dag(&meta, &opts4);
        let r1 = simulate(&t1, &machine(1));
        let r4 = simulate(&t4, &machine(4));
        assert!(
            r4.makespan < r1.makespan,
            "{} vs {}",
            r4.makespan,
            r1.makespan
        );
        assert!(r4.comm_bytes > 0.0);
        assert_eq!(r1.comm_bytes, 0.0);
    }

    #[test]
    fn mixed_precision_dag_is_faster_than_fp64() {
        let model = FlopKernelModel::default();
        let fp64 = UniformMeta {
            precision_of: |_, _| Precision::F64,
        };
        // Band-of-3 precision layout like Fig. 2(c).
        let mp = UniformMeta {
            precision_of: |i, j| {
                let d = i.abs_diff(j);
                if d < 3 {
                    Precision::F64
                } else if d < 6 {
                    Precision::F32
                } else {
                    Precision::F16
                }
            },
        };
        let opts = DagOptions {
            nt: 24,
            nb: 800,
            grid_p: 2,
            grid_q: 2,
            model: &model,
        };
        let (t64, _) = cholesky_dag(&fp64, &opts);
        let (tmp, _) = cholesky_dag(&mp, &opts);
        let r64 = simulate(&t64, &machine(4));
        let rmp = simulate(&tmp, &machine(4));
        assert!(rmp.makespan < r64.makespan);
    }
}

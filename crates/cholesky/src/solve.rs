//! Tiled triangular solves and log-determinant over a completed factor.
//!
//! These drive the log-likelihood evaluation (Eq. 1: `log|Σ|` and
//! `Z^T Σ^{-1} Z`) and the prediction solves (Eq. 4/5). Off-diagonal
//! factor tiles may be dense (any precision) or low-rank; both apply as
//! FP64 matrix-vector products against the promoted payload — the vectors
//! stay FP64 end to end, as in the paper (only Σ's tiles are approximated).

use crate::factor::TiledFactor;
use xgs_kernels::{trsm_left_lower_notrans, trsm_left_lower_trans};
use xgs_tile::TileStorage;

/// `log det(A) = 2 Σ log L_kk[i,i]` from the factored diagonal tiles.
pub fn logdet(f: &TiledFactor) -> f64 {
    let nt = f.nt();
    let mut acc = 0.0;
    for k in 0..nt {
        acc += f.with_tile(k, k, |t| {
            let d = t.to_dense();
            (0..d.rows()).map(|i| d[(i, i)].ln()).sum::<f64>()
        });
    }
    2.0 * acc
}

/// Forward substitution `x <- L^{-1} x` with `x` holding `nrhs` columns of
/// length `n` (column-major).
pub fn solve_lower(f: &TiledFactor, x: &mut [f64], nrhs: usize) {
    let n = f.n();
    assert_eq!(x.len(), n * nrhs);
    let layout = f.layout();
    let nt = f.nt();
    for j in 0..nt {
        let rj = layout.tile_range(j);
        // x_j -= L_jk x_k for k < j.
        for k in 0..j {
            let rk = layout.tile_range(k);
            f.with_tile(j, k, |t| {
                apply_tile(t, x, n, nrhs, rj.start, rk.start, rk.len());
            });
        }
        // x_j <- L_jj^{-1} x_j: all right-hand sides in one strided call
        // (ldb = n walks from column to column). Each column is solved
        // independently, so this is bitwise identical to a per-column loop.
        f.with_tile(j, j, |t| {
            let l = t.to_dense();
            let m = l.rows();
            trsm_left_lower_notrans(m, nrhs, 1.0, l.as_slice(), m, &mut x[rj.start..], n);
        });
    }
}

/// Backward substitution `x <- L^{-T} x`.
pub fn solve_lower_transpose(f: &TiledFactor, x: &mut [f64], nrhs: usize) {
    let n = f.n();
    assert_eq!(x.len(), n * nrhs);
    let layout = f.layout();
    let nt = f.nt();
    for j in (0..nt).rev() {
        let rj = layout.tile_range(j);
        // x_j -= L_ij^T x_i for i > j.
        for i in j + 1..nt {
            let ri = layout.tile_range(i);
            f.with_tile(i, j, |t| {
                apply_tile_transpose(t, x, n, nrhs, rj.start, ri.start, ri.len());
            });
        }
        f.with_tile(j, j, |t| {
            let l = t.to_dense();
            let m = l.rows();
            trsm_left_lower_trans(m, nrhs, 1.0, l.as_slice(), m, &mut x[rj.start..], n);
        });
    }
}

/// `x[dst..] -= T * x[src..]` for a stored tile `T` (rows at `dst`, cols at
/// `src`).
fn apply_tile(
    t: &xgs_tile::Tile,
    x: &mut [f64],
    n: usize,
    nrhs: usize,
    dst: usize,
    src: usize,
    src_len: usize,
) {
    match &t.storage {
        TileStorage::Dense(m) => {
            for c in 0..nrhs {
                for col in 0..src_len {
                    let xv = x[c * n + src + col];
                    if xv == 0.0 {
                        continue;
                    }
                    for row in 0..m.rows() {
                        x[c * n + dst + row] -= m[(row, col)] * xv;
                    }
                }
            }
        }
        TileStorage::LowRank(lr) => {
            // U (V^T x): two skinny products.
            let k = lr.rank();
            if k == 0 {
                return;
            }
            for c in 0..nrhs {
                let mut w = vec![0.0f64; k];
                for (kk, wk) in w.iter_mut().enumerate() {
                    let vcol = lr.v.col(kk);
                    let mut s = 0.0;
                    for col in 0..src_len {
                        s += vcol[col] * x[c * n + src + col];
                    }
                    *wk = s;
                }
                for (kk, &wk) in w.iter().enumerate() {
                    if wk == 0.0 {
                        continue;
                    }
                    let ucol = lr.u.col(kk);
                    for row in 0..ucol.len() {
                        x[c * n + dst + row] -= ucol[row] * wk;
                    }
                }
            }
        }
    }
}

/// `x[dst..] -= T^T * x[src..]`.
fn apply_tile_transpose(
    t: &xgs_tile::Tile,
    x: &mut [f64],
    n: usize,
    nrhs: usize,
    dst: usize,
    src: usize,
    src_len: usize,
) {
    match &t.storage {
        TileStorage::Dense(m) => {
            for c in 0..nrhs {
                for col in 0..m.cols() {
                    let mut s = 0.0;
                    for row in 0..src_len {
                        s += m[(row, col)] * x[c * n + src + row];
                    }
                    x[c * n + dst + col] -= s;
                }
            }
        }
        TileStorage::LowRank(lr) => {
            // (U V^T)^T x = V (U^T x).
            let k = lr.rank();
            if k == 0 {
                return;
            }
            for c in 0..nrhs {
                let mut w = vec![0.0f64; k];
                for (kk, wk) in w.iter_mut().enumerate() {
                    let ucol = lr.u.col(kk);
                    let mut s = 0.0;
                    for row in 0..src_len {
                        s += ucol[row] * x[c * n + src + row];
                    }
                    *wk = s;
                }
                for (kk, &wk) in w.iter().enumerate() {
                    if wk == 0.0 {
                        continue;
                    }
                    let vcol = lr.v.col(kk);
                    for col in 0..vcol.len() {
                        x[c * n + dst + col] -= vcol[col] * wk;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, SymTileMatrix, TlrConfig, Variant};

    fn factored(n: usize, nb: usize, variant: Variant) -> (TiledFactor, xgs_linalg::Matrix) {
        let mut rng = StdRng::seed_from_u64(21);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        let kernel = Matern::new(MaternParams::new(1.2, 0.05, 0.5));
        let exact = xgs_covariance::covariance_matrix(&kernel, &locs);
        let model = FlopKernelModel {
            dense_rate: 45.0e9,
            mem_factor: 1.0,
        };
        let m = SymTileMatrix::generate(&kernel, &locs, TlrConfig::new(variant, nb), &model);
        let mut f = TiledFactor::from_matrix(m);
        f.factorize_seq().unwrap();
        (f, exact)
    }

    #[test]
    fn logdet_matches_dense_reference() {
        let (f, exact) = factored(180, 60, Variant::DenseF64);
        let mut l = exact.clone();
        xgs_linalg::cholesky_in_place(&mut l).unwrap();
        let expect = xgs_linalg::cholesky_logdet(&l);
        assert!((logdet(&f) - expect).abs() < 1e-8 * expect.abs());
    }

    #[test]
    fn forward_backward_solves_linear_system() {
        let (f, exact) = factored(210, 70, Variant::DenseF64);
        let n = exact.rows();
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut b = exact.matvec(&xtrue);
        solve_lower(&f, &mut b, 1);
        solve_lower_transpose(&f, &mut b, 1);
        for (got, want) in b.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    }

    #[test]
    fn multiple_rhs_solve() {
        let (f, exact) = factored(150, 50, Variant::DenseF64);
        let n = exact.rows();
        let nrhs = 3;
        let xs: Vec<f64> = (0..n * nrhs).map(|i| ((i as f64) * 0.11).cos()).collect();
        let mut b = vec![0.0; n * nrhs];
        for c in 0..nrhs {
            let bx = exact.matvec(&xs[c * n..(c + 1) * n]);
            b[c * n..(c + 1) * n].copy_from_slice(&bx);
        }
        solve_lower(&f, &mut b, nrhs);
        solve_lower_transpose(&f, &mut b, nrhs);
        for (got, want) in b.iter().zip(&xs) {
            assert!((got - want).abs() < 1e-7);
        }
    }

    #[test]
    fn multi_rhs_solve_is_bitwise_identical_to_per_column() {
        // The batched prediction path leans on this: solving k right-hand
        // sides together must give exactly the floats of k single solves,
        // for every storage variant.
        for variant in [Variant::DenseF64, Variant::MpDense, Variant::MpDenseTlr] {
            let (f, exact) = factored(256, 32, variant);
            let n = exact.rows();
            let nrhs = 5;
            let b0: Vec<f64> = (0..n * nrhs).map(|i| ((i as f64) * 0.19).sin()).collect();
            let mut batched = b0.clone();
            solve_lower(&f, &mut batched, nrhs);
            solve_lower_transpose(&f, &mut batched, nrhs);
            for c in 0..nrhs {
                let mut single = b0[c * n..(c + 1) * n].to_vec();
                solve_lower(&f, &mut single, 1);
                solve_lower_transpose(&f, &mut single, 1);
                for (a, b) in batched[c * n..(c + 1) * n].iter().zip(&single) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{variant:?} col {c}");
                }
            }
        }
    }

    #[test]
    fn tlr_solve_accuracy_within_tolerance_regime() {
        let (f, exact) = factored(512, 32, Variant::MpDenseTlr);
        let n = exact.rows();
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut b = exact.matvec(&xtrue);
        solve_lower(&f, &mut b, 1);
        solve_lower_transpose(&f, &mut b, 1);
        let mut err = 0.0f64;
        let mut nrm = 0.0f64;
        for (got, want) in b.iter().zip(&xtrue) {
            err += (got - want) * (got - want);
            nrm += want * want;
        }
        let rel = (err / nrm).sqrt();
        assert!(rel < 1e-4, "TLR solve relative error {rel}");
    }

    #[test]
    fn quadratic_form_is_positive() {
        let (f, exact) = factored(160, 40, Variant::MpDense);
        let n = exact.rows();
        let z: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let mut w = z.clone();
        solve_lower(&f, &mut w, 1);
        let quad: f64 = w.iter().map(|x| x * x).sum();
        assert!(quad > 0.0);
        // Matches z^T A^{-1} z computed densely.
        let mut l = exact.clone();
        xgs_linalg::cholesky_in_place(&mut l).unwrap();
        let mut zz = z.clone();
        xgs_linalg::cholesky_solve(&l, &mut zz);
        let expect: f64 = z.iter().zip(&zz).map(|(a, b)| a * b).sum();
        assert!((quad - expect).abs() < 1e-6 * expect, "{quad} vs {expect}");
    }
}

//! Mixed-precision, structure-aware tile kernel implementations.
//!
//! Each kernel follows Algorithm 1's operand convention: the *written* tile
//! is the precision lead (`+`), and every other operand is converted on
//! demand to the execution precision (`*`), with conversions recorded in
//! the global counters. Execution precisions:
//!
//! * FP64 tile → `f64` kernel;
//! * FP32 tile → operands demoted to `f32`, `f32` kernel;
//! * FP16 tile → operands *trimmed to binary16*, promoted exactly to
//!   `f32`, `f32` kernel (SHGEMM semantics), result rounded back through
//!   binary16.
//!
//! Low-rank kernels run FP64/FP32 only (the paper's TLR path) and keep the
//! HiCMA shapes: TRSM solves against the `V` factor; GEMM forms low-rank
//! products and adds them with QR+SVD rounding.

use xgs_kernels::{
    gemm, syrk_lower_notrans, trsm_left_lower_notrans, trsm_right_lower_trans, Precision, Trans,
};
use xgs_linalg::{LowRank, Matrix};
use xgs_runtime::count_conversion;
use xgs_tile::{Tile, TileStorage};

/// Factor the diagonal tile in place (always dense FP64: it carries the
/// pivots). Returns LAPACK-style error on loss of positive definiteness.
pub fn potrf_diag(tile: &mut Tile) -> Result<(), xgs_kernels::PotrfError> {
    let TileStorage::Dense(a) = &mut tile.storage else {
        panic!("diagonal tiles are always dense");
    };
    debug_assert_eq!(tile.precision, Precision::F64, "diagonal pinned to FP64");
    let n = a.rows();
    xgs_kernels::potrf(n, a.as_mut_slice(), n)?;
    // Zero the strict upper triangle so to_dense() views stay clean.
    for j in 0..n {
        for i in 0..j {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Effective compute precision for a tile's kernels: FP16 computes via the
/// FP32-accumulating path.
fn compute_precision(p: Precision) -> Precision {
    match p {
        Precision::F16 => Precision::F32,
        other => other,
    }
}

/// Demote-then-run helper: executes `op` on `f32` copies of the matrices,
/// writing the result back to the `f64`-backed target buffer.
fn to_f32_buf(m: &Matrix) -> Vec<f32> {
    m.as_slice().iter().map(|&x| x as f32).collect()
}

fn from_f32_buf(buf: &[f32], m: &mut Matrix) {
    for (dst, &src) in m.as_mut_slice().iter_mut().zip(buf) {
        *dst = src as f64;
    }
}

/// `TRSM`: `A_ik <- A_ik * L_kk^{-T}` where `L_kk` is the factored diagonal
/// tile (dense FP64) and `A_ik` the panel tile in any format.
pub fn trsm_panel(l_kk: &Tile, a_ik: &mut Tile) {
    let TileStorage::Dense(l) = &l_kk.storage else {
        panic!("TRSM triangle must be dense");
    };
    let n = l.rows();
    let p = a_ik.precision;
    match &mut a_ik.storage {
        TileStorage::Dense(a) => {
            let m = a.rows();
            match compute_precision(p) {
                Precision::F64 => {
                    trsm_right_lower_trans(m, n, 1.0, l.as_slice(), n, a.as_mut_slice(), m);
                }
                _ => {
                    // Convert the FP64 triangle down to the lead precision.
                    count_conversion(Precision::F64, p, (n * n) as u64);
                    let mut lf = to_f32_buf(l);
                    let mut af = to_f32_buf(a);
                    if p == Precision::F16 {
                        // Trim operands through binary16 (SH semantics).
                        trim_f32_through_f16(&mut lf);
                        trim_f32_through_f16(&mut af);
                    }
                    trsm_right_lower_trans(m, n, 1.0f32, &lf, n, &mut af, m);
                    from_f32_buf(&af, a);
                }
            }
        }
        TileStorage::LowRank(lr) => {
            // (U V^T) L^{-T} = U (L^{-1} V)^T: only V is touched.
            let k = lr.rank();
            if k == 0 {
                return;
            }
            match compute_precision(p) {
                Precision::F64 => {
                    trsm_left_lower_notrans(n, k, 1.0, l.as_slice(), n, lr.v.as_mut_slice(), n);
                }
                _ => {
                    count_conversion(Precision::F64, Precision::F32, (n * n) as u64);
                    let lf = to_f32_buf(l);
                    let mut vf = to_f32_buf(&lr.v);
                    trsm_left_lower_notrans(n, k, 1.0f32, &lf, n, &mut vf, n);
                    from_f32_buf(&vf, &mut lr.v);
                }
            }
        }
    }
    a_ik.enforce_precision();
}

fn trim_f32_through_f16(buf: &mut [f32]) {
    for x in buf.iter_mut() {
        *x = xgs_kernels::Half::from_f32(*x).to_f32();
    }
}

/// `SYRK`: `C_ii <- C_ii - A_ik * A_ik^T` with `C_ii` the dense FP64
/// diagonal tile and `A_ik` in any format.
pub fn syrk_diag(a_ik: &Tile, c_ii: &mut Tile) {
    let TileStorage::Dense(c) = &mut c_ii.storage else {
        panic!("diagonal tiles are always dense");
    };
    let n = c.rows();
    match &a_ik.storage {
        TileStorage::Dense(a) => {
            let k = a.cols();
            if a_ik.precision != Precision::F64 {
                // Receiver leads in FP64: promote the operand (exact).
                count_conversion(a_ik.precision, Precision::F64, (a.rows() * k) as u64);
            }
            syrk_lower_notrans(n, k, -1.0, a.as_slice(), a.rows(), 1.0, c.as_mut_slice(), n);
        }
        TileStorage::LowRank(lr) => {
            // C -= U (V^T V) U^T, all small intermediates.
            let k = lr.rank();
            if k == 0 {
                return;
            }
            if a_ik.precision != Precision::F64 {
                count_conversion(a_ik.precision, Precision::F64, lr.storage_len() as u64);
            }
            let w = lr.v.t_matmul(&lr.v); // k x k
            let x = lr.u.matmul(&w); // n x k
            gemm(
                Trans::No,
                Trans::Yes,
                n,
                n,
                k,
                -1.0,
                x.as_slice(),
                n,
                lr.u.as_slice(),
                n,
                1.0,
                c.as_mut_slice(),
                n,
            );
        }
    }
    // Keep strictly the lower triangle meaningful; mirror not needed.
}

/// `GEMM`: `C_ij <- C_ij - A_ik * B_jk^T`, the trailing update. The written
/// tile `C_ij` leads: its structure decides the low-rank vs dense path and
/// its precision decides the arithmetic.
///
/// `tol` is the absolute rounding tolerance for low-rank additions on this
/// tile (frozen at generation).
pub fn gemm_update(a_ik: &Tile, b_jk: &Tile, c_ij: &mut Tile, tol: f64) {
    let p = c_ij.precision;
    match &mut c_ij.storage {
        TileStorage::Dense(c) => {
            gemm_into_dense(a_ik, b_jk, c, p);
        }
        TileStorage::LowRank(c_lr) => {
            // Form the product as a low-rank object, then rounded-add.
            let prod: LowRank = match (&a_ik.storage, &b_jk.storage) {
                (TileStorage::LowRank(a), TileStorage::LowRank(b)) => {
                    note_operand_conversion(a_ik, p);
                    note_operand_conversion(b_jk, p);
                    a.matmul_lr_transposed(b)
                }
                (TileStorage::LowRank(a), TileStorage::Dense(b)) => {
                    note_operand_conversion(a_ik, p);
                    note_operand_conversion(b_jk, p);
                    // (U V^T) B^T = U (B V)^T.
                    LowRank {
                        u: a.u.clone(),
                        v: b.matmul(&a.v),
                    }
                }
                (TileStorage::Dense(a), TileStorage::LowRank(b)) => {
                    note_operand_conversion(a_ik, p);
                    note_operand_conversion(b_jk, p);
                    // A (U V^T)^T = A V U^T = (A V) U^T.
                    LowRank {
                        u: a.matmul(&b.v),
                        v: b.u.clone(),
                    }
                }
                (TileStorage::Dense(a), TileStorage::Dense(b)) => {
                    // Dense x dense hitting a low-rank tile: form the dense
                    // product and compress at the tile tolerance (rare; only
                    // when the structure rule reverted both panel tiles).
                    note_operand_conversion(a_ik, p);
                    note_operand_conversion(b_jk, p);
                    let prod = a.matmul_t(b);
                    LowRank::compress_svd(&prod, tol)
                }
            };
            *c_lr = c_lr.add_rounded(-1.0, &prod, tol);
        }
    }
    c_ij.enforce_precision();
}

/// Dense-receiver GEMM in the receiver's precision.
///
/// Low-rank operands are deliberately *materialized* rather than applied as
/// `U (B V)^T` fast paths: precision emulation trims/demotes the logical
/// tile value the kernel consumes, and the materialized block is exactly
/// that value. (A production port on real low-precision hardware would use
/// the factored forms; here fidelity of the rounding semantics wins.)
fn gemm_into_dense(a_ik: &Tile, b_jk: &Tile, c: &mut Matrix, p: Precision) {
    let (m, n) = c.shape();
    // Materialize operands densely (low-rank operands reconstruct).
    let a = a_ik.to_dense();
    let b = b_jk.to_dense();
    let k = a.cols();
    note_operand_conversion(a_ik, p);
    note_operand_conversion(b_jk, p);
    match compute_precision(p) {
        Precision::F64 => {
            gemm(
                Trans::No,
                Trans::Yes,
                m,
                n,
                k,
                -1.0,
                a.as_slice(),
                m,
                b.as_slice(),
                n,
                1.0,
                c.as_mut_slice(),
                m,
            );
        }
        _ => {
            let mut af = to_f32_buf(&a);
            let mut bf = to_f32_buf(&b);
            let mut cf = to_f32_buf(c);
            if p == Precision::F16 {
                trim_f32_through_f16(&mut af);
                trim_f32_through_f16(&mut bf);
            }
            gemm(
                Trans::No,
                Trans::Yes,
                m,
                n,
                k,
                -1.0f32,
                &af,
                m,
                &bf,
                n,
                1.0f32,
                &mut cf,
                m,
            );
            from_f32_buf(&cf, c);
        }
    }
}

/// Record the on-demand conversion of an operand tile into the receiver's
/// compute precision.
fn note_operand_conversion(operand: &Tile, receiver: Precision) {
    let target = compute_precision(receiver);
    let from = operand.precision;
    // FP16 operands promoting exactly into the FP32 compute path still count:
    // the data arrives in a different format than the kernel consumes.
    if from != target {
        let elems = match &operand.storage {
            TileStorage::Dense(mt) => mt.rows() * mt.cols(),
            TileStorage::LowRank(lr) => lr.storage_len(),
        };
        count_conversion(from, target, elems as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgs_kernels::convert::round_through;
    use xgs_tile::Tile;

    fn rnd(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn spd_tile(n: usize, seed: u64) -> Tile {
        let b = rnd(n, n, seed);
        let mut a = b.matmul_t(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        Tile::dense(a, Precision::F64)
    }

    #[test]
    fn potrf_diag_factors() {
        let mut t = spd_tile(16, 1);
        let orig = t.to_dense();
        potrf_diag(&mut t).unwrap();
        let l = t.to_dense();
        let rec = l.matmul_t(&l);
        for j in 0..16 {
            for i in j..16 {
                assert!((rec[(i, j)] - orig[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn trsm_dense_f64_matches_oracle() {
        let mut lkk = spd_tile(8, 2);
        potrf_diag(&mut lkk).unwrap();
        let a0 = rnd(8, 8, 3);
        let mut tile = Tile::dense(a0.clone(), Precision::F64);
        trsm_panel(&lkk, &mut tile);
        let l = lkk.to_dense();
        let mut oracle = a0.clone();
        trsm_right_lower_trans(8, 8, 1.0, l.as_slice(), 8, oracle.as_mut_slice(), 8);
        let err = tile.to_dense().add_scaled(-1.0, &oracle).norm_fro();
        assert!(err < 1e-12);
    }

    #[test]
    fn trsm_dense_f32_close_to_f64_oracle() {
        let mut lkk = spd_tile(8, 4);
        potrf_diag(&mut lkk).unwrap();
        let a0 = rnd(8, 8, 5);
        let mut tile = Tile::dense(a0.clone(), Precision::F32);
        trsm_panel(&lkk, &mut tile);
        let l = lkk.to_dense();
        let mut oracle = a0.clone();
        round_through(oracle.as_mut_slice(), Precision::F32);
        trsm_right_lower_trans(8, 8, 1.0, l.as_slice(), 8, oracle.as_mut_slice(), 8);
        let err = tile.to_dense().add_scaled(-1.0, &oracle).norm_fro();
        assert!(err < 1e-5 * oracle.norm_fro(), "err {err}");
        // And the result really is f32-representable.
        for &x in tile.to_dense().as_slice() {
            assert_eq!(x, (x as f32) as f64);
        }
    }

    #[test]
    fn trsm_low_rank_matches_dense_oracle() {
        let mut lkk = spd_tile(10, 6);
        potrf_diag(&mut lkk).unwrap();
        let u = rnd(12, 3, 7);
        let v = rnd(10, 3, 8);
        let dense0 = u.matmul_t(&v);
        let mut tile = Tile::low_rank(LowRank { u, v }, Precision::F64);
        trsm_panel(&lkk, &mut tile);
        let l = lkk.to_dense();
        let mut oracle = dense0.clone();
        trsm_right_lower_trans(12, 10, 1.0, l.as_slice(), 10, oracle.as_mut_slice(), 12);
        let err = tile.to_dense().add_scaled(-1.0, &oracle).norm_fro();
        assert!(err < 1e-10, "err {err}");
    }

    #[test]
    fn syrk_dense_and_lowrank_agree() {
        let a_dense = rnd(9, 9, 9);
        // Use an exactly low-rank A so both paths compute the same update.
        let u = rnd(9, 2, 10);
        let v = rnd(9, 2, 11);
        let a_lr_dense = u.matmul_t(&v);
        let t_dense = Tile::dense(a_lr_dense.clone(), Precision::F64);
        let t_lr = Tile::low_rank(LowRank { u, v }, Precision::F64);
        let mut c1 = spd_tile(9, 12);
        let mut c2 = c1.clone();
        syrk_diag(&t_dense, &mut c1);
        syrk_diag(&t_lr, &mut c2);
        let (d1, d2) = (c1.to_dense(), c2.to_dense());
        for j in 0..9 {
            for i in j..9 {
                assert!((d1[(i, j)] - d2[(i, j)]).abs() < 1e-10);
            }
        }
        let _ = a_dense;
    }

    #[test]
    fn gemm_dense_receiver_matches_oracle() {
        let a = rnd(7, 5, 13);
        let b = rnd(7, 5, 14);
        let c0 = rnd(7, 7, 15);
        let ta = Tile::dense(a.clone(), Precision::F64);
        let tb = Tile::dense(b.clone(), Precision::F64);
        let mut tc = Tile::dense(c0.clone(), Precision::F64);
        gemm_update(&ta, &tb, &mut tc, 1e-12);
        let oracle = c0.add_scaled(-1.0, &a.matmul_t(&b));
        let err = tc.to_dense().add_scaled(-1.0, &oracle).norm_fro();
        assert!(err < 1e-12);
    }

    #[test]
    fn gemm_lowrank_receiver_all_operand_combos() {
        let mk_lr = |m: usize, k: usize, s: u64| {
            let u = rnd(m, k, s);
            let v = rnd(8, k, s + 50);
            Tile::low_rank(LowRank { u, v }, Precision::F64)
        };
        let mk_dense = |m: usize, s: u64| Tile::dense(rnd(m, 8, s), Precision::F64);
        let c0u = rnd(10, 2, 100);
        let c0v = rnd(9, 2, 101);
        let c0 = Tile::low_rank(LowRank { u: c0u, v: c0v }, Precision::F64);

        for (ta, tb, label) in [
            (mk_lr(10, 3, 1), mk_lr(9, 2, 2), "lr-lr"),
            (mk_lr(10, 3, 3), mk_dense(9, 4), "lr-dense"),
            (mk_dense(10, 5), mk_lr(9, 2, 6), "dense-lr"),
            (mk_dense(10, 7), mk_dense(9, 8), "dense-dense"),
        ] {
            let mut c = c0.clone();
            gemm_update(&ta, &tb, &mut c, 1e-11);
            let oracle = c0
                .to_dense()
                .add_scaled(-1.0, &ta.to_dense().matmul_t(&tb.to_dense()));
            let err = c.to_dense().add_scaled(-1.0, &oracle).norm_fro();
            assert!(
                err < 1e-8 * oracle.norm_fro().max(1.0),
                "{label}: err {err}"
            );
        }
    }

    #[test]
    fn gemm_f16_receiver_result_is_f16_representable() {
        let a = rnd(6, 6, 20);
        let b = rnd(6, 6, 21);
        let ta = Tile::dense(a, Precision::F64);
        let tb = Tile::dense(b, Precision::F64);
        let mut tc = Tile::dense(rnd(6, 6, 22), Precision::F16);
        gemm_update(&ta, &tb, &mut tc, 1e-12);
        for &x in tc.to_dense().as_slice() {
            let h = xgs_kernels::Half::from_f64(x);
            assert_eq!(h.to_f64(), x, "value {x} not binary16-representable");
        }
    }

    #[test]
    fn conversions_are_counted() {
        xgs_runtime::reset_conversion_counts();
        let a = rnd(6, 6, 30);
        let b = rnd(6, 6, 31);
        let ta = Tile::dense(a, Precision::F64);
        let tb = Tile::dense(b, Precision::F16);
        let mut tc = Tile::dense(rnd(6, 6, 32), Precision::F32);
        gemm_update(&ta, &tb, &mut tc, 1e-12);
        let c = xgs_runtime::conversion_counts();
        assert!(c.f64_to_f32 >= 36, "A should be demoted: {c:?}");
        assert!(c.f16_to_f32 >= 36, "B should be promoted: {c:?}");
    }
}

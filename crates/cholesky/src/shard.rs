//! Multi-process sharded tile Cholesky over a 2D block-cyclic distribution.
//!
//! This is the distributed-memory execution the paper runs through PaRSEC,
//! scaled down to one machine: a **coordinator** (the process holding the
//! [`TiledFactor`]) partitions the tile grid over `p x q` worker processes
//! with [`block_cyclic_owner`] — the same owner function the
//! discrete-event simulator uses — and drives the right-looking Cholesky
//! DAG. Workers execute the POTRF/TRSM/SYRK/GEMM tasks they own; tiles
//! cross ownership boundaries as length-prefixed binary frames over
//! loopback TCP ([`xgs_runtime::shard`]), bitwise
//! ([`xgs_tile::wire`]).
//!
//! Topology is hub-and-spoke: workers connect only to the coordinator,
//! which relays tiles between owners. Commands to one worker form a FIFO
//! stream, and the coordinator only sends a task after (a) every operand
//! the worker does not own has been forwarded earlier on the same stream,
//! and (b) the DONE of every cross-worker predecessor has been processed.
//! Together with per-tile write-ownership (every writer of a stored tile
//! is owned by that tile's owner) this makes the coordinator's
//! DONE-processing order a linearization of the DAG — which is exactly
//! what we hand to the same hazard-edge validator that checks the
//! shared-memory executor.
//!
//! Per-tile kernel invocation order is identical to
//! [`TiledFactor::factorize_seq`], so the sharded factor is **bitwise**
//! equal to the single-process one (asserted by `tests/shard_equivalence`).
//!
//! Frame kinds (payloads little-endian, see the match arms for layouts):
//!
//! | kind | dir | payload |
//! |------|-----|---------|
//! | `HELLO`     | c→w | `version, worker_id, p, q, nt, nb, n` |
//! | `TILE`      | both | `i, j, tile bytes` ([`xgs_tile::wire`]) |
//! | `TASK`      | c→w | `kind, task_id, k, i, j, tol, publish` |
//! | `DONE`      | w→c | `task_id, kind, ok, pivot, elapsed` |
//! | `SHUTDOWN`  | c→w | empty |
//! | `BYE`       | w→c | `tasks_executed` |
//! | `JOIN`      | w→c | `version, cores, precision_mask` |
//! | `HEARTBEAT` | c→w `nonce`, w→c `nonce, tasks_executed` |
//! | `ASSIGN`    | c→w | `version, member_id, role` |
//!
//! `JOIN`/`ASSIGN` form the registration handshake a worker performs once
//! per connection, before any `HELLO` ([`admit_worker`]); `HEARTBEAT` is
//! the liveness probe and the warm-fleet end-of-run census carrier.
//! Variable-length payload decoding is forward-compatible: a decoder
//! accepts any payload at least as long as the fields it knows and
//! ignores trailing bytes, so the protocol can grow fields; the leading
//! version byte on `HELLO`/`JOIN`/`ASSIGN` is what rejects genuinely
//! incompatible peers with a clear error.
//!
//! Elasticity: [`TiledFactor::factorize_elastic`] accepts a
//! [`ReplacementSource`]. When a worker dies mid-run the coordinator does
//! not fail the factorization — it takes a replacement connection,
//! rebuilds the lost shard's state by replaying that worker's logged
//! frame prefix (seeding finally-published tiles from the coordinator's
//! published-tile map instead of re-running their producers), and
//! re-dispatches only the tasks whose written tiles were not yet final.
//! Every recovery plan is validated by `xgs-analysis` (`check_shard_plan`
//! on the base plan plus `check_recovery_plan` on the replay) before any
//! frame is sent. Workers are deterministic functions of their FIFO input
//! stream, so the recovered factor stays bitwise-equal to sequential.

use crate::dag::{lr_precision, TileMetaSource};
use crate::factor::{FactorError, TiledFactor};
use crate::kernels::{gemm_update, potrf_diag, syrk_diag, trsm_panel};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xgs_kernels::Precision;
use xgs_runtime::shard::{
    read_frame, write_frame, FrameError, WireReader, WireWriter, FRAME_HEADER_BYTES,
};
use xgs_runtime::{
    block_cyclic_owner, check_schedule, conversion_counts, count_conversion,
    crosscheck_static_edges, precheck_env_default, task_census, Access, DataId, KernelStats,
    MetricsReport, TaskOrder, WireStats, WorkerStats,
};
use xgs_tile::wire::{
    decode_tile, dense_payload_len, encode_tile, encoded_len, low_rank_payload_len, wire_elements,
};
use xgs_tile::{Tile, TileLayout};

/// Frame kinds of the coordinator/worker protocol.
pub const K_HELLO: u8 = 1;
pub const K_TILE: u8 = 2;
pub const K_TASK: u8 = 3;
pub const K_DONE: u8 = 4;
pub const K_SHUTDOWN: u8 = 5;
pub const K_BYE: u8 = 6;
pub const K_JOIN: u8 = 7;
pub const K_HEARTBEAT: u8 = 8;
pub const K_ASSIGN: u8 = 9;

/// Version byte leading `HELLO`, `JOIN` and `ASSIGN` payloads. Bumped
/// whenever a frame layout changes incompatibly; both sides reject a
/// mismatched peer with a protocol error naming the two versions instead
/// of mis-decoding a garbled frame.
pub const PROTO_VERSION: u8 = 2;

const KIND_POTRF: u8 = 0;
const KIND_TRSM: u8 = 1;
const KIND_SYRK: u8 = 2;
const KIND_GEMM: u8 = 3;

/// Bytes a TILE frame carries before the `xgs_tile::wire` body: the two
/// `u32` tile coordinates.
pub const TILE_COORD_BYTES: usize = 8;

/// Fixed payload sizes of the non-TILE frames, byte-for-byte the layouts
/// in the module table above. Decoders accept payloads *at least* this
/// long (trailing bytes are future fields, ignored); planned and
/// projected byte censuses use these so they speak the same units as the
/// measured one.
const HELLO_PAYLOAD_BYTES: usize = 29;
const TASK_PAYLOAD_BYTES: usize = 30;
const DONE_PAYLOAD_BYTES: usize = 26;
const BYE_PAYLOAD_BYTES: usize = 8;
const JOIN_PAYLOAD_BYTES: usize = 6;
const ASSIGN_PAYLOAD_BYTES: usize = 6;
const HEARTBEAT_PING_BYTES: usize = 8;
const HEARTBEAT_ECHO_BYTES: usize = 16;

/// Metrics keys of the frame kinds, indexed `K_* - 1`.
const FRAME_KIND_NAMES: [&str; 9] = [
    "hello",
    "tile",
    "task",
    "done",
    "shutdown",
    "bye",
    "join",
    "heartbeat",
    "assign",
];

/// Per-frame-kind `{frames, bytes}` tally. Bytes count whole frames —
/// header plus payload — in both directions, as seen from the coordinator.
#[derive(Clone, Copy, Default)]
struct WireCensus {
    counts: [(u64, u64); 9],
}

impl WireCensus {
    fn record(&mut self, kind: u8, payload_len: usize) {
        self.record_many(kind, 1, payload_len);
    }

    fn record_many(&mut self, kind: u8, frames: u64, payload_len: usize) {
        debug_assert!((K_HELLO..=K_ASSIGN).contains(&kind));
        let c = &mut self.counts[(kind - 1) as usize];
        c.0 += frames;
        c.1 += frames * (FRAME_HEADER_BYTES + payload_len) as u64;
    }

    fn merge(&mut self, other: &WireCensus) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            a.0 += b.0;
            a.1 += b.1;
        }
    }

    fn to_stats(self) -> Vec<WireStats> {
        let mut out = Vec::new();
        for (idx, &(frames, bytes)) in self.counts.iter().enumerate() {
            if frames > 0 {
                out.push(WireStats {
                    kind: FRAME_KIND_NAMES[idx],
                    frames,
                    bytes,
                });
            }
        }
        out
    }
}

/// Wire bytes of the TILE frame that ships tile `(i, j)` in the format
/// `meta` declares for it: frame header, coordinates, then the
/// [`xgs_tile::wire`] body at the tile's storage precision (low-rank
/// tiles ship `U`/`V` at the TLR compute precision, rank capped at the
/// tile's short dimension). Exact for static formats; for TLR tiles it is
/// the pre-factorization estimate, since ranks drift as the trailing
/// update recompresses.
pub fn tile_wire_frame_bytes(
    meta: &dyn TileMetaSource,
    rows: usize,
    cols: usize,
    i: usize,
    j: usize,
) -> u64 {
    let body = if meta.is_dense(i, j) {
        dense_payload_len(rows, cols, meta.precision(i, j))
    } else {
        let rank = meta.rank(i, j).min(rows.min(cols));
        low_rank_payload_len(rows, cols, rank, lr_precision(meta.precision(i, j)))
    };
    (FRAME_HEADER_BYTES + TILE_COORD_BYTES + body) as u64
}

/// Tally the element-format conversions one wire crossing performs:
/// encoding demotes the f64-emulated buffer to the tile's storage width,
/// decoding promotes it back. Both directions are exact (tile values are
/// pre-rounded through their format), but they are real conversions and
/// the runtime's global counters are the ledger the paper's
/// "convert on the fly" accounting reads. Counters are per-process: a
/// coordinator's report covers its own encodes/decodes, not a remote
/// worker's.
fn count_wire_conversion(tile: &Tile, encode: bool) {
    let elems = wire_elements(tile) as u64;
    if encode {
        count_conversion(Precision::F64, tile.precision, elems);
    } else {
        count_conversion(tile.precision, Precision::F64, elems);
    }
}

/// Failure of a sharded factorization.
#[derive(Debug)]
pub enum ShardError {
    /// Numerical failure, identical semantics to the in-process engines.
    Factor(FactorError),
    /// A worker process died or its connection broke mid-run.
    WorkerLost { worker: usize, detail: String },
    /// The run exceeded [`ShardOptions::deadline`].
    Timeout { phase: &'static str },
    /// The peer violated the protocol (bad frame, missing operand, wrong
    /// task census ...).
    Protocol(String),
    /// Worker processes could not be spawned or connected.
    Spawn(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Factor(e) => write!(f, "{e}"),
            ShardError::WorkerLost { worker, detail } => {
                write!(f, "shard worker {worker} lost: {detail}")
            }
            ShardError::Timeout { phase } => write!(f, "sharded run timed out during {phase}"),
            ShardError::Protocol(what) => write!(f, "shard protocol violation: {what}"),
            ShardError::Spawn(what) => write!(f, "failed to launch shard workers: {what}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<FactorError> for ShardError {
    fn from(e: FactorError) -> ShardError {
        ShardError::Factor(e)
    }
}

/// How a sharded factorization is driven.
#[derive(Clone, Copy, Debug)]
pub struct ShardOptions {
    /// Process grid: `grid_p * grid_q` must equal the worker count.
    pub grid_p: usize,
    pub grid_q: usize,
    /// Wall-clock budget for the whole factorization, including worker
    /// drain. On expiry the coordinator aborts with [`ShardError::Timeout`]
    /// rather than hanging on a wedged worker.
    pub deadline: Duration,
    /// Run the completion order through the hazard-edge validator
    /// (default: on in debug builds, like the shared-memory executor).
    pub validate: bool,
    /// Statically check the sharded plan before any frame is sent: the
    /// `xgs-analysis` checker replays the coordinator's exact emission
    /// order over the block-cyclic owner map and proves every remote
    /// operand has a matching TILE transfer, nothing is sent to its own
    /// shard, no tile is used stale, and the per-kernel census matches the
    /// closed form; the static hazard-edge derivation is also
    /// cross-checked against the validator's. Default: on in debug
    /// builds, opt-in in release via `XGS_PRECHECK=1` (see
    /// [`xgs_runtime::precheck_env_default`]).
    pub precheck: bool,
    /// Leave workers warm after the run instead of draining them with
    /// `SHUTDOWN`/`BYE`: the end-of-run census rides a `HEARTBEAT`
    /// exchange (whose echo carries the executed-task count `BYE` would),
    /// the sockets stay open, and the same fleet serves the next
    /// factorization after a state-resetting `HELLO`. This is how the
    /// persistent fleet (`xgs-fleet`) avoids paying process spawn per
    /// factorization.
    pub persistent: bool,
}

impl ShardOptions {
    /// Near-square grid for `workers` processes, generous deadline.
    pub fn for_workers(workers: usize) -> ShardOptions {
        let (grid_p, grid_q) = grid_shape(workers);
        ShardOptions {
            grid_p,
            grid_q,
            deadline: Duration::from_secs(120),
            validate: cfg!(debug_assertions),
            precheck: precheck_env_default(),
            persistent: false,
        }
    }
}

/// Largest near-square factorization of `workers`: the same `p <= sqrt(w)`
/// rule as `xgs-perfmodel`'s `process_grid`, so a sharded run and a
/// `scale --nodes` projection of the same worker count land on the same
/// `p x q` grid (that equality is what lets `metrics_diff` compare their
/// per-worker task counts).
pub fn grid_shape(workers: usize) -> (usize, usize) {
    let w = workers.max(1);
    let mut p = (w as f64).sqrt() as usize;
    while p > 1 && !w.is_multiple_of(p) {
        p -= 1;
    }
    let p = p.max(1);
    (p, w / p)
}

/// What one sharded factorization observed.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Same schema as the in-process executor's metrics: per-kernel stats
    /// from worker-reported task timings, per-worker busy/task counters.
    pub metrics: MetricsReport,
    /// Tasks each worker reported executing at shutdown (`BYE`); verified
    /// against the block-cyclic census of the DAG.
    pub worker_tasks: Vec<u64>,
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// The wire task kinds, decoded once so every later dispatch is an
/// exhaustive enum match (the `frame-kind-exhaustive` lint rule).
#[derive(Clone, Copy)]
enum WireTask {
    Potrf,
    Trsm,
    Syrk,
    Gemm,
}

impl WireTask {
    fn from_wire(kind: u8) -> Option<WireTask> {
        match kind {
            KIND_POTRF => Some(WireTask::Potrf),
            KIND_TRSM => Some(WireTask::Trsm),
            KIND_SYRK => Some(WireTask::Syrk),
            KIND_GEMM => Some(WireTask::Gemm),
            _unknown => None,
        }
    }
}

/// How a chaos-injected worker dies (fault-matrix tests and the CI chaos
/// smoke). The spec targets one fleet member by its `ASSIGN`ed id, so a
/// whole fleet can inherit the same environment variable and still lose
/// exactly one deterministic worker — respawned replacements get fresh
/// member ids and never re-trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Fleet member id (`ASSIGN` payload) the spec targets.
    pub member: u32,
    /// When to die.
    pub trigger: ChaosTrigger,
    /// Die by `SIGKILL` (out-of-process workers) or by silently dropping
    /// the connection (in-process worker threads, which must not take the
    /// test process down with them).
    pub disconnect: bool,
}

/// When a [`ChaosSpec`] fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosTrigger {
    /// On receipt of the `n`-th `TASK` frame (0-based), before executing
    /// it: `TaskStart(0)` dies while the coordinator is still seeding its
    /// first panel, a mid-range value dies mid-panel.
    TaskStart(u64),
    /// On the first drain-phase frame (`SHUTDOWN` or `HEARTBEAT`): every
    /// task is done, the coordinator is gathering — the departed-worker
    /// path, no replay needed.
    Drain,
}

impl ChaosSpec {
    /// Parse the `XGS_CHAOS_ABORT` format: `member=M,tasks=N` (die on
    /// receipt of the N-th TASK) or `member=M,on=drain`.
    pub fn parse(spec: &str) -> Option<ChaosSpec> {
        let mut member = None;
        let mut trigger = None;
        for part in spec.split(',') {
            let (key, val) = part.trim().split_once('=')?;
            match (key.trim(), val.trim()) {
                ("member", v) => member = v.parse::<u32>().ok(),
                ("tasks", v) => trigger = Some(ChaosTrigger::TaskStart(v.parse().ok()?)),
                ("on", "drain") => trigger = Some(ChaosTrigger::Drain),
                _other => return None,
            }
        }
        Some(ChaosSpec {
            member: member?,
            trigger: trigger?,
            disconnect: false,
        })
    }

    fn fire(&self) -> ChaosDeath {
        if self.disconnect {
            return ChaosDeath::Disconnect;
        }
        // A real SIGKILL — the abrupt death the fault matrix specifies —
        // delivered by the only route std offers; abort() is the fallback
        // and is just as unannounced at the protocol level.
        let pid = std::process::id().to_string();
        let _ = Command::new("kill").args(["-KILL", &pid]).status();
        std::process::abort();
    }
}

/// What [`ChaosSpec::fire`] resolved to (only `Disconnect` ever returns).
enum ChaosDeath {
    Disconnect,
}

/// Knobs of [`worker_loop_with`]; [`Default`] is what `worker --connect`
/// uses unless flags override it.
#[derive(Clone, Copy, Debug)]
pub struct WorkerOptions {
    /// How long to wait for the supervisor's `ASSIGN` after sending
    /// `JOIN`. A coordinator that never acknowledges must not wedge the
    /// worker forever on a fresh socket: expiry is an error the CLI turns
    /// into a nonzero exit with a diagnostic.
    pub handshake_timeout: Duration,
    /// Per-frame stall budget of the main loop. Warm fleets heartbeat
    /// idle members well inside this, so expiry means the supervisor is
    /// gone or wedged. `None` blocks forever (in-process test workers).
    pub idle_timeout: Option<Duration>,
    /// Fault injection, `None` in production.
    pub chaos: Option<ChaosSpec>,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            handshake_timeout: Duration::from_secs(30),
            idle_timeout: Some(Duration::from_secs(300)),
            chaos: None,
        }
    }
}

/// [`worker_loop_with`] with default options and no registration
/// handshake deadline concerns for callers that predate the fleet;
/// in-process test workers use this.
pub fn worker_loop(stream: TcpStream) -> io::Result<u64> {
    worker_loop_with(
        stream,
        WorkerOptions {
            idle_timeout: None,
            ..WorkerOptions::default()
        },
    )
}

/// Serve one coordinator connection: register (`JOIN` → `ASSIGN`), then
/// receive owned tiles, execute assigned tasks, publish written tiles when
/// asked, echo `HEARTBEAT` liveness probes, and exit on `SHUTDOWN` (or a
/// clean coordinator close). Returns the number of tasks executed since
/// the last `HELLO`.
///
/// The worker is deliberately dumb: it has no view of the DAG and trusts
/// the coordinator's stream order for operand availability — which the
/// coordinator guarantees by forwarding operands before dependent tasks on
/// the same FIFO stream.
pub fn worker_loop_with(mut stream: TcpStream, opts: WorkerOptions) -> io::Result<u64> {
    let _ = stream.set_nodelay(true);

    // Registration: advertise capabilities, wait (bounded) for the grid
    // assignment. A supervisor that never answers is an error, not a hang.
    let mut w = WireWriter::new();
    w.put_u8(PROTO_VERSION);
    w.put_u32(xgs_runtime::logical_cores() as u32);
    // Precision mask: bit 0 = f64, bit 1 = f32, bit 2 = f16. Every build
    // of this binary supports all three emulated widths.
    w.put_u8(0b111);
    write_frame(&mut stream, K_JOIN, &w.buf)?;
    let member_id = match read_frame(&mut stream, Some(opts.handshake_timeout), None) {
        Ok((K_ASSIGN, payload)) => {
            if payload.len() < ASSIGN_PAYLOAD_BYTES {
                return Err(proto_err("short ASSIGN frame"));
            }
            let mut r = WireReader::new(&payload);
            let version = r.get_u8().map_err(|e| proto_err(&e.to_string()))?;
            if version != PROTO_VERSION {
                return Err(proto_err(&format!(
                    "supervisor speaks protocol version {version}, this worker requires \
                     {PROTO_VERSION}; upgrade the older binary"
                )));
            }
            let member = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
            let _role = r.get_u8().map_err(|e| proto_err(&e.to_string()))?;
            member
        }
        Ok((other, _)) => {
            return Err(proto_err(&format!(
                "expected ASSIGN to acknowledge JOIN, got frame kind {other}"
            )))
        }
        Err(FrameError::Stalled) => {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "no JOIN acknowledgement within {:?}; supervisor unreachable or wedged",
                    opts.handshake_timeout
                ),
            ))
        }
        Err(e) => return Err(io::Error::other(e.to_string())),
    };
    let chaos = opts.chaos.filter(|c| c.member == member_id);

    let mut store: HashMap<(u32, u32), Tile> = HashMap::new();
    let mut nb: usize = 0;
    let mut executed: u64 = 0;
    // Lifetime task counter: chaos triggers count across `HELLO` resets so
    // a spec fires at most once per process even in multi-run fleets.
    let mut lifetime_executed: u64 = 0;
    loop {
        let (kind, payload) = match read_frame(&mut stream, opts.idle_timeout, None) {
            Ok(f) => f,
            // Coordinator vanished: exit quietly, nothing to clean up.
            Err(FrameError::Closed) => return Ok(executed),
            Err(FrameError::Stalled) => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "no frame within {:?}; supervisor heartbeats have stopped",
                        opts.idle_timeout.unwrap_or_default()
                    ),
                ))
            }
            Err(e) => return Err(io::Error::other(e.to_string())),
        };
        let mut r = WireReader::new(&payload);
        match kind {
            K_HELLO => {
                if payload.len() < HELLO_PAYLOAD_BYTES {
                    return Err(proto_err("short HELLO frame"));
                }
                let version = r.get_u8().map_err(|e| proto_err(&e.to_string()))?;
                if version != PROTO_VERSION {
                    return Err(proto_err(&format!(
                        "coordinator speaks protocol version {version}, this worker requires \
                         {PROTO_VERSION}; upgrade the older binary"
                    )));
                }
                let _worker_id = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let _p = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let _q = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let _nt = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                nb = r.get_u32().map_err(|e| proto_err(&e.to_string()))? as usize;
                let _n = r.get_u64().map_err(|e| proto_err(&e.to_string()))?;
                store.clear();
                executed = 0;
            }
            K_TILE => {
                let i = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let j = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let body = payload
                    .get(8..)
                    .ok_or_else(|| proto_err("short TILE frame"))?;
                let tile = decode_tile(body).map_err(|e| proto_err(&e.to_string()))?;
                count_wire_conversion(&tile, false);
                store.insert((i, j), tile);
            }
            K_TASK => {
                if nb == 0 {
                    return Err(proto_err("TASK before HELLO"));
                }
                if let Some(c) = chaos {
                    if c.trigger == ChaosTrigger::TaskStart(lifetime_executed) {
                        match c.fire() {
                            ChaosDeath::Disconnect => return Ok(executed),
                        }
                    }
                }
                let task_kind = r.get_u8().map_err(|e| proto_err(&e.to_string()))?;
                let task_id = r.get_u64().map_err(|e| proto_err(&e.to_string()))?;
                let k = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let i = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let j = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let tol = r.get_f64().map_err(|e| proto_err(&e.to_string()))?;
                let publish = r.get_u8().map_err(|e| proto_err(&e.to_string()))? != 0;

                let Some(task) = WireTask::from_wire(task_kind) else {
                    return Err(proto_err("unknown task kind"));
                };
                let written = match task {
                    WireTask::Potrf => (k, k),
                    WireTask::Trsm => (i, k),
                    WireTask::Syrk => (i, i),
                    WireTask::Gemm => (i, j),
                };
                let mut target = store
                    .remove(&written)
                    .ok_or_else(|| proto_err("task targets a tile this worker does not hold"))?;
                let operand = |key: (u32, u32)| {
                    store
                        .get(&key)
                        .ok_or_else(|| proto_err("task operand missing from worker store"))
                };

                let t0 = Instant::now();
                let mut ok = 1u8;
                let mut pivot = 0u64;
                match task {
                    WireTask::Potrf => {
                        if let Err(e) = potrf_diag(&mut target) {
                            ok = 0;
                            pivot = e.pivot as u64;
                        }
                    }
                    WireTask::Trsm => trsm_panel(operand((k, k))?, &mut target),
                    WireTask::Syrk => syrk_diag(operand((i, k))?, &mut target),
                    WireTask::Gemm => {
                        gemm_update(operand((i, k))?, operand((j, k))?, &mut target, tol)
                    }
                }
                let elapsed = t0.elapsed().as_secs_f64();

                if publish && ok != 0 {
                    let mut w = WireWriter::new();
                    w.put_u32(written.0);
                    w.put_u32(written.1);
                    encode_tile(&target, &mut w.buf);
                    count_wire_conversion(&target, true);
                    write_frame(&mut stream, K_TILE, &w.buf)?;
                }
                store.insert(written, target);
                executed += 1;

                let mut w = WireWriter::new();
                w.put_u64(task_id);
                w.put_u8(task_kind);
                w.put_u8(ok);
                w.put_u64(pivot);
                w.put_f64(elapsed);
                write_frame(&mut stream, K_DONE, &w.buf)?;
                lifetime_executed += 1;
            }
            K_HEARTBEAT => {
                if let Some(c) = chaos {
                    if c.trigger == ChaosTrigger::Drain {
                        match c.fire() {
                            ChaosDeath::Disconnect => return Ok(executed),
                        }
                    }
                }
                let nonce = r.get_u64().map_err(|e| proto_err(&e.to_string()))?;
                let mut w = WireWriter::new();
                w.put_u64(nonce);
                w.put_u64(executed);
                write_frame(&mut stream, K_HEARTBEAT, &w.buf)?;
            }
            K_SHUTDOWN => {
                if let Some(c) = chaos {
                    if c.trigger == ChaosTrigger::Drain {
                        match c.fire() {
                            ChaosDeath::Disconnect => return Ok(executed),
                        }
                    }
                }
                let mut w = WireWriter::new();
                w.put_u64(executed);
                write_frame(&mut stream, K_BYE, &w.buf)?;
                return Ok(executed);
            }
            K_JOIN | K_ASSIGN => {
                return Err(proto_err(
                    "registration frame after the handshake already completed",
                ))
            }
            other => return Err(proto_err(&format!("unexpected frame kind {other}"))),
        }
    }
}

/// What a worker advertised in its `JOIN` frame.
#[derive(Clone, Copy, Debug)]
pub struct JoinInfo {
    pub version: u8,
    /// `xgs_runtime::logical_cores()` on the worker's host.
    pub cores: u32,
    /// Bit 0 = f64, bit 1 = f32, bit 2 = f16.
    pub precisions: u8,
}

/// Supervisor side of the registration handshake: read the worker's
/// `JOIN` (bounded by `deadline`), verify the protocol version, and
/// answer with an `ASSIGN` carrying `member_id` and the standby/active
/// role. Every acceptor — [`spawn_workers`], [`spawn_local_workers`], the
/// `xgs-fleet` supervisor — admits connections through here, so the
/// handshake cannot drift between entry points.
pub fn admit_worker(
    stream: &mut TcpStream,
    member_id: u32,
    standby: bool,
    deadline: Duration,
) -> Result<JoinInfo, ShardError> {
    let info = match read_frame(stream, Some(deadline), None) {
        Ok((K_JOIN, payload)) => {
            if payload.len() < JOIN_PAYLOAD_BYTES {
                return Err(ShardError::Protocol(format!(
                    "JOIN payload of {} bytes, need at least {JOIN_PAYLOAD_BYTES}",
                    payload.len()
                )));
            }
            let mut r = WireReader::new(&payload);
            let parse = |e: FrameError| ShardError::Protocol(e.to_string());
            let info = JoinInfo {
                version: r.get_u8().map_err(parse)?,
                cores: r.get_u32().map_err(parse)?,
                precisions: r.get_u8().map_err(parse)?,
            };
            if info.version != PROTO_VERSION {
                return Err(ShardError::Protocol(format!(
                    "worker speaks protocol version {}, this supervisor requires \
                     {PROTO_VERSION}; upgrade the older worker binary",
                    info.version
                )));
            }
            info
        }
        Ok((other, _)) => {
            return Err(ShardError::Protocol(format!(
                "expected JOIN as a dialing worker's first frame, got kind {other}"
            )))
        }
        Err(FrameError::Stalled) => {
            return Err(ShardError::Spawn(format!(
                "worker sent no JOIN within {deadline:?}"
            )))
        }
        Err(e) => return Err(ShardError::Spawn(format!("JOIN read failed: {e}"))),
    };
    let mut w = WireWriter::new();
    w.put_u8(PROTO_VERSION);
    w.put_u32(member_id);
    w.put_u8(standby as u8);
    write_frame(stream, K_ASSIGN, &w.buf)
        .map_err(|e| ShardError::Spawn(format!("ASSIGN write failed: {e}")))?;
    Ok(info)
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// One task of the canonical right-looking DAG, in insertion order.
struct TaskMeta {
    kind: u8,
    k: u32,
    i: u32,
    j: u32,
    owner: usize,
    tol: f64,
}

enum Event {
    Tile {
        payload: Vec<u8>,
    },
    Done {
        from: usize,
        task_id: u64,
        kind: u8,
        ok: u8,
        pivot: u64,
        elapsed: f64,
    },
    Bye {
        from: usize,
        tasks: u64,
    },
    Heartbeat {
        from: usize,
        tasks: u64,
    },
    Lost {
        from: usize,
        detail: String,
    },
}

/// Reader thread: drain one worker's frames into the event channel. Exits
/// after `BYE`, on stop, or on connection loss (reported as `Lost`).
/// Each thread sends at most one `Lost`, always as its final event — the
/// coordinator relies on that to run at most one recovery per worker
/// incarnation, with every pre-death frame already processed.
fn reader_thread(worker: usize, mut stream: TcpStream, tx: Sender<Event>, stop: Arc<AtomicBool>) {
    loop {
        match read_frame(&mut stream, None, Some(&stop)) {
            Ok((K_TILE, payload)) => {
                if tx.send(Event::Tile { payload }).is_err() {
                    return;
                }
            }
            Ok((K_HEARTBEAT, payload)) => {
                let mut r = WireReader::new(&payload);
                let (_nonce, tasks) = (r.get_u64().unwrap_or(0), r.get_u64().unwrap_or(0));
                if tx
                    .send(Event::Heartbeat {
                        from: worker,
                        tasks,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok((K_DONE, payload)) => {
                let mut r = WireReader::new(&payload);
                let parsed = (|| -> Result<Event, FrameError> {
                    Ok(Event::Done {
                        from: worker,
                        task_id: r.get_u64()?,
                        kind: r.get_u8()?,
                        ok: r.get_u8()?,
                        pivot: r.get_u64()?,
                        elapsed: r.get_f64()?,
                    })
                })();
                let ev = parsed.unwrap_or_else(|e| Event::Lost {
                    from: worker,
                    detail: format!("bad DONE frame: {e}"),
                });
                let last = matches!(ev, Event::Lost { .. });
                if tx.send(ev).is_err() || last {
                    return;
                }
            }
            Ok((K_BYE, payload)) => {
                let mut r = WireReader::new(&payload);
                let tasks = r.get_u64().unwrap_or(0);
                let _ = tx.send(Event::Bye {
                    from: worker,
                    tasks,
                });
                return;
            }
            Ok((other, _)) => {
                let _ = tx.send(Event::Lost {
                    from: worker,
                    detail: format!("unexpected frame kind {other} from worker"),
                });
                return;
            }
            Err(FrameError::Stopped) => return,
            Err(e) => {
                let _ = tx.send(Event::Lost {
                    from: worker,
                    detail: e.to_string(),
                });
                return;
            }
        }
    }
}

/// Indices into [`Drive::events`], the fleet lifecycle counters the
/// metrics report carries alongside the kernel stats.
const EV_WORKER_DEATH: usize = 0;
const EV_PANEL_REPLAY: usize = 1;
const EV_STANDBY_PROMOTE: usize = 2;

/// Coordinator bookkeeping while a sharded run is in flight.
struct Drive {
    /// Published tiles, keyed `(i, j)`, still in wire encoding so relaying
    /// to other owners is a plain byte copy (decoded once at gather).
    tiles: HashMap<(u32, u32), Vec<u8>>,
    /// Completion order in DONE-processing sequence (validator input).
    order: Vec<TaskOrder>,
    done: Vec<bool>,
    /// Whether a task has *ever* completed: replayed tasks keep their
    /// original [`TaskOrder`] stamp, because consumers already read the
    /// originally published value — re-stamping would fabricate RAW
    /// violations in the post-run validator.
    completed_once: Vec<bool>,
    done_count: usize,
    seq: u64,
    kernels: [KernelStats; 4],
    /// Fleet lifecycle events, indexed by the `EV_*` constants.
    events: [KernelStats; 3],
    workers: Vec<WorkerStats>,
    /// End-of-run executed-task census, from `BYE` (one-shot runs) or the
    /// drain `HEARTBEAT` echo (persistent runs).
    bye: Vec<Option<u64>>,
    /// Workers that died after every task completed: the factor is fully
    /// published, so they are recorded as deaths but not replaced.
    departed: Vec<bool>,
    /// How many worker recoveries ran (0 on the happy path).
    recoveries: u32,
    /// Earliest global pivot failure, if any.
    failed: Option<usize>,
    /// Frames/bytes received from workers (TILE publishes, DONE, BYE).
    census: WireCensus,
}

impl Drive {
    fn handle(
        &mut self,
        ev: Event,
        meta: &[TaskMeta],
        layout: &xgs_tile::TileLayout,
    ) -> Result<(), ShardError> {
        match ev {
            Event::Tile { payload } => {
                self.census.record(K_TILE, payload.len());
                let mut r = WireReader::new(&payload);
                let i = r
                    .get_u32()
                    .map_err(|e| ShardError::Protocol(e.to_string()))?;
                let j = r
                    .get_u32()
                    .map_err(|e| ShardError::Protocol(e.to_string()))?;
                self.tiles.insert((i, j), payload);
                Ok(())
            }
            Event::Done {
                from,
                task_id,
                kind,
                ok,
                pivot,
                elapsed,
            } => {
                self.census.record(K_DONE, DONE_PAYLOAD_BYTES);
                let idx = task_id as usize;
                let m = meta.get(idx).ok_or_else(|| {
                    ShardError::Protocol(format!("unexpected DONE for task {task_id}"))
                })?;
                if m.kind != kind || m.owner != from || self.done[idx] {
                    return Err(ShardError::Protocol(format!(
                        "mismatched or duplicate DONE for task {task_id}"
                    )));
                }
                self.done[idx] = true;
                self.done_count += 1;
                if !self.completed_once[idx] {
                    self.completed_once[idx] = true;
                    self.order[idx] = TaskOrder {
                        start_seq: 2 * self.seq,
                        end_seq: 2 * self.seq + 1,
                    };
                    self.seq += 1;
                }
                self.kernels[kind as usize].record(elapsed);
                self.workers[from].busy_seconds += elapsed;
                self.workers[from].tasks += 1;
                if ok == 0 {
                    let global = layout.tile_range(m.k as usize).start + pivot as usize;
                    self.failed = Some(self.failed.map_or(global, |p| p.min(global)));
                }
                Ok(())
            }
            Event::Bye { from, tasks } => {
                self.census.record(K_BYE, BYE_PAYLOAD_BYTES);
                self.bye[from] = Some(tasks);
                Ok(())
            }
            Event::Heartbeat { from, tasks } => {
                self.census.record(K_HEARTBEAT, HEARTBEAT_ECHO_BYTES);
                self.bye[from] = Some(tasks);
                Ok(())
            }
            Event::Lost { from, detail } => Err(ShardError::WorkerLost {
                worker: from,
                detail,
            }),
        }
    }
}

/// One frame the coordinator sent to a specific worker, minus liveness
/// traffic: the logical prefix a replacement must replay. Everything
/// needed to rebuild the frame is re-derivable — seeds re-encode from the
/// (untouched until gather) factor or, when the tile has since been
/// finally published, from the coordinator's published-tile map; forwards
/// re-send published bytes; tasks re-encode from `meta`, skipping those
/// whose written tile is already final.
#[derive(Clone, Copy)]
enum LoggedFrame {
    Seed { i: u32, j: u32 },
    Forward { i: u32, j: u32 },
    Task { id: usize },
}

/// Where a replacement worker came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplacementOrigin {
    /// A standby admitted earlier, promoted into the grid slot.
    Standby,
    /// A worker spawned (or dialed in) after the death.
    Respawn,
}

/// A replacement connection handed to the coordinator mid-run.
#[derive(Debug)]
pub struct ReplacementWorker {
    /// Registered connection (the `JOIN`/`ASSIGN` handshake already ran).
    pub stream: TcpStream,
    pub origin: ReplacementOrigin,
}

/// Supplies replacement workers during [`TiledFactor::factorize_elastic`].
/// Returning `None` declines: the run fails with the original
/// [`ShardError::WorkerLost`], exactly like the pre-elastic coordinator.
pub trait ReplacementSource {
    fn replace(&mut self, worker: usize) -> Option<ReplacementWorker>;
}

/// The spawn-only behavior: no replacements, any death fails the run.
pub struct NoReplacement;

impl ReplacementSource for NoReplacement {
    fn replace(&mut self, _worker: usize) -> Option<ReplacementWorker> {
        None
    }
}

struct Coordinator<'a> {
    streams: &'a mut [TcpStream],
    rx: Receiver<Event>,
    deadline: Instant,
    /// Frames/bytes sent to workers (HELLO, TILE seeds/forwards, TASK,
    /// SHUTDOWN).
    census: WireCensus,
    /// Per-worker logical frame log (current incarnation), the replay
    /// source on recovery.
    sent_log: Vec<Vec<LoggedFrame>>,
    /// TASK frames sent to each worker's current incarnation — what its
    /// end-of-run census must report back.
    sent_tasks: Vec<u64>,
    /// Tasks dispatched so far, globally (recovery-plan input).
    dispatched: Vec<bool>,
    /// Workers whose socket failed a write: subsequent writes are
    /// swallowed (but still logged) until the reader surfaces the death
    /// as a `Lost` event and recovery swaps the stream. The frames are in
    /// the log, so the replay covers them.
    dead: Vec<bool>,
}

impl Coordinator<'_> {
    fn send(&mut self, worker: usize, kind: u8, payload: &[u8]) -> Result<(), ShardError> {
        self.census.record(kind, payload.len());
        if self.dead[worker] {
            return Ok(());
        }
        if let Err(e) = write_frame(&mut self.streams[worker], kind, payload) {
            // Don't fail here: the worker's reader thread delivers the
            // authoritative `Lost` event (after any frames the worker got
            // out before dying), and recovery — or the no-replacement
            // error path — runs from `wait_until`. Until then the stream
            // is write-dead and frames land only in the log.
            let _ = e;
            self.dead[worker] = true;
        }
        Ok(())
    }

    fn log(&mut self, worker: usize, frame: LoggedFrame) {
        if let LoggedFrame::Task { .. } = frame {
            self.sent_tasks[worker] += 1;
        }
        self.sent_log[worker].push(frame);
    }
}

/// Everything [`recover`] needs besides the coordinator/drive pair.
struct RecoveryCtx<'s> {
    source: &'s mut dyn ReplacementSource,
    readers: &'s mut Vec<std::thread::JoinHandle<()>>,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
    /// Tile `(i, j)` → id of its finally-publishing task (`POTRF` for the
    /// diagonal, the step-`j` `TRSM` for panel tiles): a tile is *final*
    /// exactly when that task has completed.
    publisher: HashMap<(u32, u32), usize>,
    /// `(p, q, nt, workers)`.
    grid: (usize, usize, usize, usize),
}

/// Pump events until `pred` holds (checked after each event). A `Lost`
/// event routes through [`recover`] instead of failing the run.
#[allow(clippy::too_many_arguments)]
fn wait_until(
    f: &TiledFactor,
    co: &mut Coordinator,
    drive: &mut Drive,
    rec: &mut RecoveryCtx,
    meta: &[TaskMeta],
    layout: &xgs_tile::TileLayout,
    phase: &'static str,
    mut pred: impl FnMut(&Drive) -> bool,
) -> Result<(), ShardError> {
    while !pred(drive) {
        let remaining = co.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ShardError::Timeout { phase });
        }
        match co.rx.recv_timeout(remaining) {
            Ok(Event::Lost { from, detail }) => {
                recover(f, co, drive, rec, meta, layout, from, detail)?
            }
            Ok(ev) => drive.handle(ev, meta, layout)?,
            Err(RecvTimeoutError::Timeout) => return Err(ShardError::Timeout { phase }),
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ShardError::Protocol(
                    "all worker connections closed unexpectedly".into(),
                ))
            }
        }
    }
    Ok(())
}

fn hello_payload(worker: usize, layout: &TileLayout, p: usize, q: usize, nt: usize) -> Vec<u8> {
    let mut h = WireWriter::new();
    h.put_u8(PROTO_VERSION);
    h.put_u32(worker as u32);
    h.put_u32(p as u32);
    h.put_u32(q as u32);
    h.put_u32(nt as u32);
    h.put_u32(layout.tile_size() as u32);
    h.put_u64(layout.n() as u64);
    h.buf
}

/// Encode the coordinator's stored tile `(i, j)` as a seeding TILE frame.
fn seed_payload(f: &TiledFactor, i: usize, j: usize) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(i as u32);
    w.put_u32(j as u32);
    f.with_tile(i, j, |t| {
        encode_tile(t, &mut w.buf);
        count_wire_conversion(t, true);
    });
    w.buf
}

fn task_payload(id: usize, m: &TaskMeta, publish: bool) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(m.kind);
    w.put_u64(id as u64);
    w.put_u32(m.k);
    w.put_u32(m.i);
    w.put_u32(m.j);
    w.put_f64(m.tol);
    w.put_u8(publish as u8);
    w.buf
}

/// The tile task `m` writes.
fn write_tile(m: &TaskMeta) -> (u32, u32) {
    match m.kind {
        KIND_POTRF => (m.k, m.k),
        KIND_TRSM => (m.i, m.k),
        KIND_SYRK => (m.i, m.i),
        // GEMM and (unreachable for locally built meta) anything else.
        _kind_gemm_or_unknown => (m.i, m.j),
    }
}

/// Recover from the death of `lost`'s current incarnation.
///
/// If every task has already completed, the factor is fully published and
/// the worker is only marked departed (the gather needs nothing further
/// from it). Otherwise a replacement is taken from the source and the lost
/// shard's state is rebuilt by replaying the worker's logged frame prefix:
/// tiles whose final value was already published are seeded from the
/// coordinator's published bytes ("replay from the last published tile
/// versions"), everything else re-runs. Workers are deterministic
/// functions of their FIFO input stream, so the rebuilt state — and the
/// finished factor — is bitwise identical to an undisturbed run.
///
/// The replay is validated before a single frame is sent:
/// `check_shard_plan` re-proves the base plan and
/// [`xgs_analysis::check_recovery_plan`] replays the recovery events
/// against it (seed/forward legality, operand versions, re-dispatch
/// completeness).
#[allow(clippy::too_many_arguments)]
fn recover(
    f: &TiledFactor,
    co: &mut Coordinator,
    drive: &mut Drive,
    rec: &mut RecoveryCtx,
    meta: &[TaskMeta],
    layout: &xgs_tile::TileLayout,
    lost: usize,
    detail: String,
) -> Result<(), ShardError> {
    let t_rec = Instant::now();
    if drive.departed[lost] {
        return Ok(());
    }
    co.dead[lost] = true;
    if drive.done_count == meta.len() {
        // Death during gather/drain: every task is done and every final
        // tile is already in `drive.tiles` — record the death, skip the
        // worker in the census, and let the run finish without it.
        drive.departed[lost] = true;
        drive.events[EV_WORKER_DEATH].record(0.0);
        return Ok(());
    }
    let Some(repl) = rec.source.replace(lost) else {
        return Err(ShardError::WorkerLost {
            worker: lost,
            detail,
        });
    };
    drive.events[EV_WORKER_DEATH].record(0.0);
    let (p, q, nt, workers) = rec.grid;

    // Tiles whose final publishing task has completed. Stable across the
    // resets below: only non-final-writing tasks are reset, and they are
    // never a tile's final publisher.
    let final_tiles: std::collections::HashSet<(u32, u32)> = rec
        .publisher
        .iter()
        .filter(|&(_, &id)| drive.done[id])
        .map(|(&t, _)| t)
        .collect();

    // Build the recovery event list in the original per-worker frame
    // order, and validate it against the re-proven base plan before any
    // frame is sent.
    let old_log = std::mem::take(&mut co.sent_log[lost]);
    let mut revents = Vec::with_capacity(old_log.len());
    for fr in &old_log {
        match *fr {
            LoggedFrame::Seed { i, j } => {
                let tile = (i as usize, j as usize);
                revents.push(if final_tiles.contains(&(i, j)) {
                    xgs_analysis::RecoveryEvent::SeedPublished { tile }
                } else {
                    xgs_analysis::RecoveryEvent::SeedOriginal { tile }
                });
            }
            LoggedFrame::Forward { i, j } => {
                revents.push(xgs_analysis::RecoveryEvent::Forward {
                    tile: (i as usize, j as usize),
                });
            }
            LoggedFrame::Task { id } => {
                if !final_tiles.contains(&write_tile(&meta[id])) {
                    revents.push(xgs_analysis::RecoveryEvent::Replay { task: id });
                }
            }
        }
    }
    let base = build_shard_plan(f, meta, nt, p, q, workers);
    xgs_analysis::check_shard_plan(&base)
        .map_err(|e| ShardError::Protocol(format!("recovery base plan rejected: {e}")))?;
    let rplan = xgs_analysis::RecoveryPlan {
        lost,
        completed: drive.done.clone(),
        dispatched: co.dispatched.clone(),
        events: revents,
    };
    xgs_analysis::check_recovery_plan(&base, &rplan)
        .map_err(|e| ShardError::Protocol(format!("recovery plan rejected: {e}")))?;

    // Reset completed tasks the replacement will re-run, so their fresh
    // DONEs are accepted (their original order stamps stay — consumers
    // read the originally published values).
    for fr in &old_log {
        if let LoggedFrame::Task { id } = *fr {
            if !final_tiles.contains(&write_tile(&meta[id])) && drive.done[id] {
                drive.done[id] = false;
                drive.done_count -= 1;
            }
        }
    }

    // Swap in the replacement and give it a reader.
    co.streams[lost] = repl.stream;
    co.dead[lost] = false;
    co.sent_tasks[lost] = 0;
    let _ = co.streams[lost].set_nodelay(true);
    match co.streams[lost].try_clone() {
        Ok(clone) => {
            let tx = rec.tx.clone();
            let stop = Arc::clone(&rec.stop);
            rec.readers.push(std::thread::spawn(move || {
                reader_thread(lost, clone, tx, stop)
            }));
        }
        Err(e) => {
            // Treat an uncloneable replacement as instantly dead: the
            // synthetic Lost re-enters recovery for another replacement.
            let tx = rec.tx.clone();
            let synth = format!("replacement stream clone failed: {e}");
            rec.readers.push(std::thread::spawn(move || {
                let _ = tx.send(Event::Lost {
                    from: lost,
                    detail: synth,
                });
            }));
        }
    }

    // Replay the validated plan: HELLO resets the worker, then the logged
    // prefix with final tiles seeded from their published bytes and
    // final-writing tasks skipped.
    co.send(lost, K_HELLO, &hello_payload(lost, layout, p, q, nt))?;
    let mut panels: Vec<u32> = Vec::new();
    for fr in old_log {
        match fr {
            LoggedFrame::Seed { i, j } => {
                if final_tiles.contains(&(i, j)) {
                    let payload = drive.tiles.get(&(i, j)).cloned().ok_or_else(|| {
                        ShardError::Protocol(format!(
                            "final tile ({i},{j}) missing from the published map"
                        ))
                    })?;
                    co.send(lost, K_TILE, &payload)?;
                } else {
                    let payload = seed_payload(f, i as usize, j as usize);
                    co.send(lost, K_TILE, &payload)?;
                }
                co.log(lost, fr);
            }
            LoggedFrame::Forward { i, j } => {
                let payload = drive.tiles.get(&(i, j)).cloned().ok_or_else(|| {
                    ShardError::Protocol(format!(
                        "forwarded tile ({i},{j}) missing from the published map"
                    ))
                })?;
                co.send(lost, K_TILE, &payload)?;
                co.log(lost, fr);
            }
            LoggedFrame::Task { id } => {
                let m = &meta[id];
                if final_tiles.contains(&write_tile(m)) {
                    continue;
                }
                let publish = matches!(m.kind, KIND_POTRF | KIND_TRSM);
                let payload = task_payload(id, m, publish);
                co.send(lost, K_TASK, &payload)?;
                co.log(lost, fr);
                if !panels.contains(&m.k) {
                    panels.push(m.k);
                }
            }
        }
    }
    // One panel_replay event per affected step, stamped with the recovery
    // wall time so the report shows what the death cost.
    let dt = t_rec.elapsed().as_secs_f64();
    for _k in &panels {
        drive.events[EV_PANEL_REPLAY].record(dt);
    }
    if repl.origin == ReplacementOrigin::Standby {
        drive.events[EV_STANDBY_PROMOTE].record(0.0);
    }
    drive.recoveries += 1;
    Ok(())
}

impl TiledFactor {
    /// Factorize by fanning the DAG out over worker processes already
    /// connected on `streams` (one per worker, e.g. from
    /// [`spawn_workers`] or [`spawn_local_workers`]).
    ///
    /// Drives exactly one factorization, then shuts the workers down
    /// (`SHUTDOWN` → `BYE` drain) and closes the sockets. Any worker death
    /// fails the run — this is [`TiledFactor::factorize_elastic`] with
    /// [`NoReplacement`]. Tile `(i, j)` tasks run on worker
    /// `block_cyclic_owner(i, j, p, q)`; per-tile kernel order matches
    /// [`TiledFactor::factorize_seq`], so the result is bitwise identical
    /// to the single-process factor.
    pub fn factorize_sharded(
        &mut self,
        mut streams: Vec<TcpStream>,
        opts: &ShardOptions,
    ) -> Result<ShardReport, ShardError> {
        let mut none = NoReplacement;
        let result = self.factorize_elastic(&mut streams, opts, &mut none);
        for s in streams.iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        result
    }

    /// Factorize over `streams` with elastic worker recovery: when a
    /// worker dies mid-run, `source` supplies a replacement (a promoted
    /// standby or a fresh respawn) and the coordinator replays the lost
    /// shard's frame prefix from the last published tile versions instead
    /// of failing — see [`recover`]. With [`ShardOptions::persistent`]
    /// the fleet stays warm afterwards: no `SHUTDOWN`, sockets stay open,
    /// and the executed-task census rides a `HEARTBEAT` exchange.
    ///
    /// On error (and always when not persistent) the sockets are shut
    /// down before returning, so a failed run can never leave a worker
    /// half-driven.
    pub fn factorize_elastic(
        &mut self,
        streams: &mut Vec<TcpStream>,
        opts: &ShardOptions,
        source: &mut dyn ReplacementSource,
    ) -> Result<ShardReport, ShardError> {
        let workers = streams.len();
        let (p, q) = (opts.grid_p, opts.grid_q);
        if p * q != workers || workers == 0 {
            return Err(ShardError::Protocol(format!(
                "grid {p}x{q} does not match {workers} workers"
            )));
        }
        let t0 = Instant::now();
        let conv0 = conversion_counts();
        let layout = self.layout;
        let nt = layout.nt();

        // Canonical DAG in insertion order: task_id == index. Also the
        // access lists the validator re-derives hazard edges from.
        let (meta, accesses) = canonical_tasks(self, p, q);
        let total = meta.len();
        let census = task_census(meta.iter().map(|m| m.owner), workers);

        // Static safety gate before any worker sees a frame: replay the
        // exact emission plan (owner placement, census, operand versions,
        // forward/publish protocol, TILE frame bytes) and cross-check the
        // statically derived hazard edges against the post-run validator's
        // derivation.
        let mut planned_tiles: Option<(u64, u64)> = None;
        if opts.precheck {
            let plan = build_shard_plan(self, &meta, nt, p, q, workers);
            let summary = xgs_analysis::check_shard_plan(&plan)
                .map_err(|e| ShardError::Protocol(format!("shard plan precheck: {e}")))?;
            for (w, (&got, &want)) in summary.per_worker.iter().zip(census.iter()).enumerate() {
                if got != want {
                    return Err(ShardError::Protocol(format!(
                        "shard plan precheck: plan places {got} tasks on worker {w}, \
                         census says {want}"
                    )));
                }
            }
            crosscheck_static_edges(&accesses)
                .map_err(|e| ShardError::Protocol(format!("shard plan precheck: {e}")))?;
            // With static formats (every stored tile dense) the plan's TILE
            // byte budget is exact, so the measured census must hit it to
            // the byte. TLR ranks drift during the trailing update, so
            // there the budget is only an estimate and the check is off.
            if self.tiles.iter().all(|t| t.lock().is_dense()) {
                planned_tiles = Some((summary.tile_frames, summary.tile_bytes));
            }
        }

        // Spin up reader threads over cloned handles; writes stay on the
        // original streams in this thread.
        let stop = Arc::new(AtomicBool::new(false));
        // Reader threads must never block sending into the coordinator,
        // which may itself be blocked writing to a worker — a bounded
        // fan-in channel here can deadlock the whole run. Depth is bounded
        // in practice by frames in flight (one publish + one DONE per task).
        // xgs-lint: allow(no-unbounded-channel-send): bounding would deadlock; see above
        let (tx, rx) = channel();
        let mut readers = Vec::with_capacity(workers);
        for (w, s) in streams.iter().enumerate() {
            let _ = s.set_nodelay(true);
            let clone = s
                .try_clone()
                .map_err(|e| ShardError::Spawn(e.to_string()))?;
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                reader_thread(w, clone, tx, stop)
            }));
        }

        // Tile (i, j) -> the task whose completion makes it final.
        let mut publisher: HashMap<(u32, u32), usize> = HashMap::new();
        for (id, m) in meta.iter().enumerate() {
            match m.kind {
                KIND_POTRF => {
                    publisher.insert((m.k, m.k), id);
                }
                KIND_TRSM => {
                    publisher.insert((m.i, m.k), id);
                }
                _other => {}
            }
        }

        let mut drive = Drive {
            tiles: HashMap::new(),
            order: vec![TaskOrder::default(); total],
            done: vec![false; total],
            completed_once: vec![false; total],
            done_count: 0,
            seq: 0,
            kernels: [
                KernelStats::new("potrf"),
                KernelStats::new("trsm"),
                KernelStats::new("syrk"),
                KernelStats::new("gemm"),
            ],
            events: [
                KernelStats::new("worker_death"),
                KernelStats::new("panel_replay"),
                KernelStats::new("standby_promote"),
            ],
            workers: vec![WorkerStats::default(); workers],
            bye: vec![None; workers],
            departed: vec![false; workers],
            recoveries: 0,
            failed: None,
            census: WireCensus::default(),
        };
        let mut co = Coordinator {
            streams,
            rx,
            deadline: t0 + opts.deadline,
            census: WireCensus::default(),
            sent_log: vec![Vec::new(); workers],
            sent_tasks: vec![0; workers],
            dispatched: vec![false; total],
            dead: vec![false; workers],
        };
        let mut rec = RecoveryCtx {
            source,
            readers: &mut readers,
            tx,
            stop: Arc::clone(&stop),
            publisher,
            grid: (p, q, nt, workers),
        };

        let result = run_steps(
            self,
            &mut co,
            &mut drive,
            &mut rec,
            &meta,
            p,
            q,
            nt,
            workers,
            opts.persistent,
        );
        drop(rec);

        // Reader threads never outlive the run: the stop flag unblocks
        // them even when the sockets stay open for a warm fleet. Sockets
        // are torn down unless this persistent run succeeded.
        stop.store(true, Ordering::Release);
        let warm = opts.persistent && result.is_ok();
        if !warm {
            for s in co.streams.iter() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        let sent_tasks = co.sent_tasks.clone();
        drop(co);
        for r in readers {
            let _ = r.join();
        }
        let mut report = result?;

        // Census: each surviving incarnation must report back exactly the
        // TASK frames the coordinator sent it. Workers that departed after
        // the last DONE have nothing left to prove. Without recoveries the
        // sent counts are the block-cyclic census itself.
        for (w, &want) in sent_tasks.iter().enumerate() {
            if drive.departed[w] {
                continue;
            }
            let got = drive.bye[w];
            if got != Some(want) {
                return Err(ShardError::Protocol(format!(
                    "worker {w} executed {got:?} tasks, coordinator sent {want}"
                )));
            }
        }
        if drive.recoveries == 0 {
            debug_assert_eq!(sent_tasks, census);
        }
        report.worker_tasks = census;
        report.metrics.conversions = conversion_counts().since(&conv0);

        // The bytes the plan budgeted are the bytes the wire carried — a
        // mismatch means the encoder and the static model disagree about
        // the format of some tile, which is exactly the bug class the
        // f64-everywhere regression was. Replays legitimately resend TILE
        // frames, so the exact-byte check only binds undisturbed runs.
        if let (Some((frames, bytes)), 0) = (planned_tiles, drive.recoveries) {
            let (got_frames, got_bytes) = report
                .metrics
                .wire
                .iter()
                .find(|w| w.kind == "tile")
                .map_or((0, 0), |w| (w.frames, w.bytes));
            if (got_frames, got_bytes) != (frames, bytes) {
                return Err(ShardError::Protocol(format!(
                    "wire census mismatch: plan budgeted {frames} TILE frames / {bytes} bytes, \
                     coordinator observed {got_frames} frames / {got_bytes} bytes"
                )));
            }
        }

        if opts.validate {
            let summary = check_schedule(&accesses, &drive.order).map_err(|v| {
                ShardError::Protocol(format!(
                    "sharded completion order violates {} hazard edges",
                    v.len()
                ))
            })?;
            report.metrics.validation = Some(summary);
        }
        report.metrics.wall_seconds = t0.elapsed().as_secs_f64();
        Ok(report)
    }
}

/// The per-step drive loop, separated so `factorize_elastic` can run the
/// teardown on every exit path.
#[allow(clippy::too_many_arguments)]
fn run_steps(
    f: &mut TiledFactor,
    co: &mut Coordinator,
    drive: &mut Drive,
    rec: &mut RecoveryCtx,
    meta: &[TaskMeta],
    p: usize,
    q: usize,
    nt: usize,
    workers: usize,
    persistent: bool,
) -> Result<ShardReport, ShardError> {
    let layout = f.layout;
    let total = meta.len();

    // HELLO + initial tile distribution: each worker gets the stored tiles
    // it owns, before any task can reference them (stream FIFO). HELLO is
    // not logged — a replacement's replay opens with its own HELLO.
    for w in 0..workers {
        let payload = hello_payload(w, &layout, p, q, nt);
        co.send(w, K_HELLO, &payload)?;
    }
    for j in 0..nt {
        for i in j..nt {
            let payload = seed_payload(f, i, j);
            let owner = block_cyclic_owner(i, j, p, q);
            co.send(owner, K_TILE, &payload)?;
            co.log(
                owner,
                LoggedFrame::Seed {
                    i: i as u32,
                    j: j as u32,
                },
            );
        }
    }

    let send_task = |co: &mut Coordinator, id: usize, m: &TaskMeta, publish: bool| {
        co.dispatched[id] = true;
        let payload = task_payload(id, m, publish);
        co.send(m.owner, K_TASK, &payload)?;
        co.log(m.owner, LoggedFrame::Task { id });
        Ok::<(), ShardError>(())
    };
    let forward = |co: &mut Coordinator, drive: &Drive, key: (u32, u32), to: usize| {
        let payload = drive.tiles.get(&key).ok_or_else(|| {
            ShardError::Protocol(format!(
                "tile ({},{}) forwarded before its producer published it",
                key.0, key.1
            ))
        })?;
        co.send(to, K_TILE, payload)?;
        co.log(to, LoggedFrame::Forward { i: key.0, j: key.1 });
        Ok::<(), ShardError>(())
    };
    // Index of task `m` in canonical order, maintained incrementally.
    let mut next_id = 0usize;

    for k in 0..nt {
        // POTRF(k): publish always — its output is both the step's operand
        // and the final value of the diagonal tile.
        let potrf_id = next_id;
        send_task(co, potrf_id, &meta[potrf_id], true)?;
        next_id += 1;
        wait_until(f, co, drive, rec, meta, &layout, "potrf", |d| {
            d.done[potrf_id] || d.failed.is_some()
        })?;
        if let Some(pivot) = drive.failed {
            return Err(ShardError::Factor(FactorError::NotPositiveDefinite {
                pivot,
            }));
        }

        // Forward L_kk to every *other* owner of a TRSM in this panel,
        // then release the TRSMs (publish: a panel tile's final write).
        let trsm_ids: Vec<usize> = (next_id..next_id + (nt - 1 - k)).collect();
        next_id += trsm_ids.len();
        for o in kk_forward_targets(k, nt, p, q, workers) {
            forward(co, drive, (k as u32, k as u32), o)?;
        }
        for &id in &trsm_ids {
            send_task(co, id, &meta[id], true)?;
        }
        wait_until(f, co, drive, rec, meta, &layout, "trsm", |d| {
            trsm_ids.iter().all(|&id| d.done[id])
        })?;

        // Forward each finished panel (r, k) to every other worker that
        // consumes it this step: syrk(r,r), gemm(r,j) as A, gemm(i,r) as B.
        for r in k + 1..nt {
            for o in panel_forward_targets(k, r, nt, p, q, workers) {
                forward(co, drive, (r as u32, k as u32), o)?;
            }
        }

        // Release the trailing update; no barrier — the next step's POTRF
        // is ordered behind these on its owner's FIFO stream, and their
        // DONEs drain while later steps run.
        for i in k + 1..nt {
            for _j in k + 1..=i {
                send_task(co, next_id, &meta[next_id], false)?;
                next_id += 1;
            }
        }
    }
    debug_assert_eq!(next_id, total);

    wait_until(f, co, drive, rec, meta, &layout, "drain", |d| {
        d.done_count == total
    })?;

    // Gather: every stored tile's final write is a published POTRF (diag)
    // or TRSM (panel) output, so the tile map now holds the whole factor.
    for j in 0..nt {
        for i in j..nt {
            let payload = drive
                .tiles
                .get(&(i as u32, j as u32))
                .ok_or_else(|| ShardError::Protocol(format!("tile ({i},{j}) never published")))?;
            let body = payload
                .get(8..)
                .ok_or_else(|| ShardError::Protocol(format!("short published tile ({i},{j})")))?;
            let tile = decode_tile(body).map_err(|e| ShardError::Protocol(e.to_string()))?;
            count_wire_conversion(&tile, false);
            *f.tiles[layout.stored_index(i, j)].lock() = tile;
        }
    }

    // End-of-run census. One-shot runs terminate the workers (SHUTDOWN →
    // BYE); a persistent fleet instead pings each live worker once with a
    // HEARTBEAT whose echo carries the same executed-task count, leaving
    // the connection warm for the next factorization. Workers that
    // departed after the final DONE have nothing to report.
    if persistent {
        for w in 0..workers {
            if drive.departed[w] {
                continue;
            }
            let mut hb = WireWriter::new();
            hb.put_u64(w as u64);
            co.send(w, K_HEARTBEAT, &hb.buf)?;
        }
    } else {
        for w in 0..workers {
            if drive.departed[w] {
                continue;
            }
            co.send(w, K_SHUTDOWN, &[])?;
        }
    }
    let phase = if persistent { "census" } else { "shutdown" };
    wait_until(f, co, drive, rec, meta, &layout, phase, |d| {
        d.bye
            .iter()
            .zip(d.departed.iter())
            .all(|(b, &dep)| dep || b.is_some())
    })?;

    let mut kernels: Vec<KernelStats> = drive
        .kernels
        .iter()
        .filter(|k| k.count > 0)
        .copied()
        .collect();
    kernels.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
    // Fleet lifecycle events ride the same kernel-stats schema (count +
    // seconds), trailing the compute kernels, so `metrics_diff
    // --assert-counts worker_death,panel_replay` can hold a chaos run to
    // an exact recovery profile.
    kernels.extend(drive.events.iter().filter(|e| e.count > 0).copied());
    // One census for both directions: coordinator-side sends plus the
    // worker frames the reader threads drained.
    let mut wire = co.census;
    wire.merge(&drive.census);
    Ok(ShardReport {
        metrics: MetricsReport {
            wall_seconds: 0.0, // stamped by the caller
            tasks: total,
            workers,
            kernels,
            worker_stats: drive.workers.clone(),
            wire: wire.to_stats(),
            ..MetricsReport::default()
        },
        worker_tasks: Vec::new(), // stamped by the caller from the census
    })
}

/// The canonical right-looking Cholesky task list over `f`'s tile grid:
/// insertion order is task id, owners follow [`block_cyclic_owner`] on the
/// `p x q` grid. Second element is the per-task access lists the hazard
/// validator (and the static cross-check) re-derives edges from.
fn canonical_tasks(f: &TiledFactor, p: usize, q: usize) -> (Vec<TaskMeta>, Vec<Vec<Access>>) {
    let layout = f.layout;
    let nt = layout.nt();
    let mut meta: Vec<TaskMeta> = Vec::new();
    let mut accesses: Vec<Vec<Access>> = Vec::new();
    let data = |i: usize, j: usize| DataId(layout.stored_index(i, j) as u64);
    for k in 0..nt {
        meta.push(TaskMeta {
            kind: KIND_POTRF,
            k: k as u32,
            i: k as u32,
            j: k as u32,
            owner: block_cyclic_owner(k, k, p, q),
            tol: 0.0,
        });
        accesses.push(vec![Access::write(data(k, k))]);
        for i in k + 1..nt {
            meta.push(TaskMeta {
                kind: KIND_TRSM,
                k: k as u32,
                i: i as u32,
                j: k as u32,
                owner: block_cyclic_owner(i, k, p, q),
                tol: 0.0,
            });
            accesses.push(vec![Access::read(data(k, k)), Access::write(data(i, k))]);
        }
        for i in k + 1..nt {
            for j in k + 1..=i {
                if i == j {
                    meta.push(TaskMeta {
                        kind: KIND_SYRK,
                        k: k as u32,
                        i: i as u32,
                        j: i as u32,
                        owner: block_cyclic_owner(i, i, p, q),
                        tol: 0.0,
                    });
                    accesses.push(vec![Access::read(data(i, k)), Access::write(data(i, i))]);
                } else {
                    meta.push(TaskMeta {
                        kind: KIND_GEMM,
                        k: k as u32,
                        i: i as u32,
                        j: j as u32,
                        owner: block_cyclic_owner(i, j, p, q),
                        tol: f.tols[layout.stored_index(i, j)],
                    });
                    accesses.push(vec![
                        Access::read(data(i, k)),
                        Access::read(data(j, k)),
                        Access::write(data(i, j)),
                    ]);
                }
            }
        }
    }
    (meta, accesses)
}

/// Workers, other than `(k, k)`'s owner, that run a TRSM in panel `k` and
/// therefore need `L_kk` forwarded. First-consumer order, deduplicated.
/// Shared by [`run_steps`] (emission) and [`build_shard_plan`] (precheck)
/// so the checked plan is the executed plan by construction.
fn kk_forward_targets(k: usize, nt: usize, p: usize, q: usize, workers: usize) -> Vec<usize> {
    let mut sent = vec![false; workers];
    sent[block_cyclic_owner(k, k, p, q)] = true;
    let mut out = Vec::new();
    for i in k + 1..nt {
        let o = block_cyclic_owner(i, k, p, q);
        if !sent[o] {
            sent[o] = true;
            out.push(o);
        }
    }
    out
}

/// Workers, other than `(r, k)`'s owner, that consume the finished panel
/// tile `(r, k)` in step `k`'s trailing update: SYRK `(r, r)`, GEMM
/// `(r, j)` as the A operand, GEMM `(i, r)` as the B operand.
/// First-consumer order, deduplicated. Shared like [`kk_forward_targets`].
fn panel_forward_targets(
    k: usize,
    r: usize,
    nt: usize,
    p: usize,
    q: usize,
    workers: usize,
) -> Vec<usize> {
    let mut sent = vec![false; workers];
    sent[block_cyclic_owner(r, k, p, q)] = true;
    let mut out = Vec::new();
    let mut consumers = vec![block_cyclic_owner(r, r, p, q)];
    for j in k + 1..r {
        consumers.push(block_cyclic_owner(r, j, p, q));
    }
    for i in r + 1..nt {
        consumers.push(block_cyclic_owner(i, r, p, q));
    }
    for o in consumers {
        if !sent[o] {
            sent[o] = true;
            out.push(o);
        }
    }
    out
}

/// Closed-form projection of a sharded run's whole wire traffic, per
/// frame kind: replays exactly the frame sequence [`run_steps`] emits
/// (HELLO per worker, tile seeding, per step the POTRF publish, `L_kk`
/// forwards, TRSM publishes and panel forwards, one TASK/DONE pair per
/// task, SHUTDOWN/BYE per worker) over the block-cyclic owner map, with
/// TILE frame sizes from `meta`'s per-tile formats
/// ([`tile_wire_frame_bytes`]). For static formats this equals the
/// measured census byte-for-byte — `metrics_diff --assert-wire-equal
/// tile` holds a real run to it in CI; with TLR storage the ranks drift
/// during the trailing update and the TILE row is an estimate.
pub fn project_wire_census(
    meta: &dyn TileMetaSource,
    n: usize,
    nb: usize,
    workers: usize,
) -> Vec<WireStats> {
    let layout = TileLayout::new(n, nb);
    let nt = layout.nt();
    let (p, q) = grid_shape(workers);
    let mut census = WireCensus::default();
    let tile_payload = |i: usize, j: usize| -> usize {
        tile_wire_frame_bytes(meta, layout.tile_dim(i), layout.tile_dim(j), i, j) as usize
            - FRAME_HEADER_BYTES
    };
    census.record_many(K_HELLO, workers as u64, HELLO_PAYLOAD_BYTES);
    // Seeding: every stored tile to its owner.
    for j in 0..nt {
        for i in j..nt {
            census.record(K_TILE, tile_payload(i, j));
        }
    }
    for k in 0..nt {
        // POTRF publish, then L_kk forwarded to the other TRSM owners.
        let kk = tile_payload(k, k);
        census.record(K_TILE, kk);
        census.record_many(
            K_TILE,
            kk_forward_targets(k, nt, p, q, workers).len() as u64,
            kk,
        );
        // TRSM publishes, then each panel tile to its trailing consumers.
        for r in k + 1..nt {
            let rk = tile_payload(r, k);
            census.record(K_TILE, rk);
            census.record_many(
                K_TILE,
                panel_forward_targets(k, r, nt, p, q, workers).len() as u64,
                rk,
            );
        }
    }
    // One TASK down and one DONE back per task; SHUTDOWN/BYE per worker.
    let tasks = (nt + nt * (nt - 1) / 2 + (nt * nt * nt - nt) / 6) as u64;
    census.record_many(K_TASK, tasks, TASK_PAYLOAD_BYTES);
    census.record_many(K_DONE, tasks, DONE_PAYLOAD_BYTES);
    census.record_many(K_SHUTDOWN, workers as u64, 0);
    census.record_many(K_BYE, workers as u64, BYE_PAYLOAD_BYTES);
    census.to_stats()
}

/// [`project_wire_census`] for a *persistent* (warm-fleet) factorization:
/// the drive loop is identical except the drain — no `SHUTDOWN`/`BYE`;
/// instead one `HEARTBEAT` ping per worker and one echo back carry the
/// executed-task census while the connections stay open for the next run.
pub fn project_wire_census_warm(
    meta: &dyn TileMetaSource,
    n: usize,
    nb: usize,
    workers: usize,
) -> Vec<WireStats> {
    let mut census = WireCensus::default();
    for row in project_wire_census(meta, n, nb, workers) {
        match row.kind {
            "shutdown" | "bye" => {}
            other => {
                let kind = FRAME_KIND_NAMES
                    .iter()
                    .position(|&n| n == other)
                    .map_or(K_HELLO, |idx| idx as u8 + 1);
                census.counts[kind as usize - 1] = (row.frames, row.bytes);
            }
        }
    }
    census.record_many(K_HEARTBEAT, workers as u64, HEARTBEAT_PING_BYTES);
    census.record_many(K_HEARTBEAT, workers as u64, HEARTBEAT_ECHO_BYTES);
    census.to_stats()
}

/// Mirror [`run_steps`]'s frame emission as a pure data structure so
/// [`xgs_analysis::check_shard_plan`] can replay it before any worker is
/// contacted. Tasks are `meta` in canonical order; events are the exact
/// TILE/TASK sequence: initial distribution, then per step the POTRF,
/// `L_kk` forwards, TRSMs, panel forwards, and trailing updates. Every
/// transfer and publish carries its wire frame size, computed from the
/// tile as `f` holds it now — exact for static formats, an estimate once
/// TLR ranks drift.
fn build_shard_plan(
    f: &TiledFactor,
    meta: &[TaskMeta],
    nt: usize,
    p: usize,
    q: usize,
    workers: usize,
) -> xgs_analysis::ShardPlan {
    use xgs_analysis::{PlanEvent, PlanTask};
    let frame = |i: usize, j: usize| -> u64 {
        (FRAME_HEADER_BYTES + TILE_COORD_BYTES + f.with_tile(i, j, encoded_len)) as u64
    };
    let tasks: Vec<PlanTask> = meta
        .iter()
        .map(|m| {
            let (k, i, j) = (m.k as usize, m.i as usize, m.j as usize);
            match m.kind {
                KIND_POTRF => PlanTask {
                    kind: "potrf",
                    owner: m.owner,
                    reads: Vec::new(),
                    write: (k, k),
                    publish: true,
                    publish_bytes: frame(k, k),
                },
                KIND_TRSM => PlanTask {
                    kind: "trsm",
                    owner: m.owner,
                    reads: vec![(k, k)],
                    write: (i, k),
                    publish: true,
                    publish_bytes: frame(i, k),
                },
                KIND_SYRK => PlanTask {
                    kind: "syrk",
                    owner: m.owner,
                    reads: vec![(i, k)],
                    write: (i, i),
                    publish: false,
                    publish_bytes: 0,
                },
                KIND_GEMM => PlanTask {
                    kind: "gemm",
                    owner: m.owner,
                    reads: vec![(i, k), (j, k)],
                    write: (i, j),
                    publish: false,
                    publish_bytes: 0,
                },
                // Locally-built meta never carries other kinds; a poisoned
                // kind string makes the census check reject it loudly.
                _unknown => PlanTask {
                    kind: "unknown",
                    owner: m.owner,
                    reads: Vec::new(),
                    write: (i, j),
                    publish: false,
                    publish_bytes: 0,
                },
            }
        })
        .collect();

    let mut events = Vec::new();
    for j in 0..nt {
        for i in j..nt {
            events.push(PlanEvent::Transfer {
                tile: (i, j),
                to: block_cyclic_owner(i, j, p, q),
                initial: true,
                bytes: frame(i, j),
            });
        }
    }
    let mut next_id = 0usize;
    for k in 0..nt {
        events.push(PlanEvent::Task(next_id));
        next_id += 1;
        for o in kk_forward_targets(k, nt, p, q, workers) {
            events.push(PlanEvent::Transfer {
                tile: (k, k),
                to: o,
                initial: false,
                bytes: frame(k, k),
            });
        }
        for _i in k + 1..nt {
            events.push(PlanEvent::Task(next_id));
            next_id += 1;
        }
        for r in k + 1..nt {
            for o in panel_forward_targets(k, r, nt, p, q, workers) {
                events.push(PlanEvent::Transfer {
                    tile: (r, k),
                    to: o,
                    initial: false,
                    bytes: frame(r, k),
                });
            }
        }
        for i in k + 1..nt {
            for _j in k + 1..=i {
                events.push(PlanEvent::Task(next_id));
                next_id += 1;
            }
        }
    }
    debug_assert_eq!(next_id, meta.len());
    xgs_analysis::ShardPlan {
        nt,
        p,
        q,
        workers,
        tasks,
        events,
    }
}

// ---------------------------------------------------------------------------
// Worker process management
// ---------------------------------------------------------------------------

/// Worker child processes plus their accepted connections. Dropping kills
/// any child still alive — a failed factorization can never leak workers.
pub struct ShardProcesses {
    children: Vec<Child>,
    streams: Vec<TcpStream>,
}

impl ShardProcesses {
    /// Move the connections out (for [`TiledFactor::factorize_sharded`]);
    /// the processes stay owned here so Drop still reaps them.
    pub fn take_streams(&mut self) -> Vec<TcpStream> {
        std::mem::take(&mut self.streams)
    }

    /// SIGKILL worker `w` (fault-injection tests).
    pub fn kill_worker(&mut self, w: usize) -> io::Result<()> {
        self.children[w].kill()
    }
}

impl Drop for ShardProcesses {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Launch `shards` worker processes (`<exe> worker --connect <addr>`) and
/// accept their connections on an ephemeral loopback listener.
pub fn spawn_workers(
    exe: &std::path::Path,
    shards: usize,
    accept_deadline: Duration,
) -> Result<ShardProcesses, ShardError> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| ShardError::Spawn(e.to_string()))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ShardError::Spawn(e.to_string()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ShardError::Spawn(e.to_string()))?;

    let mut procs = ShardProcesses {
        children: Vec::with_capacity(shards),
        streams: Vec::with_capacity(shards),
    };
    for _ in 0..shards {
        let child = Command::new(exe)
            .arg("worker")
            .arg("--connect")
            .arg(addr.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| ShardError::Spawn(format!("{}: {e}", exe.display())))?;
        procs.children.push(child);
    }

    let deadline = Instant::now() + accept_deadline;
    while procs.streams.len() < shards {
        match listener.accept() {
            Ok((s, _)) => {
                let _ = s.set_nonblocking(false);
                procs.streams.push(s);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // A worker that died before connecting (bad exe, crash on
                // startup) must not stall us until the deadline.
                for c in &mut procs.children {
                    if let Ok(Some(status)) = c.try_wait() {
                        return Err(ShardError::Spawn(format!(
                            "worker exited before connecting: {status}"
                        )));
                    }
                }
                if Instant::now() >= deadline {
                    return Err(ShardError::Spawn(format!(
                        "only {} of {shards} workers connected before the deadline",
                        procs.streams.len()
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ShardError::Spawn(e.to_string())),
        }
    }
    // Registration: read each worker's JOIN, assign it the grid slot
    // matching its accept order.
    let admit_deadline = deadline.saturating_duration_since(Instant::now());
    for (w, s) in procs.streams.iter_mut().enumerate() {
        admit_worker(
            s,
            w as u32,
            false,
            admit_deadline.max(Duration::from_secs(1)),
        )?;
    }
    Ok(procs)
}

/// Join handle of an in-process worker thread; yields its executed-task
/// count, like a real worker's `BYE` frame.
pub type LocalWorkerHandle = std::thread::JoinHandle<io::Result<u64>>;

/// In-process stand-in for [`spawn_workers`]: `shards` threads running
/// [`worker_loop`] over loopback connections. Same protocol, same bitwise
/// results — used by the property-test sweep where spawning real processes
/// per case would dominate the runtime.
pub fn spawn_local_workers(shards: usize) -> io::Result<(Vec<TcpStream>, Vec<LocalWorkerHandle>)> {
    spawn_local_workers_with(
        shards,
        WorkerOptions {
            idle_timeout: None,
            ..WorkerOptions::default()
        },
    )
}

/// [`spawn_local_workers`] with explicit [`WorkerOptions`] — the chaos
/// fault-matrix tests inject in-process `Disconnect` deaths through here.
pub fn spawn_local_workers_with(
    shards: usize,
    opts: WorkerOptions,
) -> io::Result<(Vec<TcpStream>, Vec<LocalWorkerHandle>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut streams = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    for w in 0..shards {
        let mut conn = TcpStream::connect(addr)?;
        let (server_end, _) = listener.accept()?;
        handles.push(std::thread::spawn(move || {
            worker_loop_with(server_end, opts)
        }));
        admit_worker(&mut conn, w as u32, false, Duration::from_secs(10))
            .map_err(|e| io::Error::other(e.to_string()))?;
        streams.push(conn);
    }
    Ok((streams, handles))
}

/// Recipe for running sharded factorizations: which binary provides the
/// `worker` subcommand and how many shards to fan out to.
#[derive(Clone, Debug)]
pub struct ShardRunner {
    pub exe: PathBuf,
    pub shards: usize,
    pub deadline: Duration,
}

impl ShardRunner {
    pub fn new(exe: PathBuf, shards: usize) -> ShardRunner {
        ShardRunner {
            exe,
            shards: shards.max(1),
            deadline: Duration::from_secs(120),
        }
    }

    /// Workers run `std::env::current_exe() worker --connect ...` — the
    /// normal CLI/server configuration, where the running binary *is*
    /// `exageostat`.
    pub fn from_current_exe(shards: usize) -> io::Result<ShardRunner> {
        Ok(ShardRunner::new(std::env::current_exe()?, shards))
    }

    /// Spawn a fresh worker fleet, factorize `f` on it, and reap the
    /// fleet. Fresh processes per factorization mean a crashed or wedged
    /// worker can never poison a later job.
    pub fn factorize(&self, f: &mut TiledFactor) -> Result<ShardReport, ShardError> {
        let mut opts = ShardOptions::for_workers(self.shards);
        opts.deadline = self.deadline;
        let mut procs = spawn_workers(&self.exe, self.shards, Duration::from_secs(30))?;
        let streams = procs.take_streams();
        f.factorize_sharded(streams, &opts)
        // `procs` drops here: surviving children (all of them, after a
        // clean BYE drain) are killed/reaped.
    }
}

/// Anything that can run a sharded factorization for the higher layers
/// (`FactorEngine::Sharded`, the prediction server). [`ShardRunner`] is
/// the one-shot spawn-per-run strategy; the `xgs-fleet` supervisor is the
/// persistent warm-fleet strategy with standby promotion and replay.
pub trait ShardBackend: Send + Sync + std::fmt::Debug {
    fn factorize(&self, f: &mut TiledFactor) -> Result<ShardReport, ShardError>;

    /// Human-readable strategy tag for logs and `serve` banners.
    fn describe(&self) -> String;
}

impl ShardBackend for ShardRunner {
    fn factorize(&self, f: &mut TiledFactor) -> Result<ShardReport, ShardError> {
        ShardRunner::factorize(self, f)
    }

    fn describe(&self) -> String {
        format!("spawn-per-run x{}", self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, PrecisionRule, SymTileMatrix, TlrConfig, Variant};

    fn build(n: usize, nb: usize, variant: Variant) -> TiledFactor {
        build_with_config(n, TlrConfig::new(variant, nb))
    }

    fn build_with_config(n: usize, cfg: TlrConfig) -> TiledFactor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        let kernel = Matern::new(MaternParams::new(1.0, 0.05, 0.5));
        let model = FlopKernelModel {
            dense_rate: 45.0e9,
            mem_factor: 1.0,
        };
        TiledFactor::from_matrix(SymTileMatrix::generate(&kernel, &locs, cfg, &model))
    }

    #[test]
    fn grid_shape_matches_perfmodel_process_grid() {
        assert_eq!(grid_shape(1), (1, 1));
        assert_eq!(grid_shape(2), (1, 2));
        assert_eq!(grid_shape(3), (1, 3));
        assert_eq!(grid_shape(4), (2, 2));
        assert_eq!(grid_shape(5), (1, 5));
        assert_eq!(grid_shape(6), (2, 3));
        assert_eq!(grid_shape(12), (3, 4));
        assert_eq!(grid_shape(0), (1, 1));
    }

    #[test]
    fn sharded_matches_sequential_bitwise_in_process() {
        for (shards, variant) in [
            (4usize, Variant::DenseF64),
            (3, Variant::MpDense),
            (4, Variant::MpDenseTlr),
        ] {
            let mut seq = build(200, 64, variant);
            seq.factorize_seq().unwrap();

            let mut shd = build(200, 64, variant);
            let (streams, handles) = spawn_local_workers(shards).unwrap();
            let mut opts = ShardOptions::for_workers(shards);
            opts.validate = true; // assert hazard edges even in release
            let report = shd.factorize_sharded(streams, &opts).unwrap();
            for h in handles {
                h.join().unwrap().unwrap();
            }

            assert_eq!(
                seq.to_dense_lower().as_slice(),
                shd.to_dense_lower().as_slice(),
                "sharded factor must be bitwise equal ({shards} shards, {variant:?})"
            );
            let nt = seq.nt();
            let total = nt + nt * (nt - 1) / 2 + nt * (nt * nt - 1) / 6;
            assert_eq!(report.metrics.tasks, total);
            assert_eq!(report.worker_tasks.iter().sum::<u64>() as usize, total);
            let v = report.metrics.validation.expect("validation forced on");
            assert_eq!(v.war_edges, 0);
            assert!(v.raw_edges > 0);
        }
    }

    #[test]
    fn sharded_indefinite_fails_with_global_pivot() {
        let mut f = build(150, 50, Variant::DenseF64);
        {
            let idx = f.layout.stored_index(1, 1);
            let mut t = f.tiles[idx].lock();
            if let xgs_tile::TileStorage::Dense(d) = &mut t.storage {
                d[(5, 5)] = -100.0;
            }
        }
        let (streams, handles) = spawn_local_workers(2).unwrap();
        let err = f
            .factorize_sharded(streams, &ShardOptions::for_workers(2))
            .unwrap_err();
        match err {
            ShardError::Factor(FactorError::NotPositiveDefinite { pivot }) => {
                assert!(pivot >= 50, "pivot {pivot} should be inside tile 1");
            }
            other => panic!("expected factor error, got {other}"),
        }
        // Workers were torn down, not left hanging.
        for h in handles {
            let _ = h.join().unwrap();
        }
    }

    #[test]
    fn shard_plan_precheck_accepts_real_plans() {
        // Every grid the equivalence tests use, plus a ragged one.
        for workers in [1usize, 2, 3, 4, 6] {
            let f = build(200, 64, Variant::DenseF64);
            let (p, q) = grid_shape(workers);
            let (meta, accesses) = canonical_tasks(&f, p, q);
            let plan = build_shard_plan(&f, &meta, f.nt(), p, q, workers);
            let summary = xgs_analysis::check_shard_plan(&plan)
                .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
            assert_eq!(summary.tasks as usize, meta.len());
            let census = task_census(meta.iter().map(|m| m.owner), workers);
            assert_eq!(summary.per_worker, census);
            xgs_runtime::crosscheck_static_edges(&accesses).unwrap();
        }
    }

    #[test]
    fn shard_plan_missing_tile_rejected_with_diagnostic() {
        let f = build(200, 64, Variant::DenseF64);
        let (p, q) = grid_shape(4);
        let (meta, _) = canonical_tasks(&f, p, q);
        let mut plan = build_shard_plan(&f, &meta, f.nt(), p, q, 4);

        // Drop the initial TILE transfer seeding tile (1, 0) to its owner:
        // the first TRSM that writes it must be rejected, and the message
        // must say which task, which tile, and which worker.
        let victim = plan
            .events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    xgs_analysis::PlanEvent::Transfer {
                        tile: (1, 0),
                        initial: true,
                        ..
                    }
                )
            })
            .expect("plan seeds every stored tile");
        plan.events.remove(victim);
        let err = xgs_analysis::check_shard_plan(&plan).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("trsm") && msg.contains("(1,0)"),
            "diagnostic should name the kernel and tile: {msg}"
        );
    }

    #[test]
    fn shard_plan_forward_before_publish_rejected() {
        let f = build(200, 64, Variant::DenseF64);
        let (p, q) = grid_shape(4);
        let (meta, _) = canonical_tasks(&f, p, q);
        let mut plan = build_shard_plan(&f, &meta, f.nt(), p, q, 4);

        // Move the first non-initial forward ahead of every task: the tile
        // it ships hasn't been produced yet.
        let fwd = plan
            .events
            .iter()
            .position(|e| matches!(e, xgs_analysis::PlanEvent::Transfer { initial: false, .. }))
            .expect("multi-worker plans forward tiles");
        let ev = plan.events.remove(fwd);
        plan.events.insert(0, ev);
        let err = xgs_analysis::check_shard_plan(&plan).unwrap_err();
        assert!(
            matches!(err, xgs_analysis::PlanError::ForwardBeforeProduce { .. }),
            "got {err}"
        );
    }

    #[test]
    fn shard_plan_misplaced_task_rejected() {
        let f = build(200, 64, Variant::DenseF64);
        let (p, q) = grid_shape(4);
        let (mut meta, _) = canonical_tasks(&f, p, q);
        // Place the first TRSM on the wrong worker.
        let t = meta
            .iter()
            .position(|m| m.kind == KIND_TRSM)
            .expect("nt > 1 has TRSMs");
        meta[t].owner = (meta[t].owner + 1) % 4;
        let plan = build_shard_plan(&f, &meta, f.nt(), p, q, 4);
        let err = xgs_analysis::check_shard_plan(&plan).unwrap_err();
        assert!(
            matches!(err, xgs_analysis::PlanError::WrongOwner { .. }),
            "got {err}"
        );
    }

    #[test]
    fn more_workers_than_tiles_still_bitwise() {
        // 100/60 -> NT = 2 (3 stored tiles) on 6 workers: most idle.
        let mut seq = build(100, 60, Variant::DenseF64);
        seq.factorize_seq().unwrap();
        let mut shd = build(100, 60, Variant::DenseF64);
        let (streams, handles) = spawn_local_workers(6).unwrap();
        let report = shd
            .factorize_sharded(streams, &ShardOptions::for_workers(6))
            .unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            shd.to_dense_lower().as_slice()
        );
        assert!(report.worker_tasks.contains(&0), "idle workers");
    }

    /// Pre-factorization snapshot of every stored tile's wire-relevant
    /// format, so the projection can be compared against a run that has
    /// since mutated the factor in place.
    struct CapturedMeta {
        layout: TileLayout,
        dense: Vec<bool>,
        rank: Vec<usize>,
        prec: Vec<Precision>,
    }

    impl CapturedMeta {
        fn of(f: &TiledFactor) -> CapturedMeta {
            let mut m = CapturedMeta {
                layout: f.layout,
                dense: Vec::new(),
                rank: Vec::new(),
                prec: Vec::new(),
            };
            for t in &f.tiles {
                let t = t.lock();
                m.dense.push(t.is_dense());
                m.rank.push(t.rank().unwrap_or(0));
                m.prec.push(t.precision);
            }
            m
        }
    }

    impl TileMetaSource for CapturedMeta {
        fn is_dense(&self, i: usize, j: usize) -> bool {
            self.dense[self.layout.stored_index(i, j)]
        }
        fn rank(&self, i: usize, j: usize) -> usize {
            self.rank[self.layout.stored_index(i, j)]
        }
        fn precision(&self, i: usize, j: usize) -> Precision {
            self.prec[self.layout.stored_index(i, j)]
        }
    }

    #[test]
    fn measured_wire_census_matches_projection_for_static_formats() {
        for variant in [Variant::DenseF64, Variant::MpDense] {
            let mut cfg = TlrConfig::new(variant, 64);
            if variant == Variant::MpDense {
                // The data-independent band rule (diagonal f64, everything
                // else f16) pins the formats, so the projection is exact
                // and the narrow-payload savings are guaranteed — the same
                // setup CI's measured-vs-projected comparison runs.
                cfg.precision_rule = PrecisionRule::Band {
                    f64_band: 1,
                    f32_band: 1,
                };
            }
            let mut shd = build_with_config(200, cfg);
            let meta = CapturedMeta::of(&shd);
            let (streams, handles) = spawn_local_workers(4).unwrap();
            let report = shd
                .factorize_sharded(streams, &ShardOptions::for_workers(4))
                .unwrap();
            for h in handles {
                h.join().unwrap().unwrap();
            }
            let projected = project_wire_census(&meta, 200, 64, 4);
            assert_eq!(
                report.metrics.wire, projected,
                "measured census must equal the closed-form projection ({variant:?})"
            );
            let tile = |w: &[WireStats]| {
                w.iter()
                    .find(|s| s.kind == "tile")
                    .map_or((0, 0), |s| (s.frames, s.bytes))
            };
            let (frames, bytes) = tile(&report.metrics.wire);
            assert!(frames > 0 && bytes > 0);
            if variant == Variant::MpDense {
                // Narrow tiles really shrink the wire: strictly below the
                // dense-f64 projection of the same grid, and the report's
                // conversion ledger shows the demotions/promotions.
                let dense = CapturedMeta {
                    layout: meta.layout,
                    dense: meta.dense.clone(),
                    rank: meta.rank.clone(),
                    prec: vec![Precision::F64; meta.prec.len()],
                };
                let (_, dense_bytes) = tile(&project_wire_census(&dense, 200, 64, 4));
                assert!(
                    bytes < dense_bytes,
                    "MP TILE bytes {bytes} should be below dense-f64 {dense_bytes}"
                );
                let c = &report.metrics.conversions;
                assert!(
                    c.f64_to_f16 > 0 && c.f16_to_f64 > 0,
                    "wire crossings must be ledgered: {c:?}"
                );
            }
        }
    }

    fn event_count(report: &ShardReport, kind: &str) -> u64 {
        report
            .metrics
            .kernels
            .iter()
            .find(|k| k.kind == kind)
            .map_or(0, |k| k.count)
    }

    /// In-process [`ReplacementSource`]: dials a fresh loopback worker
    /// thread per death, registered through the same `JOIN`/`ASSIGN`
    /// handshake real fleet members use.
    struct LocalRespawn {
        listener: TcpListener,
        handles: Vec<LocalWorkerHandle>,
        next_member: u32,
        origin: ReplacementOrigin,
    }

    impl LocalRespawn {
        fn new(origin: ReplacementOrigin) -> LocalRespawn {
            LocalRespawn {
                listener: TcpListener::bind("127.0.0.1:0").unwrap(),
                handles: Vec::new(),
                next_member: 100,
                origin,
            }
        }
    }

    impl ReplacementSource for LocalRespawn {
        fn replace(&mut self, _worker: usize) -> Option<ReplacementWorker> {
            let addr = self.listener.local_addr().ok()?;
            let mut conn = TcpStream::connect(addr).ok()?;
            let (server_end, _) = self.listener.accept().ok()?;
            self.handles
                .push(std::thread::spawn(move || worker_loop(server_end)));
            let standby = self.origin == ReplacementOrigin::Standby;
            admit_worker(
                &mut conn,
                self.next_member,
                standby,
                Duration::from_secs(10),
            )
            .ok()?;
            self.next_member += 1;
            Some(ReplacementWorker {
                stream: conn,
                origin: self.origin,
            })
        }
    }

    fn chaos_workers(shards: usize, chaos: ChaosSpec) -> (Vec<TcpStream>, Vec<LocalWorkerHandle>) {
        spawn_local_workers_with(
            shards,
            WorkerOptions {
                idle_timeout: None,
                chaos: Some(chaos),
                ..WorkerOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn elastic_recovery_mid_panel_stays_bitwise() {
        for origin in [ReplacementOrigin::Respawn, ReplacementOrigin::Standby] {
            let mut seq = build(200, 64, Variant::DenseF64);
            seq.factorize_seq().unwrap();

            let mut shd = build(200, 64, Variant::DenseF64);
            // Member 3 owns tiles (1,1), (3,1) and (3,3) on the 2x2 grid;
            // dying on receipt of its fourth TASK — the step-1 POTRF —
            // leaves completed-but-unpublished trailing work to replay
            // while the coordinator is blocked on that very panel.
            let (mut streams, handles) = chaos_workers(
                4,
                ChaosSpec {
                    member: 3,
                    trigger: ChaosTrigger::TaskStart(3),
                    disconnect: true,
                },
            );
            let mut source = LocalRespawn::new(origin);
            let mut opts = ShardOptions::for_workers(4);
            opts.validate = true;
            let report = shd
                .factorize_elastic(&mut streams, &opts, &mut source)
                .unwrap();
            drop(streams);
            for h in handles.into_iter().chain(source.handles) {
                let _ = h.join().unwrap();
            }

            assert_eq!(
                seq.to_dense_lower().as_slice(),
                shd.to_dense_lower().as_slice(),
                "recovered factor must stay bitwise equal to sequential ({origin:?})"
            );
            assert_eq!(event_count(&report, "worker_death"), 1);
            assert!(event_count(&report, "panel_replay") >= 1);
            let promoted = u64::from(origin == ReplacementOrigin::Standby);
            assert_eq!(event_count(&report, "standby_promote"), promoted);
            // Replay re-runs tasks, so the hazard validator must still see
            // a clean linearization (original order stamps).
            let v = report.metrics.validation.expect("validation forced on");
            assert_eq!(v.war_edges, 0);
        }
    }

    #[test]
    fn repeated_deaths_still_recover() {
        // The same member id is never reassigned, but a respawned member
        // can die again: target the second incarnation too by killing
        // member 100 (the first respawn) after one task.
        let mut seq = build(200, 64, Variant::DenseF64);
        seq.factorize_seq().unwrap();
        let mut shd = build(200, 64, Variant::DenseF64);
        let chaos = ChaosSpec {
            member: 3,
            trigger: ChaosTrigger::TaskStart(3),
            disconnect: true,
        };
        let (mut streams, handles) = chaos_workers(4, chaos);

        struct ChaosRespawn {
            inner: LocalRespawn,
            second_death: ChaosSpec,
        }
        impl ReplacementSource for ChaosRespawn {
            fn replace(&mut self, _worker: usize) -> Option<ReplacementWorker> {
                let addr = self.inner.listener.local_addr().ok()?;
                let mut conn = TcpStream::connect(addr).ok()?;
                let (server_end, _) = self.inner.listener.accept().ok()?;
                let opts = WorkerOptions {
                    idle_timeout: None,
                    chaos: Some(self.second_death),
                    ..WorkerOptions::default()
                };
                self.inner.handles.push(std::thread::spawn(move || {
                    worker_loop_with(server_end, opts)
                }));
                let member = self.inner.next_member;
                self.inner.next_member += 1;
                admit_worker(&mut conn, member, false, Duration::from_secs(10)).ok()?;
                Some(ReplacementWorker {
                    stream: conn,
                    origin: ReplacementOrigin::Respawn,
                })
            }
        }
        let mut source = ChaosRespawn {
            inner: LocalRespawn::new(ReplacementOrigin::Respawn),
            second_death: ChaosSpec {
                member: 100,
                trigger: ChaosTrigger::TaskStart(2),
                disconnect: true,
            },
        };
        let report = shd
            .factorize_elastic(&mut streams, &ShardOptions::for_workers(4), &mut source)
            .unwrap();
        drop(streams);
        for h in handles.into_iter().chain(source.inner.handles) {
            let _ = h.join().unwrap();
        }
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            shd.to_dense_lower().as_slice()
        );
        assert_eq!(event_count(&report, "worker_death"), 2);
    }

    #[test]
    fn drain_death_departs_without_replacement() {
        // Dying on the SHUTDOWN frame means every task is done and the
        // factor is fully published: even with no replacement source the
        // run must succeed, recording the death but no replay.
        let mut seq = build(200, 64, Variant::DenseF64);
        seq.factorize_seq().unwrap();
        let mut shd = build(200, 64, Variant::DenseF64);
        let (streams, handles) = chaos_workers(
            4,
            ChaosSpec {
                member: 2,
                trigger: ChaosTrigger::Drain,
                disconnect: true,
            },
        );
        let report = shd
            .factorize_sharded(streams, &ShardOptions::for_workers(4))
            .unwrap();
        for h in handles {
            let _ = h.join().unwrap();
        }
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            shd.to_dense_lower().as_slice()
        );
        assert_eq!(event_count(&report, "worker_death"), 1);
        assert_eq!(event_count(&report, "panel_replay"), 0);
        assert_eq!(event_count(&report, "standby_promote"), 0);
    }

    #[test]
    fn death_without_replacement_still_fails() {
        let mut shd = build(200, 64, Variant::DenseF64);
        let (streams, handles) = chaos_workers(
            4,
            ChaosSpec {
                member: 3,
                trigger: ChaosTrigger::TaskStart(3),
                disconnect: true,
            },
        );
        let err = shd
            .factorize_sharded(streams, &ShardOptions::for_workers(4))
            .unwrap_err();
        assert!(
            matches!(err, ShardError::WorkerLost { worker: 3, .. }),
            "got {err}"
        );
        for h in handles {
            let _ = h.join().unwrap();
        }
    }

    #[test]
    fn warm_fleet_survives_two_runs_and_matches_warm_projection() {
        let mut seq = build(200, 64, Variant::DenseF64);
        seq.factorize_seq().unwrap();

        let (mut streams, handles) = spawn_local_workers(4).unwrap();
        let mut opts = ShardOptions::for_workers(4);
        opts.persistent = true;
        let mut none = NoReplacement;
        let mut reports = Vec::new();
        for _run in 0..2 {
            let mut shd = build(200, 64, Variant::DenseF64);
            let report = shd
                .factorize_elastic(&mut streams, &opts, &mut none)
                .unwrap();
            assert_eq!(
                seq.to_dense_lower().as_slice(),
                shd.to_dense_lower().as_slice(),
                "warm-fleet factorization must stay bitwise"
            );
            reports.push(report);
        }
        // No SHUTDOWN/BYE in a warm run; the census rides HEARTBEAT and
        // the whole wire matches the warm projection exactly.
        let shd = build(200, 64, Variant::DenseF64);
        let meta = CapturedMeta::of(&shd);
        let projected = project_wire_census_warm(&meta, 200, 64, 4);
        for report in &reports {
            assert_eq!(report.metrics.wire, projected);
            assert!(report.metrics.wire.iter().all(|w| w.kind != "bye"));
        }
        // Dropping the connections retires the still-warm workers.
        drop(streams);
        for h in handles {
            let _ = h.join().unwrap();
        }
    }

    #[test]
    fn worker_without_join_ack_times_out_with_diagnostic() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let conn = TcpStream::connect(addr).unwrap();
        let (server_end, _) = listener.accept().unwrap();
        // Supervisor side (conn) never answers the JOIN.
        let err = worker_loop_with(
            server_end,
            WorkerOptions {
                handshake_timeout: Duration::from_millis(200),
                idle_timeout: None,
                chaos: None,
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            err.to_string().contains("JOIN acknowledgement"),
            "diagnostic should say what was missing: {err}"
        );
        drop(conn);
    }

    #[test]
    fn join_decoding_is_forward_compatible_and_version_gated() {
        // Trailing bytes after the known JOIN fields are future protocol
        // growth, not an error.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut worker_side = TcpStream::connect(addr).unwrap();
        let (mut sup_side, _) = listener.accept().unwrap();
        let mut w = WireWriter::new();
        w.put_u8(PROTO_VERSION);
        w.put_u32(8);
        w.put_u8(0b111);
        w.put_u64(0xDEAD_BEEF); // a field from the future
        write_frame(&mut worker_side, K_JOIN, &w.buf).unwrap();
        let info = admit_worker(&mut sup_side, 7, true, Duration::from_secs(5)).unwrap();
        assert_eq!((info.cores, info.precisions), (8, 0b111));

        // An old worker (version byte below ours) is named and rejected.
        let mut old_worker = TcpStream::connect(addr).unwrap();
        let (mut sup_side, _) = listener.accept().unwrap();
        let mut w = WireWriter::new();
        w.put_u8(PROTO_VERSION - 1);
        w.put_u32(8);
        w.put_u8(0b111);
        write_frame(&mut old_worker, K_JOIN, &w.buf).unwrap();
        let err = admit_worker(&mut sup_side, 8, false, Duration::from_secs(5)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("protocol version") && msg.contains("upgrade"),
            "got: {msg}"
        );
    }

    #[test]
    fn hello_accepts_trailing_bytes_and_rejects_old_version() {
        // Drive a real worker loop by hand: JOIN/ASSIGN, then a HELLO
        // padded with future fields, then SHUTDOWN — must exit cleanly.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut sup = TcpStream::connect(addr).unwrap();
        let (server_end, _) = listener.accept().unwrap();
        let handle = std::thread::spawn(move || worker_loop(server_end));
        admit_worker(&mut sup, 0, false, Duration::from_secs(5)).unwrap();
        let mut h = WireWriter::new();
        h.put_u8(PROTO_VERSION);
        for _ in 0..4 {
            h.put_u32(1);
        }
        h.put_u32(64);
        h.put_u64(64);
        h.put_u64(0xFEED); // future field
        write_frame(&mut sup, K_HELLO, &h.buf).unwrap();
        write_frame(&mut sup, K_SHUTDOWN, &[]).unwrap();
        let (kind, _) = read_frame(&mut sup, Some(Duration::from_secs(5)), None).unwrap();
        assert_eq!(kind, K_BYE);
        handle.join().unwrap().unwrap();

        // Same dance with a version-1 HELLO: the worker must refuse with
        // an error naming the versions, not mis-decode.
        let mut sup = TcpStream::connect(addr).unwrap();
        let (server_end, _) = listener.accept().unwrap();
        let handle = std::thread::spawn(move || worker_loop(server_end));
        admit_worker(&mut sup, 0, false, Duration::from_secs(5)).unwrap();
        let mut h = WireWriter::new();
        h.put_u8(PROTO_VERSION - 1);
        for _ in 0..4 {
            h.put_u32(1);
        }
        h.put_u32(64);
        h.put_u64(64);
        write_frame(&mut sup, K_HELLO, &h.buf).unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("protocol version"), "got: {err}");
    }

    #[test]
    fn chaos_spec_parses_both_trigger_forms() {
        assert_eq!(
            ChaosSpec::parse("member=1,tasks=5"),
            Some(ChaosSpec {
                member: 1,
                trigger: ChaosTrigger::TaskStart(5),
                disconnect: false,
            })
        );
        assert_eq!(
            ChaosSpec::parse("member=3,on=drain"),
            Some(ChaosSpec {
                member: 3,
                trigger: ChaosTrigger::Drain,
                disconnect: false,
            })
        );
        assert_eq!(ChaosSpec::parse("member=1"), None);
        assert_eq!(ChaosSpec::parse("tasks=2"), None);
        assert_eq!(ChaosSpec::parse("member=x,tasks=2"), None);
        assert_eq!(ChaosSpec::parse("member=1,on=fire"), None);
    }

    #[test]
    fn recovery_plan_validator_rejects_bad_replays() {
        use xgs_analysis::{RecoveryEvent, RecoveryPlan};
        let f = build(200, 64, Variant::DenseF64);
        let (p, q) = grid_shape(4);
        let (meta, _) = canonical_tasks(&f, p, q);
        let base = build_shard_plan(&f, &meta, f.nt(), p, q, 4);
        let n = meta.len();

        // A legal "death before anything ran" plan: worker 1 lost with
        // nothing dispatched — replay is just its seeds from originals.
        let seeds = |lost: usize| -> Vec<RecoveryEvent> {
            let mut ev = Vec::new();
            for j in 0..f.nt() {
                for i in j..f.nt() {
                    if block_cyclic_owner(i, j, p, q) == lost {
                        ev.push(RecoveryEvent::SeedOriginal { tile: (i, j) });
                    }
                }
            }
            ev
        };
        let ok = RecoveryPlan {
            lost: 1,
            completed: vec![false; n],
            dispatched: vec![false; n],
            events: seeds(1),
        };
        xgs_analysis::check_recovery_plan(&base, &ok).unwrap();

        // Claiming published bytes for a tile that is not final: rejected.
        let mut bad = ok.clone();
        if let Some(RecoveryEvent::SeedOriginal { tile }) = bad.events.first().copied() {
            bad.events[0] = RecoveryEvent::SeedPublished { tile };
        }
        let err = xgs_analysis::check_recovery_plan(&base, &bad).unwrap_err();
        assert!(
            matches!(err, xgs_analysis::PlanError::RecoveryBadSeed { .. }),
            "got {err}"
        );

        // A dispatched, uncompleted task that is never replayed: rejected
        // as incomplete.
        let victim = meta.iter().position(|m| m.owner == 1).unwrap();
        let mut dispatched = vec![false; n];
        dispatched[victim] = true;
        let missing = RecoveryPlan {
            lost: 1,
            completed: vec![false; n],
            dispatched,
            events: seeds(1),
        };
        let err = xgs_analysis::check_recovery_plan(&base, &missing).unwrap_err();
        assert!(
            matches!(err, xgs_analysis::PlanError::RecoveryIncomplete { .. }),
            "got {err}"
        );

        // Replaying another worker's task: rejected.
        let foreign = meta.iter().position(|m| m.owner == 0).unwrap();
        let mut stolen = ok.clone();
        stolen.dispatched[foreign] = true;
        stolen.events.push(RecoveryEvent::Replay { task: foreign });
        let err = xgs_analysis::check_recovery_plan(&base, &stolen).unwrap_err();
        assert!(
            matches!(err, xgs_analysis::PlanError::RecoveryBadReplay { .. }),
            "got {err}"
        );
    }
}

//! Multi-process sharded tile Cholesky over a 2D block-cyclic distribution.
//!
//! This is the distributed-memory execution the paper runs through PaRSEC,
//! scaled down to one machine: a **coordinator** (the process holding the
//! [`TiledFactor`]) partitions the tile grid over `p x q` worker processes
//! with [`block_cyclic_owner`] — the same owner function the
//! discrete-event simulator uses — and drives the right-looking Cholesky
//! DAG. Workers execute the POTRF/TRSM/SYRK/GEMM tasks they own; tiles
//! cross ownership boundaries as length-prefixed binary frames over
//! loopback TCP ([`xgs_runtime::shard`]), bitwise
//! ([`xgs_tile::wire`]).
//!
//! Topology is hub-and-spoke: workers connect only to the coordinator,
//! which relays tiles between owners. Commands to one worker form a FIFO
//! stream, and the coordinator only sends a task after (a) every operand
//! the worker does not own has been forwarded earlier on the same stream,
//! and (b) the DONE of every cross-worker predecessor has been processed.
//! Together with per-tile write-ownership (every writer of a stored tile
//! is owned by that tile's owner) this makes the coordinator's
//! DONE-processing order a linearization of the DAG — which is exactly
//! what we hand to the same hazard-edge validator that checks the
//! shared-memory executor.
//!
//! Per-tile kernel invocation order is identical to
//! [`TiledFactor::factorize_seq`], so the sharded factor is **bitwise**
//! equal to the single-process one (asserted by `tests/shard_equivalence`).
//!
//! Frame kinds (payloads little-endian, see the match arms for layouts):
//!
//! | kind | dir | payload |
//! |------|-----|---------|
//! | `HELLO`    | c→w | `worker_id, p, q, nt, nb, n` |
//! | `TILE`     | both | `i, j, tile bytes` ([`xgs_tile::wire`]) |
//! | `TASK`     | c→w | `kind, task_id, k, i, j, tol, publish` |
//! | `DONE`     | w→c | `task_id, kind, ok, pivot, elapsed` |
//! | `SHUTDOWN` | c→w | empty |
//! | `BYE`      | w→c | `tasks_executed` |

use crate::dag::{lr_precision, TileMetaSource};
use crate::factor::{FactorError, TiledFactor};
use crate::kernels::{gemm_update, potrf_diag, syrk_diag, trsm_panel};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xgs_kernels::Precision;
use xgs_runtime::shard::{
    read_frame, write_frame, FrameError, WireReader, WireWriter, FRAME_HEADER_BYTES,
};
use xgs_runtime::{
    block_cyclic_owner, check_schedule, conversion_counts, count_conversion,
    crosscheck_static_edges, precheck_env_default, task_census, Access, DataId, KernelStats,
    MetricsReport, TaskOrder, WireStats, WorkerStats,
};
use xgs_tile::wire::{
    decode_tile, dense_payload_len, encode_tile, encoded_len, low_rank_payload_len, wire_elements,
};
use xgs_tile::{Tile, TileLayout};

/// Frame kinds of the coordinator/worker protocol.
pub const K_HELLO: u8 = 1;
pub const K_TILE: u8 = 2;
pub const K_TASK: u8 = 3;
pub const K_DONE: u8 = 4;
pub const K_SHUTDOWN: u8 = 5;
pub const K_BYE: u8 = 6;

const KIND_POTRF: u8 = 0;
const KIND_TRSM: u8 = 1;
const KIND_SYRK: u8 = 2;
const KIND_GEMM: u8 = 3;

/// Bytes a TILE frame carries before the `xgs_tile::wire` body: the two
/// `u32` tile coordinates.
pub const TILE_COORD_BYTES: usize = 8;

/// Fixed payload sizes of the non-TILE frames, byte-for-byte the layouts
/// in the module table above. Planned and projected byte censuses use
/// these so they speak the same units as the measured one.
const HELLO_PAYLOAD_BYTES: usize = 28;
const TASK_PAYLOAD_BYTES: usize = 30;
const DONE_PAYLOAD_BYTES: usize = 26;
const BYE_PAYLOAD_BYTES: usize = 8;

/// Metrics keys of the frame kinds, indexed `K_* - 1`.
const FRAME_KIND_NAMES: [&str; 6] = ["hello", "tile", "task", "done", "shutdown", "bye"];

/// Per-frame-kind `{frames, bytes}` tally. Bytes count whole frames —
/// header plus payload — in both directions, as seen from the coordinator.
#[derive(Clone, Copy, Default)]
struct WireCensus {
    counts: [(u64, u64); 6],
}

impl WireCensus {
    fn record(&mut self, kind: u8, payload_len: usize) {
        self.record_many(kind, 1, payload_len);
    }

    fn record_many(&mut self, kind: u8, frames: u64, payload_len: usize) {
        debug_assert!((K_HELLO..=K_BYE).contains(&kind));
        let c = &mut self.counts[(kind - 1) as usize];
        c.0 += frames;
        c.1 += frames * (FRAME_HEADER_BYTES + payload_len) as u64;
    }

    fn merge(&mut self, other: &WireCensus) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            a.0 += b.0;
            a.1 += b.1;
        }
    }

    fn to_stats(self) -> Vec<WireStats> {
        let mut out = Vec::new();
        for (idx, &(frames, bytes)) in self.counts.iter().enumerate() {
            if frames > 0 {
                out.push(WireStats {
                    kind: FRAME_KIND_NAMES[idx],
                    frames,
                    bytes,
                });
            }
        }
        out
    }
}

/// Wire bytes of the TILE frame that ships tile `(i, j)` in the format
/// `meta` declares for it: frame header, coordinates, then the
/// [`xgs_tile::wire`] body at the tile's storage precision (low-rank
/// tiles ship `U`/`V` at the TLR compute precision, rank capped at the
/// tile's short dimension). Exact for static formats; for TLR tiles it is
/// the pre-factorization estimate, since ranks drift as the trailing
/// update recompresses.
pub fn tile_wire_frame_bytes(
    meta: &dyn TileMetaSource,
    rows: usize,
    cols: usize,
    i: usize,
    j: usize,
) -> u64 {
    let body = if meta.is_dense(i, j) {
        dense_payload_len(rows, cols, meta.precision(i, j))
    } else {
        let rank = meta.rank(i, j).min(rows.min(cols));
        low_rank_payload_len(rows, cols, rank, lr_precision(meta.precision(i, j)))
    };
    (FRAME_HEADER_BYTES + TILE_COORD_BYTES + body) as u64
}

/// Tally the element-format conversions one wire crossing performs:
/// encoding demotes the f64-emulated buffer to the tile's storage width,
/// decoding promotes it back. Both directions are exact (tile values are
/// pre-rounded through their format), but they are real conversions and
/// the runtime's global counters are the ledger the paper's
/// "convert on the fly" accounting reads. Counters are per-process: a
/// coordinator's report covers its own encodes/decodes, not a remote
/// worker's.
fn count_wire_conversion(tile: &Tile, encode: bool) {
    let elems = wire_elements(tile) as u64;
    if encode {
        count_conversion(Precision::F64, tile.precision, elems);
    } else {
        count_conversion(tile.precision, Precision::F64, elems);
    }
}

/// Failure of a sharded factorization.
#[derive(Debug)]
pub enum ShardError {
    /// Numerical failure, identical semantics to the in-process engines.
    Factor(FactorError),
    /// A worker process died or its connection broke mid-run.
    WorkerLost { worker: usize, detail: String },
    /// The run exceeded [`ShardOptions::deadline`].
    Timeout { phase: &'static str },
    /// The peer violated the protocol (bad frame, missing operand, wrong
    /// task census ...).
    Protocol(String),
    /// Worker processes could not be spawned or connected.
    Spawn(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Factor(e) => write!(f, "{e}"),
            ShardError::WorkerLost { worker, detail } => {
                write!(f, "shard worker {worker} lost: {detail}")
            }
            ShardError::Timeout { phase } => write!(f, "sharded run timed out during {phase}"),
            ShardError::Protocol(what) => write!(f, "shard protocol violation: {what}"),
            ShardError::Spawn(what) => write!(f, "failed to launch shard workers: {what}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<FactorError> for ShardError {
    fn from(e: FactorError) -> ShardError {
        ShardError::Factor(e)
    }
}

/// How a sharded factorization is driven.
#[derive(Clone, Copy, Debug)]
pub struct ShardOptions {
    /// Process grid: `grid_p * grid_q` must equal the worker count.
    pub grid_p: usize,
    pub grid_q: usize,
    /// Wall-clock budget for the whole factorization, including worker
    /// drain. On expiry the coordinator aborts with [`ShardError::Timeout`]
    /// rather than hanging on a wedged worker.
    pub deadline: Duration,
    /// Run the completion order through the hazard-edge validator
    /// (default: on in debug builds, like the shared-memory executor).
    pub validate: bool,
    /// Statically check the sharded plan before any frame is sent: the
    /// `xgs-analysis` checker replays the coordinator's exact emission
    /// order over the block-cyclic owner map and proves every remote
    /// operand has a matching TILE transfer, nothing is sent to its own
    /// shard, no tile is used stale, and the per-kernel census matches the
    /// closed form; the static hazard-edge derivation is also
    /// cross-checked against the validator's. Default: on in debug
    /// builds, opt-in in release via `XGS_PRECHECK=1` (see
    /// [`xgs_runtime::precheck_env_default`]).
    pub precheck: bool,
}

impl ShardOptions {
    /// Near-square grid for `workers` processes, generous deadline.
    pub fn for_workers(workers: usize) -> ShardOptions {
        let (grid_p, grid_q) = grid_shape(workers);
        ShardOptions {
            grid_p,
            grid_q,
            deadline: Duration::from_secs(120),
            validate: cfg!(debug_assertions),
            precheck: precheck_env_default(),
        }
    }
}

/// Largest near-square factorization of `workers`: the same `p <= sqrt(w)`
/// rule as `xgs-perfmodel`'s `process_grid`, so a sharded run and a
/// `scale --nodes` projection of the same worker count land on the same
/// `p x q` grid (that equality is what lets `metrics_diff` compare their
/// per-worker task counts).
pub fn grid_shape(workers: usize) -> (usize, usize) {
    let w = workers.max(1);
    let mut p = (w as f64).sqrt() as usize;
    while p > 1 && !w.is_multiple_of(p) {
        p -= 1;
    }
    let p = p.max(1);
    (p, w / p)
}

/// What one sharded factorization observed.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Same schema as the in-process executor's metrics: per-kernel stats
    /// from worker-reported task timings, per-worker busy/task counters.
    pub metrics: MetricsReport,
    /// Tasks each worker reported executing at shutdown (`BYE`); verified
    /// against the block-cyclic census of the DAG.
    pub worker_tasks: Vec<u64>,
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// The wire task kinds, decoded once so every later dispatch is an
/// exhaustive enum match (the `frame-kind-exhaustive` lint rule).
#[derive(Clone, Copy)]
enum WireTask {
    Potrf,
    Trsm,
    Syrk,
    Gemm,
}

impl WireTask {
    fn from_wire(kind: u8) -> Option<WireTask> {
        match kind {
            KIND_POTRF => Some(WireTask::Potrf),
            KIND_TRSM => Some(WireTask::Trsm),
            KIND_SYRK => Some(WireTask::Syrk),
            KIND_GEMM => Some(WireTask::Gemm),
            _unknown => None,
        }
    }
}

/// Serve one coordinator connection: receive owned tiles, execute assigned
/// tasks, publish written tiles when asked, and exit on `SHUTDOWN` (or a
/// clean coordinator close). Returns the number of tasks executed.
///
/// The worker is deliberately dumb: it has no view of the DAG and trusts
/// the coordinator's stream order for operand availability — which the
/// coordinator guarantees by forwarding operands before dependent tasks on
/// the same FIFO stream.
pub fn worker_loop(mut stream: TcpStream) -> io::Result<u64> {
    let _ = stream.set_nodelay(true);
    let mut store: HashMap<(u32, u32), Tile> = HashMap::new();
    let mut nb: usize = 0;
    let mut executed: u64 = 0;
    loop {
        let (kind, payload) = match read_frame(&mut stream, None, None) {
            Ok(f) => f,
            // Coordinator vanished: exit quietly, nothing to clean up.
            Err(FrameError::Closed) => return Ok(executed),
            Err(e) => return Err(io::Error::other(e.to_string())),
        };
        let mut r = WireReader::new(&payload);
        match kind {
            K_HELLO => {
                let _worker_id = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let _p = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let _q = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let _nt = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                nb = r.get_u32().map_err(|e| proto_err(&e.to_string()))? as usize;
                let _n = r.get_u64().map_err(|e| proto_err(&e.to_string()))?;
                store.clear();
                executed = 0;
            }
            K_TILE => {
                let i = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let j = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let body = payload
                    .get(8..)
                    .ok_or_else(|| proto_err("short TILE frame"))?;
                let tile = decode_tile(body).map_err(|e| proto_err(&e.to_string()))?;
                count_wire_conversion(&tile, false);
                store.insert((i, j), tile);
            }
            K_TASK => {
                if nb == 0 {
                    return Err(proto_err("TASK before HELLO"));
                }
                let task_kind = r.get_u8().map_err(|e| proto_err(&e.to_string()))?;
                let task_id = r.get_u64().map_err(|e| proto_err(&e.to_string()))?;
                let k = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let i = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let j = r.get_u32().map_err(|e| proto_err(&e.to_string()))?;
                let tol = r.get_f64().map_err(|e| proto_err(&e.to_string()))?;
                let publish = r.get_u8().map_err(|e| proto_err(&e.to_string()))? != 0;

                let Some(task) = WireTask::from_wire(task_kind) else {
                    return Err(proto_err("unknown task kind"));
                };
                let written = match task {
                    WireTask::Potrf => (k, k),
                    WireTask::Trsm => (i, k),
                    WireTask::Syrk => (i, i),
                    WireTask::Gemm => (i, j),
                };
                let mut target = store
                    .remove(&written)
                    .ok_or_else(|| proto_err("task targets a tile this worker does not hold"))?;
                let operand = |key: (u32, u32)| {
                    store
                        .get(&key)
                        .ok_or_else(|| proto_err("task operand missing from worker store"))
                };

                let t0 = Instant::now();
                let mut ok = 1u8;
                let mut pivot = 0u64;
                match task {
                    WireTask::Potrf => {
                        if let Err(e) = potrf_diag(&mut target) {
                            ok = 0;
                            pivot = e.pivot as u64;
                        }
                    }
                    WireTask::Trsm => trsm_panel(operand((k, k))?, &mut target),
                    WireTask::Syrk => syrk_diag(operand((i, k))?, &mut target),
                    WireTask::Gemm => {
                        gemm_update(operand((i, k))?, operand((j, k))?, &mut target, tol)
                    }
                }
                let elapsed = t0.elapsed().as_secs_f64();

                if publish && ok != 0 {
                    let mut w = WireWriter::new();
                    w.put_u32(written.0);
                    w.put_u32(written.1);
                    encode_tile(&target, &mut w.buf);
                    count_wire_conversion(&target, true);
                    write_frame(&mut stream, K_TILE, &w.buf)?;
                }
                store.insert(written, target);
                executed += 1;

                let mut w = WireWriter::new();
                w.put_u64(task_id);
                w.put_u8(task_kind);
                w.put_u8(ok);
                w.put_u64(pivot);
                w.put_f64(elapsed);
                write_frame(&mut stream, K_DONE, &w.buf)?;
            }
            K_SHUTDOWN => {
                let mut w = WireWriter::new();
                w.put_u64(executed);
                write_frame(&mut stream, K_BYE, &w.buf)?;
                return Ok(executed);
            }
            other => return Err(proto_err(&format!("unexpected frame kind {other}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// One task of the canonical right-looking DAG, in insertion order.
struct TaskMeta {
    kind: u8,
    k: u32,
    i: u32,
    j: u32,
    owner: usize,
    tol: f64,
}

enum Event {
    Tile {
        payload: Vec<u8>,
    },
    Done {
        from: usize,
        task_id: u64,
        kind: u8,
        ok: u8,
        pivot: u64,
        elapsed: f64,
    },
    Bye {
        from: usize,
        tasks: u64,
    },
    Lost {
        from: usize,
        detail: String,
    },
}

/// Reader thread: drain one worker's frames into the event channel. Exits
/// after `BYE`, on stop, or on connection loss (reported as `Lost`).
fn reader_thread(worker: usize, mut stream: TcpStream, tx: Sender<Event>, stop: Arc<AtomicBool>) {
    loop {
        match read_frame(&mut stream, None, Some(&stop)) {
            Ok((K_TILE, payload)) => {
                if tx.send(Event::Tile { payload }).is_err() {
                    return;
                }
            }
            Ok((K_DONE, payload)) => {
                let mut r = WireReader::new(&payload);
                let parsed = (|| -> Result<Event, FrameError> {
                    Ok(Event::Done {
                        from: worker,
                        task_id: r.get_u64()?,
                        kind: r.get_u8()?,
                        ok: r.get_u8()?,
                        pivot: r.get_u64()?,
                        elapsed: r.get_f64()?,
                    })
                })();
                let ev = parsed.unwrap_or_else(|e| Event::Lost {
                    from: worker,
                    detail: format!("bad DONE frame: {e}"),
                });
                let last = matches!(ev, Event::Lost { .. });
                if tx.send(ev).is_err() || last {
                    return;
                }
            }
            Ok((K_BYE, payload)) => {
                let mut r = WireReader::new(&payload);
                let tasks = r.get_u64().unwrap_or(0);
                let _ = tx.send(Event::Bye {
                    from: worker,
                    tasks,
                });
                return;
            }
            Ok((other, _)) => {
                let _ = tx.send(Event::Lost {
                    from: worker,
                    detail: format!("unexpected frame kind {other} from worker"),
                });
                return;
            }
            Err(FrameError::Stopped) => return,
            Err(e) => {
                let _ = tx.send(Event::Lost {
                    from: worker,
                    detail: e.to_string(),
                });
                return;
            }
        }
    }
}

/// Coordinator bookkeeping while a sharded run is in flight.
struct Drive {
    /// Published tiles, keyed `(i, j)`, still in wire encoding so relaying
    /// to other owners is a plain byte copy (decoded once at gather).
    tiles: HashMap<(u32, u32), Vec<u8>>,
    /// Completion order in DONE-processing sequence (validator input).
    order: Vec<TaskOrder>,
    done: Vec<bool>,
    done_count: usize,
    seq: u64,
    kernels: [KernelStats; 4],
    workers: Vec<WorkerStats>,
    bye: Vec<Option<u64>>,
    /// Earliest global pivot failure, if any.
    failed: Option<usize>,
    /// Frames/bytes received from workers (TILE publishes, DONE, BYE).
    census: WireCensus,
}

impl Drive {
    fn handle(
        &mut self,
        ev: Event,
        meta: &[TaskMeta],
        layout: &xgs_tile::TileLayout,
    ) -> Result<(), ShardError> {
        match ev {
            Event::Tile { payload } => {
                self.census.record(K_TILE, payload.len());
                let mut r = WireReader::new(&payload);
                let i = r
                    .get_u32()
                    .map_err(|e| ShardError::Protocol(e.to_string()))?;
                let j = r
                    .get_u32()
                    .map_err(|e| ShardError::Protocol(e.to_string()))?;
                self.tiles.insert((i, j), payload);
                Ok(())
            }
            Event::Done {
                from,
                task_id,
                kind,
                ok,
                pivot,
                elapsed,
            } => {
                self.census.record(K_DONE, DONE_PAYLOAD_BYTES);
                let idx = task_id as usize;
                let m = meta.get(idx).ok_or_else(|| {
                    ShardError::Protocol(format!("unexpected DONE for task {task_id}"))
                })?;
                if m.kind != kind || m.owner != from || self.done[idx] {
                    return Err(ShardError::Protocol(format!(
                        "mismatched or duplicate DONE for task {task_id}"
                    )));
                }
                self.done[idx] = true;
                self.done_count += 1;
                self.order[idx] = TaskOrder {
                    start_seq: 2 * self.seq,
                    end_seq: 2 * self.seq + 1,
                };
                self.seq += 1;
                self.kernels[kind as usize].record(elapsed);
                self.workers[from].busy_seconds += elapsed;
                self.workers[from].tasks += 1;
                if ok == 0 {
                    let global = layout.tile_range(m.k as usize).start + pivot as usize;
                    self.failed = Some(self.failed.map_or(global, |p| p.min(global)));
                }
                Ok(())
            }
            Event::Bye { from, tasks } => {
                self.census.record(K_BYE, BYE_PAYLOAD_BYTES);
                self.bye[from] = Some(tasks);
                Ok(())
            }
            Event::Lost { from, detail } => Err(ShardError::WorkerLost {
                worker: from,
                detail,
            }),
        }
    }
}

struct Coordinator<'a> {
    streams: &'a mut [TcpStream],
    rx: Receiver<Event>,
    deadline: Instant,
    /// Frames/bytes sent to workers (HELLO, TILE seeds/forwards, TASK,
    /// SHUTDOWN).
    census: WireCensus,
}

impl Coordinator<'_> {
    fn send(&mut self, worker: usize, kind: u8, payload: &[u8]) -> Result<(), ShardError> {
        self.census.record(kind, payload.len());
        write_frame(&mut self.streams[worker], kind, payload).map_err(|e| ShardError::WorkerLost {
            worker,
            detail: format!("write failed: {e}"),
        })
    }

    /// Pump events until `pred` holds (checked after each event).
    fn wait_until(
        &mut self,
        drive: &mut Drive,
        meta: &[TaskMeta],
        layout: &xgs_tile::TileLayout,
        phase: &'static str,
        mut pred: impl FnMut(&Drive) -> bool,
    ) -> Result<(), ShardError> {
        while !pred(drive) {
            let remaining = self.deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ShardError::Timeout { phase });
            }
            match self.rx.recv_timeout(remaining) {
                Ok(ev) => drive.handle(ev, meta, layout)?,
                Err(RecvTimeoutError::Timeout) => return Err(ShardError::Timeout { phase }),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ShardError::Protocol(
                        "all worker connections closed unexpectedly".into(),
                    ))
                }
            }
        }
        Ok(())
    }
}

impl TiledFactor {
    /// Factorize by fanning the DAG out over worker processes already
    /// connected on `streams` (one per worker, e.g. from
    /// [`spawn_workers`] or [`spawn_local_workers`]).
    ///
    /// Drives exactly one factorization, then shuts the workers down
    /// (`SHUTDOWN` → `BYE` drain). Tile `(i, j)` tasks run on worker
    /// `block_cyclic_owner(i, j, p, q)`; per-tile kernel order matches
    /// [`TiledFactor::factorize_seq`], so the result is bitwise identical
    /// to the single-process factor.
    pub fn factorize_sharded(
        &mut self,
        mut streams: Vec<TcpStream>,
        opts: &ShardOptions,
    ) -> Result<ShardReport, ShardError> {
        let workers = streams.len();
        let (p, q) = (opts.grid_p, opts.grid_q);
        if p * q != workers || workers == 0 {
            return Err(ShardError::Protocol(format!(
                "grid {p}x{q} does not match {workers} workers"
            )));
        }
        let t0 = Instant::now();
        let conv0 = conversion_counts();
        let layout = self.layout;
        let nt = layout.nt();

        // Canonical DAG in insertion order: task_id == index. Also the
        // access lists the validator re-derives hazard edges from.
        let (meta, accesses) = canonical_tasks(self, p, q);
        let total = meta.len();
        let census = task_census(meta.iter().map(|m| m.owner), workers);

        // Static safety gate before any worker sees a frame: replay the
        // exact emission plan (owner placement, census, operand versions,
        // forward/publish protocol, TILE frame bytes) and cross-check the
        // statically derived hazard edges against the post-run validator's
        // derivation.
        let mut planned_tiles: Option<(u64, u64)> = None;
        if opts.precheck {
            let plan = build_shard_plan(self, &meta, nt, p, q, workers);
            let summary = xgs_analysis::check_shard_plan(&plan)
                .map_err(|e| ShardError::Protocol(format!("shard plan precheck: {e}")))?;
            for (w, (&got, &want)) in summary.per_worker.iter().zip(census.iter()).enumerate() {
                if got != want {
                    return Err(ShardError::Protocol(format!(
                        "shard plan precheck: plan places {got} tasks on worker {w}, \
                         census says {want}"
                    )));
                }
            }
            crosscheck_static_edges(&accesses)
                .map_err(|e| ShardError::Protocol(format!("shard plan precheck: {e}")))?;
            // With static formats (every stored tile dense) the plan's TILE
            // byte budget is exact, so the measured census must hit it to
            // the byte. TLR ranks drift during the trailing update, so
            // there the budget is only an estimate and the check is off.
            if self.tiles.iter().all(|t| t.lock().is_dense()) {
                planned_tiles = Some((summary.tile_frames, summary.tile_bytes));
            }
        }

        // Spin up reader threads over cloned handles; writes stay on the
        // original streams in this thread.
        let stop = Arc::new(AtomicBool::new(false));
        // Reader threads must never block sending into the coordinator,
        // which may itself be blocked writing to a worker — a bounded
        // fan-in channel here can deadlock the whole run. Depth is bounded
        // in practice by frames in flight (one publish + one DONE per task).
        // xgs-lint: allow(no-unbounded-channel-send): bounding would deadlock; see above
        let (tx, rx) = channel();
        let mut readers = Vec::with_capacity(workers);
        for (w, s) in streams.iter().enumerate() {
            let _ = s.set_nodelay(true);
            let clone = s
                .try_clone()
                .map_err(|e| ShardError::Spawn(e.to_string()))?;
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                reader_thread(w, clone, tx, stop)
            }));
        }
        drop(tx);

        let mut drive = Drive {
            tiles: HashMap::new(),
            order: vec![TaskOrder::default(); total],
            done: vec![false; total],
            done_count: 0,
            seq: 0,
            kernels: [
                KernelStats::new("potrf"),
                KernelStats::new("trsm"),
                KernelStats::new("syrk"),
                KernelStats::new("gemm"),
            ],
            workers: vec![WorkerStats::default(); workers],
            bye: vec![None; workers],
            failed: None,
            census: WireCensus::default(),
        };
        let mut co = Coordinator {
            streams: &mut streams,
            rx,
            deadline: t0 + opts.deadline,
            census: WireCensus::default(),
        };

        let result = run_steps(self, &mut co, &mut drive, &meta, p, q, nt, workers);

        // Every exit path tears the connections down so reader threads and
        // worker processes cannot outlive the run.
        stop.store(true, Ordering::Release);
        for s in co.streams.iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        drop(co);
        for r in readers {
            let _ = r.join();
        }
        let mut report = result?;

        for (w, (got, want)) in drive.bye.iter().zip(census.iter()).enumerate() {
            if *got != Some(*want) {
                return Err(ShardError::Protocol(format!(
                    "worker {w} executed {got:?} tasks, census says {want}"
                )));
            }
        }
        report.worker_tasks = census;
        report.metrics.conversions = conversion_counts().since(&conv0);

        // The bytes the plan budgeted are the bytes the wire carried — a
        // mismatch means the encoder and the static model disagree about
        // the format of some tile, which is exactly the bug class the
        // f64-everywhere regression was.
        if let Some((frames, bytes)) = planned_tiles {
            let (got_frames, got_bytes) = report
                .metrics
                .wire
                .iter()
                .find(|w| w.kind == "tile")
                .map_or((0, 0), |w| (w.frames, w.bytes));
            if (got_frames, got_bytes) != (frames, bytes) {
                return Err(ShardError::Protocol(format!(
                    "wire census mismatch: plan budgeted {frames} TILE frames / {bytes} bytes, \
                     coordinator observed {got_frames} frames / {got_bytes} bytes"
                )));
            }
        }

        if opts.validate {
            let summary = check_schedule(&accesses, &drive.order).map_err(|v| {
                ShardError::Protocol(format!(
                    "sharded completion order violates {} hazard edges",
                    v.len()
                ))
            })?;
            report.metrics.validation = Some(summary);
        }
        report.metrics.wall_seconds = t0.elapsed().as_secs_f64();
        Ok(report)
    }
}

/// The per-step drive loop, separated so `factorize_sharded` can run the
/// teardown on every exit path.
#[allow(clippy::too_many_arguments)]
fn run_steps(
    f: &mut TiledFactor,
    co: &mut Coordinator,
    drive: &mut Drive,
    meta: &[TaskMeta],
    p: usize,
    q: usize,
    nt: usize,
    workers: usize,
) -> Result<ShardReport, ShardError> {
    let layout = f.layout;
    let total = meta.len();

    // HELLO + initial tile distribution: each worker gets the stored tiles
    // it owns, before any task can reference them (stream FIFO).
    for w in 0..workers {
        let mut h = WireWriter::new();
        h.put_u32(w as u32);
        h.put_u32(p as u32);
        h.put_u32(q as u32);
        h.put_u32(nt as u32);
        h.put_u32(layout.tile_size() as u32);
        h.put_u64(layout.n() as u64);
        co.send(w, K_HELLO, &h.buf)?;
    }
    for j in 0..nt {
        for i in j..nt {
            let mut w = WireWriter::new();
            w.put_u32(i as u32);
            w.put_u32(j as u32);
            f.with_tile(i, j, |t| {
                encode_tile(t, &mut w.buf);
                count_wire_conversion(t, true);
            });
            co.send(block_cyclic_owner(i, j, p, q), K_TILE, &w.buf)?;
        }
    }

    let send_task = |co: &mut Coordinator, id: usize, m: &TaskMeta, publish: bool| {
        let mut w = WireWriter::new();
        w.put_u8(m.kind);
        w.put_u64(id as u64);
        w.put_u32(m.k);
        w.put_u32(m.i);
        w.put_u32(m.j);
        w.put_f64(m.tol);
        w.put_u8(publish as u8);
        co.send(m.owner, K_TASK, &w.buf)
    };
    let forward = |co: &mut Coordinator, drive: &Drive, key: (u32, u32), to: usize| {
        let payload = drive.tiles.get(&key).ok_or_else(|| {
            ShardError::Protocol(format!(
                "tile ({},{}) forwarded before its producer published it",
                key.0, key.1
            ))
        })?;
        co.send(to, K_TILE, payload)
    };
    // Index of task `m` in canonical order, maintained incrementally.
    let mut next_id = 0usize;

    for k in 0..nt {
        // POTRF(k): publish always — its output is both the step's operand
        // and the final value of the diagonal tile.
        let potrf_id = next_id;
        send_task(co, potrf_id, &meta[potrf_id], true)?;
        next_id += 1;
        co.wait_until(drive, meta, &layout, "potrf", |d| {
            d.done[potrf_id] || d.failed.is_some()
        })?;
        if let Some(pivot) = drive.failed {
            return Err(ShardError::Factor(FactorError::NotPositiveDefinite {
                pivot,
            }));
        }

        // Forward L_kk to every *other* owner of a TRSM in this panel,
        // then release the TRSMs (publish: a panel tile's final write).
        let trsm_ids: Vec<usize> = (next_id..next_id + (nt - 1 - k)).collect();
        next_id += trsm_ids.len();
        for o in kk_forward_targets(k, nt, p, q, workers) {
            forward(co, drive, (k as u32, k as u32), o)?;
        }
        for &id in &trsm_ids {
            send_task(co, id, &meta[id], true)?;
        }
        co.wait_until(drive, meta, &layout, "trsm", |d| {
            trsm_ids.iter().all(|&id| d.done[id])
        })?;

        // Forward each finished panel (r, k) to every other worker that
        // consumes it this step: syrk(r,r), gemm(r,j) as A, gemm(i,r) as B.
        for r in k + 1..nt {
            for o in panel_forward_targets(k, r, nt, p, q, workers) {
                forward(co, drive, (r as u32, k as u32), o)?;
            }
        }

        // Release the trailing update; no barrier — the next step's POTRF
        // is ordered behind these on its owner's FIFO stream, and their
        // DONEs drain while later steps run.
        for i in k + 1..nt {
            for _j in k + 1..=i {
                send_task(co, next_id, &meta[next_id], false)?;
                next_id += 1;
            }
        }
    }
    debug_assert_eq!(next_id, total);

    co.wait_until(drive, meta, &layout, "drain", |d| d.done_count == total)?;

    // Gather: every stored tile's final write is a published POTRF (diag)
    // or TRSM (panel) output, so the tile map now holds the whole factor.
    for j in 0..nt {
        for i in j..nt {
            let payload = drive
                .tiles
                .get(&(i as u32, j as u32))
                .ok_or_else(|| ShardError::Protocol(format!("tile ({i},{j}) never published")))?;
            let body = payload
                .get(8..)
                .ok_or_else(|| ShardError::Protocol(format!("short published tile ({i},{j})")))?;
            let tile = decode_tile(body).map_err(|e| ShardError::Protocol(e.to_string()))?;
            count_wire_conversion(&tile, false);
            *f.tiles[layout.stored_index(i, j)].lock() = tile;
        }
    }

    for w in 0..workers {
        co.send(w, K_SHUTDOWN, &[])?;
    }
    co.wait_until(drive, meta, &layout, "shutdown", |d| {
        d.bye.iter().all(Option::is_some)
    })?;

    let mut kernels: Vec<KernelStats> = drive
        .kernels
        .iter()
        .filter(|k| k.count > 0)
        .copied()
        .collect();
    kernels.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
    // One census for both directions: coordinator-side sends plus the
    // worker frames the reader threads drained.
    let mut wire = co.census;
    wire.merge(&drive.census);
    Ok(ShardReport {
        metrics: MetricsReport {
            wall_seconds: 0.0, // stamped by the caller
            tasks: total,
            workers,
            kernels,
            worker_stats: drive.workers.clone(),
            wire: wire.to_stats(),
            ..MetricsReport::default()
        },
        worker_tasks: Vec::new(), // stamped by the caller from the census
    })
}

/// The canonical right-looking Cholesky task list over `f`'s tile grid:
/// insertion order is task id, owners follow [`block_cyclic_owner`] on the
/// `p x q` grid. Second element is the per-task access lists the hazard
/// validator (and the static cross-check) re-derives edges from.
fn canonical_tasks(f: &TiledFactor, p: usize, q: usize) -> (Vec<TaskMeta>, Vec<Vec<Access>>) {
    let layout = f.layout;
    let nt = layout.nt();
    let mut meta: Vec<TaskMeta> = Vec::new();
    let mut accesses: Vec<Vec<Access>> = Vec::new();
    let data = |i: usize, j: usize| DataId(layout.stored_index(i, j) as u64);
    for k in 0..nt {
        meta.push(TaskMeta {
            kind: KIND_POTRF,
            k: k as u32,
            i: k as u32,
            j: k as u32,
            owner: block_cyclic_owner(k, k, p, q),
            tol: 0.0,
        });
        accesses.push(vec![Access::write(data(k, k))]);
        for i in k + 1..nt {
            meta.push(TaskMeta {
                kind: KIND_TRSM,
                k: k as u32,
                i: i as u32,
                j: k as u32,
                owner: block_cyclic_owner(i, k, p, q),
                tol: 0.0,
            });
            accesses.push(vec![Access::read(data(k, k)), Access::write(data(i, k))]);
        }
        for i in k + 1..nt {
            for j in k + 1..=i {
                if i == j {
                    meta.push(TaskMeta {
                        kind: KIND_SYRK,
                        k: k as u32,
                        i: i as u32,
                        j: i as u32,
                        owner: block_cyclic_owner(i, i, p, q),
                        tol: 0.0,
                    });
                    accesses.push(vec![Access::read(data(i, k)), Access::write(data(i, i))]);
                } else {
                    meta.push(TaskMeta {
                        kind: KIND_GEMM,
                        k: k as u32,
                        i: i as u32,
                        j: j as u32,
                        owner: block_cyclic_owner(i, j, p, q),
                        tol: f.tols[layout.stored_index(i, j)],
                    });
                    accesses.push(vec![
                        Access::read(data(i, k)),
                        Access::read(data(j, k)),
                        Access::write(data(i, j)),
                    ]);
                }
            }
        }
    }
    (meta, accesses)
}

/// Workers, other than `(k, k)`'s owner, that run a TRSM in panel `k` and
/// therefore need `L_kk` forwarded. First-consumer order, deduplicated.
/// Shared by [`run_steps`] (emission) and [`build_shard_plan`] (precheck)
/// so the checked plan is the executed plan by construction.
fn kk_forward_targets(k: usize, nt: usize, p: usize, q: usize, workers: usize) -> Vec<usize> {
    let mut sent = vec![false; workers];
    sent[block_cyclic_owner(k, k, p, q)] = true;
    let mut out = Vec::new();
    for i in k + 1..nt {
        let o = block_cyclic_owner(i, k, p, q);
        if !sent[o] {
            sent[o] = true;
            out.push(o);
        }
    }
    out
}

/// Workers, other than `(r, k)`'s owner, that consume the finished panel
/// tile `(r, k)` in step `k`'s trailing update: SYRK `(r, r)`, GEMM
/// `(r, j)` as the A operand, GEMM `(i, r)` as the B operand.
/// First-consumer order, deduplicated. Shared like [`kk_forward_targets`].
fn panel_forward_targets(
    k: usize,
    r: usize,
    nt: usize,
    p: usize,
    q: usize,
    workers: usize,
) -> Vec<usize> {
    let mut sent = vec![false; workers];
    sent[block_cyclic_owner(r, k, p, q)] = true;
    let mut out = Vec::new();
    let mut consumers = vec![block_cyclic_owner(r, r, p, q)];
    for j in k + 1..r {
        consumers.push(block_cyclic_owner(r, j, p, q));
    }
    for i in r + 1..nt {
        consumers.push(block_cyclic_owner(i, r, p, q));
    }
    for o in consumers {
        if !sent[o] {
            sent[o] = true;
            out.push(o);
        }
    }
    out
}

/// Closed-form projection of a sharded run's whole wire traffic, per
/// frame kind: replays exactly the frame sequence [`run_steps`] emits
/// (HELLO per worker, tile seeding, per step the POTRF publish, `L_kk`
/// forwards, TRSM publishes and panel forwards, one TASK/DONE pair per
/// task, SHUTDOWN/BYE per worker) over the block-cyclic owner map, with
/// TILE frame sizes from `meta`'s per-tile formats
/// ([`tile_wire_frame_bytes`]). For static formats this equals the
/// measured census byte-for-byte — `metrics_diff --assert-wire-equal
/// tile` holds a real run to it in CI; with TLR storage the ranks drift
/// during the trailing update and the TILE row is an estimate.
pub fn project_wire_census(
    meta: &dyn TileMetaSource,
    n: usize,
    nb: usize,
    workers: usize,
) -> Vec<WireStats> {
    let layout = TileLayout::new(n, nb);
    let nt = layout.nt();
    let (p, q) = grid_shape(workers);
    let mut census = WireCensus::default();
    let tile_payload = |i: usize, j: usize| -> usize {
        tile_wire_frame_bytes(meta, layout.tile_dim(i), layout.tile_dim(j), i, j) as usize
            - FRAME_HEADER_BYTES
    };
    census.record_many(K_HELLO, workers as u64, HELLO_PAYLOAD_BYTES);
    // Seeding: every stored tile to its owner.
    for j in 0..nt {
        for i in j..nt {
            census.record(K_TILE, tile_payload(i, j));
        }
    }
    for k in 0..nt {
        // POTRF publish, then L_kk forwarded to the other TRSM owners.
        let kk = tile_payload(k, k);
        census.record(K_TILE, kk);
        census.record_many(
            K_TILE,
            kk_forward_targets(k, nt, p, q, workers).len() as u64,
            kk,
        );
        // TRSM publishes, then each panel tile to its trailing consumers.
        for r in k + 1..nt {
            let rk = tile_payload(r, k);
            census.record(K_TILE, rk);
            census.record_many(
                K_TILE,
                panel_forward_targets(k, r, nt, p, q, workers).len() as u64,
                rk,
            );
        }
    }
    // One TASK down and one DONE back per task; SHUTDOWN/BYE per worker.
    let tasks = (nt + nt * (nt - 1) / 2 + (nt * nt * nt - nt) / 6) as u64;
    census.record_many(K_TASK, tasks, TASK_PAYLOAD_BYTES);
    census.record_many(K_DONE, tasks, DONE_PAYLOAD_BYTES);
    census.record_many(K_SHUTDOWN, workers as u64, 0);
    census.record_many(K_BYE, workers as u64, BYE_PAYLOAD_BYTES);
    census.to_stats()
}

/// Mirror [`run_steps`]'s frame emission as a pure data structure so
/// [`xgs_analysis::check_shard_plan`] can replay it before any worker is
/// contacted. Tasks are `meta` in canonical order; events are the exact
/// TILE/TASK sequence: initial distribution, then per step the POTRF,
/// `L_kk` forwards, TRSMs, panel forwards, and trailing updates. Every
/// transfer and publish carries its wire frame size, computed from the
/// tile as `f` holds it now — exact for static formats, an estimate once
/// TLR ranks drift.
fn build_shard_plan(
    f: &TiledFactor,
    meta: &[TaskMeta],
    nt: usize,
    p: usize,
    q: usize,
    workers: usize,
) -> xgs_analysis::ShardPlan {
    use xgs_analysis::{PlanEvent, PlanTask};
    let frame = |i: usize, j: usize| -> u64 {
        (FRAME_HEADER_BYTES + TILE_COORD_BYTES + f.with_tile(i, j, encoded_len)) as u64
    };
    let tasks: Vec<PlanTask> = meta
        .iter()
        .map(|m| {
            let (k, i, j) = (m.k as usize, m.i as usize, m.j as usize);
            match m.kind {
                KIND_POTRF => PlanTask {
                    kind: "potrf",
                    owner: m.owner,
                    reads: Vec::new(),
                    write: (k, k),
                    publish: true,
                    publish_bytes: frame(k, k),
                },
                KIND_TRSM => PlanTask {
                    kind: "trsm",
                    owner: m.owner,
                    reads: vec![(k, k)],
                    write: (i, k),
                    publish: true,
                    publish_bytes: frame(i, k),
                },
                KIND_SYRK => PlanTask {
                    kind: "syrk",
                    owner: m.owner,
                    reads: vec![(i, k)],
                    write: (i, i),
                    publish: false,
                    publish_bytes: 0,
                },
                KIND_GEMM => PlanTask {
                    kind: "gemm",
                    owner: m.owner,
                    reads: vec![(i, k), (j, k)],
                    write: (i, j),
                    publish: false,
                    publish_bytes: 0,
                },
                // Locally-built meta never carries other kinds; a poisoned
                // kind string makes the census check reject it loudly.
                _unknown => PlanTask {
                    kind: "unknown",
                    owner: m.owner,
                    reads: Vec::new(),
                    write: (i, j),
                    publish: false,
                    publish_bytes: 0,
                },
            }
        })
        .collect();

    let mut events = Vec::new();
    for j in 0..nt {
        for i in j..nt {
            events.push(PlanEvent::Transfer {
                tile: (i, j),
                to: block_cyclic_owner(i, j, p, q),
                initial: true,
                bytes: frame(i, j),
            });
        }
    }
    let mut next_id = 0usize;
    for k in 0..nt {
        events.push(PlanEvent::Task(next_id));
        next_id += 1;
        for o in kk_forward_targets(k, nt, p, q, workers) {
            events.push(PlanEvent::Transfer {
                tile: (k, k),
                to: o,
                initial: false,
                bytes: frame(k, k),
            });
        }
        for _i in k + 1..nt {
            events.push(PlanEvent::Task(next_id));
            next_id += 1;
        }
        for r in k + 1..nt {
            for o in panel_forward_targets(k, r, nt, p, q, workers) {
                events.push(PlanEvent::Transfer {
                    tile: (r, k),
                    to: o,
                    initial: false,
                    bytes: frame(r, k),
                });
            }
        }
        for i in k + 1..nt {
            for _j in k + 1..=i {
                events.push(PlanEvent::Task(next_id));
                next_id += 1;
            }
        }
    }
    debug_assert_eq!(next_id, meta.len());
    xgs_analysis::ShardPlan {
        nt,
        p,
        q,
        workers,
        tasks,
        events,
    }
}

// ---------------------------------------------------------------------------
// Worker process management
// ---------------------------------------------------------------------------

/// Worker child processes plus their accepted connections. Dropping kills
/// any child still alive — a failed factorization can never leak workers.
pub struct ShardProcesses {
    children: Vec<Child>,
    streams: Vec<TcpStream>,
}

impl ShardProcesses {
    /// Move the connections out (for [`TiledFactor::factorize_sharded`]);
    /// the processes stay owned here so Drop still reaps them.
    pub fn take_streams(&mut self) -> Vec<TcpStream> {
        std::mem::take(&mut self.streams)
    }

    /// SIGKILL worker `w` (fault-injection tests).
    pub fn kill_worker(&mut self, w: usize) -> io::Result<()> {
        self.children[w].kill()
    }
}

impl Drop for ShardProcesses {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Launch `shards` worker processes (`<exe> worker --connect <addr>`) and
/// accept their connections on an ephemeral loopback listener.
pub fn spawn_workers(
    exe: &std::path::Path,
    shards: usize,
    accept_deadline: Duration,
) -> Result<ShardProcesses, ShardError> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| ShardError::Spawn(e.to_string()))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ShardError::Spawn(e.to_string()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ShardError::Spawn(e.to_string()))?;

    let mut procs = ShardProcesses {
        children: Vec::with_capacity(shards),
        streams: Vec::with_capacity(shards),
    };
    for _ in 0..shards {
        let child = Command::new(exe)
            .arg("worker")
            .arg("--connect")
            .arg(addr.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| ShardError::Spawn(format!("{}: {e}", exe.display())))?;
        procs.children.push(child);
    }

    let deadline = Instant::now() + accept_deadline;
    while procs.streams.len() < shards {
        match listener.accept() {
            Ok((s, _)) => {
                let _ = s.set_nonblocking(false);
                procs.streams.push(s);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // A worker that died before connecting (bad exe, crash on
                // startup) must not stall us until the deadline.
                for c in &mut procs.children {
                    if let Ok(Some(status)) = c.try_wait() {
                        return Err(ShardError::Spawn(format!(
                            "worker exited before connecting: {status}"
                        )));
                    }
                }
                if Instant::now() >= deadline {
                    return Err(ShardError::Spawn(format!(
                        "only {} of {shards} workers connected before the deadline",
                        procs.streams.len()
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ShardError::Spawn(e.to_string())),
        }
    }
    Ok(procs)
}

/// Join handle of an in-process worker thread; yields its executed-task
/// count, like a real worker's `BYE` frame.
pub type LocalWorkerHandle = std::thread::JoinHandle<io::Result<u64>>;

/// In-process stand-in for [`spawn_workers`]: `shards` threads running
/// [`worker_loop`] over loopback connections. Same protocol, same bitwise
/// results — used by the property-test sweep where spawning real processes
/// per case would dominate the runtime.
pub fn spawn_local_workers(shards: usize) -> io::Result<(Vec<TcpStream>, Vec<LocalWorkerHandle>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut streams = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    for _ in 0..shards {
        let conn = TcpStream::connect(addr)?;
        let (server_end, _) = listener.accept()?;
        handles.push(std::thread::spawn(move || worker_loop(server_end)));
        streams.push(conn);
    }
    Ok((streams, handles))
}

/// Recipe for running sharded factorizations: which binary provides the
/// `worker` subcommand and how many shards to fan out to.
#[derive(Clone, Debug)]
pub struct ShardRunner {
    pub exe: PathBuf,
    pub shards: usize,
    pub deadline: Duration,
}

impl ShardRunner {
    pub fn new(exe: PathBuf, shards: usize) -> ShardRunner {
        ShardRunner {
            exe,
            shards: shards.max(1),
            deadline: Duration::from_secs(120),
        }
    }

    /// Workers run `std::env::current_exe() worker --connect ...` — the
    /// normal CLI/server configuration, where the running binary *is*
    /// `exageostat`.
    pub fn from_current_exe(shards: usize) -> io::Result<ShardRunner> {
        Ok(ShardRunner::new(std::env::current_exe()?, shards))
    }

    /// Spawn a fresh worker fleet, factorize `f` on it, and reap the
    /// fleet. Fresh processes per factorization mean a crashed or wedged
    /// worker can never poison a later job.
    pub fn factorize(&self, f: &mut TiledFactor) -> Result<ShardReport, ShardError> {
        let mut opts = ShardOptions::for_workers(self.shards);
        opts.deadline = self.deadline;
        let mut procs = spawn_workers(&self.exe, self.shards, Duration::from_secs(30))?;
        let streams = procs.take_streams();
        f.factorize_sharded(streams, &opts)
        // `procs` drops here: surviving children (all of them, after a
        // clean BYE drain) are killed/reaped.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, PrecisionRule, SymTileMatrix, TlrConfig, Variant};

    fn build(n: usize, nb: usize, variant: Variant) -> TiledFactor {
        build_with_config(n, TlrConfig::new(variant, nb))
    }

    fn build_with_config(n: usize, cfg: TlrConfig) -> TiledFactor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        let kernel = Matern::new(MaternParams::new(1.0, 0.05, 0.5));
        let model = FlopKernelModel {
            dense_rate: 45.0e9,
            mem_factor: 1.0,
        };
        TiledFactor::from_matrix(SymTileMatrix::generate(&kernel, &locs, cfg, &model))
    }

    #[test]
    fn grid_shape_matches_perfmodel_process_grid() {
        assert_eq!(grid_shape(1), (1, 1));
        assert_eq!(grid_shape(2), (1, 2));
        assert_eq!(grid_shape(3), (1, 3));
        assert_eq!(grid_shape(4), (2, 2));
        assert_eq!(grid_shape(5), (1, 5));
        assert_eq!(grid_shape(6), (2, 3));
        assert_eq!(grid_shape(12), (3, 4));
        assert_eq!(grid_shape(0), (1, 1));
    }

    #[test]
    fn sharded_matches_sequential_bitwise_in_process() {
        for (shards, variant) in [
            (4usize, Variant::DenseF64),
            (3, Variant::MpDense),
            (4, Variant::MpDenseTlr),
        ] {
            let mut seq = build(200, 64, variant);
            seq.factorize_seq().unwrap();

            let mut shd = build(200, 64, variant);
            let (streams, handles) = spawn_local_workers(shards).unwrap();
            let mut opts = ShardOptions::for_workers(shards);
            opts.validate = true; // assert hazard edges even in release
            let report = shd.factorize_sharded(streams, &opts).unwrap();
            for h in handles {
                h.join().unwrap().unwrap();
            }

            assert_eq!(
                seq.to_dense_lower().as_slice(),
                shd.to_dense_lower().as_slice(),
                "sharded factor must be bitwise equal ({shards} shards, {variant:?})"
            );
            let nt = seq.nt();
            let total = nt + nt * (nt - 1) / 2 + nt * (nt * nt - 1) / 6;
            assert_eq!(report.metrics.tasks, total);
            assert_eq!(report.worker_tasks.iter().sum::<u64>() as usize, total);
            let v = report.metrics.validation.expect("validation forced on");
            assert_eq!(v.war_edges, 0);
            assert!(v.raw_edges > 0);
        }
    }

    #[test]
    fn sharded_indefinite_fails_with_global_pivot() {
        let mut f = build(150, 50, Variant::DenseF64);
        {
            let idx = f.layout.stored_index(1, 1);
            let mut t = f.tiles[idx].lock();
            if let xgs_tile::TileStorage::Dense(d) = &mut t.storage {
                d[(5, 5)] = -100.0;
            }
        }
        let (streams, handles) = spawn_local_workers(2).unwrap();
        let err = f
            .factorize_sharded(streams, &ShardOptions::for_workers(2))
            .unwrap_err();
        match err {
            ShardError::Factor(FactorError::NotPositiveDefinite { pivot }) => {
                assert!(pivot >= 50, "pivot {pivot} should be inside tile 1");
            }
            other => panic!("expected factor error, got {other}"),
        }
        // Workers were torn down, not left hanging.
        for h in handles {
            let _ = h.join().unwrap();
        }
    }

    #[test]
    fn shard_plan_precheck_accepts_real_plans() {
        // Every grid the equivalence tests use, plus a ragged one.
        for workers in [1usize, 2, 3, 4, 6] {
            let f = build(200, 64, Variant::DenseF64);
            let (p, q) = grid_shape(workers);
            let (meta, accesses) = canonical_tasks(&f, p, q);
            let plan = build_shard_plan(&f, &meta, f.nt(), p, q, workers);
            let summary = xgs_analysis::check_shard_plan(&plan)
                .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
            assert_eq!(summary.tasks as usize, meta.len());
            let census = task_census(meta.iter().map(|m| m.owner), workers);
            assert_eq!(summary.per_worker, census);
            xgs_runtime::crosscheck_static_edges(&accesses).unwrap();
        }
    }

    #[test]
    fn shard_plan_missing_tile_rejected_with_diagnostic() {
        let f = build(200, 64, Variant::DenseF64);
        let (p, q) = grid_shape(4);
        let (meta, _) = canonical_tasks(&f, p, q);
        let mut plan = build_shard_plan(&f, &meta, f.nt(), p, q, 4);

        // Drop the initial TILE transfer seeding tile (1, 0) to its owner:
        // the first TRSM that writes it must be rejected, and the message
        // must say which task, which tile, and which worker.
        let victim = plan
            .events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    xgs_analysis::PlanEvent::Transfer {
                        tile: (1, 0),
                        initial: true,
                        ..
                    }
                )
            })
            .expect("plan seeds every stored tile");
        plan.events.remove(victim);
        let err = xgs_analysis::check_shard_plan(&plan).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("trsm") && msg.contains("(1,0)"),
            "diagnostic should name the kernel and tile: {msg}"
        );
    }

    #[test]
    fn shard_plan_forward_before_publish_rejected() {
        let f = build(200, 64, Variant::DenseF64);
        let (p, q) = grid_shape(4);
        let (meta, _) = canonical_tasks(&f, p, q);
        let mut plan = build_shard_plan(&f, &meta, f.nt(), p, q, 4);

        // Move the first non-initial forward ahead of every task: the tile
        // it ships hasn't been produced yet.
        let fwd = plan
            .events
            .iter()
            .position(|e| matches!(e, xgs_analysis::PlanEvent::Transfer { initial: false, .. }))
            .expect("multi-worker plans forward tiles");
        let ev = plan.events.remove(fwd);
        plan.events.insert(0, ev);
        let err = xgs_analysis::check_shard_plan(&plan).unwrap_err();
        assert!(
            matches!(err, xgs_analysis::PlanError::ForwardBeforeProduce { .. }),
            "got {err}"
        );
    }

    #[test]
    fn shard_plan_misplaced_task_rejected() {
        let f = build(200, 64, Variant::DenseF64);
        let (p, q) = grid_shape(4);
        let (mut meta, _) = canonical_tasks(&f, p, q);
        // Place the first TRSM on the wrong worker.
        let t = meta
            .iter()
            .position(|m| m.kind == KIND_TRSM)
            .expect("nt > 1 has TRSMs");
        meta[t].owner = (meta[t].owner + 1) % 4;
        let plan = build_shard_plan(&f, &meta, f.nt(), p, q, 4);
        let err = xgs_analysis::check_shard_plan(&plan).unwrap_err();
        assert!(
            matches!(err, xgs_analysis::PlanError::WrongOwner { .. }),
            "got {err}"
        );
    }

    #[test]
    fn more_workers_than_tiles_still_bitwise() {
        // 100/60 -> NT = 2 (3 stored tiles) on 6 workers: most idle.
        let mut seq = build(100, 60, Variant::DenseF64);
        seq.factorize_seq().unwrap();
        let mut shd = build(100, 60, Variant::DenseF64);
        let (streams, handles) = spawn_local_workers(6).unwrap();
        let report = shd
            .factorize_sharded(streams, &ShardOptions::for_workers(6))
            .unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert_eq!(
            seq.to_dense_lower().as_slice(),
            shd.to_dense_lower().as_slice()
        );
        assert!(report.worker_tasks.contains(&0), "idle workers");
    }

    /// Pre-factorization snapshot of every stored tile's wire-relevant
    /// format, so the projection can be compared against a run that has
    /// since mutated the factor in place.
    struct CapturedMeta {
        layout: TileLayout,
        dense: Vec<bool>,
        rank: Vec<usize>,
        prec: Vec<Precision>,
    }

    impl CapturedMeta {
        fn of(f: &TiledFactor) -> CapturedMeta {
            let mut m = CapturedMeta {
                layout: f.layout,
                dense: Vec::new(),
                rank: Vec::new(),
                prec: Vec::new(),
            };
            for t in &f.tiles {
                let t = t.lock();
                m.dense.push(t.is_dense());
                m.rank.push(t.rank().unwrap_or(0));
                m.prec.push(t.precision);
            }
            m
        }
    }

    impl TileMetaSource for CapturedMeta {
        fn is_dense(&self, i: usize, j: usize) -> bool {
            self.dense[self.layout.stored_index(i, j)]
        }
        fn rank(&self, i: usize, j: usize) -> usize {
            self.rank[self.layout.stored_index(i, j)]
        }
        fn precision(&self, i: usize, j: usize) -> Precision {
            self.prec[self.layout.stored_index(i, j)]
        }
    }

    #[test]
    fn measured_wire_census_matches_projection_for_static_formats() {
        for variant in [Variant::DenseF64, Variant::MpDense] {
            let mut cfg = TlrConfig::new(variant, 64);
            if variant == Variant::MpDense {
                // The data-independent band rule (diagonal f64, everything
                // else f16) pins the formats, so the projection is exact
                // and the narrow-payload savings are guaranteed — the same
                // setup CI's measured-vs-projected comparison runs.
                cfg.precision_rule = PrecisionRule::Band {
                    f64_band: 1,
                    f32_band: 1,
                };
            }
            let mut shd = build_with_config(200, cfg);
            let meta = CapturedMeta::of(&shd);
            let (streams, handles) = spawn_local_workers(4).unwrap();
            let report = shd
                .factorize_sharded(streams, &ShardOptions::for_workers(4))
                .unwrap();
            for h in handles {
                h.join().unwrap().unwrap();
            }
            let projected = project_wire_census(&meta, 200, 64, 4);
            assert_eq!(
                report.metrics.wire, projected,
                "measured census must equal the closed-form projection ({variant:?})"
            );
            let tile = |w: &[WireStats]| {
                w.iter()
                    .find(|s| s.kind == "tile")
                    .map_or((0, 0), |s| (s.frames, s.bytes))
            };
            let (frames, bytes) = tile(&report.metrics.wire);
            assert!(frames > 0 && bytes > 0);
            if variant == Variant::MpDense {
                // Narrow tiles really shrink the wire: strictly below the
                // dense-f64 projection of the same grid, and the report's
                // conversion ledger shows the demotions/promotions.
                let dense = CapturedMeta {
                    layout: meta.layout,
                    dense: meta.dense.clone(),
                    rank: meta.rank.clone(),
                    prec: vec![Precision::F64; meta.prec.len()],
                };
                let (_, dense_bytes) = tile(&project_wire_census(&dense, 200, 64, 4));
                assert!(
                    bytes < dense_bytes,
                    "MP TILE bytes {bytes} should be below dense-f64 {dense_bytes}"
                );
                let c = &report.metrics.conversions;
                assert!(
                    c.f64_to_f16 > 0 && c.f16_to_f64 > 0,
                    "wire crossings must be ledgered: {c:?}"
                );
            }
        }
    }
}

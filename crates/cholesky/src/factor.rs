//! The tiled factorization object and its two execution engines.

use crate::kernels::{gemm_update, potrf_diag, syrk_diag, trsm_panel};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use xgs_runtime::{execute_opts, Access, DataId, ExecOptions, ExecReport, TaskGraph};
use xgs_tile::{SymTileMatrix, Tile, TileLayout};

/// Factorization failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FactorError {
    /// The matrix lost positive definiteness at the given global pivot
    /// index (0-based). With aggressive approximation settings this is how
    /// "tolerance too loose" manifests — the paper's strong-correlation
    /// discussions hit exactly this regime.
    NotPositiveDefinite { pivot: usize },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {pivot}")
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// A tiled Cholesky factor in progress / completed.
///
/// Tiles live behind per-tile mutexes so the task runtime can mutate them
/// concurrently; the DAG guarantees exclusive access, making the locks
/// uncontended.
pub struct TiledFactor {
    pub(crate) layout: TileLayout,
    pub(crate) tiles: Vec<Mutex<Tile>>,
    /// Absolute low-rank rounding tolerance per stored tile, frozen at
    /// generation (`tlr_tolerance * ||A_ij||_F`).
    pub(crate) tols: Vec<f64>,
    pub band_size_dense: usize,
}

impl TiledFactor {
    /// Take ownership of a generated matrix, preparing it for
    /// factorization.
    pub fn from_matrix(m: SymTileMatrix) -> TiledFactor {
        let layout = m.layout();
        let tol_rel = m.config.tlr_tolerance;
        let band = m.band_size_dense;
        let floor = tol_rel * m.global_norm / layout.nt() as f64;
        let (tiles, tols): (Vec<_>, Vec<_>) = m
            .tiles
            .into_iter()
            .map(|t| {
                let tol = (tol_rel * t.norm_fro())
                    .max(floor * 1e-6)
                    .max(f64::MIN_POSITIVE);
                (Mutex::new(t), tol)
            })
            .unzip();
        TiledFactor {
            layout,
            tiles,
            tols,
            band_size_dense: band,
        }
    }

    #[inline]
    pub fn layout(&self) -> TileLayout {
        self.layout
    }

    #[inline]
    pub fn nt(&self) -> usize {
        self.layout.nt()
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.layout.n()
    }

    /// Clone stored tile `(i, j)` (i >= j).
    pub fn tile_clone(&self, i: usize, j: usize) -> Tile {
        self.tiles[self.layout.stored_index(i, j)].lock().clone()
    }

    /// Run a closure against stored tile `(i, j)`.
    pub fn with_tile<R>(&self, i: usize, j: usize, f: impl FnOnce(&Tile) -> R) -> R {
        f(&self.tiles[self.layout.stored_index(i, j)].lock())
    }

    /// Reconstruct the full factor `L` as a dense matrix (tests/small
    /// problems; upper triangle zero).
    pub fn to_dense_lower(&self) -> xgs_linalg::Matrix {
        let n = self.n();
        let nt = self.nt();
        let mut full = xgs_linalg::Matrix::zeros(n, n);
        for j in 0..nt {
            for i in j..nt {
                let block = self.tile_clone(i, j).to_dense();
                let ri = self.layout.tile_range(i);
                let rj = self.layout.tile_range(j);
                for (bj, gj) in rj.clone().enumerate() {
                    for (bi, gi) in ri.clone().enumerate() {
                        if gi >= gj {
                            full[(gi, gj)] = block[(bi, bj)];
                        }
                    }
                }
            }
        }
        full
    }

    /// Sequential right-looking tile Cholesky (the numerically-correct
    /// insertion order of Algorithm 1).
    pub fn factorize_seq(&mut self) -> Result<(), FactorError> {
        let nt = self.nt();
        for k in 0..nt {
            {
                let mut diag = self.tiles[self.layout.stored_index(k, k)].lock();
                potrf_diag(&mut diag).map_err(|e| FactorError::NotPositiveDefinite {
                    pivot: self.layout.tile_range(k).start + e.pivot,
                })?;
            }
            for i in k + 1..nt {
                let diag = self.tiles[self.layout.stored_index(k, k)].lock();
                // xgs-lint: allow(lock-cycle): single sequential thread holds two tiles of one array; stored_index is injective so the pair is distinct and uncontended
                let mut panel = self.tiles[self.layout.stored_index(i, k)].lock();
                trsm_panel(&diag, &mut panel);
            }
            for i in k + 1..nt {
                for j in k + 1..=i {
                    if i == j {
                        let a = self.tiles[self.layout.stored_index(i, k)].lock();
                        let mut c = self.tiles[self.layout.stored_index(i, i)].lock();
                        syrk_diag(&a, &mut c);
                    } else {
                        let a = self.tiles[self.layout.stored_index(i, k)].lock();
                        let b = self.tiles[self.layout.stored_index(j, k)].lock();
                        let mut c = self.tiles[self.layout.stored_index(i, j)].lock();
                        let tol = self.tols[self.layout.stored_index(i, j)];
                        gemm_update(&a, &b, &mut c, tol);
                    }
                }
            }
        }
        Ok(())
    }

    /// Task-parallel factorization on the dynamic runtime.
    ///
    /// Builds the dataflow DAG (same dependence structure PaRSEC derives
    /// from its PTG) and executes it on `workers` threads. Returns the
    /// execution report alongside the factorization result.
    pub fn factorize_parallel(
        self: &Arc<Self>,
        workers: usize,
    ) -> (Result<(), FactorError>, ExecReport) {
        // Default options: schedule validation on under `cfg(debug_assertions)`
        // (so every test factorization is checked), metrics always on.
        self.factorize_parallel_opts(workers, ExecOptions::default())
    }

    /// [`factorize_parallel`](TiledFactor::factorize_parallel) with explicit
    /// runtime options (tracing, scheduling policy, schedule validation,
    /// metrics).
    pub fn factorize_parallel_opts(
        self: &Arc<Self>,
        workers: usize,
        opts: ExecOptions,
    ) -> (Result<(), FactorError>, ExecReport) {
        let nt = self.nt();
        let mut g = TaskGraph::new();
        let data = |i: usize, j: usize| DataId(self.layout.stored_index(i, j) as u64);
        // First failed pivot (global index), or -1.
        let failed = Arc::new(AtomicI64::new(-1));

        for k in 0..nt {
            let prio_base = ((nt - k) as i64) << 8;
            {
                let me = Arc::clone(self);
                let failed = Arc::clone(&failed);
                g.insert_at(
                    "potrf",
                    (k as u32, k as u32),
                    vec![Access::write(data(k, k))],
                    prio_base + 3,
                    0.0,
                    move || {
                        if failed.load(Ordering::Acquire) >= 0 {
                            return;
                        }
                        let idx = me.layout.stored_index(k, k);
                        let mut diag = me.tiles[idx].lock();
                        if let Err(e) = potrf_diag(&mut diag) {
                            let pivot = (me.layout.tile_range(k).start + e.pivot) as i64;
                            // Keep the earliest pivot for determinism.
                            let mut cur = failed.load(Ordering::Acquire);
                            loop {
                                if cur >= 0 && cur <= pivot {
                                    break;
                                }
                                match failed.compare_exchange(
                                    cur,
                                    pivot,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                ) {
                                    Ok(_) => break,
                                    Err(c) => cur = c,
                                }
                            }
                        }
                    },
                );
            }
            for i in k + 1..nt {
                let me = Arc::clone(self);
                let failed = Arc::clone(&failed);
                g.insert_at(
                    "trsm",
                    (i as u32, k as u32),
                    vec![Access::read(data(k, k)), Access::write(data(i, k))],
                    prio_base + 2,
                    0.0,
                    move || {
                        if failed.load(Ordering::Acquire) >= 0 {
                            return;
                        }
                        let diag = me.tiles[me.layout.stored_index(k, k)].lock();
                        let mut panel = me.tiles[me.layout.stored_index(i, k)].lock();
                        trsm_panel(&diag, &mut panel);
                    },
                );
            }
            for i in k + 1..nt {
                for j in k + 1..=i {
                    let me = Arc::clone(self);
                    let failed = Arc::clone(&failed);
                    if i == j {
                        g.insert_at(
                            "syrk",
                            (i as u32, i as u32),
                            vec![Access::read(data(i, k)), Access::write(data(i, i))],
                            prio_base + 1,
                            0.0,
                            move || {
                                if failed.load(Ordering::Acquire) >= 0 {
                                    return;
                                }
                                let a = me.tiles[me.layout.stored_index(i, k)].lock();
                                let mut c = me.tiles[me.layout.stored_index(i, i)].lock();
                                syrk_diag(&a, &mut c);
                            },
                        );
                    } else {
                        g.insert_at(
                            "gemm",
                            (i as u32, j as u32),
                            vec![
                                Access::read(data(i, k)),
                                Access::read(data(j, k)),
                                Access::write(data(i, j)),
                            ],
                            prio_base,
                            0.0,
                            move || {
                                if failed.load(Ordering::Acquire) >= 0 {
                                    return;
                                }
                                let a = me.tiles[me.layout.stored_index(i, k)].lock();
                                let b = me.tiles[me.layout.stored_index(j, k)].lock();
                                let mut c = me.tiles[me.layout.stored_index(i, j)].lock();
                                let tol = me.tols[me.layout.stored_index(i, j)];
                                gemm_update(&a, &b, &mut c, tol);
                            },
                        );
                    }
                }
            }
        }

        // Static gate ahead of thread spawn: the built DAG's per-kernel
        // counts must match the closed form for `nt` (the executor's own
        // precheck then covers acyclicity and hazard edges).
        if opts.precheck {
            if let Err(e) = xgs_analysis::check_cholesky_census(g.task_kinds(), nt) {
                panic!("cholesky DAG precheck: {e}");
            }
        }

        let report = execute_opts(g, workers, opts);
        let res = match failed.load(Ordering::Acquire) {
            p if p >= 0 => Err(FactorError::NotPositiveDefinite { pivot: p as usize }),
            _ => Ok(()),
        };
        (res, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xgs_covariance::{jittered_grid, morton_order, Matern, MaternParams};
    use xgs_tile::{FlopKernelModel, TlrConfig, Variant};

    fn build(
        n: usize,
        nb: usize,
        variant: Variant,
        range: f64,
    ) -> (SymTileMatrix, xgs_linalg::Matrix) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut locs = jittered_grid(n, &mut rng);
        morton_order(&mut locs);
        let kernel = Matern::new(MaternParams::new(1.0, range, 0.5));
        let exact = xgs_covariance::covariance_matrix(&kernel, &locs);
        let model = FlopKernelModel {
            dense_rate: 45.0e9,
            mem_factor: 1.0,
        };
        let m = SymTileMatrix::generate(&kernel, &locs, TlrConfig::new(variant, nb), &model);
        (m, exact)
    }

    fn factor_residual(l: &xgs_linalg::Matrix, a: &xgs_linalg::Matrix) -> f64 {
        let rec = l.matmul_t(l);
        let mut num = 0.0f64;
        let n = a.rows();
        for j in 0..n {
            for i in j..n {
                let d = rec[(i, j)] - a[(i, j)];
                num += 2.0 * d * d;
            }
        }
        num.sqrt() / a.norm_fro()
    }

    #[test]
    fn dense_f64_sequential_matches_reference() {
        let (m, exact) = build(200, 64, Variant::DenseF64, 0.1);
        let mut f = TiledFactor::from_matrix(m);
        f.factorize_seq().unwrap();
        let l = f.to_dense_lower();
        // Oracle: LAPACK-style dense factorization.
        let mut lref = exact.clone();
        xgs_linalg::cholesky_in_place(&mut lref).unwrap();
        let err = l.add_scaled(-1.0, &lref).norm_fro() / lref.norm_fro();
        assert!(err < 1e-12, "factor mismatch {err}");
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (m1, _) = build(300, 50, Variant::MpDense, 0.05);
        let (m2, _) = build(300, 50, Variant::MpDense, 0.05);
        let mut seq = TiledFactor::from_matrix(m1);
        seq.factorize_seq().unwrap();
        let par = Arc::new(TiledFactor::from_matrix(m2));
        let (res, report) = par.factorize_parallel(4);
        res.unwrap();
        assert_eq!(report.tasks, {
            let nt = seq.nt();
            // potrf + trsm + syrk/gemm counts
            nt + nt * (nt - 1) / 2 + nt * (nt * nt - 1) / 6
        });
        let a = seq.to_dense_lower();
        let b = par.to_dense_lower();
        assert_eq!(a.as_slice(), b.as_slice(), "parallel must be bitwise equal");
    }

    #[test]
    fn mp_dense_factor_close_to_reference() {
        let (m, exact) = build(400, 40, Variant::MpDense, 0.02);
        let mut f = TiledFactor::from_matrix(m);
        f.factorize_seq().unwrap();
        let l = f.to_dense_lower();
        let res = factor_residual(&l, &exact);
        assert!(res < 1e-5, "MP residual too large: {res}");
    }

    #[test]
    fn mp_tlr_factor_close_to_reference() {
        let (m, exact) = build(512, 32, Variant::MpDenseTlr, 0.01);
        let mut f = TiledFactor::from_matrix(m);
        f.factorize_seq().unwrap();
        let l = f.to_dense_lower();
        let res = factor_residual(&l, &exact);
        assert!(res < 1e-5, "TLR residual too large: {res}");
    }

    #[test]
    fn indefinite_matrix_fails_cleanly_in_both_engines() {
        // Build a valid matrix then poison a diagonal entry.
        let (m, _) = build(150, 50, Variant::DenseF64, 0.1);
        let mut f = TiledFactor::from_matrix(m);
        {
            let idx = f.layout.stored_index(1, 1);
            let mut t = f.tiles[idx].lock();
            if let xgs_tile::TileStorage::Dense(d) = &mut t.storage {
                d[(5, 5)] = -100.0;
            }
        }
        let err = f.factorize_seq().unwrap_err();
        match err {
            FactorError::NotPositiveDefinite { pivot } => {
                assert!(pivot >= 50, "pivot {pivot} should be inside tile 1");
            }
        }
    }

    #[test]
    fn parallel_indefinite_fails_cleanly() {
        let (m, _) = build(150, 50, Variant::DenseF64, 0.1);
        let f = TiledFactor::from_matrix(m);
        {
            let idx = f.layout.stored_index(0, 0);
            let mut t = f.tiles[idx].lock();
            if let xgs_tile::TileStorage::Dense(d) = &mut t.storage {
                d[(0, 0)] = -1.0;
            }
        }
        let f = Arc::new(f);
        let (res, _) = f.factorize_parallel(4);
        assert_eq!(
            res.unwrap_err(),
            FactorError::NotPositiveDefinite { pivot: 0 }
        );
    }

    #[test]
    fn parallel_run_is_validated_and_metered() {
        let (m, _) = build(300, 50, Variant::MpDense, 0.05);
        let f = Arc::new(TiledFactor::from_matrix(m));
        let (res, report) = f.factorize_parallel_opts(
            4,
            xgs_runtime::ExecOptions {
                validate: true,
                trace: true,
                ..Default::default()
            },
        );
        res.unwrap();
        let m = report.metrics.as_ref().expect("metrics on by default");
        let v = m.validation.expect("validator was requested");
        // 6x6 tiles. Right-looking tile Cholesky carries RAW (kernel reads
        // the panel/diagonal) and WAW (updates then factor) hazards; WAR
        // never occurs because each tile's last write precedes all reads.
        assert!(v.raw_edges > 0 && v.waw_edges > 0, "{v:?}");
        assert_eq!(v.war_edges, 0, "{v:?}");
        let kinds: Vec<&str> = m.kernels.iter().map(|k| k.kind).collect();
        for kind in ["potrf", "trsm", "syrk", "gemm"] {
            assert!(kinds.contains(&kind), "missing kernel stats for {kind}");
        }
        assert_eq!(
            m.kernels.iter().map(|k| k.count).sum::<u64>() as usize,
            report.tasks
        );
        // Tile coordinates flow into the trace: the first potrf is (0,0)
        // and every gemm sits strictly below its diagonal.
        let potrf = report.trace.iter().find(|e| e.kind == "potrf").unwrap();
        assert_eq!(potrf.coords, Some((0, 0)));
        assert!(report
            .trace
            .iter()
            .filter(|e| e.kind == "gemm")
            .all(|e| matches!(e.coords, Some((i, j)) if i > j)));
    }
}

//! Tile Cholesky factorization in the paper's three variants, plus the
//! tiled triangular solves and log-determinant the MLE pipeline needs.
//!
//! * **dense FP64** — the reference (Algorithm 1 with all tiles FP64);
//! * **MP dense** — per-tile FP64/FP32/FP16 with on-demand operand
//!   conversion (Algorithm 1's `+`/`*` operands);
//! * **MP + dense/TLR** — the paper's contribution: a dense FP64 band,
//!   mixed-precision dense tiles where norms allow, and low-rank tiles
//!   elsewhere, with HiCMA-style low-rank kernels (TRSM touches only the
//!   `V` factor; GEMM products stay low-rank and are *rounded* back to the
//!   target accuracy after each update).
//!
//! Both a sequential reference loop and a task-graph execution on
//! `xgs-runtime` are provided; they produce bitwise-identical tiles because
//! the runtime enforces the sequential semantics of the DAG.

pub mod dag;
pub mod factor;
pub mod kernels;
pub mod shard;
pub mod solve;

pub use dag::{cholesky_dag, DagOptions, DagStats};
pub use factor::{FactorError, TiledFactor};
pub use shard::{
    admit_worker, grid_shape, project_wire_census, project_wire_census_warm, spawn_local_workers,
    spawn_workers, tile_wire_frame_bytes, worker_loop, worker_loop_with, ChaosSpec, JoinInfo,
    NoReplacement, ReplacementOrigin, ReplacementSource, ReplacementWorker, ShardBackend,
    ShardError, ShardOptions, ShardProcesses, ShardReport, ShardRunner, WorkerOptions,
};
pub use solve::{logdet, solve_lower, solve_lower_transpose};

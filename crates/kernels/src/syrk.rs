//! Symmetric rank-k update, the `SYRK` kernel of Algorithm 1.
//!
//! In the tile Cholesky, `SYRK` updates a diagonal tile with a panel tile:
//! `C <- alpha * A * A^T + beta * C`, touching only the lower triangle of
//! `C` (the covariance matrix is symmetric, so only the lower half is ever
//! stored or updated).

use crate::Real;

/// `C <- alpha * A * A^T + beta * C`, lower triangle only.
///
/// * `n` — order of `C`; `k` — number of columns of `A`.
/// * The strict upper triangle of `C` is left untouched.
#[allow(clippy::too_many_arguments)]
pub fn syrk_lower_notrans<T: Real>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    assert!(lda >= n.max(1));
    assert!(ldc >= n.max(1));
    if k > 0 {
        assert!(a.len() >= lda * (k - 1) + n);
    }
    if n > 0 {
        assert!(c.len() >= ldc * (n - 1) + n);
    }

    if beta != T::ONE {
        for j in 0..n {
            for i in j..n {
                let idx = i + j * ldc;
                c[idx] = if beta == T::ZERO {
                    T::ZERO
                } else {
                    c[idx] * beta
                };
            }
        }
    }
    if k == 0 || alpha == T::ZERO {
        return;
    }
    // Column-j of the update: C[j.., j] += alpha * A[j.., l] * A[j, l].
    for j in 0..n {
        for l in 0..k {
            let ajl = alpha * a[j + l * lda];
            if ajl == T::ZERO {
                continue;
            }
            let acol = &a[l * lda + j..l * lda + n];
            let ccol = &mut c[j * ldc + j..j * ldc + n];
            for (ci, ai) in ccol.iter_mut().zip(acol) {
                *ci = ai.mul_add(ajl, *ci);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Trans};

    fn fill(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn matches_full_gemm_on_lower_triangle() {
        let (n, k) = (9, 6);
        let a = fill(n * k, 1);
        let mut c_syrk = fill(n * n, 2);
        // Symmetrize the seed so the GEMM oracle agrees on the lower part.
        let mut c_full = c_syrk.clone();
        gemm(
            Trans::No,
            Trans::Yes,
            n,
            n,
            k,
            0.9,
            &a,
            n,
            &a,
            n,
            0.4,
            &mut c_full,
            n,
        );
        syrk_lower_notrans(n, k, 0.9, &a, n, 0.4, &mut c_syrk, n);
        for j in 0..n {
            for i in j..n {
                assert!((c_syrk[i + j * n] - c_full[i + j * n]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upper_triangle_untouched() {
        let (n, k) = (5, 3);
        let a = fill(n * k, 3);
        let mut c = fill(n * n, 4);
        let before = c.clone();
        syrk_lower_notrans(n, k, 1.0, &a, n, -2.0, &mut c, n);
        for j in 0..n {
            for i in 0..j {
                assert_eq!(c[i + j * n], before[i + j * n]);
            }
        }
    }

    #[test]
    fn produces_positive_semidefinite_update() {
        // C = A A^T must have nonnegative diagonal.
        let (n, k) = (8, 4);
        let a = fill(n * k, 5);
        let mut c = vec![0f64; n * n];
        syrk_lower_notrans(n, k, 1.0, &a, n, 0.0, &mut c, n);
        for i in 0..n {
            assert!(c[i + i * n] >= 0.0);
        }
    }
}

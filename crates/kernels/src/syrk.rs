//! Symmetric rank-k update, the `SYRK` kernel of Algorithm 1.
//!
//! In the tile Cholesky, `SYRK` updates a diagonal tile with a panel tile:
//! `C <- alpha * A * A^T + beta * C`, touching only the lower triangle of
//! `C` (the covariance matrix is symmetric, so only the lower half is ever
//! stored or updated).
//!
//! Large updates are blocked: `NB`-wide diagonal blocks run the unblocked
//! column loop, and every block strictly below the diagonal is a plain
//! rectangular `A_i * A_j^T` product routed through the cache-blocked
//! [`gemm`] — so SYRK inherits the packed microkernel for the bulk of its
//! flops while the strict upper triangle stays untouched.

use crate::gemm::{gemm, Trans};
use crate::Real;

/// Diagonal-block width of the blocked path; below-or-at this order the
/// unblocked loop runs directly.
const NB: usize = 64;

/// `C <- alpha * A * A^T + beta * C`, lower triangle only.
///
/// * `n` — order of `C`; `k` — number of columns of `A`.
/// * The strict upper triangle of `C` is left untouched.
#[allow(clippy::too_many_arguments)]
pub fn syrk_lower_notrans<T: Real>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    check_and_scale(n, k, a, lda, beta, c, ldc);
    if k == 0 || alpha == T::ZERO {
        return;
    }
    if n <= NB {
        syrk_core(n, k, alpha, a, lda, c, ldc);
        return;
    }
    for j0 in (0..n).step_by(NB) {
        let nb = NB.min(n - j0);
        // Diagonal block: triangular update, unblocked.
        syrk_core(nb, k, alpha, &a[j0..], lda, &mut c[j0 + j0 * ldc..], ldc);
        // Strictly-below block column: C[j0+nb.., j0 block] is a full
        // rectangle — hand it to the blocked GEMM (beta already applied).
        let mb = n - j0 - nb;
        if mb > 0 {
            gemm(
                Trans::No,
                Trans::Yes,
                mb,
                nb,
                k,
                alpha,
                &a[j0 + nb..],
                lda,
                &a[j0..],
                lda,
                T::ONE,
                &mut c[j0 * ldc + j0 + nb..],
                ldc,
            );
        }
    }
}

/// Unblocked reference: the original column loop with full semantics —
/// the oracle the blocked path is tested against.
#[allow(clippy::too_many_arguments)]
pub fn syrk_lower_notrans_naive<T: Real>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    check_and_scale(n, k, a, lda, beta, c, ldc);
    if k == 0 || alpha == T::ZERO {
        return;
    }
    syrk_core(n, k, alpha, a, lda, c, ldc);
}

fn check_and_scale<T: Real>(
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    assert!(lda >= n.max(1));
    assert!(ldc >= n.max(1));
    if k > 0 {
        assert!(a.len() >= lda * (k - 1) + n);
    }
    if n > 0 {
        assert!(c.len() >= ldc * (n - 1) + n);
    }
    if beta != T::ONE {
        for j in 0..n {
            for i in j..n {
                let idx = i + j * ldc;
                c[idx] = if beta == T::ZERO {
                    T::ZERO
                } else {
                    c[idx] * beta
                };
            }
        }
    }
}

/// Column-j of the update: `C[j.., j] += alpha * A[j.., l] * A[j, l]`
/// (beta already applied by the caller).
fn syrk_core<T: Real>(n: usize, k: usize, alpha: T, a: &[T], lda: usize, c: &mut [T], ldc: usize) {
    for j in 0..n {
        for l in 0..k {
            let ajl = alpha * a[j + l * lda];
            if ajl == T::ZERO {
                continue;
            }
            let acol = &a[l * lda + j..l * lda + n];
            let ccol = &mut c[j * ldc + j..j * ldc + n];
            for (ci, ai) in ccol.iter_mut().zip(acol) {
                *ci = ai.mul_add(ajl, *ci);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_naive, Trans};

    fn fill(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn matches_full_gemm_on_lower_triangle() {
        let (n, k) = (9, 6);
        let a = fill(n * k, 1);
        let mut c_syrk = fill(n * n, 2);
        // Symmetrize the seed so the GEMM oracle agrees on the lower part.
        let mut c_full = c_syrk.clone();
        gemm_naive(
            Trans::No,
            Trans::Yes,
            n,
            n,
            k,
            0.9,
            &a,
            n,
            &a,
            n,
            0.4,
            &mut c_full,
            n,
        );
        syrk_lower_notrans(n, k, 0.9, &a, n, 0.4, &mut c_syrk, n);
        for j in 0..n {
            for i in j..n {
                assert!((c_syrk[i + j * n] - c_full[i + j * n]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn blocked_matches_naive_beyond_block_size() {
        // n > NB with awkward remainders, padded ldc, negative alpha (the
        // trailing-update signature used by the tile Cholesky).
        let (n, k) = (NB * 2 + 13, 37);
        let (lda, ldc) = (n + 3, n + 5);
        let a = fill(lda * k, 7);
        let mut c1 = fill(ldc * n, 8);
        let mut c2 = c1.clone();
        syrk_lower_notrans(n, k, -1.0, &a, lda, 1.0, &mut c1, ldc);
        syrk_lower_notrans_naive(n, k, -1.0, &a, lda, 1.0, &mut c2, ldc);
        for j in 0..n {
            for i in j..n {
                let idx = i + j * ldc;
                assert!(
                    (c1[idx] - c2[idx]).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    c1[idx],
                    c2[idx]
                );
            }
        }
    }

    #[test]
    fn upper_triangle_untouched() {
        let (n, k) = (5, 3);
        let a = fill(n * k, 3);
        let mut c = fill(n * n, 4);
        let before = c.clone();
        syrk_lower_notrans(n, k, 1.0, &a, n, -2.0, &mut c, n);
        for j in 0..n {
            for i in 0..j {
                assert_eq!(c[i + j * n], before[i + j * n]);
            }
        }
    }

    #[test]
    fn upper_triangle_untouched_blocked() {
        let (n, k) = (NB + 21, 16);
        let a = fill(n * k, 9);
        let mut c = fill(n * n, 10);
        let before = c.clone();
        syrk_lower_notrans(n, k, 1.0, &a, n, -2.0, &mut c, n);
        for j in 0..n {
            for i in 0..j {
                assert_eq!(c[i + j * n], before[i + j * n]);
            }
        }
    }

    #[test]
    fn produces_positive_semidefinite_update() {
        // C = A A^T must have nonnegative diagonal.
        let (n, k) = (8, 4);
        let a = fill(n * k, 5);
        let mut c = vec![0f64; n * n];
        syrk_lower_notrans(n, k, 1.0, &a, n, 0.0, &mut c, n);
        for i in 0..n {
            assert!(c[i + i * n] >= 0.0);
        }
    }
}

//! General matrix-matrix multiply: `C <- alpha * op(A) * op(B) + beta * C`.
//!
//! Column-major with explicit leading dimensions, like BLAS `xGEMM`. The
//! FP64/FP32 path is generic over [`Real`]; the FP16 path ([`shgemm`]) trims
//! operands to binary16 and accumulates in FP32 (the paper's SHGEMM).
//!
//! Two execution paths share the same BLAS semantics:
//!
//! * [`gemm_naive`] — the original axpy/dot loop nest, kept as the oracle
//!   and as the small-problem path (no packing overhead).
//! * the cache-blocked path — BLIS-style `NC/KC/MC` loop blocking around an
//!   `MR x NR` register microkernel over zero-padded packed micro-panels.
//!   The generic microkernel is an 8-wide `mul_add` accumulator unroll that
//!   autovectorizes under `-C target-cpu=native`; on x86-64 with AVX2+FMA an
//!   explicit `std::arch` f64x4 microkernel is selected at runtime. Both
//!   compute fused multiply-adds in the identical order, so the runtime
//!   selection never changes results bitwise.
//!
//! **Determinism contract**: for a fixed `(m, k)` and fixed inputs, every
//! output column is computed by the exact same arithmetic regardless of `n`
//! — path dispatch deliberately ignores `n`, and the blocked path processes
//! each column independently. This is what keeps the server's batched
//! multi-RHS solves bitwise identical to singleton solves on top of a
//! blocked kernel.

use crate::half::Half;
use crate::Real;

/// Transposition flag for a GEMM operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    No,
    Yes,
}

/// Microkernel register tile: `MR x NR` accumulators.
const MR: usize = 8;
const NR: usize = 4;
/// Loop blocking: a `KC`-deep slice of the inner dimension is packed once
/// and reused across the whole `MC x NC` block of C (packed A panel:
/// `MC x KC` ≈ L2-resident, packed B panel: `KC x NC` ≈ L3-resident).
const KC: usize = 256;
const MC: usize = 128;
const NC: usize = 512;

/// Below this `m * k` footprint the packed panels cannot be amortized and
/// the naive loop nest wins. Dispatch looks only at `m` and `k` — never `n`
/// — so per-column arithmetic is independent of how many columns ride in
/// one call (see the module-level determinism contract).
const BLOCK_MIN_MK: usize = 48 * 48;

#[allow(clippy::too_many_arguments)]
fn check_dims<T: Real>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &[T],
    ldc: usize,
) {
    let (a_rows, a_cols) = match transa {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (b_rows, b_cols) = match transb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    assert!(lda >= a_rows.max(1), "lda {lda} < rows of A {a_rows}");
    assert!(ldb >= b_rows.max(1), "ldb {ldb} < rows of B {b_rows}");
    assert!(ldc >= m.max(1), "ldc {ldc} < m {m}");
    if a_cols > 0 && a_rows > 0 {
        assert!(a.len() >= lda * (a_cols - 1) + a_rows);
    }
    if b_cols > 0 && b_rows > 0 {
        assert!(b.len() >= ldb * (b_cols - 1) + b_rows);
    }
    if n > 0 {
        assert!(c.len() >= ldc * (n - 1) + m);
    }
}

/// `C <- beta * C` over the `m x n` window (beta == 0 overwrites NaN too).
fn scale_beta<T: Real>(m: usize, n: usize, beta: T, c: &mut [T], ldc: usize) {
    if beta == T::ONE {
        return;
    }
    for j in 0..n {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == T::ZERO {
            for x in col.iter_mut() {
                *x = T::ZERO;
            }
        } else {
            for x in col.iter_mut() {
                *x = *x * beta;
            }
        }
    }
}

/// `C <- alpha * op(A) * op(B) + beta * C`.
///
/// * `m, n` — dimensions of `C`; `k` — inner dimension.
/// * `op(A)` is `m x k`, `op(B)` is `k x n`.
///
/// Panics if a leading dimension is smaller than the operand's row count.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Real>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    check_dims(transa, transb, m, n, k, a, lda, b, ldb, c, ldc);
    scale_beta(m, n, beta, c, ldc);
    if k == 0 || m == 0 || n == 0 || alpha == T::ZERO {
        return;
    }
    if m * k >= BLOCK_MIN_MK {
        gemm_core_blocked(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
        gemm_core_naive(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
}

/// The original unblocked loop nest with full BLAS semantics — the test
/// oracle for the blocked path and the small-problem fast path.
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive<T: Real>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    check_dims(transa, transb, m, n, k, a, lda, b, ldb, c, ldc);
    scale_beta(m, n, beta, c, ldc);
    if k == 0 || m == 0 || n == 0 || alpha == T::ZERO {
        return;
    }
    gemm_core_naive(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

/// Unblocked update `C += alpha * op(A) * op(B)` (beta already applied).
#[allow(clippy::too_many_arguments)]
fn gemm_core_naive<T: Real>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    match (transa, transb) {
        (Trans::No, Trans::No) => {
            // C[:,j] += alpha * A[:,l] * B[l,j] — pure axpy over columns,
            // vectorizes along m.
            for j in 0..n {
                for l in 0..k {
                    let blj = alpha * b[l + j * ldb];
                    if blj == T::ZERO {
                        continue;
                    }
                    let acol = &a[l * lda..l * lda + m];
                    let ccol = &mut c[j * ldc..j * ldc + m];
                    for (ci, ai) in ccol.iter_mut().zip(acol) {
                        *ci = ai.mul_add(blj, *ci);
                    }
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // C[:,j] += alpha * A[:,l] * B[j,l]; B accessed row-wise but the
            // inner loop still streams columns of A and C.
            for j in 0..n {
                for l in 0..k {
                    let blj = alpha * b[j + l * ldb];
                    if blj == T::ZERO {
                        continue;
                    }
                    let acol = &a[l * lda..l * lda + m];
                    let ccol = &mut c[j * ldc..j * ldc + m];
                    for (ci, ai) in ccol.iter_mut().zip(acol) {
                        *ci = ai.mul_add(blj, *ci);
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // C[i,j] += alpha * dot(A[:,i], B[:,j]) — dot products down
            // contiguous columns.
            for j in 0..n {
                let bcol = &b[j * ldb..j * ldb + k];
                for i in 0..m {
                    let acol = &a[i * lda..i * lda + k];
                    let mut s = T::ZERO;
                    for (ai, bi) in acol.iter().zip(bcol) {
                        s = ai.mul_add(*bi, s);
                    }
                    c[i + j * ldc] += alpha * s;
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            // C[i,j] += alpha * sum_l A[l,i] * B[j,l].
            for j in 0..n {
                for i in 0..m {
                    let acol = &a[i * lda..i * lda + k];
                    let mut s = T::ZERO;
                    for (l, ai) in acol.iter().enumerate() {
                        s = ai.mul_add(b[j + l * ldb], s);
                    }
                    c[i + j * ldc] += alpha * s;
                }
            }
        }
    }
}

/// Pack `op(A)[ic.., pc..]` (`mc x kc`) into row micro-panels of height
/// `MR`: panel `p` holds rows `p*MR..(p+1)*MR` stored column-by-column
/// (`apack[p*MR*kc + l*MR + r]`), rows past `mc` zero-padded so the
/// microkernel never branches on the row edge.
#[allow(clippy::too_many_arguments)]
fn pack_a<T: Real>(
    transa: Trans,
    mc: usize,
    kc: usize,
    a: &[T],
    lda: usize,
    ic: usize,
    pc: usize,
    apack: &mut [T],
) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let base = p * MR * kc;
        for l in 0..kc {
            for r in 0..MR {
                let row = p * MR + r;
                apack[base + l * MR + r] = if row < mc {
                    match transa {
                        Trans::No => a[(ic + row) + (pc + l) * lda],
                        Trans::Yes => a[(pc + l) + (ic + row) * lda],
                    }
                } else {
                    T::ZERO
                };
            }
        }
    }
}

/// Pack `op(B)[pc.., jc..]` (`kc x nc`) into column micro-panels of width
/// `NR` (`bpack[q*NR*kc + l*NR + c]`), columns past `nc` zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_b<T: Real>(
    transb: Trans,
    kc: usize,
    nc: usize,
    b: &[T],
    ldb: usize,
    pc: usize,
    jc: usize,
    bpack: &mut [T],
) {
    let panels = nc.div_ceil(NR);
    for q in 0..panels {
        let base = q * NR * kc;
        for l in 0..kc {
            for col in 0..NR {
                let j = q * NR + col;
                bpack[base + l * NR + col] = if j < nc {
                    match transb {
                        Trans::No => b[(pc + l) + (jc + j) * ldb],
                        Trans::Yes => b[(jc + j) + (pc + l) * ldb],
                    }
                } else {
                    T::ZERO
                };
            }
        }
    }
}

/// Generic `MR x NR` microkernel: `acc[c][r] += ap[l][r] * bp[l][c]` over
/// `l`, one fused multiply-add per element per step. The `MR`-wide inner
/// unroll over a contiguous packed panel autovectorizes (vfmadd under
/// `-C target-cpu=native`); the explicit AVX2 kernel below performs the
/// identical operations in the identical order.
#[inline(always)]
fn microkernel<T: Real>(kc: usize, ap: &[T], bp: &[T], acc: &mut [[T; MR]; NR]) {
    for l in 0..kc {
        let av = &ap[l * MR..l * MR + MR];
        let bv = &bp[l * NR..l * NR + NR];
        for (col, bc) in acc.iter_mut().zip(bv) {
            for (accr, ar) in col.iter_mut().zip(av) {
                *accr = ar.mul_add(*bc, *accr);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{MR, NR};
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Runtime AVX2+FMA probe, cached after the first call.
    pub(super) fn available() -> bool {
        static HAVE: OnceLock<bool> = OnceLock::new();
        *HAVE.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// f64x4 microkernel: rows 0..4 and 4..8 of each accumulator column are
    /// one `__m256d` each, updated with `vfmadd231pd` per `l` — the same
    /// fused operation, in the same order, as the generic kernel, so the
    /// two are bitwise interchangeable.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available ([`available`]) and that
    /// `ap`/`bp` hold at least `kc * MR` / `kc * NR` elements.
    #[target_feature(enable = "avx2", enable = "fma")]
    // xgs-lint: allow(no-unjustified-unsafe): target_feature fn; callers check avx::available() and slice lengths per the Safety contract
    pub(super) unsafe fn microkernel_f64(
        kc: usize,
        ap: &[f64],
        bp: &[f64],
        acc: &mut [[f64; MR]; NR],
    ) {
        debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        let mut lo = [_mm256_setzero_pd(); NR];
        let mut hi = [_mm256_setzero_pd(); NR];
        let ap = ap.as_ptr();
        let bp = bp.as_ptr();
        for l in 0..kc {
            let a_lo = _mm256_loadu_pd(ap.add(l * MR));
            let a_hi = _mm256_loadu_pd(ap.add(l * MR + 4));
            for c in 0..NR {
                let b = _mm256_broadcast_sd(&*bp.add(l * NR + c));
                lo[c] = _mm256_fmadd_pd(a_lo, b, lo[c]);
                hi[c] = _mm256_fmadd_pd(a_hi, b, hi[c]);
            }
        }
        for c in 0..NR {
            _mm256_storeu_pd(acc[c].as_mut_ptr(), lo[c]);
            _mm256_storeu_pd(acc[c].as_mut_ptr().add(4), hi[c]);
        }
    }
}

/// Run the microkernel for one register tile, dispatching to the AVX2 f64
/// kernel when the CPU has it (bitwise-identical to the generic one).
#[inline(always)]
fn run_microkernel<T: Real>(kc: usize, ap: &[T], bp: &[T], acc: &mut [[T; MR]; NR]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::any::TypeId;
        if TypeId::of::<T>() == TypeId::of::<f64>() && avx::available() {
            // SAFETY: T is exactly f64 (TypeId match on 'static types), so
            // these are plain same-type reborrows; AVX2+FMA presence was
            // just checked.
            // xgs-lint: allow(no-unjustified-unsafe): same-type reborrow proven by TypeId equality; feature presence checked one line up
            unsafe {
                let ap64 = std::slice::from_raw_parts(ap.as_ptr() as *const f64, ap.len());
                let bp64 = std::slice::from_raw_parts(bp.as_ptr() as *const f64, bp.len());
                let acc64 = &mut *(acc as *mut [[T; MR]; NR] as *mut [[f64; MR]; NR]);
                avx::microkernel_f64(kc, ap64, bp64, acc64);
            }
            return;
        }
    }
    microkernel(kc, ap, bp, acc);
}

/// Cache-blocked update `C += alpha * op(A) * op(B)` (beta already
/// applied): BLIS-style `jc/pc/ic` loop blocking over packed, zero-padded
/// micro-panels with an `MR x NR` register microkernel.
///
/// Per-column arithmetic depends only on `(m, k)` and the column's data:
/// the `pc` loop fixes the k-summation grouping from `KC` alone, and a
/// column's register-tile membership never changes what is accumulated
/// into it — which keeps batched and singleton calls bitwise identical.
#[allow(clippy::too_many_arguments)]
fn gemm_core_blocked<T: Real>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    let kc_max = KC.min(k);
    let mut apack = vec![T::ZERO; MC.min(m).div_ceil(MR) * MR * kc_max];
    let mut bpack = vec![T::ZERO; NC.min(n).div_ceil(NR) * NR * kc_max];
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(transb, kc, nc, b, ldb, pc, jc, &mut bpack);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(transa, mc, kc, a, lda, ic, pc, &mut apack);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * NR * kc..][..NR * kc];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * MR * kc..][..MR * kc];
                        let mut acc = [[T::ZERO; MR]; NR];
                        run_microkernel(kc, ap, bp, &mut acc);
                        // Write back only the real rows/cols; padded lanes
                        // hold exact zeros and are dropped.
                        for (cq, col) in acc.iter().enumerate().take(nr) {
                            let cbase = (jc + jr + cq) * ldc + ic + ir;
                            let ccol = &mut c[cbase..cbase + mr];
                            for (ci, acci) in ccol.iter_mut().zip(col) {
                                *ci = acci.mul_add(alpha, *ci);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Convenience wrapper for the common `C <- beta*C + alpha*A*B` case.
#[allow(clippy::too_many_arguments)]
pub fn gemm_notrans<T: Real>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    gemm(
        Trans::No,
        Trans::No,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        beta,
        c,
        ldc,
    )
}

/// SHGEMM: `C(f32) <- alpha * op(f16(A)) * op(f16(B)) + beta * C`.
///
/// Operands arrive already trimmed to binary16 tiles; every product
/// `a_il * b_lj` is computed on the exact `f32` values of the halves and
/// accumulated in `f32`, reproducing the mixed-precision HGEMM-with-FP32-
/// accumulation the paper obtains from BLIS on A64FX (Fig. 8) and from
/// trimmed SGEMM on Shaheen II. The promoted panels run through the same
/// blocked [`gemm`] as the FP32 path.
#[allow(clippy::too_many_arguments)]
pub fn shgemm(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[Half],
    lda: usize,
    b: &[Half],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    // Promote operand panels once (exact), then run the f32 kernel. This is
    // precisely "call an SGEMM BLAS routine to accumulate in FP32".
    let (a_rows, a_cols) = match transa {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (b_rows, b_cols) = match transb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    let af = Half::promote_panel(a, a_rows, a_cols, lda);
    let bf = Half::promote_panel(b, b_rows, b_cols, ldb);
    gemm(
        transa,
        transb,
        m,
        n,
        k,
        alpha,
        &af,
        a_rows.max(1),
        &bf,
        b_rows.max(1),
        beta,
        c,
        ldc,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unoptimized triple loop used as the oracle.
    #[allow(clippy::too_many_arguments)]
    fn gemm_ref(
        transa: Trans,
        transb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
    ) {
        for j in 0..n {
            for i in 0..m {
                let mut s = 0.0;
                for l in 0..k {
                    let av = match transa {
                        Trans::No => a[i + l * lda],
                        Trans::Yes => a[l + i * lda],
                    };
                    let bv = match transb {
                        Trans::No => b[l + j * ldb],
                        Trans::Yes => b[j + l * ldb],
                    };
                    s += av * bv;
                }
                c[i + j * ldc] = alpha * s + beta * c[i + j * ldc];
            }
        }
    }

    fn fill(n: usize, seed: u64) -> Vec<f64> {
        // Tiny deterministic LCG so the kernel crate stays dependency-free.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn all_transpose_combinations_match_reference() {
        let (m, n, k) = (13, 7, 9);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let (ar, ac) = if ta == Trans::No { (m, k) } else { (k, m) };
            let (br, bc) = if tb == Trans::No { (k, n) } else { (n, k) };
            let a = fill(ar * ac, 1);
            let b = fill(br * bc, 2);
            let mut c1 = fill(m * n, 3);
            let mut c2 = c1.clone();
            gemm(ta, tb, m, n, k, 0.7, &a, ar, &b, br, -1.3, &mut c1, m);
            gemm_ref(ta, tb, m, n, k, 0.7, &a, ar, &b, br, -1.3, &mut c2, m);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-12, "{ta:?} {tb:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn blocked_matches_naive_all_transposes_awkward_sizes() {
        // Sizes chosen to be far from multiples of MR/NR/KC/MC and large
        // enough to force the blocked path and exercise every edge panel.
        for &(m, n, k) in &[(131, 67, 259), (130, 3, 300), (97, 129, 49)] {
            for (ta, tb) in [
                (Trans::No, Trans::No),
                (Trans::No, Trans::Yes),
                (Trans::Yes, Trans::No),
                (Trans::Yes, Trans::Yes),
            ] {
                let (ar, ac) = if ta == Trans::No { (m, k) } else { (k, m) };
                let (br, bc) = if tb == Trans::No { (k, n) } else { (n, k) };
                assert!(m * k >= super::BLOCK_MIN_MK, "test must hit blocked path");
                let a = fill(ar * ac, m as u64 ^ 11);
                let b = fill(br * bc, n as u64 ^ 22);
                let mut c1 = fill(m * n, 33);
                let mut c2 = c1.clone();
                gemm(ta, tb, m, n, k, 1.1, &a, ar, &b, br, 0.3, &mut c1, m);
                gemm_naive(ta, tb, m, n, k, 1.1, &a, ar, &b, br, 0.3, &mut c2, m);
                for (idx, (x, y)) in c1.iter().zip(&c2).enumerate() {
                    assert!(
                        (x - y).abs() < 1e-10 * (k as f64),
                        "{ta:?} {tb:?} ({m},{n},{k}) idx {idx}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_respects_leading_dimension_padding() {
        let (m, n, k) = (61, 9, 83);
        let (lda, ldb, ldc) = (m + 5, k + 3, m + 7);
        assert!(m * k >= super::BLOCK_MIN_MK);
        let a = fill(lda * k, 40);
        let b = fill(ldb * n, 41);
        let mut c = fill(ldc * n, 42);
        let c_orig = c.clone();
        let mut cref = c.clone();
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            0.9,
            &a,
            lda,
            &b,
            ldb,
            1.4,
            &mut c,
            ldc,
        );
        gemm_naive(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            0.9,
            &a,
            lda,
            &b,
            ldb,
            1.4,
            &mut cref,
            ldc,
        );
        for j in 0..n {
            for i in 0..ldc {
                let idx = i + j * ldc;
                if i < m {
                    assert!((c[idx] - cref[idx]).abs() < 1e-10);
                } else {
                    // Padding rows between columns must be untouched.
                    assert_eq!(c[idx], c_orig[idx]);
                }
            }
        }
    }

    #[test]
    fn blocked_per_column_is_independent_of_n() {
        // The determinism contract: column j of a wide call must be
        // bitwise identical to a single-column call on that column.
        let (m, n, k) = (96, 11, 100);
        assert!(m * k >= super::BLOCK_MIN_MK);
        let a = fill(m * k, 50);
        let b = fill(k * n, 51);
        let mut wide = vec![0f64; m * n];
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            1.0,
            &a,
            m,
            &b,
            k,
            0.0,
            &mut wide,
            m,
        );
        for j in 0..n {
            let mut single = vec![0f64; m];
            gemm(
                Trans::No,
                Trans::No,
                m,
                1,
                k,
                1.0,
                &a,
                m,
                &b[j * k..j * k + k],
                k,
                0.0,
                &mut single,
                m,
            );
            assert_eq!(&wide[j * m..(j + 1) * m], &single[..], "column {j}");
        }
    }

    #[test]
    fn respects_leading_dimension_padding() {
        let (m, n, k) = (4, 3, 5);
        let (lda, ldb, ldc) = (7, 8, 6);
        let a = fill(lda * k, 4);
        let b = fill(ldb * n, 5);
        let mut c = fill(ldc * n, 6);
        let c_orig = c.clone();
        let mut cref = c.clone();
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            1.0,
            &a,
            lda,
            &b,
            ldb,
            0.5,
            &mut c,
            ldc,
        );
        gemm_ref(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            1.0,
            &a,
            lda,
            &b,
            ldb,
            0.5,
            &mut cref,
            ldc,
        );
        for j in 0..n {
            for i in 0..ldc {
                let idx = i + j * ldc;
                if i < m {
                    assert!((c[idx] - cref[idx]).abs() < 1e-12);
                } else {
                    // Padding rows between columns must be untouched.
                    assert_eq!(c[idx], c_orig[idx]);
                }
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_even_nan() {
        let a = [1.0f64, 0.0, 0.0, 1.0];
        let b = [2.0f64, 3.0, 4.0, 5.0];
        let mut c = [f64::NAN; 4];
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(c, [2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn k_zero_is_a_scaling() {
        let a: [f64; 0] = [];
        let b: [f64; 0] = [];
        let mut c = [1.0f64, 2.0, 3.0, 4.0];
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            0,
            1.0,
            &a,
            2,
            &b,
            1,
            2.0,
            &mut c,
            2,
        );
        assert_eq!(c, [2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn f32_kernel_matches_f64_within_single_precision() {
        let (m, n, k) = (16, 16, 16);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let mut c64 = vec![0f64; m * n];
        let mut c32 = vec![0f32; m * n];
        gemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0,
            &a,
            m,
            &b,
            n,
            0.0,
            &mut c64,
            m,
        );
        gemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0f32,
            &a32,
            m,
            &b32,
            n,
            0.0,
            &mut c32,
            m,
        );
        for (x, y) in c64.iter().zip(&c32) {
            assert!((x - *y as f64).abs() < 1e-5);
        }
    }

    #[test]
    fn blocked_f32_matches_naive_f32() {
        let (m, n, k) = (80, 30, 70);
        assert!(m * k >= super::BLOCK_MIN_MK);
        let a64 = fill(m * k, 60);
        let b64 = fill(k * n, 61);
        let a: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let b: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
        let mut c1 = vec![0f32; m * n];
        let mut c2 = vec![0f32; m * n];
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            1.0f32,
            &a,
            m,
            &b,
            k,
            0.0,
            &mut c1,
            m,
        );
        gemm_naive(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            1.0f32,
            &a,
            m,
            &b,
            k,
            0.0,
            &mut c2,
            m,
        );
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn shgemm_accumulates_in_f32_not_f16() {
        // Sum of 1000 copies of 0.001: pure f16 accumulation would stall far
        // from 1.0 (0.001 rounds to ~0.0010004, and adding tiny increments to
        // a growing sum loses them); f32 accumulation stays within ~1e-4.
        let k = 1000;
        let a: Vec<Half> = (0..k).map(|_| Half::from_f32(0.001)).collect();
        let b: Vec<Half> = (0..k).map(|_| Half::ONE).collect();
        let mut c = [0f32];
        shgemm(
            Trans::Yes,
            Trans::No,
            1,
            1,
            k,
            1.0,
            &a,
            k,
            &b,
            k,
            0.0,
            &mut c,
            1,
        );
        assert!((c[0] - 1.0).abs() < 5e-4, "got {}", c[0]);
    }

    #[test]
    fn shgemm_matches_promoted_sgemm() {
        let (m, n, k) = (8, 5, 6);
        let af = fill(m * k, 10);
        let bf = fill(n * k, 11);
        let a: Vec<Half> = af.iter().map(|&x| Half::from_f64(x)).collect();
        let b: Vec<Half> = bf.iter().map(|&x| Half::from_f64(x)).collect();
        let mut c = vec![0f32; m * n];
        shgemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0,
            &a,
            m,
            &b,
            n,
            0.0,
            &mut c,
            m,
        );
        // Oracle: promote halves exactly, run f32 gemm.
        let ap: Vec<f32> = a.iter().map(|h| h.to_f32()).collect();
        let bp: Vec<f32> = b.iter().map(|h| h.to_f32()).collect();
        let mut cref = vec![0f32; m * n];
        gemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0f32,
            &ap,
            m,
            &bp,
            n,
            0.0f32,
            &mut cref,
            m,
        );
        assert_eq!(c, cref);
    }

    #[test]
    fn shgemm_blocked_path_still_accumulates_in_f32_exactly() {
        // Big enough to take the blocked path: the promoted-oracle identity
        // must still hold bit-for-bit.
        let (m, n, k) = (64, 17, 80);
        assert!(m * k >= super::BLOCK_MIN_MK);
        let af = fill(m * k, 12);
        let bf = fill(n * k, 13);
        let a: Vec<Half> = af.iter().map(|&x| Half::from_f64(x)).collect();
        let b: Vec<Half> = bf.iter().map(|&x| Half::from_f64(x)).collect();
        let mut c = vec![0f32; m * n];
        shgemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0,
            &a,
            m,
            &b,
            n,
            0.0,
            &mut c,
            m,
        );
        let ap: Vec<f32> = a.iter().map(|h| h.to_f32()).collect();
        let bp: Vec<f32> = b.iter().map(|h| h.to_f32()).collect();
        let mut cref = vec![0f32; m * n];
        gemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0f32,
            &ap,
            m,
            &bp,
            n,
            0.0f32,
            &mut cref,
            m,
        );
        assert_eq!(c, cref);
    }
}

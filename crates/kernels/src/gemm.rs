//! General matrix-matrix multiply: `C <- alpha * op(A) * op(B) + beta * C`.
//!
//! Column-major with explicit leading dimensions, like BLAS `xGEMM`. The
//! FP64/FP32 path is generic over [`Real`]; the FP16 path ([`shgemm`]) trims
//! operands to binary16 and accumulates in FP32 (the paper's SHGEMM).

use crate::half::Half;
use crate::Real;

/// Transposition flag for a GEMM operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    No,
    Yes,
}

/// `C <- alpha * op(A) * op(B) + beta * C`.
///
/// * `m, n` — dimensions of `C`; `k` — inner dimension.
/// * `op(A)` is `m x k`, `op(B)` is `k x n`.
///
/// Panics if a leading dimension is smaller than the operand's row count.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Real>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let (a_rows, a_cols) = match transa {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (b_rows, b_cols) = match transb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    assert!(lda >= a_rows.max(1), "lda {lda} < rows of A {a_rows}");
    assert!(ldb >= b_rows.max(1), "ldb {ldb} < rows of B {b_rows}");
    assert!(ldc >= m.max(1), "ldc {ldc} < m {m}");
    if a_cols > 0 && a_rows > 0 {
        assert!(a.len() >= lda * (a_cols - 1) + a_rows);
    }
    if b_cols > 0 && b_rows > 0 {
        assert!(b.len() >= ldb * (b_cols - 1) + b_rows);
    }
    if n > 0 {
        assert!(c.len() >= ldc * (n - 1) + m);
    }

    // Scale C by beta first (also handles k == 0).
    if beta != T::ONE {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta == T::ZERO {
                for x in col.iter_mut() {
                    *x = T::ZERO;
                }
            } else {
                for x in col.iter_mut() {
                    *x = *x * beta;
                }
            }
        }
    }
    if k == 0 || m == 0 || n == 0 || alpha == T::ZERO {
        return;
    }

    match (transa, transb) {
        (Trans::No, Trans::No) => {
            // C[:,j] += alpha * A[:,l] * B[l,j] — pure axpy over columns,
            // vectorizes along m.
            for j in 0..n {
                for l in 0..k {
                    let blj = alpha * b[l + j * ldb];
                    if blj == T::ZERO {
                        continue;
                    }
                    let acol = &a[l * lda..l * lda + m];
                    let ccol = &mut c[j * ldc..j * ldc + m];
                    for (ci, ai) in ccol.iter_mut().zip(acol) {
                        *ci = ai.mul_add(blj, *ci);
                    }
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // C[:,j] += alpha * A[:,l] * B[j,l]; B accessed row-wise but the
            // inner loop still streams columns of A and C.
            for j in 0..n {
                for l in 0..k {
                    let blj = alpha * b[j + l * ldb];
                    if blj == T::ZERO {
                        continue;
                    }
                    let acol = &a[l * lda..l * lda + m];
                    let ccol = &mut c[j * ldc..j * ldc + m];
                    for (ci, ai) in ccol.iter_mut().zip(acol) {
                        *ci = ai.mul_add(blj, *ci);
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // C[i,j] += alpha * dot(A[:,i], B[:,j]) — dot products down
            // contiguous columns.
            for j in 0..n {
                let bcol = &b[j * ldb..j * ldb + k];
                for i in 0..m {
                    let acol = &a[i * lda..i * lda + k];
                    let mut s = T::ZERO;
                    for (ai, bi) in acol.iter().zip(bcol) {
                        s = ai.mul_add(*bi, s);
                    }
                    c[i + j * ldc] += alpha * s;
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            // C[i,j] += alpha * sum_l A[l,i] * B[j,l].
            for j in 0..n {
                for i in 0..m {
                    let acol = &a[i * lda..i * lda + k];
                    let mut s = T::ZERO;
                    for (l, ai) in acol.iter().enumerate() {
                        s = ai.mul_add(b[j + l * ldb], s);
                    }
                    c[i + j * ldc] += alpha * s;
                }
            }
        }
    }
}

/// Convenience wrapper for the common `C <- beta*C + alpha*A*B` case.
#[allow(clippy::too_many_arguments)]
pub fn gemm_notrans<T: Real>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    gemm(
        Trans::No,
        Trans::No,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        beta,
        c,
        ldc,
    )
}

/// SHGEMM: `C(f32) <- alpha * op(f16(A)) * op(f16(B)) + beta * C`.
///
/// Operands arrive already trimmed to binary16 tiles; every product
/// `a_il * b_lj` is computed on the exact `f32` values of the halves and
/// accumulated in `f32`, reproducing the mixed-precision HGEMM-with-FP32-
/// accumulation the paper obtains from BLIS on A64FX (Fig. 8) and from
/// trimmed SGEMM on Shaheen II.
#[allow(clippy::too_many_arguments)]
pub fn shgemm(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[Half],
    lda: usize,
    b: &[Half],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    // Promote operand panels once (exact), then run the f32 kernel. This is
    // precisely "call an SGEMM BLAS routine to accumulate in FP32".
    let (a_rows, a_cols) = match transa {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (b_rows, b_cols) = match transb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    let mut af = vec![0f32; a_rows * a_cols.max(1)];
    for j in 0..a_cols {
        for i in 0..a_rows {
            af[i + j * a_rows] = a[i + j * lda].to_f32();
        }
    }
    let mut bf = vec![0f32; b_rows * b_cols.max(1)];
    for j in 0..b_cols {
        for i in 0..b_rows {
            bf[i + j * b_rows] = b[i + j * ldb].to_f32();
        }
    }
    gemm(
        transa,
        transb,
        m,
        n,
        k,
        alpha,
        &af,
        a_rows.max(1),
        &bf,
        b_rows.max(1),
        beta,
        c,
        ldc,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unoptimized triple loop used as the oracle.
    #[allow(clippy::too_many_arguments)]
    fn gemm_ref(
        transa: Trans,
        transb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
    ) {
        for j in 0..n {
            for i in 0..m {
                let mut s = 0.0;
                for l in 0..k {
                    let av = match transa {
                        Trans::No => a[i + l * lda],
                        Trans::Yes => a[l + i * lda],
                    };
                    let bv = match transb {
                        Trans::No => b[l + j * ldb],
                        Trans::Yes => b[j + l * ldb],
                    };
                    s += av * bv;
                }
                c[i + j * ldc] = alpha * s + beta * c[i + j * ldc];
            }
        }
    }

    fn fill(n: usize, seed: u64) -> Vec<f64> {
        // Tiny deterministic LCG so the kernel crate stays dependency-free.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn all_transpose_combinations_match_reference() {
        let (m, n, k) = (13, 7, 9);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let (ar, ac) = if ta == Trans::No { (m, k) } else { (k, m) };
            let (br, bc) = if tb == Trans::No { (k, n) } else { (n, k) };
            let a = fill(ar * ac, 1);
            let b = fill(br * bc, 2);
            let mut c1 = fill(m * n, 3);
            let mut c2 = c1.clone();
            gemm(ta, tb, m, n, k, 0.7, &a, ar, &b, br, -1.3, &mut c1, m);
            gemm_ref(ta, tb, m, n, k, 0.7, &a, ar, &b, br, -1.3, &mut c2, m);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-12, "{ta:?} {tb:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn respects_leading_dimension_padding() {
        let (m, n, k) = (4, 3, 5);
        let (lda, ldb, ldc) = (7, 8, 6);
        let a = fill(lda * k, 4);
        let b = fill(ldb * n, 5);
        let mut c = fill(ldc * n, 6);
        let c_orig = c.clone();
        let mut cref = c.clone();
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            1.0,
            &a,
            lda,
            &b,
            ldb,
            0.5,
            &mut c,
            ldc,
        );
        gemm_ref(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            1.0,
            &a,
            lda,
            &b,
            ldb,
            0.5,
            &mut cref,
            ldc,
        );
        for j in 0..n {
            for i in 0..ldc {
                let idx = i + j * ldc;
                if i < m {
                    assert!((c[idx] - cref[idx]).abs() < 1e-12);
                } else {
                    // Padding rows between columns must be untouched.
                    assert_eq!(c[idx], c_orig[idx]);
                }
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_even_nan() {
        let a = [1.0f64, 0.0, 0.0, 1.0];
        let b = [2.0f64, 3.0, 4.0, 5.0];
        let mut c = [f64::NAN; 4];
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(c, [2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn k_zero_is_a_scaling() {
        let a: [f64; 0] = [];
        let b: [f64; 0] = [];
        let mut c = [1.0f64, 2.0, 3.0, 4.0];
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            0,
            1.0,
            &a,
            2,
            &b,
            1,
            2.0,
            &mut c,
            2,
        );
        assert_eq!(c, [2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn f32_kernel_matches_f64_within_single_precision() {
        let (m, n, k) = (16, 16, 16);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let mut c64 = vec![0f64; m * n];
        let mut c32 = vec![0f32; m * n];
        gemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0,
            &a,
            m,
            &b,
            n,
            0.0,
            &mut c64,
            m,
        );
        gemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0f32,
            &a32,
            m,
            &b32,
            n,
            0.0,
            &mut c32,
            m,
        );
        for (x, y) in c64.iter().zip(&c32) {
            assert!((x - *y as f64).abs() < 1e-5);
        }
    }

    #[test]
    fn shgemm_accumulates_in_f32_not_f16() {
        // Sum of 1000 copies of 0.001: pure f16 accumulation would stall far
        // from 1.0 (0.001 rounds to ~0.0010004, and adding tiny increments to
        // a growing sum loses them); f32 accumulation stays within ~1e-4.
        let k = 1000;
        let a: Vec<Half> = (0..k).map(|_| Half::from_f32(0.001)).collect();
        let b: Vec<Half> = (0..k).map(|_| Half::ONE).collect();
        let mut c = [0f32];
        shgemm(
            Trans::Yes,
            Trans::No,
            1,
            1,
            k,
            1.0,
            &a,
            k,
            &b,
            k,
            0.0,
            &mut c,
            1,
        );
        assert!((c[0] - 1.0).abs() < 5e-4, "got {}", c[0]);
    }

    #[test]
    fn shgemm_matches_promoted_sgemm() {
        let (m, n, k) = (8, 5, 6);
        let af = fill(m * k, 10);
        let bf = fill(n * k, 11);
        let a: Vec<Half> = af.iter().map(|&x| Half::from_f64(x)).collect();
        let b: Vec<Half> = bf.iter().map(|&x| Half::from_f64(x)).collect();
        let mut c = vec![0f32; m * n];
        shgemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0,
            &a,
            m,
            &b,
            n,
            0.0,
            &mut c,
            m,
        );
        // Oracle: promote halves exactly, run f32 gemm.
        let ap: Vec<f32> = a.iter().map(|h| h.to_f32()).collect();
        let bp: Vec<f32> = b.iter().map(|h| h.to_f32()).collect();
        let mut cref = vec![0f32; m * n];
        gemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            k,
            1.0f32,
            &ap,
            m,
            &bp,
            n,
            0.0f32,
            &mut cref,
            m,
        );
        assert_eq!(c, cref);
    }
}

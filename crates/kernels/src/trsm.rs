//! Triangular solves, the `TRSM` kernels of the tile Cholesky and the
//! kriging forward/backward substitutions.
//!
//! Only the variants the application needs are implemented (all with a
//! *lower* triangular, non-unit-diagonal `L` coming out of `POTRF`):
//!
//! * [`trsm_right_lower_trans`] — `B <- B * L^{-T}`: the panel update of the
//!   tile Cholesky (Algorithm 1's `TRSM`).
//! * [`trsm_left_lower_notrans`] — `B <- L^{-1} B`: forward substitution for
//!   the log-likelihood quadratic form and the prediction solves.
//! * [`trsm_left_lower_trans`] — `B <- L^{-T} B`: backward substitution.
//!
//! Each has a blocked path that solves `NB`-order diagonal blocks with the
//! unblocked substitution and pushes the rank-`NB` cross-block updates
//! through the cache-blocked [`gemm`]. Dispatch depends only on the
//! triangle's order — never on the number of right-hand sides — and every
//! right-hand-side column is processed independently, so a batched
//! multi-RHS solve stays bitwise identical to solving each column alone
//! (the server's batched==singleton guarantee).

use crate::gemm::{gemm, Trans};
use crate::Real;

/// Diagonal-block order of the blocked solves; at or below this the
/// unblocked substitution runs directly.
const NB: usize = 64;

fn scale<T: Real>(m: usize, n: usize, alpha: T, b: &mut [T], ldb: usize) {
    if alpha == T::ONE {
        return;
    }
    for j in 0..n {
        for x in b[j * ldb..j * ldb + m].iter_mut() {
            *x = *x * alpha;
        }
    }
}

/// `B <- alpha * B * L^{-T}` with `L` lower triangular `n x n`, `B` `m x n`.
pub fn trsm_right_lower_trans<T: Real>(
    m: usize,
    n: usize,
    alpha: T,
    l: &[T],
    ldl: usize,
    b: &mut [T],
    ldb: usize,
) {
    assert!(ldl >= n.max(1));
    assert!(ldb >= m.max(1));
    if n > 0 {
        assert!(l.len() >= ldl * (n - 1) + n);
        assert!(b.len() >= ldb * (n - 1) + m);
    }
    if n <= NB {
        return trsm_right_lower_trans_unblocked(m, n, alpha, l, ldl, b, ldb);
    }
    scale(m, n, alpha, b, ldb);
    for j0 in (0..n).step_by(NB) {
        let nb = NB.min(n - j0);
        if j0 > 0 {
            // B[:, j0 block] -= X[:, <j0] * L[j0 block, <j0]^T. The solved
            // columns live strictly left of the block, so a column split
            // gives disjoint borrows.
            let (solved, rest) = b.split_at_mut(j0 * ldb);
            gemm(
                Trans::No,
                Trans::Yes,
                m,
                nb,
                j0,
                -T::ONE,
                solved,
                ldb,
                &l[j0..],
                ldl,
                T::ONE,
                rest,
                ldb,
            );
        }
        trsm_right_lower_trans_unblocked(
            m,
            nb,
            T::ONE,
            &l[j0 + j0 * ldl..],
            ldl,
            &mut b[j0 * ldb..],
            ldb,
        );
    }
}

/// Unblocked reference for [`trsm_right_lower_trans`] (also the
/// diagonal-block solver of the blocked path).
pub fn trsm_right_lower_trans_unblocked<T: Real>(
    m: usize,
    n: usize,
    alpha: T,
    l: &[T],
    ldl: usize,
    b: &mut [T],
    ldb: usize,
) {
    assert!(ldl >= n.max(1));
    assert!(ldb >= m.max(1));
    if n > 0 {
        assert!(l.len() >= ldl * (n - 1) + n);
        assert!(b.len() >= ldb * (n - 1) + m);
    }
    // Solve X * L^T = alpha * B column by column of X (j increasing):
    // X[:,j] = (alpha*B[:,j] - sum_{p<j} X[:,p] * L[j,p]) / L[j,j].
    for j in 0..n {
        if alpha != T::ONE {
            for i in 0..m {
                let idx = i + j * ldb;
                b[idx] = b[idx] * alpha;
            }
        }
        for p in 0..j {
            let ljp = l[j + p * ldl];
            if ljp == T::ZERO {
                continue;
            }
            // b[:,j] -= ljp * b[:,p] ... need two disjoint columns.
            let (lo, hi) = b.split_at_mut(j * ldb);
            let xcol = &lo[p * ldb..p * ldb + m];
            let bcol = &mut hi[..m];
            for (bi, xi) in bcol.iter_mut().zip(xcol) {
                *bi = (-ljp).mul_add(*xi, *bi);
            }
        }
        let inv = T::ONE / l[j + j * ldl];
        for i in 0..m {
            let idx = i + j * ldb;
            b[idx] = b[idx] * inv;
        }
    }
}

/// `B <- alpha * L^{-1} B` with `L` lower triangular `m x m`, `B` `m x n`
/// (forward substitution).
pub fn trsm_left_lower_notrans<T: Real>(
    m: usize,
    n: usize,
    alpha: T,
    l: &[T],
    ldl: usize,
    b: &mut [T],
    ldb: usize,
) {
    assert!(ldl >= m.max(1));
    assert!(ldb >= m.max(1));
    if m > 0 && n > 0 {
        assert!(l.len() >= ldl * (m - 1) + m);
        assert!(b.len() >= ldb * (n - 1) + m);
    }
    if m <= NB {
        return trsm_left_lower_notrans_unblocked(m, n, alpha, l, ldl, b, ldb);
    }
    scale(m, n, alpha, b, ldb);
    for i0 in (0..m).step_by(NB) {
        let nb = NB.min(m - i0);
        trsm_left_lower_notrans_unblocked(
            nb,
            n,
            T::ONE,
            &l[i0 + i0 * ldl..],
            ldl,
            &mut b[i0..],
            ldb,
        );
        let mb = m - i0 - nb;
        if mb > 0 {
            // B[i0+nb.., :] -= L[i0+nb.., i0 block] * X[i0 block, :]. The
            // solved rows interleave with the updated rows inside each
            // column, so copy the solved block (nb x n) out before the
            // rectangular update.
            let xblk = copy_rows(b, i0, nb, n, ldb);
            gemm(
                Trans::No,
                Trans::No,
                mb,
                n,
                nb,
                -T::ONE,
                &l[i0 + nb + i0 * ldl..],
                ldl,
                &xblk,
                nb,
                T::ONE,
                &mut b[i0 + nb..],
                ldb,
            );
        }
    }
}

/// Unblocked reference for [`trsm_left_lower_notrans`].
pub fn trsm_left_lower_notrans_unblocked<T: Real>(
    m: usize,
    n: usize,
    alpha: T,
    l: &[T],
    ldl: usize,
    b: &mut [T],
    ldb: usize,
) {
    assert!(ldl >= m.max(1));
    assert!(ldb >= m.max(1));
    if m > 0 && n > 0 {
        assert!(l.len() >= ldl * (m - 1) + m);
        assert!(b.len() >= ldb * (n - 1) + m);
    }
    for j in 0..n {
        let col = &mut b[j * ldb..j * ldb + m];
        if alpha != T::ONE {
            for x in col.iter_mut() {
                *x = *x * alpha;
            }
        }
        for i in 0..m {
            let xi = col[i] / l[i + i * ldl];
            col[i] = xi;
            if xi == T::ZERO {
                continue;
            }
            let lcol = &l[i * ldl + i + 1..i * ldl + m];
            let (_, rest) = col.split_at_mut(i + 1);
            for (bk, lk) in rest.iter_mut().zip(lcol) {
                *bk = (-xi).mul_add(*lk, *bk);
            }
        }
    }
}

/// `B <- alpha * L^{-T} B` with `L` lower triangular `m x m`, `B` `m x n`
/// (backward substitution).
pub fn trsm_left_lower_trans<T: Real>(
    m: usize,
    n: usize,
    alpha: T,
    l: &[T],
    ldl: usize,
    b: &mut [T],
    ldb: usize,
) {
    assert!(ldl >= m.max(1));
    assert!(ldb >= m.max(1));
    if m > 0 && n > 0 {
        assert!(l.len() >= ldl * (m - 1) + m);
        assert!(b.len() >= ldb * (n - 1) + m);
    }
    if m <= NB {
        return trsm_left_lower_trans_unblocked(m, n, alpha, l, ldl, b, ldb);
    }
    scale(m, n, alpha, b, ldb);
    let nblocks = m.div_ceil(NB);
    for blk in (0..nblocks).rev() {
        let i0 = blk * NB;
        let nb = NB.min(m - i0);
        let mb = m - i0 - nb;
        // Work on a copy of the block rows: they alias the already-solved
        // rows below within each column of `b`.
        let mut rows = copy_rows(b, i0, nb, n, ldb);
        if mb > 0 {
            // rows -= L[i0+nb.., i0 block]^T * X[i0+nb.., :].
            gemm(
                Trans::Yes,
                Trans::No,
                nb,
                n,
                mb,
                -T::ONE,
                &l[i0 + nb + i0 * ldl..],
                ldl,
                &b[i0 + nb..],
                ldb,
                T::ONE,
                &mut rows,
                nb,
            );
        }
        trsm_left_lower_trans_unblocked(nb, n, T::ONE, &l[i0 + i0 * ldl..], ldl, &mut rows, nb);
        for j in 0..n {
            b[i0 + j * ldb..i0 + j * ldb + nb].copy_from_slice(&rows[j * nb..j * nb + nb]);
        }
    }
}

/// Unblocked reference for [`trsm_left_lower_trans`].
pub fn trsm_left_lower_trans_unblocked<T: Real>(
    m: usize,
    n: usize,
    alpha: T,
    l: &[T],
    ldl: usize,
    b: &mut [T],
    ldb: usize,
) {
    assert!(ldl >= m.max(1));
    assert!(ldb >= m.max(1));
    if m > 0 && n > 0 {
        assert!(l.len() >= ldl * (m - 1) + m);
        assert!(b.len() >= ldb * (n - 1) + m);
    }
    for j in 0..n {
        let col = &mut b[j * ldb..j * ldb + m];
        if alpha != T::ONE {
            for x in col.iter_mut() {
                *x = *x * alpha;
            }
        }
        for i in (0..m).rev() {
            // x_i = (b_i - sum_{k>i} L[k,i] x_k) / L[i,i]
            let lcol = &l[i * ldl + i + 1..i * ldl + m];
            let mut s = col[i];
            for (lk, xk) in lcol.iter().zip(&col[i + 1..]) {
                s = (-*lk).mul_add(*xk, s);
            }
            col[i] = s / l[i + i * ldl];
        }
    }
}

/// Copy rows `i0..i0+nb` of the `? x n` matrix `b` into a dense `nb x n`
/// buffer (leading dimension `nb`).
fn copy_rows<T: Real>(b: &[T], i0: usize, nb: usize, n: usize, ldb: usize) -> Vec<T> {
    let mut out = vec![T::ZERO; nb * n.max(1)];
    for j in 0..n {
        out[j * nb..j * nb + nb].copy_from_slice(&b[i0 + j * ldb..i0 + j * ldb + nb]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Trans};

    fn fill(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(0x5851F42D4C957F2D)
                    .wrapping_add(0x14057B7EF767814F);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    /// Well-conditioned random lower triangle (unit-ish diagonal).
    fn lower(n: usize, seed: u64) -> Vec<f64> {
        let mut l = fill(n * n, seed);
        for j in 0..n {
            for i in 0..j {
                l[i + j * n] = 0.0;
            }
            l[j + j * n] = 2.0 + l[j + j * n].abs();
        }
        l
    }

    #[test]
    fn right_lower_trans_inverts_multiplication() {
        let (m, n) = (6, 5);
        let l = lower(n, 1);
        let x = fill(m * n, 2);
        // B = X * L^T, then solving must return X.
        let mut b = vec![0f64; m * n];
        gemm(
            Trans::No,
            Trans::Yes,
            m,
            n,
            n,
            1.0,
            &x,
            m,
            &l,
            n,
            0.0,
            &mut b,
            m,
        );
        trsm_right_lower_trans(m, n, 1.0, &l, n, &mut b, m);
        for (bi, xi) in b.iter().zip(&x) {
            assert!((bi - xi).abs() < 1e-12, "{bi} vs {xi}");
        }
    }

    #[test]
    fn left_lower_notrans_inverts_multiplication() {
        let (m, n) = (7, 3);
        let l = lower(m, 3);
        let x = fill(m * n, 4);
        let mut b = vec![0f64; m * n];
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            m,
            1.0,
            &l,
            m,
            &x,
            m,
            0.0,
            &mut b,
            m,
        );
        trsm_left_lower_notrans(m, n, 1.0, &l, m, &mut b, m);
        for (bi, xi) in b.iter().zip(&x) {
            assert!((bi - xi).abs() < 1e-12);
        }
    }

    #[test]
    fn left_lower_trans_inverts_multiplication() {
        let (m, n) = (8, 2);
        let l = lower(m, 5);
        let x = fill(m * n, 6);
        let mut b = vec![0f64; m * n];
        gemm(
            Trans::Yes,
            Trans::No,
            m,
            n,
            m,
            1.0,
            &l,
            m,
            &x,
            m,
            0.0,
            &mut b,
            m,
        );
        trsm_left_lower_trans(m, n, 1.0, &l, m, &mut b, m);
        for (bi, xi) in b.iter().zip(&x) {
            assert!((bi - xi).abs() < 1e-12);
        }
    }

    #[test]
    fn blocked_variants_match_unblocked_beyond_block_size() {
        // Triangle order > NB with an awkward remainder, padded leading
        // dimensions, several right-hand sides, alpha != 1.
        let mt = NB * 2 + 11; // triangle order for the left solves
        let nrhs = 7;
        let ldl = mt + 4;
        let mut l = vec![0f64; ldl * mt];
        let dense = lower(mt, 21);
        for j in 0..mt {
            l[j * ldl..j * ldl + mt].copy_from_slice(&dense[j * mt..j * mt + mt]);
        }
        // Left notrans.
        let ldb = mt + 2;
        let b0 = fill(ldb * nrhs, 22);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        trsm_left_lower_notrans(mt, nrhs, 1.5, &l, ldl, &mut b1, ldb);
        trsm_left_lower_notrans_unblocked(mt, nrhs, 1.5, &l, ldl, &mut b2, ldb);
        for (x, y) in b1.iter().zip(&b2) {
            assert!((x - y).abs() < 1e-9, "notrans: {x} vs {y}");
        }
        // Left trans.
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        trsm_left_lower_trans(mt, nrhs, 0.7, &l, ldl, &mut b1, ldb);
        trsm_left_lower_trans_unblocked(mt, nrhs, 0.7, &l, ldl, &mut b2, ldb);
        for (x, y) in b1.iter().zip(&b2) {
            assert!((x - y).abs() < 1e-9, "trans: {x} vs {y}");
        }
        // Right trans: B is rows x mt.
        let rows = 9;
        let ldb = rows + 3;
        let b0 = fill(ldb * mt, 23);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        trsm_right_lower_trans(rows, mt, -0.9, &l, ldl, &mut b1, ldb);
        trsm_right_lower_trans_unblocked(rows, mt, -0.9, &l, ldl, &mut b2, ldb);
        for (x, y) in b1.iter().zip(&b2) {
            assert!((x - y).abs() < 1e-9, "right: {x} vs {y}");
        }
    }

    #[test]
    fn left_solves_batched_rhs_bitwise_equals_singleton() {
        // The server's batched==singleton guarantee must survive blocking:
        // each RHS column of a multi-RHS solve is bitwise identical to a
        // one-column solve.
        let m = NB + 33;
        let nrhs = 5;
        let l = lower(m, 31);
        let b0 = fill(m * nrhs, 32);
        for solve in [
            trsm_left_lower_notrans::<f64>
                as fn(usize, usize, f64, &[f64], usize, &mut [f64], usize),
            trsm_left_lower_trans::<f64>,
        ] {
            let mut batched = b0.clone();
            solve(m, nrhs, 1.0, &l, m, &mut batched, m);
            for j in 0..nrhs {
                let mut single = b0[j * m..(j + 1) * m].to_vec();
                solve(m, 1, 1.0, &l, m, &mut single, m);
                assert_eq!(&batched[j * m..(j + 1) * m], &single[..], "rhs {j}");
            }
        }
    }

    #[test]
    fn alpha_scales_solution() {
        let (m, n) = (4, 4);
        let l = lower(m, 7);
        let b0 = fill(m * n, 8);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        trsm_left_lower_notrans(m, n, 2.0, &l, m, &mut b1, m);
        trsm_left_lower_notrans(m, n, 1.0, &l, m, &mut b2, m);
        for (x1, x2) in b1.iter().zip(&b2) {
            assert!((x1 - 2.0 * x2).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_then_backward_solves_normal_equations() {
        // L L^T x = b  <=>  x = L^{-T} (L^{-1} b).
        let m = 6;
        let l = lower(m, 9);
        let xtrue = fill(m, 10);
        // b = L L^T xtrue
        let mut tmp = xtrue.clone();
        // tmp = L^T x
        let mut t2 = vec![0f64; m];
        gemm(
            Trans::Yes,
            Trans::No,
            m,
            1,
            m,
            1.0,
            &l,
            m,
            &tmp,
            m,
            0.0,
            &mut t2,
            m,
        );
        gemm(
            Trans::No,
            Trans::No,
            m,
            1,
            m,
            1.0,
            &l,
            m,
            &t2,
            m,
            0.0,
            &mut tmp,
            m,
        );
        trsm_left_lower_notrans(m, 1, 1.0, &l, m, &mut tmp, m);
        trsm_left_lower_trans(m, 1, 1.0, &l, m, &mut tmp, m);
        for (xi, ti) in xtrue.iter().zip(&tmp) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }
}

//! From-scratch BLAS-like tile kernels for the mixed-precision tile Cholesky.
//!
//! This crate is the lowest substrate of the reproduction: LAPACK/BLAS-style
//! dense kernels (`GEMM`, `SYRK`, `TRSM`, `POTRF`) operating on column-major
//! slices, in three arithmetics:
//!
//! * **FP64** — the reference precision of the paper's dense variant,
//! * **FP32** — the intermediate precision,
//! * **FP16** — emulated IEEE binary16 ([`half::Half`]). Multiplication
//!   operands are *trimmed* to binary16 and products are accumulated in FP32,
//!   matching the paper's SHGEMM semantics (§VI-E and Fig. 8: "we trim the
//!   operands of the GEMM kernel to FP16 and call an SGEMM BLAS routine to
//!   accumulate in FP32").
//!
//! All matrices are column-major with an explicit leading dimension, exactly
//! like LAPACK, so a tile is addressed as `a[i + j * lda]`.

pub mod convert;
pub mod gemm;
pub mod half;
pub mod potrf;
pub mod precision;
pub mod syrk;
pub mod trsm;

pub use convert::{
    demote_f32_to_f16, demote_f64_to_f16, demote_f64_to_f32, promote_f16_to_f32,
    promote_f16_to_f64, promote_f32_to_f64,
};
pub use gemm::{gemm, gemm_naive, gemm_notrans, shgemm, Trans};
pub use half::Half;
pub use potrf::{potrf, potrf_unblocked, PotrfError};
pub use precision::Precision;
pub use syrk::{syrk_lower_notrans, syrk_lower_notrans_naive};
pub use trsm::{
    trsm_left_lower_notrans, trsm_left_lower_notrans_unblocked, trsm_left_lower_trans,
    trsm_left_lower_trans_unblocked, trsm_right_lower_trans, trsm_right_lower_trans_unblocked,
};

/// A real scalar type usable by the generic kernels (FP64 or FP32).
///
/// FP16 is intentionally *not* a `Real`: the emulated binary16 kernels
/// always accumulate in FP32 (see [`gemm::shgemm`]), so there is no
/// "pure f16" arithmetic anywhere, mirroring the paper's observation that
/// Fugaku's pure-FP16 HGEMM is unusable for MLE and FP32 accumulation is
/// required.
pub trait Real:
    Copy
    + Send
    + Sync
    + PartialOrd
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    const PRECISION: Precision;
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    fn mul_add(self, a: Self, b: Self) -> Self;
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const PRECISION: Precision = Precision::F64;
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const PRECISION: Precision = Precision::F32;
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
}

/// Number of floating-point operations of a real `m x n x k` GEMM
/// (`C <- alpha*A*B + beta*C`): `2mnk` plus lower-order terms, the
/// convention used throughout the paper's performance model.
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flops of a Cholesky factorization of an `n x n` matrix: `n^3/3`.
#[inline]
pub fn potrf_flops(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0
}

/// Flops of a triangular solve with an `m x m` triangle and `n` right-hand
/// sides: `m^2 n`.
#[inline]
pub fn trsm_flops(m: usize, n: usize) -> f64 {
    m as f64 * m as f64 * n as f64
}

/// Flops of a symmetric rank-k update `C(nxn) <- C - A(nxk) A^T`: `n^2 k`.
#[inline]
pub fn syrk_flops(n: usize, k: usize) -> f64 {
    n as f64 * n as f64 * k as f64
}

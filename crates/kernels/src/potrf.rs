//! Cholesky factorization of a single tile (`POTRF`).
//!
//! `A = L * L^T` with `A` symmetric positive definite; only the lower
//! triangle of `A` is read and it is overwritten by `L`. Small tiles run
//! the right-looking unblocked algorithm; beyond `NB` the factorization is
//! blocked — unblocked diagonal factor, [`trsm_right_lower_trans`] panel
//! solve, [`syrk_lower_notrans`] trailing update — so the O(n³) bulk of a
//! large factorization flows through the cache-blocked GEMM microkernels
//! instead of the column-at-a-time loop.

use crate::syrk::syrk_lower_notrans;
use crate::trsm::trsm_right_lower_trans;
use crate::Real;

/// Panel width of the blocked factorization; at or below this order the
/// unblocked right-looking loop runs directly.
const NB: usize = 64;

/// Failure of a tile Cholesky: the matrix is not (numerically) positive
/// definite. Carries the 0-based index of the offending pivot, like
/// LAPACK's `info`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PotrfError {
    /// Index of the first non-positive pivot.
    pub pivot: usize,
}

impl std::fmt::Display for PotrfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: leading minor {} is not positive",
            self.pivot + 1
        )
    }
}

impl std::error::Error for PotrfError {}

/// Factor the lower triangle in place: `A <- L` with `A = L L^T`.
pub fn potrf<T: Real>(n: usize, a: &mut [T], lda: usize) -> Result<(), PotrfError> {
    assert!(lda >= n.max(1));
    if n > 0 {
        assert!(a.len() >= lda * (n - 1) + n);
    }
    if n <= NB {
        return potrf_core(n, a, lda);
    }
    for j0 in (0..n).step_by(NB) {
        let nb = NB.min(n - j0);
        potrf_core(nb, &mut a[j0 + j0 * lda..], lda).map_err(|e| PotrfError {
            pivot: j0 + e.pivot,
        })?;
        let mb = n - j0 - nb;
        if mb == 0 {
            continue;
        }
        // Panel solve: A[j0+nb.., j0 block] <- A · L_diag^{-T}. The diag
        // block shares columns with the panel inside `a`, so solve against
        // a small copy of it.
        let mut diag = vec![T::ZERO; nb * nb];
        for j in 0..nb {
            diag[j * nb..j * nb + nb]
                .copy_from_slice(&a[j0 + (j0 + j) * lda..j0 + (j0 + j) * lda + nb]);
        }
        trsm_right_lower_trans(mb, nb, T::ONE, &diag, nb, &mut a[j0 + nb + j0 * lda..], lda);
        // Trailing update: A[j0+nb.., j0+nb..] -= panel · panel^T. Panel
        // columns sit strictly left of the trailing block, so a column
        // split gives disjoint borrows.
        let (panel_cols, trailing_cols) = a.split_at_mut((j0 + nb) * lda);
        syrk_lower_notrans(
            mb,
            nb,
            -T::ONE,
            &panel_cols[j0 + nb + j0 * lda..],
            lda,
            T::ONE,
            &mut trailing_cols[j0 + nb..],
            lda,
        );
    }
    Ok(())
}

/// Unblocked right-looking factorization — the reference the blocked path
/// is tested against, and its diagonal-block solver.
pub fn potrf_unblocked<T: Real>(n: usize, a: &mut [T], lda: usize) -> Result<(), PotrfError> {
    assert!(lda >= n.max(1));
    if n > 0 {
        assert!(a.len() >= lda * (n - 1) + n);
    }
    potrf_core(n, a, lda)
}

fn potrf_core<T: Real>(n: usize, a: &mut [T], lda: usize) -> Result<(), PotrfError> {
    for j in 0..n {
        // d = A[j,j] - sum_{p<j} L[j,p]^2
        let mut d = a[j + j * lda];
        for p in 0..j {
            let ljp = a[j + p * lda];
            d = (-ljp).mul_add(ljp, d);
        }
        // NaN must fail too, hence the negated comparison (not `d <= 0`).
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(d > T::ZERO) || !d.to_f64().is_finite() {
            return Err(PotrfError { pivot: j });
        }
        let ljj = d.sqrt();
        a[j + j * lda] = ljj;
        let inv = T::ONE / ljj;
        // Column below the pivot: L[i,j] = (A[i,j] - sum L[i,p] L[j,p]) / L[j,j]
        for p in 0..j {
            let ljp = a[j + p * lda];
            if ljp == T::ZERO {
                continue;
            }
            // a[j+1.., j] -= ljp * a[j+1.., p]; columns are disjoint.
            let (lo, hi) = a.split_at_mut(j * lda);
            let pcol = &lo[p * lda + j + 1..p * lda + n];
            let jcol = &mut hi[j + 1..n];
            for (x, y) in jcol.iter_mut().zip(pcol) {
                *x = (-ljp).mul_add(*y, *x);
            }
        }
        for i in j + 1..n {
            let idx = i + j * lda;
            a[idx] = a[idx] * inv;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Trans};

    fn fill(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(0x5851F42D4C957F2D)
                    .wrapping_add(0x14057B7EF767814F);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    /// Random SPD matrix: B B^T + n*I.
    fn spd(n: usize, seed: u64) -> Vec<f64> {
        let b = fill(n * n, seed);
        let mut a = vec![0f64; n * n];
        gemm(
            Trans::No,
            Trans::Yes,
            n,
            n,
            n,
            1.0,
            &b,
            n,
            &b,
            n,
            0.0,
            &mut a,
            n,
        );
        for i in 0..n {
            a[i + i * n] += n as f64;
        }
        a
    }

    #[test]
    fn reconstructs_spd_matrix() {
        let n = 12;
        let a = spd(n, 1);
        let mut l = a.clone();
        potrf(n, &mut l, n).unwrap();
        // Zero the strict upper triangle of L before forming L L^T (potrf
        // leaves the original upper half in place).
        for j in 0..n {
            for i in 0..j {
                l[i + j * n] = 0.0;
            }
        }
        let mut rec = vec![0f64; n * n];
        gemm(
            Trans::No,
            Trans::Yes,
            n,
            n,
            n,
            1.0,
            &l,
            n,
            &l,
            n,
            0.0,
            &mut rec,
            n,
        );
        for j in 0..n {
            for i in j..n {
                assert!(
                    (rec[i + j * n] - a[i + j * n]).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    rec[i + j * n],
                    a[i + j * n]
                );
            }
        }
    }

    #[test]
    fn blocked_reconstructs_spd_beyond_block_size() {
        // n > NB with an awkward remainder and a padded leading dimension:
        // the blocked potrf (trsm panel + syrk trailing through blocked
        // gemm) must still produce a valid Cholesky factor.
        let n = NB * 2 + 19;
        let lda = n + 3;
        let dense = spd(n, 6);
        let mut a = vec![0f64; lda * n];
        for j in 0..n {
            a[j * lda..j * lda + n].copy_from_slice(&dense[j * n..j * n + n]);
        }
        let pad = a.clone();
        potrf(n, &mut a, lda).unwrap();
        // Reconstruct.
        let mut l = vec![0f64; n * n];
        for j in 0..n {
            for i in j..n {
                l[i + j * n] = a[i + j * lda];
            }
        }
        let mut rec = vec![0f64; n * n];
        gemm(
            Trans::No,
            Trans::Yes,
            n,
            n,
            n,
            1.0,
            &l,
            n,
            &l,
            n,
            0.0,
            &mut rec,
            n,
        );
        let scale = n as f64;
        for j in 0..n {
            for i in j..n {
                assert!(
                    (rec[i + j * n] - dense[i + j * n]).abs() < 1e-9 * scale,
                    "({i},{j}): {} vs {}",
                    rec[i + j * n],
                    dense[i + j * n]
                );
            }
        }
        // Padding rows between columns must be untouched.
        for j in 0..n {
            for i in n..lda {
                assert_eq!(a[i + j * lda], pad[i + j * lda]);
            }
        }
    }

    #[test]
    fn blocked_stays_close_to_unblocked() {
        let n = NB + 41;
        let dense = spd(n, 7);
        let mut blocked = dense.clone();
        let mut unblocked = dense.clone();
        potrf(n, &mut blocked, n).unwrap();
        potrf_unblocked(n, &mut unblocked, n).unwrap();
        for j in 0..n {
            for i in j..n {
                let idx = i + j * n;
                assert!(
                    (blocked[idx] - unblocked[idx]).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    blocked[idx],
                    unblocked[idx]
                );
            }
        }
    }

    #[test]
    fn blocked_reports_offset_pivot() {
        // SPD leading block, then a strongly negative pivot past the first
        // panel: the reported pivot index must be global, not block-local.
        let n = NB + 10;
        let mut a = vec![0f64; n * n];
        for i in 0..n {
            a[i + i * n] = 1.0;
        }
        let bad = NB + 3;
        a[bad + bad * n] = -4.0;
        let err = potrf(n, &mut a, n).unwrap_err();
        assert_eq!(err.pivot, bad);
    }

    #[test]
    fn detects_indefinite_matrix() {
        // Diagonal with a negative entry at position 2.
        let n = 4;
        let mut a = vec![0f64; n * n];
        for i in 0..n {
            a[i + i * n] = 1.0;
        }
        a[2 + 2 * n] = -1.0;
        let err = potrf(n, &mut a, n).unwrap_err();
        assert_eq!(err.pivot, 2);
    }

    #[test]
    fn detects_nan() {
        let n = 3;
        let mut a = vec![0f64; n * n];
        for i in 0..n {
            a[i + i * n] = 1.0;
        }
        a[1 + n] = f64::NAN;
        assert!(potrf(n, &mut a, n).is_err());
    }

    #[test]
    fn one_by_one() {
        let mut a = [4.0f64];
        potrf(1, &mut a, 1).unwrap();
        assert_eq!(a[0], 2.0);
        let mut bad = [-1.0f64];
        assert!(potrf(1, &mut bad, 1).is_err());
    }

    #[test]
    fn identity_is_its_own_factor() {
        let n = 5;
        let mut a = vec![0f64; n * n];
        for i in 0..n {
            a[i + i * n] = 1.0;
        }
        potrf(n, &mut a, n).unwrap();
        for i in 0..n {
            assert_eq!(a[i + i * n], 1.0);
        }
    }

    #[test]
    fn works_in_f32() {
        let n = 8;
        let a64 = spd(n, 2);
        let mut a32: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        potrf(n, &mut a32, n).unwrap();
        let mut ref64 = a64.clone();
        potrf(n, &mut ref64, n).unwrap();
        for j in 0..n {
            for i in j..n {
                assert!((a32[i + j * n] as f64 - ref64[i + j * n]).abs() < 1e-3);
            }
        }
    }
}

//! Software IEEE-754 binary16 ("half precision").
//!
//! Fugaku's A64FX supports FP16 natively; we reproduce its *storage and
//! rounding* semantics in software. Every conversion rounds to
//! nearest-even, exactly like an SVE `fcvt`, so the numerical behaviour of
//! the paper's FP16 tiles — including the precision loss its Fig. 6 boxplots
//! probe — is faithfully reproduced. Arithmetic on halves always promotes to
//! FP32 (there is deliberately no `impl Mul for Half`): the paper found pure
//! FP16 accumulation unusable for MLE and fell back to FP32 accumulation.

/// An IEEE-754 binary16 value stored as its raw bit pattern.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Half(pub u16);

impl Half {
    pub const ZERO: Half = Half(0);
    pub const ONE: Half = Half(0x3C00);
    /// Largest finite binary16 value, 65504.
    pub const MAX: Half = Half(0x7BFF);
    /// Smallest positive normal, 2^-14.
    pub const MIN_POSITIVE: Half = Half(0x0400);
    pub const INFINITY: Half = Half(0x7C00);
    pub const NEG_INFINITY: Half = Half(0xFC00);
    pub const NAN: Half = Half(0x7E00);

    /// Convert an `f32` to binary16 with round-to-nearest-even, overflow to
    /// infinity, and gradual underflow to subnormals — bit-exact with the
    /// hardware conversion on A64FX / x86 F16C.
    #[inline]
    pub fn from_f32(x: f32) -> Half {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. Preserve NaN-ness (quiet it), propagate infinity.
            return if frac != 0 {
                Half(sign | 0x7E00 | ((frac >> 13) as u16 & 0x03FF) | 0x0200)
            } else {
                Half(sign | 0x7C00)
            };
        }

        // Unbiased exponent.
        let e = exp - 127;
        if e > 15 {
            // Overflow to infinity.
            return Half(sign | 0x7C00);
        }
        if e >= -14 {
            // Normal range: round 23-bit fraction to 10 bits (RNE).
            let mut mant = frac >> 13;
            let rest = frac & 0x1FFF;
            let halfway = 0x1000;
            if rest > halfway || (rest == halfway && (mant & 1) == 1) {
                mant += 1;
            }
            let mut he = (e + 15) as u32;
            if mant == 0x400 {
                // Rounded up past the fraction: bump exponent.
                mant = 0;
                he += 1;
                if he >= 31 {
                    return Half(sign | 0x7C00);
                }
            }
            return Half(sign | ((he as u16) << 10) | mant as u16);
        }
        if e < -25 {
            // Too small even for the largest subnormal rounding: signed zero.
            return Half(sign);
        }
        // Subnormal: implicit leading 1 becomes explicit, shift right.
        let full = frac | 0x0080_0000; // 24-bit significand
        let shift = (-14 - e + 13) as u32; // bits to discard
        let mant = full >> shift;
        let rest = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut mant = mant;
        if rest > halfway || (rest == halfway && (mant & 1) == 1) {
            mant += 1;
        }
        // mant may have carried into the normal range (0x400), which is the
        // correct encoding of the smallest normal, so no special case needed.
        Half(sign | mant as u16)
    }

    /// Convert binary16 to `f32` (exact — every half is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        let h = self.0 as u32;
        let sign = (h & 0x8000) << 16;
        let exp = (h >> 10) & 0x1F;
        let frac = h & 0x03FF;
        let bits = if exp == 0x1F {
            // Inf/NaN.
            sign | 0x7F80_0000 | (frac << 13)
        } else if exp != 0 {
            // Normal.
            sign | ((exp + 112) << 23) | (frac << 13)
        } else if frac != 0 {
            // Subnormal: normalize.
            let lead = frac.leading_zeros() - 22; // zeros within the 10-bit field
            let frac = (frac << (lead + 1)) & 0x03FF;
            let exp = 113 - (lead + 1);
            sign | (exp << 23) | (frac << 13)
        } else {
            sign // signed zero
        };
        f32::from_bits(bits)
    }

    /// Convert via `f32` from a double.
    ///
    /// Double rounding (f64→f32→f16) can differ from direct f64→f16 rounding
    /// in rare ties, but this is exactly what hardware pipelines (and the
    /// paper's trimming path) do, so we keep it.
    #[inline]
    pub fn from_f64(x: f64) -> Half {
        Half::from_f32(x as f32)
    }

    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Promote a column-major `rows x cols` panel with leading dimension
    /// `ld` to a dense (leading dimension `rows`) contiguous `f32` buffer.
    /// Exact — every binary16 is representable in `f32`. This is the bulk
    /// conversion feeding [`crate::gemm::shgemm`]'s FP32-accumulating
    /// blocked kernel.
    pub fn promote_panel(src: &[Half], rows: usize, cols: usize, ld: usize) -> Vec<f32> {
        let mut out = vec![0f32; rows * cols.max(1)];
        for j in 0..cols {
            let s = &src[j * ld..j * ld + rows];
            let d = &mut out[j * rows..j * rows + rows];
            for (di, hi) in d.iter_mut().zip(s) {
                *di = hi.to_f32();
            }
        }
        out
    }
}

impl std::fmt::Debug for Half {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Half({})", self.to_f32())
    }
}

impl std::fmt::Display for Half {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for Half {
    fn from(x: f32) -> Half {
        Half::from_f32(x)
    }
}

impl From<Half> for f32 {
    fn from(h: Half) -> f32 {
        h.to_f32()
    }
}

impl From<Half> for f64 {
    fn from(h: Half) -> f64 {
        h.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(x: f32) -> f32 {
        Half::from_f32(x).to_f32()
    }

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(roundtrip(x), x, "integer {i} must be exact in binary16");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(Half::from_f32(1.0).0, 0x3C00);
        assert_eq!(Half::from_f32(-2.0).0, 0xC000);
        assert_eq!(Half::from_f32(0.5).0, 0x3800);
        assert_eq!(Half::from_f32(65504.0).0, 0x7BFF);
        assert_eq!(Half::from_f32(2.0f32.powi(-14)).0, 0x0400);
        // Largest subnormal: (1023/1024) * 2^-14.
        let sub = 1023.0f32 / 1024.0 * 2.0f32.powi(-14);
        assert_eq!(Half::from_f32(sub).0, 0x03FF);
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert!(Half::from_f32(1.0e6).is_infinite());
        assert_eq!(Half::from_f32(-1.0e6), Half::NEG_INFINITY);
        // 65520 is the rounding boundary: ties-to-even rounds to infinity.
        assert!(Half::from_f32(65520.0).is_infinite());
        assert_eq!(Half::from_f32(65519.0).0, 0x7BFF);
    }

    #[test]
    fn underflow_and_subnormals() {
        // 2^-24 is the smallest subnormal.
        assert_eq!(Half::from_f32(2.0f32.powi(-24)).0, 0x0001);
        // Half of it ties to even -> zero.
        assert_eq!(Half::from_f32(2.0f32.powi(-25)).0, 0x0000);
        // Just above the tie rounds up.
        assert_eq!(Half::from_f32(2.0f32.powi(-25) * 1.5).0, 0x0001);
        assert_eq!(Half::from_f32(-0.0).0, 0x8000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half
        // (1 + 2^-10); RNE keeps the even significand (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(Half::from_f32(halfway).0, 0x3C00);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9 -> rounds to
        // even significand 0b10 -> 1 + 2^-9.
        let halfway2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(Half::from_f32(halfway2).0, 0x3C02);
    }

    #[test]
    fn nan_propagates() {
        assert!(Half::from_f32(f32::NAN).is_nan());
        assert!(Half::NAN.to_f32().is_nan());
    }

    #[test]
    fn exhaustive_roundtrip_all_finite_halves() {
        // Every finite binary16 must survive f16 -> f32 -> f16 unchanged.
        for bits in 0u16..=0xFFFF {
            let h = Half(bits);
            if h.is_nan() {
                continue;
            }
            let back = Half::from_f32(h.to_f32());
            assert_eq!(back.0, bits, "bits {bits:#06x} changed to {:#06x}", back.0);
        }
    }

    #[test]
    fn relative_error_within_unit_roundoff() {
        // RNE guarantees |fl(x) - x| <= u * |x| for normal-range x.
        let u = 2.0f64.powi(-11);
        let mut x = 1.0e-4f64;
        while x < 6.0e4 {
            let r = Half::from_f64(x).to_f64();
            if x >= 2.0f64.powi(-14) {
                assert!(((r - x) / x).abs() <= u, "x={x} r={r}");
            }
            x *= 1.7;
        }
    }
}

//! On-demand precision conversion of tile buffers.
//!
//! The paper's runtime "will move and convert on-the-fly the operands ...
//! to match the precision at the receiver side" (Algorithm 1). These are the
//! scalar-buffer conversions that back that mechanism; the runtime layer
//! counts how often they run.

use crate::half::Half;

/// Demote an FP64 buffer to FP32 (round-to-nearest-even).
pub fn demote_f64_to_f32(src: &[f64], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = *s as f32;
    }
}

/// Promote an FP32 buffer to FP64 (exact).
pub fn promote_f32_to_f64(src: &[f32], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = *s as f64;
    }
}

/// Demote an FP64 buffer to emulated FP16.
pub fn demote_f64_to_f16(src: &[f64], dst: &mut [Half]) {
    assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = Half::from_f64(*s);
    }
}

/// Demote an FP32 buffer to emulated FP16.
pub fn demote_f32_to_f16(src: &[f32], dst: &mut [Half]) {
    assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = Half::from_f32(*s);
    }
}

/// Promote an FP16 buffer to FP32 (exact).
pub fn promote_f16_to_f32(src: &[Half], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// Promote an FP16 buffer to FP64 (exact).
pub fn promote_f16_to_f64(src: &[Half], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f64();
    }
}

/// Round an FP64 buffer *through* a lower precision in place: the storage
/// operation applied when the adaptive rule decides a tile can live in
/// `f32`/`f16`. Values come back as `f64` but carry the low-precision
/// rounding error, which is how the simulation-facing code observes
/// precision loss without templating everything on element type.
pub fn round_through(buf: &mut [f64], precision: crate::Precision) {
    match precision {
        crate::Precision::F64 => {}
        crate::Precision::F32 => {
            for x in buf.iter_mut() {
                *x = (*x as f32) as f64;
            }
        }
        crate::Precision::F16 => {
            for x in buf.iter_mut() {
                *x = Half::from_f64(*x).to_f64();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Precision;

    #[test]
    fn roundtrip_f32_is_lossy_one_way_only() {
        let src = vec![1.0f64 + 1e-12, 2.5, -3.75];
        let mut mid = vec![0f32; 3];
        let mut back = vec![0f64; 3];
        demote_f64_to_f32(&src, &mut mid);
        promote_f32_to_f64(&mid, &mut back);
        assert_ne!(back[0], src[0]); // 1e-12 below f32 resolution at 1.0
        assert_eq!(back[1], 2.5); // exactly representable
        assert_eq!(back[2], -3.75);
    }

    #[test]
    fn round_through_matches_explicit_conversion() {
        let src: Vec<f64> = (0..100).map(|i| (i as f64) * 0.017 - 0.5).collect();
        let mut via_f16 = src.clone();
        round_through(&mut via_f16, Precision::F16);
        for (orig, r) in src.iter().zip(&via_f16) {
            assert_eq!(*r, Half::from_f64(*orig).to_f64());
        }
        let mut via_f64 = src.clone();
        round_through(&mut via_f64, Precision::F64);
        assert_eq!(via_f64, src);
    }
}

//! The three floating-point precisions the paper's adaptive solver juggles.

/// IEEE-754 precision of a tile's storage.
///
/// The paper's runtime stores each covariance tile in one of these formats
/// and converts operands *on demand* when a consumer task runs in a higher
/// precision (its Algorithm 1 marks the precision-lead operand with `+` and
/// converted operands with `*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// IEEE binary16 (emulated; FP32 accumulation, see [`crate::shgemm`]).
    F16,
    /// IEEE binary32.
    F32,
    /// IEEE binary64 — the reference precision.
    F64,
}

impl Precision {
    /// Unit roundoff `u` (half the machine epsilon) of the format.
    ///
    /// These are the `u_high` / `u_low` constants of the paper's §VI-C
    /// adaptive rule: a tile may be stored in a lower precision when
    /// `||A_ij||_F < u_high * ||A||_F / (NT * u_low)`.
    #[inline]
    pub fn unit_roundoff(self) -> f64 {
        match self {
            // 2^-11, 2^-24, 2^-53
            Precision::F16 => 4.8828125e-4,
            Precision::F32 => 5.960464477539063e-8,
            Precision::F64 => 1.1102230246251565e-16,
        }
    }

    /// Storage bytes per element.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            Precision::F16 => 2,
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }

    /// Relative arithmetic throughput versus FP64 on the modeled A64FX
    /// (512-bit SVE: FP32 runs 2x faster, FP16 4x — the peak ratios the
    /// paper's Fig. 7 mixed-precision runs exploit).
    #[inline]
    pub fn speedup_vs_f64(self) -> f64 {
        match self {
            Precision::F16 => 4.0,
            Precision::F32 => 2.0,
            Precision::F64 => 1.0,
        }
    }

    /// Short lowercase name (`"fp64"` etc.) used in reports and heat-maps.
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            Precision::F16 => "fp16",
            Precision::F32 => "fp32",
            Precision::F64 => "fp64",
        }
    }

    /// The lower of two precisions.
    #[inline]
    pub fn min(self, other: Precision) -> Precision {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The higher of two precisions.
    #[inline]
    pub fn max(self, other: Precision) -> Precision {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// All precisions from lowest to highest.
    pub const ALL: [Precision; 3] = [Precision::F16, Precision::F32, Precision::F64];
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_width() {
        assert!(Precision::F16 < Precision::F32);
        assert!(Precision::F32 < Precision::F64);
        assert_eq!(Precision::F16.max(Precision::F64), Precision::F64);
        assert_eq!(Precision::F64.min(Precision::F32), Precision::F32);
    }

    #[test]
    fn unit_roundoffs_match_ieee() {
        assert_eq!(Precision::F64.unit_roundoff(), (f64::EPSILON / 2.0));
        assert_eq!(Precision::F32.unit_roundoff(), (f32::EPSILON as f64 / 2.0));
        // binary16 epsilon is 2^-10; unit roundoff 2^-11.
        assert_eq!(Precision::F16.unit_roundoff(), 2.0f64.powi(-11));
    }

    #[test]
    fn bytes_and_speedups() {
        assert_eq!(Precision::F64.bytes(), 8);
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::F16.bytes(), 2);
        assert_eq!(Precision::F64.speedup_vs_f64(), 1.0);
        assert!(Precision::F16.speedup_vs_f64() > Precision::F32.speedup_vs_f64());
    }
}

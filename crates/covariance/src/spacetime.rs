//! The Gneiting non-separable space–time covariance (paper Eq. 6).
//!
//! `ψ(u) = a_t |u|^{2α} + 1`
//! `C(h, u) = σ² / ψ(u) · M_ν( ‖h‖ / (a_s ψ(u)^{β/2}) )`
//!
//! with six parameters `θ = (σ², a_s, ν, a_t, α, β)`: variance, spatial
//! range, spatial smoothness, temporal range, temporal smoothness and the
//! space–time interaction ("non-separability") parameter. `β = 0` factors
//! the model into purely spatial × purely temporal components (separable);
//! `β > 0` couples them — the case the paper's Table II finds (`β ≈ 0.186`)
//! and argues is more realistic.

use crate::matern::{matern_correlation_with_coef, matern_ln_coef};

/// Parameter vector of the space–time model — the six estimands of the
/// paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpaceTimeParams {
    /// Variance `σ² = θ_0 > 0`.
    pub sigma2: f64,
    /// Spatial range `a_s = θ_1 > 0`.
    pub range_space: f64,
    /// Spatial smoothness `ν = θ_2 > 0`.
    pub smoothness_space: f64,
    /// Temporal range `a_t = θ_3 > 0`.
    pub range_time: f64,
    /// Temporal smoothness `α = θ_4 ∈ (0, 1]` in Gneiting's construction
    /// (`2α` is the exponent of the temporal lag).
    pub smoothness_time: f64,
    /// Space–time interaction `β = θ_5 ∈ [0, 1]`; 0 = separable.
    pub beta: f64,
}

impl SpaceTimeParams {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sigma2: f64,
        range_space: f64,
        smoothness_space: f64,
        range_time: f64,
        smoothness_time: f64,
        beta: f64,
    ) -> SpaceTimeParams {
        assert!(sigma2 > 0.0 && range_space > 0.0 && smoothness_space > 0.0);
        assert!(range_time > 0.0 && smoothness_time > 0.0);
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        SpaceTimeParams {
            sigma2,
            range_space,
            smoothness_space,
            range_time,
            smoothness_time,
            beta,
        }
    }

    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.sigma2,
            self.range_space,
            self.smoothness_space,
            self.range_time,
            self.smoothness_time,
            self.beta,
        ]
    }

    pub fn from_slice(v: &[f64]) -> SpaceTimeParams {
        SpaceTimeParams::new(v[0], v[1], v[2], v[3], v[4], v[5])
    }
}

/// The Gneiting space–time kernel (Matérn prefactor cached, see
/// [`crate::matern::Matern`]).
#[derive(Clone, Copy, Debug)]
pub struct GneitingSpaceTime {
    pub params: SpaceTimeParams,
    ln_coef: f64,
}

impl GneitingSpaceTime {
    pub fn new(params: SpaceTimeParams) -> GneitingSpaceTime {
        GneitingSpaceTime {
            params,
            ln_coef: matern_ln_coef(params.smoothness_space),
        }
    }

    /// Covariance at spatial distance `h >= 0` and temporal lag `u`.
    pub fn cov(&self, h: f64, u: f64) -> f64 {
        let p = &self.params;
        let psi = p.range_time * u.abs().powf(2.0 * p.smoothness_time.min(1.0)) + 1.0;
        let scaled_h = h / (p.range_space * psi.powf(0.5 * p.beta));
        p.sigma2 / psi * matern_correlation_with_coef(p.smoothness_space, self.ln_coef, scaled_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(beta: f64) -> SpaceTimeParams {
        SpaceTimeParams::new(1.0, 0.5, 1.0, 0.8, 0.9, beta)
    }

    #[test]
    fn variance_at_origin() {
        let k = GneitingSpaceTime::new(params(0.5));
        assert!((k.cov(0.0, 0.0) - 1.0).abs() < 1e-15);
        let k2 = GneitingSpaceTime::new(SpaceTimeParams::new(3.2, 0.5, 1.0, 0.8, 0.9, 0.2));
        assert!((k2.cov(0.0, 0.0) - 3.2).abs() < 1e-15);
    }

    #[test]
    fn decays_in_both_space_and_time() {
        let k = GneitingSpaceTime::new(params(0.3));
        let c00 = k.cov(0.0, 0.0);
        let ch = k.cov(0.4, 0.0);
        let cu = k.cov(0.0, 1.0);
        let chu = k.cov(0.4, 1.0);
        assert!(ch < c00 && cu < c00 && chu < ch && chu < cu);
        assert!(chu > 0.0);
    }

    #[test]
    fn separable_case_factorizes() {
        // With beta = 0: C(h,u) = [sigma2/psi(u)] * M(h/a_s) — the product of
        // the purely temporal and purely spatial parts divided by sigma2.
        let k = GneitingSpaceTime::new(params(0.0));
        for &(h, u) in &[(0.2f64, 0.5f64), (0.7, 1.5), (1.3, 0.2)] {
            let joint = k.cov(h, u);
            let spatial = k.cov(h, 0.0);
            let temporal = k.cov(0.0, u);
            assert!(
                (joint - spatial * temporal / k.params.sigma2).abs() < 1e-14,
                "separability violated at ({h},{u})"
            );
        }
    }

    #[test]
    fn nonseparable_case_does_not_factorize() {
        let k = GneitingSpaceTime::new(params(1.0));
        let (h, u) = (0.7, 1.5);
        let joint = k.cov(h, u);
        let product = k.cov(h, 0.0) * k.cov(0.0, u) / k.params.sigma2;
        assert!((joint - product).abs() > 1e-6);
    }

    #[test]
    fn interaction_increases_cross_covariance() {
        // Larger beta stretches the effective spatial range at nonzero
        // temporal lag, raising C(h, u) for h, u > 0.
        let k0 = GneitingSpaceTime::new(params(0.0));
        let k1 = GneitingSpaceTime::new(params(1.0));
        assert!(k1.cov(0.5, 2.0) > k0.cov(0.5, 2.0));
    }

    #[test]
    fn time_symmetry() {
        let k = GneitingSpaceTime::new(params(0.4));
        assert_eq!(k.cov(0.3, 1.2), k.cov(0.3, -1.2));
    }

    #[test]
    fn params_roundtrip() {
        let p = SpaceTimeParams::new(1.01, 3.79, 0.32, 0.0101, 0.9, 0.186);
        assert_eq!(SpaceTimeParams::from_slice(&p.to_vec()), p);
    }
}

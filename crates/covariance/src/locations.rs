//! Spatial / spatio-temporal location handling.
//!
//! * ExaGeoStat-style synthetic location generators (jittered grid on the
//!   unit square, plus purely uniform scatter),
//! * space–time replication of a spatial design over time slots,
//! * Morton (Z-order) ordering — the paper's "proper ordering \[10\]" that
//!   "clusters the most significant information around the diagonal of the
//!   matrix", which is what makes off-diagonal tiles low-rank and
//!   low-norm in the first place.

use rand::{Rng, RngExt};

/// An observation site: 2D space plus (optionally) time. Pure-space
/// datasets use `t = 0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Location {
    pub x: f64,
    pub y: f64,
    pub t: f64,
}

impl Location {
    pub fn new(x: f64, y: f64) -> Location {
        Location { x, y, t: 0.0 }
    }

    pub fn new_st(x: f64, y: f64, t: f64) -> Location {
        Location { x, y, t }
    }

    /// Euclidean distance in space only.
    #[inline]
    pub fn dist_space(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Absolute temporal lag.
    #[inline]
    pub fn lag_time(&self, other: &Location) -> f64 {
        (self.t - other.t).abs()
    }

    /// Great-circle distance in kilometres, treating `x` as longitude and
    /// `y` as latitude in degrees (haversine on a 6371 km sphere) — the
    /// distance metric ExaGeoStat offers for geographic datasets like the
    /// paper's basin/Central-Asia regions.
    pub fn dist_great_circle_km(&self, other: &Location) -> f64 {
        const R_EARTH_KM: f64 = 6371.0;
        let (lat1, lon1) = (self.y.to_radians(), self.x.to_radians());
        let (lat2, lon2) = (other.y.to_radians(), other.x.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R_EARTH_KM * a.sqrt().min(1.0).asin()
    }
}

/// ExaGeoStat's synthetic design: an `m x m` grid (`m = ceil(sqrt(n))`)
/// perturbed by uniform jitter, scaled to the unit square, then truncated
/// to exactly `n` sites. Irregular but quasi-uniform, like real monitoring
/// networks.
pub fn jittered_grid<R: Rng>(n: usize, rng: &mut R) -> Vec<Location> {
    let m = (n as f64).sqrt().ceil() as usize;
    let mut pts = Vec::with_capacity(m * m);
    for i in 0..m {
        for j in 0..m {
            // Jitter within +/- 0.4 of the cell to avoid coincident points.
            let jx: f64 = rng.random_range(-0.4..0.4);
            let jy: f64 = rng.random_range(-0.4..0.4);
            let x = (i as f64 + 0.5 + jx) / m as f64;
            let y = (j as f64 + 0.5 + jy) / m as f64;
            pts.push(Location::new(x, y));
        }
    }
    // Keep a deterministic-but-spread subset: stride through the grid.
    if pts.len() > n {
        // Shuffle-lite: take every k-th site first, then fill.
        pts.truncate(n);
    }
    pts
}

/// `n` i.i.d. uniform sites on the unit square.
pub fn uniform_locations<R: Rng>(n: usize, rng: &mut R) -> Vec<Location> {
    (0..n)
        .map(|_| Location::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect()
}

/// Replicate a spatial design over `slots` unit-spaced time slots
/// (`t = 1, 2, ..., slots`), the layout of the paper's ET dataset
/// (~83K sites × 12 months).
pub fn spacetime_grid(space: &[Location], slots: usize) -> Vec<Location> {
    let mut out = Vec::with_capacity(space.len() * slots);
    for s in 1..=slots {
        for loc in space {
            out.push(Location::new_st(loc.x, loc.y, s as f64));
        }
    }
    out
}

/// Sort locations in Morton (Z-order) so that index-adjacent sites are
/// spatially adjacent. Time is treated as a third interleaved coordinate
/// when present, so space–time datasets cluster in both dimensions.
pub fn morton_order(locs: &mut [Location]) {
    // Normalize to [0,1) per coordinate before quantizing to 21 bits each.
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for l in locs.iter() {
        xmin = xmin.min(l.x);
        xmax = xmax.max(l.x);
        ymin = ymin.min(l.y);
        ymax = ymax.max(l.y);
        tmin = tmin.min(l.t);
        tmax = tmax.max(l.t);
    }
    let has_time = tmax > tmin;
    let norm = |v: f64, lo: f64, hi: f64| -> u32 {
        if hi <= lo {
            return 0;
        }
        let f = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        // 20 bits per coordinate (3 coords fit in u64).
        (f * ((1u32 << 20) - 1) as f64) as u32
    };
    locs.sort_by_key(|l| {
        let xi = norm(l.x, xmin, xmax);
        let yi = norm(l.y, ymin, ymax);
        if has_time {
            let ti = norm(l.t, tmin, tmax);
            interleave3(xi, yi, ti)
        } else {
            interleave2(xi, yi)
        }
    });
}

/// Interleave the low 20 bits of two coordinates (x gets even bits).
fn interleave2(x: u32, y: u32) -> u64 {
    spread2(x as u64) | (spread2(y as u64) << 1)
}

/// Spread bits of a 32-bit value so there is a gap bit between each
/// (classic Morton bit tricks).
fn spread2(mut v: u64) -> u64 {
    v &= 0xFFFF_FFFF;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Interleave three 20-bit coordinates.
fn interleave3(x: u32, y: u32, z: u32) -> u64 {
    spread3(x as u64) | (spread3(y as u64) << 1) | (spread3(z as u64) << 2)
}

fn spread3(mut v: u64) -> u64 {
    v &= 0x1F_FFFF; // 21 bits
    v = (v | (v << 32)) & 0x1F00000000FFFF;
    v = (v | (v << 16)) & 0x1F0000FF0000FF;
    v = (v | (v << 8)) & 0x100F00F00F00F00F;
    v = (v | (v << 4)) & 0x10C30C30C30C30C3;
    v = (v | (v << 2)) & 0x1249249249249249;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn jittered_grid_in_unit_square_and_unique() {
        let mut rng = StdRng::seed_from_u64(7);
        let locs = jittered_grid(500, &mut rng);
        assert_eq!(locs.len(), 500);
        for l in &locs {
            assert!((0.0..=1.0).contains(&l.x) && (0.0..=1.0).contains(&l.y));
        }
        // No exact duplicates (probability ~0 with jitter).
        for i in 0..locs.len() {
            for j in i + 1..locs.len() {
                assert!(locs[i].dist_space(&locs[j]) > 1e-9);
            }
        }
    }

    #[test]
    fn spacetime_grid_replicates_per_slot() {
        let mut rng = StdRng::seed_from_u64(1);
        let space = jittered_grid(50, &mut rng);
        let st = spacetime_grid(&space, 4);
        assert_eq!(st.len(), 200);
        assert_eq!(st[0].t, 1.0);
        assert_eq!(st[199].t, 4.0);
        assert_eq!(st[50].x, space[0].x);
    }

    #[test]
    fn morton_improves_index_locality() {
        // Average spatial distance between index-neighbours must shrink
        // substantially after ordering a random scatter.
        let mut rng = StdRng::seed_from_u64(2);
        let mut locs = uniform_locations(2000, &mut rng);
        let avg = |ls: &[Location]| -> f64 {
            ls.windows(2).map(|w| w[0].dist_space(&w[1])).sum::<f64>() / (ls.len() - 1) as f64
        };
        let before = avg(&locs);
        morton_order(&mut locs);
        let after = avg(&locs);
        assert!(
            after < before * 0.25,
            "Morton should improve locality: {before} -> {after}"
        );
    }

    #[test]
    fn morton_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let orig = uniform_locations(300, &mut rng);
        let mut sorted = orig.clone();
        morton_order(&mut sorted);
        assert_eq!(sorted.len(), orig.len());
        let sum_orig: f64 = orig.iter().map(|l| l.x + l.y).sum();
        let sum_sorted: f64 = sorted.iter().map(|l| l.x + l.y).sum();
        assert!((sum_orig - sum_sorted).abs() < 1e-9);
    }

    #[test]
    fn morton_groups_time_slabs_locally() {
        let mut rng = StdRng::seed_from_u64(4);
        let space = jittered_grid(100, &mut rng);
        let mut st = spacetime_grid(&space, 5);
        morton_order(&mut st);
        // Neighbouring entries should rarely jump across many time slots.
        let jumps = st
            .windows(2)
            .filter(|w| (w[0].t - w[1].t).abs() > 2.0)
            .count();
        assert!(jumps < st.len() / 10, "too many large time jumps: {jumps}");
    }

    #[test]
    fn great_circle_known_distances() {
        // One degree of latitude ~ 111.2 km anywhere.
        let a = Location::new(0.0, 0.0);
        let b = Location::new(0.0, 1.0);
        let d = a.dist_great_circle_km(&b);
        assert!((d - 111.2).abs() < 0.3, "{d}");
        // One degree of longitude at 60N is half that.
        let c = Location::new(0.0, 60.0);
        let e = Location::new(1.0, 60.0);
        let d2 = c.dist_great_circle_km(&e);
        assert!((d2 - 55.6).abs() < 0.3, "{d2}");
        // Symmetry and identity.
        assert_eq!(a.dist_great_circle_km(&b), b.dist_great_circle_km(&a));
        assert_eq!(a.dist_great_circle_km(&a), 0.0);
        // Antipodal: half the circumference ~ 20015 km.
        let p = Location::new(0.0, 0.0);
        let q = Location::new(180.0, 0.0);
        assert!((p.dist_great_circle_km(&q) - 20015.0).abs() < 5.0);
    }

    #[test]
    fn spread_bits_roundtrip_structure() {
        // spread2 leaves gaps: no two adjacent set bits.
        let s = spread2(0xFFFFF);
        assert_eq!(s & (s >> 1), 0);
        let s3 = spread3(0x1FFFFF);
        assert_eq!(s3 & (s3 >> 1), 0);
        assert_eq!(s3 & (s3 >> 2), 0);
    }
}

//! Additional stationary covariance families from the ExaGeoStat kernel
//! catalogue, plus nugget support.
//!
//! The paper's experiments use Matérn (space) and Gneiting (space–time);
//! production geostatistics toolkits carry a wider family menu, and the
//! adaptive tile machinery is kernel-agnostic — these all plug into the
//! same [`crate::assembly::CovarianceKernel`] interface.

use crate::assembly::CovarianceKernel;
use crate::locations::Location;

/// Powered exponential: `C(r) = σ² exp(-(r/a)^γ)`, `γ ∈ (0, 2]`.
/// `γ = 1` is exponential (Matérn ν = 1/2), `γ = 2` Gaussian.
#[derive(Clone, Copy, Debug)]
pub struct PoweredExponential {
    pub sigma2: f64,
    pub range: f64,
    pub power: f64,
}

impl PoweredExponential {
    pub fn new(sigma2: f64, range: f64, power: f64) -> PoweredExponential {
        assert!(sigma2 > 0.0 && range > 0.0);
        assert!(
            power > 0.0 && power <= 2.0,
            "power must be in (0, 2] for validity"
        );
        PoweredExponential {
            sigma2,
            range,
            power,
        }
    }
}

impl CovarianceKernel for PoweredExponential {
    fn cov(&self, a: &Location, b: &Location) -> f64 {
        let r = a.dist_space(b);
        self.sigma2 * (-(r / self.range).powf(self.power)).exp()
    }

    fn variance(&self) -> f64 {
        self.sigma2
    }

    fn n_params(&self) -> usize {
        3
    }
}

/// Generalized Cauchy: `C(r) = σ² (1 + (r/a)^γ)^{-β/γ}` — polynomially
/// decaying tails (long-memory fields), valid for `γ ∈ (0, 2]`, `β > 0`.
#[derive(Clone, Copy, Debug)]
pub struct GeneralizedCauchy {
    pub sigma2: f64,
    pub range: f64,
    pub power: f64,
    pub tail: f64,
}

impl GeneralizedCauchy {
    pub fn new(sigma2: f64, range: f64, power: f64, tail: f64) -> GeneralizedCauchy {
        assert!(sigma2 > 0.0 && range > 0.0 && tail > 0.0);
        assert!(power > 0.0 && power <= 2.0);
        GeneralizedCauchy {
            sigma2,
            range,
            power,
            tail,
        }
    }
}

impl CovarianceKernel for GeneralizedCauchy {
    fn cov(&self, a: &Location, b: &Location) -> f64 {
        let r = a.dist_space(b);
        self.sigma2 * (1.0 + (r / self.range).powf(self.power)).powf(-self.tail / self.power)
    }

    fn variance(&self) -> f64 {
        self.sigma2
    }

    fn n_params(&self) -> usize {
        4
    }
}

/// Nugget wrapper: adds measurement-error variance `τ²` at zero distance —
/// `C'(s, s) = C(s, s) + τ²`, `C'(s, u) = C(s, u)` otherwise.
///
/// A nugget regularizes the covariance (diagonal shift), which also
/// benefits the tile Cholesky's robustness under aggressive approximation.
pub struct WithNugget<K> {
    pub base: K,
    pub nugget: f64,
}

impl<K: CovarianceKernel> WithNugget<K> {
    pub fn new(base: K, nugget: f64) -> WithNugget<K> {
        assert!(nugget >= 0.0);
        WithNugget { base, nugget }
    }
}

impl<K: CovarianceKernel> CovarianceKernel for WithNugget<K> {
    fn cov(&self, a: &Location, b: &Location) -> f64 {
        let c = self.base.cov(a, b);
        // Exact site coincidence gets the nugget (measurement error is
        // independent across distinct sites even at tiny separations).
        if a == b {
            c + self.nugget
        } else {
            c
        }
    }

    fn variance(&self) -> f64 {
        self.base.variance() + self.nugget
    }

    fn n_params(&self) -> usize {
        self.base.n_params() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locations::jittered_grid;
    use crate::matern::{Matern, MaternParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn locs(n: usize) -> Vec<Location> {
        let mut rng = StdRng::seed_from_u64(17);
        jittered_grid(n, &mut rng)
    }

    #[test]
    fn powered_exponential_matches_matern_half_at_power_one() {
        let pe = PoweredExponential::new(1.3, 0.2, 1.0);
        let m = Matern::new(MaternParams::new(1.3, 0.2, 0.5));
        let a = Location::new(0.1, 0.4);
        let b = Location::new(0.5, 0.2);
        assert!((pe.cov(&a, &b) - m.cov(&a, &b)).abs() < 1e-14);
    }

    #[test]
    fn powered_exponential_spd() {
        let pe = PoweredExponential::new(1.0, 0.15, 1.7);
        let mut c = crate::assembly::covariance_matrix(&pe, &locs(80));
        xgs_linalg::cholesky_in_place(&mut c).expect("powered exponential must be SPD");
    }

    #[test]
    fn cauchy_has_heavier_tail_than_exponential() {
        let cauchy = GeneralizedCauchy::new(1.0, 0.1, 1.0, 1.0);
        let expo = PoweredExponential::new(1.0, 0.1, 1.0);
        let a = Location::new(0.0, 0.0);
        let far = Location::new(1.0, 1.0);
        assert!(cauchy.cov(&a, &far) > 10.0 * expo.cov(&a, &far));
        // But both normalize to sigma^2 at 0.
        assert!((cauchy.cov(&a, &a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cauchy_spd() {
        let k = GeneralizedCauchy::new(1.0, 0.2, 1.5, 0.8);
        let mut c = crate::assembly::covariance_matrix(&k, &locs(80));
        xgs_linalg::cholesky_in_place(&mut c).expect("Cauchy must be SPD");
    }

    #[test]
    fn nugget_raises_only_the_diagonal() {
        let base = Matern::new(MaternParams::new(1.0, 0.1, 0.5));
        let k = WithNugget::new(base, 0.25);
        let ls = locs(50);
        let with = crate::assembly::covariance_matrix(&k, &ls);
        let without = crate::assembly::covariance_matrix(&base, &ls);
        for j in 0..50 {
            for i in 0..50 {
                let expect = without[(i, j)] + if i == j { 0.25 } else { 0.0 };
                assert!((with[(i, j)] - expect).abs() < 1e-15);
            }
        }
        assert_eq!(k.variance(), 1.25);
        assert_eq!(k.n_params(), 4);
    }

    #[test]
    fn nugget_improves_conditioning() {
        // Nearly coincident points: bare kernel is near-singular, nugget
        // fixes it.
        let mut ls = locs(40);
        let p = ls[0];
        ls.push(Location::new(p.x + 1e-12, p.y));
        let base = Matern::new(MaternParams::new(1.0, 0.3, 2.5));
        let mut bare = crate::assembly::covariance_matrix(&base, &ls);
        let bare_ok = xgs_linalg::cholesky_in_place(&mut bare).is_ok();
        let k = WithNugget::new(base, 1e-4);
        let mut fixed = crate::assembly::covariance_matrix(&k, &ls);
        assert!(xgs_linalg::cholesky_in_place(&mut fixed).is_ok());
        // (bare may or may not squeak through in f64; the nugget must.)
        let _ = bare_ok;
    }
}

//! The Matérn covariance family (paper §IV-A.3).
//!
//! Parametrized ExaGeoStat-style as `θ = (σ², a, ν)`: variance, spatial
//! range, and smoothness, with
//! `C(r) = σ² · 2^{1-ν}/Γ(ν) · (r/a)^ν · K_ν(r/a)` and `C(0) = σ²`.

use crate::bessel::{bessel_k, ln_gamma};

/// Matérn parameter vector `θ = (σ², a, ν)` — the three parameters the
/// paper's Fig. 6 boxplots and Table I estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaternParams {
    /// Variance `σ² = θ_0 > 0`.
    pub sigma2: f64,
    /// Spatial range `a = θ_1 > 0` (the paper's weak/medium/strong
    /// correlations are `a = 0.03 / 0.1 / 0.3` on the unit square).
    pub range: f64,
    /// Smoothness `ν = θ_2 > 0` (field is `⌈ν⌉-1` times differentiable).
    pub smoothness: f64,
}

impl MaternParams {
    pub fn new(sigma2: f64, range: f64, smoothness: f64) -> MaternParams {
        assert!(sigma2 > 0.0 && range > 0.0 && smoothness > 0.0);
        MaternParams {
            sigma2,
            range,
            smoothness,
        }
    }

    /// As a flat vector for the optimizer.
    pub fn to_vec(self) -> Vec<f64> {
        vec![self.sigma2, self.range, self.smoothness]
    }

    pub fn from_slice(v: &[f64]) -> MaternParams {
        MaternParams::new(v[0], v[1], v[2])
    }
}

/// The Matérn *correlation* `M_ν(t)` for normalized distance `t = r/a`
/// (so `M_ν(0) = 1`). Closed forms for half-integer ν, Bessel otherwise.
pub fn matern_correlation(nu: f64, t: f64) -> f64 {
    debug_assert!(nu > 0.0);
    if t == 0.0 {
        return 1.0;
    }
    if !(0.0..f64::INFINITY).contains(&t) {
        return f64::NAN;
    }
    // Fast paths: the classical closed forms.
    if nu == 0.5 {
        return (-t).exp();
    }
    if nu == 1.5 {
        return (1.0 + t) * (-t).exp();
    }
    if nu == 2.5 {
        return (1.0 + t + t * t / 3.0) * (-t).exp();
    }
    // General case: 2^{1-nu}/Γ(nu) t^nu K_nu(t), computed in log space for
    // robustness at large t (K_nu underflows around t ~ 700).
    let ln_coef = (1.0 - nu) * std::f64::consts::LN_2 - ln_gamma(nu) + nu * t.ln();
    let k = bessel_k(nu, t);
    if k == 0.0 {
        return 0.0;
    }
    (ln_coef + k.ln()).exp()
}

/// [`matern_correlation`] with a precomputed `(1-ν)ln2 - lnΓ(ν)` prefactor
/// (`NaN` selects the half-integer closed forms). Kernels that evaluate
/// `O(n²)` correlations cache the prefactor through this entry point.
#[inline]
pub fn matern_correlation_with_coef(nu: f64, ln_coef: f64, t: f64) -> f64 {
    if t == 0.0 {
        return 1.0;
    }
    if ln_coef.is_nan() {
        return matern_correlation(nu, t);
    }
    let k = bessel_k(nu, t);
    if k == 0.0 {
        return 0.0;
    }
    (ln_coef + nu * t.ln() + k.ln()).exp()
}

/// The cached prefactor for [`matern_correlation_with_coef`].
#[inline]
pub fn matern_ln_coef(nu: f64) -> f64 {
    if nu == 0.5 || nu == 1.5 || nu == 2.5 {
        f64::NAN
    } else {
        (1.0 - nu) * std::f64::consts::LN_2 - ln_gamma(nu)
    }
}

/// A concrete Matérn kernel over 2D Euclidean distance.
///
/// Caches the `2^{1-ν}/Γ(ν)` prefactor (in log space): covariance assembly
/// evaluates the kernel `O(n²)` times per likelihood call, and recomputing
/// `ln Γ(ν)` per entry dominates the general-ν path otherwise.
#[derive(Clone, Copy, Debug)]
pub struct Matern {
    pub params: MaternParams,
    /// `(1-ν) ln 2 - ln Γ(ν)`, or NaN when a closed-form ν fast path applies.
    ln_coef: f64,
}

impl Matern {
    pub fn new(params: MaternParams) -> Matern {
        Matern {
            params,
            ln_coef: matern_ln_coef(params.smoothness),
        }
    }

    /// Covariance at Euclidean distance `r`.
    #[inline]
    pub fn cov_at_distance(&self, r: f64) -> f64 {
        let nu = self.params.smoothness;
        let t = r / self.params.range;
        if t == 0.0 {
            return self.params.sigma2;
        }
        self.params.sigma2 * matern_correlation_with_coef(nu, self.ln_coef, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_is_one_at_zero_and_decays() {
        for &nu in &[0.3f64, 0.5, 1.0, 1.5, 2.5, 3.7] {
            assert_eq!(matern_correlation(nu, 0.0), 1.0);
            let mut prev = 1.0;
            for i in 1..60 {
                let t = i as f64 * 0.25;
                let c = matern_correlation(nu, t);
                assert!(c > 0.0 && c < prev, "nu={nu} t={t}: {c} !< {prev}");
                prev = c;
            }
        }
    }

    #[test]
    fn closed_forms_match_bessel_path() {
        // Evaluate the generic Bessel formula at ν slightly off the
        // half-integers and check continuity with the fast paths.
        for &(nu, _) in &[(0.5f64, ()), (1.5, ()), (2.5, ())] {
            for &t in &[0.1f64, 0.7, 2.0, 5.0] {
                let exact = matern_correlation(nu, t);
                let generic = {
                    // Bypass the fast path by nudging nu by 1e-9.
                    matern_correlation(nu + 1e-9, t)
                };
                assert!(
                    (exact - generic).abs() < 1e-6,
                    "nu={nu} t={t}: {exact} vs {generic}"
                );
            }
        }
    }

    #[test]
    fn smoother_fields_have_heavier_near_origin_correlation() {
        // At small t, larger ν keeps correlation closer to 1.
        let t = 0.3;
        let c1 = matern_correlation(0.5, t);
        let c2 = matern_correlation(1.5, t);
        let c3 = matern_correlation(2.5, t);
        assert!(c1 < c2 && c2 < c3);
    }

    #[test]
    fn underflow_far_field_is_zero_not_nan() {
        let c = matern_correlation(0.8, 1.0e4);
        assert!((0.0..1e-300).contains(&c));
        assert!(!c.is_nan());
    }

    #[test]
    fn kernel_scales_by_variance_and_range() {
        let k = Matern::new(MaternParams::new(2.5, 0.1, 0.5));
        assert!((k.cov_at_distance(0.0) - 2.5).abs() < 1e-15);
        // exp decay with range 0.1: C(r) = 2.5 exp(-r/0.1)
        let r = 0.05;
        assert!((k.cov_at_distance(r) - 2.5 * (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn params_roundtrip() {
        let p = MaternParams::new(0.67, 0.17, 0.44);
        assert_eq!(MaternParams::from_slice(&p.to_vec()), p);
    }
}

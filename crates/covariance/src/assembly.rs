//! Covariance matrix assembly from locations + a kernel.
//!
//! The generation phase of the paper's pipeline: `Σ(θ)_{ij} = C(s_i - s_j)`.
//! Assembly fans out per-column chunks across the shared work-stealing
//! pool (`rayon::par_chunks_mut`), and the blocked
//! entry point [`cov_block`] is what the tile layer calls to generate one
//! tile at a time without ever materializing the full matrix.

use crate::locations::Location;
use crate::matern::Matern;
use crate::spacetime::GneitingSpaceTime;
use rayon::prelude::*;
use xgs_linalg::Matrix;

/// A stationary covariance kernel over (space, time) lags.
///
/// Object-safe so the MLE engine can hold `&dyn CovarianceKernel` and the
/// same tile machinery serves both the space and space–time models.
pub trait CovarianceKernel: Send + Sync {
    /// Covariance between two sites.
    fn cov(&self, a: &Location, b: &Location) -> f64;

    /// Marginal variance `C(s, s) = σ²`.
    fn variance(&self) -> f64;

    /// Number of parameters (3 for Matérn space, 6 for Gneiting
    /// space–time) — used by optimizers and reports.
    fn n_params(&self) -> usize;
}

impl CovarianceKernel for Matern {
    #[inline]
    fn cov(&self, a: &Location, b: &Location) -> f64 {
        self.cov_at_distance(a.dist_space(b))
    }

    fn variance(&self) -> f64 {
        self.params.sigma2
    }

    fn n_params(&self) -> usize {
        3
    }
}

impl CovarianceKernel for GneitingSpaceTime {
    #[inline]
    fn cov(&self, a: &Location, b: &Location) -> f64 {
        GneitingSpaceTime::cov(self, a.dist_space(b), a.lag_time(b))
    }

    fn variance(&self) -> f64 {
        self.params.sigma2
    }

    fn n_params(&self) -> usize {
        6
    }
}

/// Dense `n x n` covariance matrix (both triangles filled), assembled in
/// parallel over columns.
pub fn covariance_matrix(kernel: &dyn CovarianceKernel, locs: &[Location]) -> Matrix {
    let n = locs.len();
    let mut data = vec![0.0f64; n * n];
    data.par_chunks_mut(n).enumerate().for_each(|(j, col)| {
        let lj = &locs[j];
        for (i, out) in col.iter_mut().enumerate() {
            *out = kernel.cov(&locs[i], lj);
        }
    });
    Matrix::from_vec(n, n, data)
}

/// One rectangular block `C[rows, cols]` of the covariance, used to
/// generate a single tile (`rows`/`cols` are slices of the global ordered
/// location list).
pub fn cov_block(kernel: &dyn CovarianceKernel, rows: &[Location], cols: &[Location]) -> Matrix {
    let m = rows.len();
    let n = cols.len();
    let mut data = vec![0.0f64; m * n];
    for (j, cj) in cols.iter().enumerate() {
        let col = &mut data[j * m..(j + 1) * m];
        for (out, ri) in col.iter_mut().zip(rows) {
            *out = kernel.cov(ri, cj);
        }
    }
    Matrix::from_vec(m, n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locations::jittered_grid;
    use crate::matern::MaternParams;
    use crate::spacetime::SpaceTimeParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn locs(n: usize, seed: u64) -> Vec<Location> {
        let mut rng = StdRng::seed_from_u64(seed);
        jittered_grid(n, &mut rng)
    }

    #[test]
    fn matrix_is_symmetric_with_variance_diagonal() {
        let kernel = Matern::new(MaternParams::new(1.3, 0.2, 0.8));
        let ls = locs(60, 1);
        let c = covariance_matrix(&kernel, &ls);
        for i in 0..60 {
            assert!((c[(i, i)] - 1.3).abs() < 1e-14);
            for j in 0..i {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
    }

    #[test]
    fn matrix_is_positive_definite() {
        let kernel = Matern::new(MaternParams::new(1.0, 0.1, 0.5));
        let ls = locs(80, 2);
        let mut c = covariance_matrix(&kernel, &ls);
        xgs_linalg::cholesky_in_place(&mut c).expect("Matérn covariance must be SPD");
    }

    #[test]
    fn spacetime_matrix_is_positive_definite() {
        let kernel = GneitingSpaceTime::new(SpaceTimeParams::new(1.0, 0.3, 1.0, 0.5, 0.9, 0.5));
        let space = locs(20, 3);
        let st = crate::locations::spacetime_grid(&space, 4);
        let mut c = covariance_matrix(&kernel, &st);
        xgs_linalg::cholesky_in_place(&mut c).expect("Gneiting covariance must be SPD");
    }

    #[test]
    fn blocks_agree_with_full_matrix() {
        let kernel = Matern::new(MaternParams::new(1.0, 0.15, 1.5));
        let ls = locs(40, 4);
        let full = covariance_matrix(&kernel, &ls);
        let block = cov_block(&kernel, &ls[10..20], &ls[25..40]);
        for j in 0..15 {
            for i in 0..10 {
                assert_eq!(block[(i, j)], full[(10 + i, 25 + j)]);
            }
        }
    }

    #[test]
    fn off_diagonal_blocks_are_low_rank_after_morton() {
        // The paper's premise: with locality ordering, distant blocks
        // compress aggressively at 1e-8.
        let kernel = Matern::new(MaternParams::new(1.0, 0.1, 0.5));
        let mut ls = locs(256, 5);
        crate::locations::morton_order(&mut ls);
        let block = cov_block(&kernel, &ls[0..64], &ls[192..256]);
        let tol = 1e-8 * block.norm_fro().max(1e-300);
        let (_, _, rank) = xgs_linalg::truncated_svd(&block, tol);
        assert!(
            rank < 48,
            "distant tile should be numerically low-rank, got {rank}"
        );
    }
}

//! Modified Bessel function of the second kind `K_nu(x)` for real order
//! `nu >= 0`, plus the log-gamma function it needs.
//!
//! Algorithm: Temme's power series for small arguments (`x <= 2`) and the
//! Steed/Thompson–Barnett continued fraction CF2 for large arguments, with
//! upward recurrence from the fractional order `|mu| <= 1/2` — the classical
//! scheme (cf. Numerical Recipes `bessik`), reimplemented from the formulas.
//! Accuracy is ~1e-13 relative over the ranges the Matérn kernel uses, and
//! the test suite cross-checks against the integral representation
//! `K_nu(x) = ∫_0^∞ exp(-x cosh t) cosh(nu t) dt`.

const EPS: f64 = 1e-16;
const MAX_ITER: usize = 20_000;

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9),
/// valid for `x > 0` with ~1e-13 relative accuracy.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Gamma function via [`ln_gamma`].
pub fn gamma(x: f64) -> f64 {
    if x > 0.0 {
        ln_gamma(x).exp()
    } else {
        let pi = std::f64::consts::PI;
        pi / ((pi * x).sin() * ln_gamma(1.0 - x).exp())
    }
}

/// Temme's auxiliary gammas for `|mu| <= 1/2`:
/// `gam1 = (1/Γ(1-mu) - 1/Γ(1+mu)) / (2 mu)` (limit `-γ_E` at 0),
/// `gam2 = (1/Γ(1-mu) + 1/Γ(1+mu)) / 2`,
/// plus `gampl = 1/Γ(1+mu)` and `gammi = 1/Γ(1-mu)`.
fn temme_gammas(mu: f64) -> (f64, f64, f64, f64) {
    const EULER: f64 = 0.5772156649015329;
    let gampl = 1.0 / gamma(1.0 + mu);
    let gammi = 1.0 / gamma(1.0 - mu);
    let gam1 = if mu.abs() < 1e-7 {
        // Series: (gammi - gampl)/(2mu) = -γ + O(mu^2); the O(mu^2) term is
        // below 1e-14 here.
        -EULER
    } else {
        (gammi - gampl) / (2.0 * mu)
    };
    let gam2 = 0.5 * (gammi + gampl);
    (gam1, gam2, gampl, gammi)
}

/// `K_nu(x)` for `nu >= 0`, `x > 0`.
///
/// Returns `f64::INFINITY` as `x -> 0+` (the true singular limit) and 0 for
/// very large `x` (underflow).
pub fn bessel_k(nu: f64, x: f64) -> f64 {
    assert!(nu >= 0.0, "order must be nonnegative (K_-nu = K_nu anyway)");
    assert!(x > 0.0, "argument must be positive");

    // Split nu = n + mu with integer n >= 0 and |mu| <= 1/2.
    let n = (nu + 0.5).floor() as usize;
    let mu = nu - n as f64;

    let (mut k_mu, mut k_mu1) = if x <= 2.0 {
        temme_series(mu, x)
    } else {
        steed_cf2(mu, x)
    };

    // Upward recurrence: K_{v+1}(x) = K_{v-1}(x) + (2v/x) K_v(x).
    let xi2 = 2.0 / x;
    let mut v = mu;
    for _ in 0..n {
        let next = (v + 1.0) * xi2 * k_mu1 + k_mu;
        k_mu = k_mu1;
        k_mu1 = next;
        v += 1.0;
    }
    k_mu
}

/// Temme's series for `K_mu(x)` and `K_{mu+1}(x)`, `|mu| <= 1/2`, `x <= 2`.
fn temme_series(mu: f64, x: f64) -> (f64, f64) {
    let pi = std::f64::consts::PI;
    let x2 = 0.5 * x;
    let pimu = pi * mu;
    let fact = if pimu.abs() < EPS {
        1.0
    } else {
        pimu / pimu.sin()
    };
    let d = -x2.ln();
    let e = mu * d;
    let fact2 = if e.abs() < EPS { 1.0 } else { e.sinh() / e };
    let (gam1, gam2, gampl, gammi) = temme_gammas(mu);
    let mut ff = fact * (gam1 * e.cosh() + gam2 * fact2 * d);
    let mut sum = ff;
    let e_exp = e.exp();
    let mut p = 0.5 * e_exp / gampl;
    let mut q = 0.5 / (e_exp * gammi);
    let mut c = 1.0;
    let dd = x2 * x2;
    let mut sum1 = p;
    let mut converged = false;
    for i in 1..=MAX_ITER {
        let fi = i as f64;
        ff = (fi * ff + p + q) / (fi * fi - mu * mu);
        c *= dd / fi;
        p /= fi - mu;
        q /= fi + mu;
        let del = c * ff;
        sum += del;
        let del1 = c * (p - fi * ff);
        sum1 += del1;
        if del.abs() < sum.abs() * EPS {
            converged = true;
            break;
        }
    }
    debug_assert!(converged, "Temme series failed to converge");
    (sum, sum1 * 2.0 / x)
}

/// Steed's continued fraction CF2 for `K_mu(x)` and `K_{mu+1}(x)`,
/// `|mu| <= 1/2`, `x > 2`.
fn steed_cf2(mu: f64, x: f64) -> (f64, f64) {
    let pi = std::f64::consts::PI;
    let mut b = 2.0 * (1.0 + x);
    let mut d = 1.0 / b;
    let mut h = d;
    let mut delh = d;
    let mut q1 = 0.0;
    let mut q2 = 1.0;
    let a1 = 0.25 - mu * mu;
    let mut q = a1;
    let mut c = a1;
    let mut a = -a1;
    let mut s = 1.0 + q * delh;
    let mut converged = false;
    for i in 2..=MAX_ITER {
        let fi = i as f64;
        a -= 2.0 * (fi - 1.0);
        c = -a * c / fi;
        let qnew = (q1 - b * q2) / a;
        q1 = q2;
        q2 = qnew;
        q += c * qnew;
        b += 2.0;
        d = 1.0 / (b + a * d);
        delh *= b * d - 1.0;
        h += delh;
        let dels = q * delh;
        s += dels;
        if (dels / s).abs() < EPS {
            converged = true;
            break;
        }
    }
    debug_assert!(converged, "CF2 failed to converge");
    let h = a1 * h;
    let k_mu = (pi / (2.0 * x)).sqrt() * (-x).exp() / s;
    let k_mu1 = k_mu * (mu + x + 0.5 - h) / x;
    (k_mu, k_mu1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: K_nu(x) = ∫_0^∞ exp(-x cosh t) cosh(nu t) dt by adaptive-ish
    /// fixed-step Simpson on [0, T] with T chosen so the tail is negligible.
    fn bessel_k_quadrature(nu: f64, x: f64) -> f64 {
        // exp(-x cosh T) decays doubly-exponentially; T = 30/x^(1/3)+5 is
        // overkill for the ranges tested.
        let t_max = (700.0f64 / x).max(4.0).ln().max(2.0) + 6.0;
        let steps = 400_000;
        let h = t_max / steps as f64;
        let f = |t: f64| (-x * t.cosh()).exp() * (nu * t).cosh();
        let mut s = f(0.0) + f(t_max);
        for i in 1..steps {
            let t = i as f64 * h;
            s += f(t) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        s * h / 3.0
    }

    #[test]
    fn half_integer_closed_forms() {
        // K_{1/2}(x) = sqrt(pi/(2x)) e^{-x}
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 20.0] {
            let expect = (std::f64::consts::PI / (2.0 * x)).sqrt() * (-x).exp();
            let got = bessel_k(0.5, x);
            assert!(
                ((got - expect) / expect).abs() < 1e-12,
                "x={x}: {got} vs {expect}"
            );
        }
        // K_{3/2}(x) = sqrt(pi/(2x)) e^{-x} (1 + 1/x)
        for &x in &[0.3, 1.0, 3.0, 10.0] {
            let expect = (std::f64::consts::PI / (2.0 * x)).sqrt() * (-x).exp() * (1.0 + 1.0 / x);
            let got = bessel_k(1.5, x);
            assert!(((got - expect) / expect).abs() < 1e-12, "x={x}");
        }
        // K_{5/2}(x) = sqrt(pi/(2x)) e^{-x} (1 + 3/x + 3/x^2)
        for &x in &[0.7, 2.0, 8.0] {
            let expect = (std::f64::consts::PI / (2.0 * x)).sqrt()
                * (-x).exp()
                * (1.0 + 3.0 / x + 3.0 / (x * x));
            let got = bessel_k(2.5, x);
            assert!(((got - expect) / expect).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn known_integer_order_values() {
        // Reference values (Abramowitz & Stegun / standard tables).
        let cases = [
            (0.0, 1.0, 0.421_024_438_240_708_4),
            (1.0, 1.0, 0.6019072301972346),
            (0.0, 0.1, 2.427_069_024_702_017),
            (1.0, 0.1, 9.853844780870606),
            (0.0, 5.0, 0.003691098334042594),
            (2.0, 3.0, 0.06151045847174205),
        ];
        for (nu, x, expect) in cases {
            let got = bessel_k(nu, x);
            assert!(
                ((got - expect) / expect).abs() < 1e-10,
                "K_{nu}({x}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn fractional_orders_match_integral_representation() {
        for &nu in &[0.17f64, 0.44, 0.73, 1.3, 2.8, 4.6] {
            for &x in &[0.2f64, 0.9, 1.9, 2.5, 6.0] {
                let got = bessel_k(nu, x);
                let oracle = bessel_k_quadrature(nu, x);
                assert!(
                    ((got - oracle) / oracle).abs() < 1e-7,
                    "K_{nu}({x}) = {got}, quadrature {oracle}"
                );
            }
        }
    }

    #[test]
    fn recurrence_identity_holds() {
        // K_{nu+1}(x) = K_{nu-1}(x) + (2 nu / x) K_nu(x)
        for &nu in &[1.0f64, 1.37, 2.5, 3.9] {
            for &x in &[0.5f64, 1.5, 4.0, 12.0] {
                let lhs = bessel_k(nu + 1.0, x);
                let rhs = bessel_k(nu - 1.0, x) + 2.0 * nu / x * bessel_k(nu, x);
                assert!(((lhs - rhs) / lhs).abs() < 1e-10, "nu={nu} x={x}");
            }
        }
    }

    #[test]
    fn monotone_decreasing_in_x() {
        for &nu in &[0.0f64, 0.5, 1.7] {
            let mut prev = bessel_k(nu, 0.05);
            let mut x = 0.1;
            while x < 20.0 {
                let cur = bessel_k(nu, x);
                assert!(cur < prev, "K_{nu} must decrease: K({x}) = {cur} >= {prev}");
                prev = cur;
                x *= 1.5;
            }
        }
    }

    #[test]
    fn increasing_in_order() {
        for &x in &[0.3f64, 1.0, 3.0] {
            assert!(bessel_k(1.0, x) > bessel_k(0.5, x));
            assert!(bessel_k(2.0, x) > bessel_k(1.0, x));
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-13);
        assert!((ln_gamma(2.0)).abs() < 1e-13);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-13);
        // Γ(1/3) = 2.678938534707747
        assert!((gamma(1.0 / 3.0) - 2.678938534707747).abs() < 1e-12);
    }

    #[test]
    fn small_x_singularity_grows() {
        assert!(bessel_k(0.0, 1e-8) > 17.0); // ~ -ln(x/2) - gamma
        assert!(bessel_k(1.0, 1e-6) > 9.0e5); // ~ 1/x
    }
}

//! Geostatistics substrate: covariance functions and spatial data handling.
//!
//! Implements, from scratch, everything the paper's statistical model needs:
//! the modified Bessel function of the second kind `K_nu` (Temme series +
//! continued fractions), the Matérn family (§IV-A.3), the Gneiting
//! non-separable space–time covariance (paper Eq. 6), irregular location
//! generation in the style of ExaGeoStat's synthetic datasets, Morton
//! (Z-order) locality ordering — the "proper ordering \[that\] clusters the
//! most significant information around the diagonal" — and (parallel)
//! covariance matrix assembly.

pub mod assembly;
pub mod bessel;
pub mod kernels_extra;
pub mod locations;
pub mod matern;
pub mod spacetime;

pub use assembly::{cov_block, covariance_matrix, CovarianceKernel};
pub use bessel::{bessel_k, ln_gamma};
pub use kernels_extra::{GeneralizedCauchy, PoweredExponential, WithNugget};
pub use locations::{jittered_grid, morton_order, spacetime_grid, uniform_locations, Location};
pub use matern::{matern_correlation, Matern, MaternParams};
pub use spacetime::{GneitingSpaceTime, SpaceTimeParams};

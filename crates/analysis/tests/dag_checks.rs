//! Integration checks for the pre-execution DAG layer: diagnostics must
//! be precise enough to act on (name the tasks on the cycle, the kernel
//! whose census is off, the tile and worker of a protocol violation).

use xgs_analysis::{
    check_acyclic, check_cholesky_census, hazard_edges, AccessSpec, GraphError, HazardKind,
};

#[test]
fn cycle_diagnostic_names_every_task_on_the_cycle() {
    // 0 -> 1 -> 2 -> 3 -> 1: the cycle is [1, 2, 3].
    let succ: Vec<Vec<usize>> = vec![vec![1], vec![2], vec![3], vec![1]];
    let err = check_acyclic(succ.len(), |t| succ[t].iter().copied()).unwrap_err();
    match &err {
        GraphError::Cycle(path) => assert_eq!(path, &vec![1, 2, 3]),
        other => panic!("expected cycle, got {other}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("task 1") && msg.contains("task 2") && msg.contains("task 3"),
        "cycle message must list the tasks: {msg}"
    );
}

#[test]
fn census_diagnostic_names_kernel_and_counts() {
    // nt = 3 needs 3 potrf / 3 trsm / 3 syrk / 1 gemm; drop a trsm.
    let kinds = [
        "potrf", "potrf", "potrf", "trsm", "trsm", "syrk", "syrk", "syrk", "gemm",
    ];
    let err = check_cholesky_census(kinds.iter().copied(), 3).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("trsm") && msg.contains('2') && msg.contains('3'),
        "census message must name the kernel and both counts: {msg}"
    );
}

#[test]
fn hazard_edges_cover_all_three_kinds() {
    // w(0); r(0) -> RAW; w(0) -> WAR (vs reader) + WAW (vs writer).
    let accesses = vec![
        vec![AccessSpec::write(0)],
        vec![AccessSpec::read(0)],
        vec![AccessSpec::write(0)],
    ];
    let edges = hazard_edges(&accesses);
    let kinds: Vec<(usize, usize, HazardKind)> =
        edges.iter().map(|e| (e.pred, e.succ, e.kind)).collect();
    assert!(kinds.contains(&(0, 1, HazardKind::Raw)));
    assert!(kinds.contains(&(1, 2, HazardKind::War)));
    assert!(kinds.contains(&(0, 2, HazardKind::Waw)));
}

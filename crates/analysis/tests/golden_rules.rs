//! Golden fixtures, one pair per rule: a minimal violating source that
//! must produce exactly that finding, and the same source with a
//! justified `xgs-lint: allow` that must lint clean (and be counted).
//!
//! The fixture code lives in string literals, so running `xgs-lint` over
//! this test file itself stays quiet — the rule engine only matches
//! identifier tokens, never literal or comment contents.

use xgs_analysis::{analyze_files, lint_file, RULES};

/// Assert `src` at `path` yields exactly one finding of `rule` on `line`.
fn expect_one(path: &str, src: &str, rule: &str, line: usize) {
    let lint = lint_file(path, src.as_bytes());
    assert_eq!(
        lint.findings.len(),
        1,
        "{rule}: expected one finding, got {:#?}",
        lint.findings
    );
    let f = &lint.findings[0];
    assert_eq!(f.rule, rule);
    assert_eq!(f.line, line, "{rule}: wrong line in {f}");
    assert_eq!(f.path, path);
}

/// Assert `src` at `path` lints clean with exactly one justified allow.
fn expect_allowed(path: &str, src: &str) {
    let lint = lint_file(path, src.as_bytes());
    assert_eq!(
        lint.findings,
        vec![],
        "justified allow must suppress the finding"
    );
    assert_eq!(lint.justified_allows, 1);
}

#[test]
fn rules_table_is_complete() {
    let names: Vec<&str> = RULES.iter().map(|(n, _)| *n).collect();
    for want in [
        "no-partial-cmp-sort",
        "no-panic-in-network-path",
        "bounded-read-only",
        "no-unjustified-unsafe",
        "frame-kind-exhaustive",
        "lock-order",
        "lock-cycle",
        "safety-comment-required",
        "no-unsafe-outside-audited-modules",
        "syscall-ret-checked",
        "no-raw-parallelism-probe",
        "unjustified-allow",
    ] {
        assert!(names.contains(&want), "missing rule {want}");
    }
}

#[test]
fn golden_no_partial_cmp_sort() {
    let bad = "pub fn order(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).expect(\"nan\"));\n}\n";
    expect_one("crates/core/src/sortfix.rs", bad, "no-partial-cmp-sort", 2);

    let ok = "pub fn order(v: &mut [f64]) {\n    // xgs-lint: allow(no-partial-cmp-sort): inputs are covariance diagonals, NaN-free by construction\n    v.sort_by(|a, b| a.partial_cmp(b).expect(\"nan\"));\n}\n";
    expect_allowed("crates/core/src/sortfix.rs", ok);
}

#[test]
fn golden_no_panic_in_network_path() {
    let bad = "fn handle(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    expect_one(
        "crates/server/src/server.rs",
        bad,
        "no-panic-in-network-path",
        2,
    );

    let ok = "fn handle(x: Option<u32>) -> u32 {\n    // xgs-lint: allow(no-panic-in-network-path): startup-only path, runs before any client connects\n    x.unwrap()\n}\n";
    expect_allowed("crates/server/src/server.rs", ok);
}

#[test]
fn golden_no_panic_skips_test_modules() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1u32).unwrap();\n    }\n}\n";
    let lint = lint_file("crates/server/src/server.rs", src.as_bytes());
    assert_eq!(lint.findings, vec![], "unwrap in tests is fine");
}

#[test]
fn golden_bounded_read_only() {
    let bad = "use std::io::Read;\nfn slurp(r: &mut impl Read) -> String {\n    let mut s = String::new();\n    let _ = r.read_to_string(&mut s);\n    s\n}\n";
    expect_one("crates/server/src/protocol.rs", bad, "bounded-read-only", 4);

    let ok = "use std::io::Read;\nfn slurp(r: &mut impl Read) -> String {\n    let mut s = String::new();\n    // xgs-lint: allow(bounded-read-only): source is a take()-capped reader, bounded upstream\n    let _ = r.read_to_string(&mut s);\n    s\n}\n";
    expect_allowed("crates/server/src/protocol.rs", ok);
}

#[test]
fn golden_no_unjustified_unsafe() {
    // The fixture sits in the audited gemm module with a SAFETY comment,
    // so only the missing allow is on trial here.
    let bad = "pub fn deref(p: *const u8) -> u8 {\n    // SAFETY: caller contract guarantees p is valid for reads.\n    unsafe { *p }\n}\n";
    expect_one(
        "crates/kernels/src/gemm.rs",
        bad,
        "no-unjustified-unsafe",
        3,
    );

    let ok = "pub fn deref(p: *const u8) -> u8 {\n    // SAFETY: caller contract guarantees p is valid for reads.\n    // xgs-lint: allow(no-unjustified-unsafe): caller contract guarantees p is valid for reads\n    unsafe { *p }\n}\n";
    expect_allowed("crates/kernels/src/gemm.rs", ok);
}

#[test]
fn golden_safety_comment_required() {
    // Allowed and audited, but the invariant is not written down next to
    // the code: the SAFETY comment is its own obligation.
    let bad = "pub fn deref(p: *const u8) -> u8 {\n    // xgs-lint: allow(no-unjustified-unsafe): caller contract guarantees p is valid\n    unsafe { *p }\n}\n";
    expect_one(
        "crates/kernels/src/gemm.rs",
        bad,
        "safety-comment-required",
        3,
    );

    // The fix is the comment itself, not an allow.
    let ok = "pub fn deref(p: *const u8) -> u8 {\n    // SAFETY: caller contract guarantees p is valid for reads.\n    // xgs-lint: allow(no-unjustified-unsafe): caller contract guarantees p is valid\n    unsafe { *p }\n}\n";
    expect_allowed("crates/kernels/src/gemm.rs", ok);
}

#[test]
fn golden_no_unsafe_outside_audited_modules() {
    // SAFETY-commented and allowed, but in an unaudited crate: still a
    // finding — the allowlist is the reviewed boundary.
    let bad = "pub fn f() {\n    // SAFETY: spin_loop has no requirements.\n    // xgs-lint: allow(no-unjustified-unsafe): fixture\n    unsafe { core::hint::spin_loop() }\n}\n";
    expect_one(
        "crates/core/src/x.rs",
        bad,
        "no-unsafe-outside-audited-modules",
        4,
    );

    // The same rule is suppressible like any other, for staged migrations.
    // An allow only covers its own line and the next, so both allows ride
    // one comment line directly above the unsafe.
    let ok = "pub fn f() {\n    // SAFETY: spin_loop has no requirements.\n    // xgs-lint: allow(no-unjustified-unsafe): fixture xgs-lint: allow(no-unsafe-outside-audited-modules): moving into kernels next change\n    unsafe { core::hint::spin_loop() }\n}\n";
    let lint = lint_file("crates/core/src/x.rs", ok.as_bytes());
    assert_eq!(lint.findings, vec![], "both allows must suppress");
    assert_eq!(lint.justified_allows, 2);
}

#[test]
fn golden_syscall_ret_checked() {
    let bad = "fn shutdown(fd: i32) {\n    close(fd);\n}\n";
    expect_one("vendor/polling/src/util.rs", bad, "syscall-ret-checked", 2);

    // Comparing the result is the fix; no allow needed.
    let checked = "fn shutdown(fd: i32) -> bool {\n    close(fd) == 0\n}\n";
    let lint = lint_file("vendor/polling/src/util.rs", checked.as_bytes());
    assert_eq!(lint.findings, vec![], "checked result lints clean");

    // Best-effort sites carry the justification instead.
    let ok = "fn shutdown(fd: i32) {\n    // xgs-lint: allow(syscall-ret-checked): best-effort close on teardown, errors have nowhere to go\n    close(fd);\n}\n";
    expect_allowed("vendor/polling/src/util.rs", ok);
}

#[test]
fn golden_frame_kind_exhaustive() {
    let bad = "const K_PING: u8 = 9;\nfn dispatch(kind: u8) -> u32 {\n    match kind {\n        K_PING => 1,\n        _ => 0,\n    }\n}\n";
    expect_one(
        "crates/runtime/src/shard.rs",
        bad,
        "frame-kind-exhaustive",
        5,
    );

    let ok = "const K_PING: u8 = 9;\nfn dispatch(kind: u8) -> u32 {\n    match kind {\n        K_PING => 1,\n        // xgs-lint: allow(frame-kind-exhaustive): forward-compat fallthrough, unknown frames are dropped by design\n        _ => 0,\n    }\n}\n";
    expect_allowed("crates/runtime/src/shard.rs", ok);
}

/// Run the workspace lock-graph pass over in-memory fixture files.
fn lock_graph(files: &[(&str, &str)]) -> xgs_analysis::Analysis {
    let owned: Vec<(String, Vec<u8>)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.as_bytes().to_vec()))
        .collect();
    analyze_files(&owned)
}

#[test]
fn golden_lock_order() {
    // The declared server order is violated even though no cycle exists
    // yet: the inversion alone is the finding.
    let bad = "fn drain(q: &BatchQueue, reg: &ModelRegistry) {\n    let models = reg.models.lock();\n    let inner = q.inner.lock();\n    drop((models, inner));\n}\n";
    let an = lock_graph(&[("crates/server/src/drainer.rs", bad)]);
    assert_eq!(an.findings.len(), 1, "{:#?}", an.findings);
    let f = &an.findings[0];
    assert_eq!(f.rule, "lock-order");
    assert_eq!(f.line, 3, "{f}");
    assert!(f.message.contains("witness"), "{}", f.message);

    let ok = "fn drain(q: &BatchQueue, reg: &ModelRegistry) {\n    let models = reg.models.lock();\n    // xgs-lint: allow(lock-order): models is dropped before inner is used, see teardown protocol\n    let inner = q.inner.lock();\n    drop((models, inner));\n}\n";
    let an = lock_graph(&[("crates/server/src/drainer.rs", ok)]);
    assert_eq!(an.findings, vec![], "justified allow must suppress");
    // The audited edge stays visible in the graph for report consumers.
    assert_eq!(an.edges.len(), 1);
}

#[test]
fn golden_lock_cycle() {
    // The inverse orders live in different files of the same crate; only
    // the workspace-level union sees the cycle.
    let a = "fn ab(s: &S) { let g = s.alpha.lock(); let h = s.beta.lock(); drop((g, h)); }\n";
    let b = "fn ba(s: &S) { let h = s.beta.lock(); let g = s.alpha.lock(); drop((g, h)); }\n";
    let an = lock_graph(&[("crates/core/src/a.rs", a), ("crates/core/src/b.rs", b)]);
    assert_eq!(an.cycles.len(), 1, "{:#?}", an.cycles);
    let f = an
        .findings
        .iter()
        .find(|f| f.rule == "lock-cycle")
        .expect("cycle must be a finding");
    // The witness names both functions and both files.
    assert!(
        f.message.contains("ab") && f.message.contains("ba"),
        "{}",
        f.message
    );
    assert!(
        f.message.contains("a.rs:") && f.message.contains("b.rs:"),
        "{}",
        f.message
    );

    // A self-loop (reentrant acquisition) is the smallest cycle, and the
    // allow goes on the acquisition that closes it.
    let re = "fn f(s: &S) {\n    let a = s.inner.lock();\n    // xgs-lint: allow(lock-cycle): inner is a reentrant mutex in this fixture\n    let b = s.inner.lock();\n    drop((a, b));\n}\n";
    let an = lock_graph(&[("crates/core/src/c.rs", re)]);
    assert_eq!(an.findings, vec![], "{:#?}", an.findings);
    assert_eq!(
        an.cycles.len(),
        1,
        "suppression hides the finding, not the cycle"
    );
}

#[test]
fn golden_no_raw_parallelism_probe() {
    let bad = "pub fn default_workers() -> usize {\n    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\n";
    expect_one(
        "crates/core/src/engine.rs",
        bad,
        "no-raw-parallelism-probe",
        2,
    );

    let ncpus = "pub fn default_workers() -> usize {\n    num_cpus::get()\n}\n";
    expect_one(
        "crates/core/src/engine.rs",
        ncpus,
        "no-raw-parallelism-probe",
        2,
    );

    let ok = "pub fn logical_cores() -> usize {\n    // xgs-lint: allow(no-raw-parallelism-probe): this is the shared helper itself\n    num_cpus::get()\n}\n";
    expect_allowed("crates/runtime/src/lib.rs", ok);
}

#[test]
fn golden_unjustified_allow_is_a_finding() {
    // An allow with no justification suppresses nothing and is itself
    // reported, so the original finding also survives.
    let src = "pub fn deref(p: *const u8) -> u8 {\n    // SAFETY: caller contract guarantees p is valid for reads.\n    // xgs-lint: allow(no-unjustified-unsafe)\n    unsafe { *p }\n}\n";
    let lint = lint_file("crates/kernels/src/gemm.rs", src.as_bytes());
    let mut rules: Vec<&str> = lint.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    assert_eq!(rules, vec!["no-unjustified-unsafe", "unjustified-allow"]);
    assert_eq!(lint.justified_allows, 0);
}

#[test]
fn golden_allow_of_unknown_rule_is_a_finding() {
    let src = "// xgs-lint: allow(no-such-rule): misspelled\npub fn f() {}\n";
    let lint = lint_file("crates/core/src/x.rs", src.as_bytes());
    assert_eq!(lint.findings.len(), 1, "{:#?}", lint.findings);
    assert_eq!(lint.findings[0].rule, "unjustified-allow");
    assert!(
        lint.findings[0].message.contains("does not exist"),
        "{}",
        lint.findings[0].message
    );
}

#[test]
fn golden_clean_file_is_clean() {
    let src = "//! A well-behaved module.\npub fn add(a: u64, b: u64) -> u64 {\n    a.wrapping_add(b)\n}\n";
    for path in [
        "crates/core/src/x.rs",
        "crates/server/src/server.rs",
        "crates/runtime/src/shard.rs",
    ] {
        let lint = lint_file(path, src.as_bytes());
        assert_eq!(lint.findings, vec![]);
        assert_eq!(lint.justified_allows, 0);
    }
}

//! Property tests for the hand-rolled lexer: on *arbitrary* byte strings
//! — valid Rust, mangled Rust, or pure noise — `lex` must neither panic
//! nor drop a byte. Every downstream rule assumes token spans tile the
//! file exactly.

use proptest::prelude::*;
use xgs_analysis::lexer::{lex, LineIndex};

/// Lexer stress fragments: every delimiter whose state machine has a
/// tricky tail (unterminated strings, raw-string hashes, block-comment
/// nesting, char-vs-lifetime, numeric suffix edges).
const SPICE: &[&[u8]] = &[
    b"r#\"",
    b"\"",
    b"'",
    b"b'x'",
    b"/*",
    b"*/",
    b"//",
    b"\\",
    b"0x",
    b"..",
    b"r##\"",
    b"'a",
    b"1e",
    b"1e-",
    b"br#\"",
    b"\"#",
    b"#\"",
    b"r#raw",
    b"0b1_",
    b"'\\''",
    b"\xF0\x9F\xA6\x80",
];

/// Byte soup: mostly printable ASCII and raw bytes, with lexer stress
/// fragments spliced in. Values `0..256` map to that byte; higher values
/// pick a fragment.
fn byte_soup() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u32..(256 + SPICE.len() as u32), 120).prop_map(|vals| {
        let mut out = Vec::new();
        for v in vals {
            if v < 256 {
                out.push(v as u8);
            } else {
                out.extend_from_slice(SPICE[(v - 256) as usize]);
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexing_is_total_and_lossless(bytes in byte_soup()) {
        let toks = lex(&bytes);
        let mut off = 0usize;
        for t in &toks {
            prop_assert!(t.start == off, "gap or overlap at offset {}", t.start);
            prop_assert!(t.end > t.start, "empty token at {}", t.start);
            off = t.end;
        }
        prop_assert!(off == bytes.len(), "tokens must tile the whole input");
    }

    #[test]
    fn line_index_agrees_with_newlines(bytes in byte_soup()) {
        let idx = LineIndex::new(&bytes);
        let lines = 1 + bytes.iter().filter(|&&b| b == b'\n').count();
        for off in 0..bytes.len() {
            let (line, col) = idx.locate(off);
            prop_assert!(line >= 1 && line <= lines, "line {} of {}", line, lines);
            prop_assert!(col >= 1);
        }
    }
}
